# Empty compiler generated dependencies file for fig11_13_autotuner.
# This may be replaced when dependencies are built.
