file(REMOVE_RECURSE
  "../bench/fig11_13_autotuner"
  "../bench/fig11_13_autotuner.pdb"
  "CMakeFiles/fig11_13_autotuner.dir/fig11_13_autotuner.cpp.o"
  "CMakeFiles/fig11_13_autotuner.dir/fig11_13_autotuner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_13_autotuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
