# Empty compiler generated dependencies file for fig05_error_nvidia.
# This may be replaced when dependencies are built.
