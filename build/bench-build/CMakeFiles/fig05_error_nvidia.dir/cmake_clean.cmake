file(REMOVE_RECURSE
  "../bench/fig05_error_nvidia"
  "../bench/fig05_error_nvidia.pdb"
  "CMakeFiles/fig05_error_nvidia.dir/fig05_error_nvidia.cpp.o"
  "CMakeFiles/fig05_error_nvidia.dir/fig05_error_nvidia.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_error_nvidia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
