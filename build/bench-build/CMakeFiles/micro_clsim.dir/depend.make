# Empty dependencies file for micro_clsim.
# This may be replaced when dependencies are built.
