file(REMOVE_RECURSE
  "../bench/micro_clsim"
  "../bench/micro_clsim.pdb"
  "CMakeFiles/micro_clsim.dir/micro_clsim.cpp.o"
  "CMakeFiles/micro_clsim.dir/micro_clsim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_clsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
