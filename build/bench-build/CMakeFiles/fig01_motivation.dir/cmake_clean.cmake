file(REMOVE_RECURSE
  "../bench/fig01_motivation"
  "../bench/fig01_motivation.pdb"
  "CMakeFiles/fig01_motivation.dir/fig01_motivation.cpp.o"
  "CMakeFiles/fig01_motivation.dir/fig01_motivation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
