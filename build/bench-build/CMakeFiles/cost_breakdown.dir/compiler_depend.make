# Empty compiler generated dependencies file for cost_breakdown.
# This may be replaced when dependencies are built.
