file(REMOVE_RECURSE
  "../bench/cost_breakdown"
  "../bench/cost_breakdown.pdb"
  "CMakeFiles/cost_breakdown.dir/cost_breakdown.cpp.o"
  "CMakeFiles/cost_breakdown.dir/cost_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
