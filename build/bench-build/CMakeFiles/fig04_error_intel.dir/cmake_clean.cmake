file(REMOVE_RECURSE
  "../bench/fig04_error_intel"
  "../bench/fig04_error_intel.pdb"
  "CMakeFiles/fig04_error_intel.dir/fig04_error_intel.cpp.o"
  "CMakeFiles/fig04_error_intel.dir/fig04_error_intel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_error_intel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
