# Empty dependencies file for fig04_error_intel.
# This may be replaced when dependencies are built.
