file(REMOVE_RECURSE
  "../bench/ablation_validity"
  "../bench/ablation_validity.pdb"
  "CMakeFiles/ablation_validity.dir/ablation_validity.cpp.o"
  "CMakeFiles/ablation_validity.dir/ablation_validity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
