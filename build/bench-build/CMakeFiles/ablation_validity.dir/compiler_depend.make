# Empty compiler generated dependencies file for ablation_validity.
# This may be replaced when dependencies are built.
