# Empty dependencies file for fig08_10_scatter.
# This may be replaced when dependencies are built.
