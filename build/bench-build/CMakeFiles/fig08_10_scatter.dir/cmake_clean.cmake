file(REMOVE_RECURSE
  "../bench/fig08_10_scatter"
  "../bench/fig08_10_scatter.pdb"
  "CMakeFiles/fig08_10_scatter.dir/fig08_10_scatter.cpp.o"
  "CMakeFiles/fig08_10_scatter.dir/fig08_10_scatter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_10_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
