file(REMOVE_RECURSE
  "../bench/ext_iterative"
  "../bench/ext_iterative.pdb"
  "CMakeFiles/ext_iterative.dir/ext_iterative.cpp.o"
  "CMakeFiles/ext_iterative.dir/ext_iterative.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
