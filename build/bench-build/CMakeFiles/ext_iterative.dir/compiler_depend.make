# Empty compiler generated dependencies file for ext_iterative.
# This may be replaced when dependencies are built.
