# Empty compiler generated dependencies file for table2_parameters.
# This may be replaced when dependencies are built.
