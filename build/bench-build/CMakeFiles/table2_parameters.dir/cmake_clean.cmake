file(REMOVE_RECURSE
  "../bench/table2_parameters"
  "../bench/table2_parameters.pdb"
  "CMakeFiles/table2_parameters.dir/table2_parameters.cpp.o"
  "CMakeFiles/table2_parameters.dir/table2_parameters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
