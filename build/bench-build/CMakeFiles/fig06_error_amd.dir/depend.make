# Empty dependencies file for fig06_error_amd.
# This may be replaced when dependencies are built.
