file(REMOVE_RECURSE
  "../bench/fig06_error_amd"
  "../bench/fig06_error_amd.pdb"
  "CMakeFiles/fig06_error_amd.dir/fig06_error_amd.cpp.o"
  "CMakeFiles/fig06_error_amd.dir/fig06_error_amd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_error_amd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
