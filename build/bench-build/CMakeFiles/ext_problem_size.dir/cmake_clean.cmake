file(REMOVE_RECURSE
  "../bench/ext_problem_size"
  "../bench/ext_problem_size.pdb"
  "CMakeFiles/ext_problem_size.dir/ext_problem_size.cpp.o"
  "CMakeFiles/ext_problem_size.dir/ext_problem_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_problem_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
