file(REMOVE_RECURSE
  "../bench/fig07_nvidia_generations"
  "../bench/fig07_nvidia_generations.pdb"
  "CMakeFiles/fig07_nvidia_generations.dir/fig07_nvidia_generations.cpp.o"
  "CMakeFiles/fig07_nvidia_generations.dir/fig07_nvidia_generations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_nvidia_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
