# Empty compiler generated dependencies file for fig07_nvidia_generations.
# This may be replaced when dependencies are built.
