file(REMOVE_RECURSE
  "../bench/table1_benchmarks"
  "../bench/table1_benchmarks.pdb"
  "CMakeFiles/table1_benchmarks.dir/table1_benchmarks.cpp.o"
  "CMakeFiles/table1_benchmarks.dir/table1_benchmarks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
