# Empty dependencies file for table1_benchmarks.
# This may be replaced when dependencies are built.
