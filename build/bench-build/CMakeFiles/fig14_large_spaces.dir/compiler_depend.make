# Empty compiler generated dependencies file for fig14_large_spaces.
# This may be replaced when dependencies are built.
