file(REMOVE_RECURSE
  "../bench/fig14_large_spaces"
  "../bench/fig14_large_spaces.pdb"
  "CMakeFiles/fig14_large_spaces.dir/fig14_large_spaces.cpp.o"
  "CMakeFiles/fig14_large_spaces.dir/fig14_large_spaces.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_large_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
