
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchmarks/benchmark.cpp" "src/benchmarks/CMakeFiles/pt_benchmarks.dir/benchmark.cpp.o" "gcc" "src/benchmarks/CMakeFiles/pt_benchmarks.dir/benchmark.cpp.o.d"
  "/root/repo/src/benchmarks/convolution.cpp" "src/benchmarks/CMakeFiles/pt_benchmarks.dir/convolution.cpp.o" "gcc" "src/benchmarks/CMakeFiles/pt_benchmarks.dir/convolution.cpp.o.d"
  "/root/repo/src/benchmarks/raycasting.cpp" "src/benchmarks/CMakeFiles/pt_benchmarks.dir/raycasting.cpp.o" "gcc" "src/benchmarks/CMakeFiles/pt_benchmarks.dir/raycasting.cpp.o.d"
  "/root/repo/src/benchmarks/registry.cpp" "src/benchmarks/CMakeFiles/pt_benchmarks.dir/registry.cpp.o" "gcc" "src/benchmarks/CMakeFiles/pt_benchmarks.dir/registry.cpp.o.d"
  "/root/repo/src/benchmarks/stereo.cpp" "src/benchmarks/CMakeFiles/pt_benchmarks.dir/stereo.cpp.o" "gcc" "src/benchmarks/CMakeFiles/pt_benchmarks.dir/stereo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuner/CMakeFiles/pt_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/clsim/CMakeFiles/pt_clsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pt_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
