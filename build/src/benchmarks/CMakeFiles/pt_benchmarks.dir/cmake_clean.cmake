file(REMOVE_RECURSE
  "CMakeFiles/pt_benchmarks.dir/benchmark.cpp.o"
  "CMakeFiles/pt_benchmarks.dir/benchmark.cpp.o.d"
  "CMakeFiles/pt_benchmarks.dir/convolution.cpp.o"
  "CMakeFiles/pt_benchmarks.dir/convolution.cpp.o.d"
  "CMakeFiles/pt_benchmarks.dir/raycasting.cpp.o"
  "CMakeFiles/pt_benchmarks.dir/raycasting.cpp.o.d"
  "CMakeFiles/pt_benchmarks.dir/registry.cpp.o"
  "CMakeFiles/pt_benchmarks.dir/registry.cpp.o.d"
  "CMakeFiles/pt_benchmarks.dir/stereo.cpp.o"
  "CMakeFiles/pt_benchmarks.dir/stereo.cpp.o.d"
  "libpt_benchmarks.a"
  "libpt_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
