file(REMOVE_RECURSE
  "libpt_benchmarks.a"
)
