# Empty dependencies file for pt_benchmarks.
# This may be replaced when dependencies are built.
