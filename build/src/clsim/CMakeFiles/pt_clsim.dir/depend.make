# Empty dependencies file for pt_clsim.
# This may be replaced when dependencies are built.
