
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clsim/device.cpp" "src/clsim/CMakeFiles/pt_clsim.dir/device.cpp.o" "gcc" "src/clsim/CMakeFiles/pt_clsim.dir/device.cpp.o.d"
  "/root/repo/src/clsim/error.cpp" "src/clsim/CMakeFiles/pt_clsim.dir/error.cpp.o" "gcc" "src/clsim/CMakeFiles/pt_clsim.dir/error.cpp.o.d"
  "/root/repo/src/clsim/executor.cpp" "src/clsim/CMakeFiles/pt_clsim.dir/executor.cpp.o" "gcc" "src/clsim/CMakeFiles/pt_clsim.dir/executor.cpp.o.d"
  "/root/repo/src/clsim/kernel.cpp" "src/clsim/CMakeFiles/pt_clsim.dir/kernel.cpp.o" "gcc" "src/clsim/CMakeFiles/pt_clsim.dir/kernel.cpp.o.d"
  "/root/repo/src/clsim/kernel_profile.cpp" "src/clsim/CMakeFiles/pt_clsim.dir/kernel_profile.cpp.o" "gcc" "src/clsim/CMakeFiles/pt_clsim.dir/kernel_profile.cpp.o.d"
  "/root/repo/src/clsim/memory.cpp" "src/clsim/CMakeFiles/pt_clsim.dir/memory.cpp.o" "gcc" "src/clsim/CMakeFiles/pt_clsim.dir/memory.cpp.o.d"
  "/root/repo/src/clsim/platform.cpp" "src/clsim/CMakeFiles/pt_clsim.dir/platform.cpp.o" "gcc" "src/clsim/CMakeFiles/pt_clsim.dir/platform.cpp.o.d"
  "/root/repo/src/clsim/queue.cpp" "src/clsim/CMakeFiles/pt_clsim.dir/queue.cpp.o" "gcc" "src/clsim/CMakeFiles/pt_clsim.dir/queue.cpp.o.d"
  "/root/repo/src/clsim/types.cpp" "src/clsim/CMakeFiles/pt_clsim.dir/types.cpp.o" "gcc" "src/clsim/CMakeFiles/pt_clsim.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
