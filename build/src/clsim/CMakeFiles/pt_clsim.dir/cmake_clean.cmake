file(REMOVE_RECURSE
  "CMakeFiles/pt_clsim.dir/device.cpp.o"
  "CMakeFiles/pt_clsim.dir/device.cpp.o.d"
  "CMakeFiles/pt_clsim.dir/error.cpp.o"
  "CMakeFiles/pt_clsim.dir/error.cpp.o.d"
  "CMakeFiles/pt_clsim.dir/executor.cpp.o"
  "CMakeFiles/pt_clsim.dir/executor.cpp.o.d"
  "CMakeFiles/pt_clsim.dir/kernel.cpp.o"
  "CMakeFiles/pt_clsim.dir/kernel.cpp.o.d"
  "CMakeFiles/pt_clsim.dir/kernel_profile.cpp.o"
  "CMakeFiles/pt_clsim.dir/kernel_profile.cpp.o.d"
  "CMakeFiles/pt_clsim.dir/memory.cpp.o"
  "CMakeFiles/pt_clsim.dir/memory.cpp.o.d"
  "CMakeFiles/pt_clsim.dir/platform.cpp.o"
  "CMakeFiles/pt_clsim.dir/platform.cpp.o.d"
  "CMakeFiles/pt_clsim.dir/queue.cpp.o"
  "CMakeFiles/pt_clsim.dir/queue.cpp.o.d"
  "CMakeFiles/pt_clsim.dir/types.cpp.o"
  "CMakeFiles/pt_clsim.dir/types.cpp.o.d"
  "libpt_clsim.a"
  "libpt_clsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_clsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
