file(REMOVE_RECURSE
  "libpt_clsim.a"
)
