file(REMOVE_RECURSE
  "CMakeFiles/pt_experiments.dir/error_curves.cpp.o"
  "CMakeFiles/pt_experiments.dir/error_curves.cpp.o.d"
  "CMakeFiles/pt_experiments.dir/motivation.cpp.o"
  "CMakeFiles/pt_experiments.dir/motivation.cpp.o.d"
  "CMakeFiles/pt_experiments.dir/tuner_eval.cpp.o"
  "CMakeFiles/pt_experiments.dir/tuner_eval.cpp.o.d"
  "libpt_experiments.a"
  "libpt_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
