file(REMOVE_RECURSE
  "libpt_experiments.a"
)
