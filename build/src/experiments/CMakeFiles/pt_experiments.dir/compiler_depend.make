# Empty compiler generated dependencies file for pt_experiments.
# This may be replaced when dependencies are built.
