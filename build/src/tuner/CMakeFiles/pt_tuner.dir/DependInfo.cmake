
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuner/autotuner.cpp" "src/tuner/CMakeFiles/pt_tuner.dir/autotuner.cpp.o" "gcc" "src/tuner/CMakeFiles/pt_tuner.dir/autotuner.cpp.o.d"
  "/root/repo/src/tuner/evaluator.cpp" "src/tuner/CMakeFiles/pt_tuner.dir/evaluator.cpp.o" "gcc" "src/tuner/CMakeFiles/pt_tuner.dir/evaluator.cpp.o.d"
  "/root/repo/src/tuner/features.cpp" "src/tuner/CMakeFiles/pt_tuner.dir/features.cpp.o" "gcc" "src/tuner/CMakeFiles/pt_tuner.dir/features.cpp.o.d"
  "/root/repo/src/tuner/input_aware.cpp" "src/tuner/CMakeFiles/pt_tuner.dir/input_aware.cpp.o" "gcc" "src/tuner/CMakeFiles/pt_tuner.dir/input_aware.cpp.o.d"
  "/root/repo/src/tuner/iterative.cpp" "src/tuner/CMakeFiles/pt_tuner.dir/iterative.cpp.o" "gcc" "src/tuner/CMakeFiles/pt_tuner.dir/iterative.cpp.o.d"
  "/root/repo/src/tuner/model.cpp" "src/tuner/CMakeFiles/pt_tuner.dir/model.cpp.o" "gcc" "src/tuner/CMakeFiles/pt_tuner.dir/model.cpp.o.d"
  "/root/repo/src/tuner/param.cpp" "src/tuner/CMakeFiles/pt_tuner.dir/param.cpp.o" "gcc" "src/tuner/CMakeFiles/pt_tuner.dir/param.cpp.o.d"
  "/root/repo/src/tuner/persist.cpp" "src/tuner/CMakeFiles/pt_tuner.dir/persist.cpp.o" "gcc" "src/tuner/CMakeFiles/pt_tuner.dir/persist.cpp.o.d"
  "/root/repo/src/tuner/sampler.cpp" "src/tuner/CMakeFiles/pt_tuner.dir/sampler.cpp.o" "gcc" "src/tuner/CMakeFiles/pt_tuner.dir/sampler.cpp.o.d"
  "/root/repo/src/tuner/search.cpp" "src/tuner/CMakeFiles/pt_tuner.dir/search.cpp.o" "gcc" "src/tuner/CMakeFiles/pt_tuner.dir/search.cpp.o.d"
  "/root/repo/src/tuner/validity.cpp" "src/tuner/CMakeFiles/pt_tuner.dir/validity.cpp.o" "gcc" "src/tuner/CMakeFiles/pt_tuner.dir/validity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/pt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/clsim/CMakeFiles/pt_clsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
