# Empty dependencies file for pt_tuner.
# This may be replaced when dependencies are built.
