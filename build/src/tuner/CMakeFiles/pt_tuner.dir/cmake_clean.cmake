file(REMOVE_RECURSE
  "CMakeFiles/pt_tuner.dir/autotuner.cpp.o"
  "CMakeFiles/pt_tuner.dir/autotuner.cpp.o.d"
  "CMakeFiles/pt_tuner.dir/evaluator.cpp.o"
  "CMakeFiles/pt_tuner.dir/evaluator.cpp.o.d"
  "CMakeFiles/pt_tuner.dir/features.cpp.o"
  "CMakeFiles/pt_tuner.dir/features.cpp.o.d"
  "CMakeFiles/pt_tuner.dir/input_aware.cpp.o"
  "CMakeFiles/pt_tuner.dir/input_aware.cpp.o.d"
  "CMakeFiles/pt_tuner.dir/iterative.cpp.o"
  "CMakeFiles/pt_tuner.dir/iterative.cpp.o.d"
  "CMakeFiles/pt_tuner.dir/model.cpp.o"
  "CMakeFiles/pt_tuner.dir/model.cpp.o.d"
  "CMakeFiles/pt_tuner.dir/param.cpp.o"
  "CMakeFiles/pt_tuner.dir/param.cpp.o.d"
  "CMakeFiles/pt_tuner.dir/persist.cpp.o"
  "CMakeFiles/pt_tuner.dir/persist.cpp.o.d"
  "CMakeFiles/pt_tuner.dir/sampler.cpp.o"
  "CMakeFiles/pt_tuner.dir/sampler.cpp.o.d"
  "CMakeFiles/pt_tuner.dir/search.cpp.o"
  "CMakeFiles/pt_tuner.dir/search.cpp.o.d"
  "CMakeFiles/pt_tuner.dir/validity.cpp.o"
  "CMakeFiles/pt_tuner.dir/validity.cpp.o.d"
  "libpt_tuner.a"
  "libpt_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
