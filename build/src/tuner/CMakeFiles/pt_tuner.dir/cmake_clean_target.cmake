file(REMOVE_RECURSE
  "libpt_tuner.a"
)
