
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/activation.cpp" "src/ml/CMakeFiles/pt_ml.dir/activation.cpp.o" "gcc" "src/ml/CMakeFiles/pt_ml.dir/activation.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/pt_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/pt_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/ensemble.cpp" "src/ml/CMakeFiles/pt_ml.dir/ensemble.cpp.o" "gcc" "src/ml/CMakeFiles/pt_ml.dir/ensemble.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/pt_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/pt_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/pt_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/pt_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/pt_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/pt_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/pt_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/pt_ml.dir/scaler.cpp.o.d"
  "/root/repo/src/ml/serialize.cpp" "src/ml/CMakeFiles/pt_ml.dir/serialize.cpp.o" "gcc" "src/ml/CMakeFiles/pt_ml.dir/serialize.cpp.o.d"
  "/root/repo/src/ml/trainer.cpp" "src/ml/CMakeFiles/pt_ml.dir/trainer.cpp.o" "gcc" "src/ml/CMakeFiles/pt_ml.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
