# Empty compiler generated dependencies file for pt_ml.
# This may be replaced when dependencies are built.
