file(REMOVE_RECURSE
  "libpt_ml.a"
)
