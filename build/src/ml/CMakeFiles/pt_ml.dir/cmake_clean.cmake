file(REMOVE_RECURSE
  "CMakeFiles/pt_ml.dir/activation.cpp.o"
  "CMakeFiles/pt_ml.dir/activation.cpp.o.d"
  "CMakeFiles/pt_ml.dir/dataset.cpp.o"
  "CMakeFiles/pt_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/pt_ml.dir/ensemble.cpp.o"
  "CMakeFiles/pt_ml.dir/ensemble.cpp.o.d"
  "CMakeFiles/pt_ml.dir/matrix.cpp.o"
  "CMakeFiles/pt_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/pt_ml.dir/metrics.cpp.o"
  "CMakeFiles/pt_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/pt_ml.dir/mlp.cpp.o"
  "CMakeFiles/pt_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/pt_ml.dir/scaler.cpp.o"
  "CMakeFiles/pt_ml.dir/scaler.cpp.o.d"
  "CMakeFiles/pt_ml.dir/serialize.cpp.o"
  "CMakeFiles/pt_ml.dir/serialize.cpp.o.d"
  "CMakeFiles/pt_ml.dir/trainer.cpp.o"
  "CMakeFiles/pt_ml.dir/trainer.cpp.o.d"
  "libpt_ml.a"
  "libpt_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
