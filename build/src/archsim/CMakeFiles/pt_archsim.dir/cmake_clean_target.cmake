file(REMOVE_RECURSE
  "libpt_archsim.a"
)
