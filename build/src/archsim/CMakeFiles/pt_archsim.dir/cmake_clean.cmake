file(REMOVE_RECURSE
  "CMakeFiles/pt_archsim.dir/devices.cpp.o"
  "CMakeFiles/pt_archsim.dir/devices.cpp.o.d"
  "CMakeFiles/pt_archsim.dir/timing_model.cpp.o"
  "CMakeFiles/pt_archsim.dir/timing_model.cpp.o.d"
  "libpt_archsim.a"
  "libpt_archsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pt_archsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
