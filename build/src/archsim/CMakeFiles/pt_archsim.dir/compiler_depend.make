# Empty compiler generated dependencies file for pt_archsim.
# This may be replaced when dependencies are built.
