file(REMOVE_RECURSE
  "CMakeFiles/custom_benchmark.dir/custom_benchmark.cpp.o"
  "CMakeFiles/custom_benchmark.dir/custom_benchmark.cpp.o.d"
  "custom_benchmark"
  "custom_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
