# Empty compiler generated dependencies file for custom_benchmark.
# This may be replaced when dependencies are built.
