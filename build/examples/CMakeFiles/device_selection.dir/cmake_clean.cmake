file(REMOVE_RECURSE
  "CMakeFiles/device_selection.dir/device_selection.cpp.o"
  "CMakeFiles/device_selection.dir/device_selection.cpp.o.d"
  "device_selection"
  "device_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
