# Empty compiler generated dependencies file for device_selection.
# This may be replaced when dependencies are built.
