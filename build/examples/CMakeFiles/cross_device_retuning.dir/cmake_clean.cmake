file(REMOVE_RECURSE
  "CMakeFiles/cross_device_retuning.dir/cross_device_retuning.cpp.o"
  "CMakeFiles/cross_device_retuning.dir/cross_device_retuning.cpp.o.d"
  "cross_device_retuning"
  "cross_device_retuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_device_retuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
