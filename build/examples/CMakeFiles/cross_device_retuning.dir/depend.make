# Empty dependencies file for cross_device_retuning.
# This may be replaced when dependencies are built.
