file(REMOVE_RECURSE
  "CMakeFiles/model_exploration.dir/model_exploration.cpp.o"
  "CMakeFiles/model_exploration.dir/model_exploration.cpp.o.d"
  "model_exploration"
  "model_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
