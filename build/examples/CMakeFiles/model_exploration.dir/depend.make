# Empty dependencies file for model_exploration.
# This may be replaced when dependencies are built.
