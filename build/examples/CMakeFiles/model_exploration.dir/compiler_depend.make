# Empty compiler generated dependencies file for model_exploration.
# This may be replaced when dependencies are built.
