# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;pt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ml "/root/repo/build/tests/test_ml")
set_tests_properties(test_ml PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;pt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_clsim "/root/repo/build/tests/test_clsim")
set_tests_properties(test_clsim PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;31;pt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_archsim "/root/repo/build/tests/test_archsim")
set_tests_properties(test_archsim PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;42;pt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tuner "/root/repo/build/tests/test_tuner")
set_tests_properties(test_tuner PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;46;pt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_benchmarks "/root/repo/build/tests/test_benchmarks")
set_tests_properties(test_benchmarks PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;58;pt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;64;pt_add_test;/root/repo/tests/CMakeLists.txt;0;")
