file(REMOVE_RECURSE
  "CMakeFiles/test_benchmarks.dir/benchmarks/test_cross_device.cpp.o"
  "CMakeFiles/test_benchmarks.dir/benchmarks/test_cross_device.cpp.o.d"
  "CMakeFiles/test_benchmarks.dir/benchmarks/test_functional.cpp.o"
  "CMakeFiles/test_benchmarks.dir/benchmarks/test_functional.cpp.o.d"
  "CMakeFiles/test_benchmarks.dir/benchmarks/test_profiles.cpp.o"
  "CMakeFiles/test_benchmarks.dir/benchmarks/test_profiles.cpp.o.d"
  "CMakeFiles/test_benchmarks.dir/benchmarks/test_spaces.cpp.o"
  "CMakeFiles/test_benchmarks.dir/benchmarks/test_spaces.cpp.o.d"
  "test_benchmarks"
  "test_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
