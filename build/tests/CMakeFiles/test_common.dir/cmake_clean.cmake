file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_cli.cpp.o"
  "CMakeFiles/test_common.dir/common/test_cli.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_log.cpp.o"
  "CMakeFiles/test_common.dir/common/test_log.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_table.cpp.o"
  "CMakeFiles/test_common.dir/common/test_table.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_thread_pool.cpp.o"
  "CMakeFiles/test_common.dir/common/test_thread_pool.cpp.o.d"
  "test_common"
  "test_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
