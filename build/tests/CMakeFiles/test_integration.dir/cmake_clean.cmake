file(REMOVE_RECURSE
  "CMakeFiles/test_integration.dir/integration/test_end_to_end.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_end_to_end.cpp.o.d"
  "CMakeFiles/test_integration.dir/integration/test_experiments.cpp.o"
  "CMakeFiles/test_integration.dir/integration/test_experiments.cpp.o.d"
  "test_integration"
  "test_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
