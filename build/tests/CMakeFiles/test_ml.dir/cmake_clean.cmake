file(REMOVE_RECURSE
  "CMakeFiles/test_ml.dir/ml/test_activation.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_activation.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_dataset.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_dataset.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_ensemble.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_ensemble.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_matrix.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_matrix.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_metrics.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_metrics.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_mlp.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_mlp.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_scaler.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_scaler.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_serialize.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_serialize.cpp.o.d"
  "CMakeFiles/test_ml.dir/ml/test_trainer.cpp.o"
  "CMakeFiles/test_ml.dir/ml/test_trainer.cpp.o.d"
  "test_ml"
  "test_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
