
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/test_activation.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_activation.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_activation.cpp.o.d"
  "/root/repo/tests/ml/test_dataset.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_dataset.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_dataset.cpp.o.d"
  "/root/repo/tests/ml/test_ensemble.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_ensemble.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_ensemble.cpp.o.d"
  "/root/repo/tests/ml/test_matrix.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_matrix.cpp.o.d"
  "/root/repo/tests/ml/test_metrics.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_metrics.cpp.o.d"
  "/root/repo/tests/ml/test_mlp.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_mlp.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_mlp.cpp.o.d"
  "/root/repo/tests/ml/test_scaler.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_scaler.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_scaler.cpp.o.d"
  "/root/repo/tests/ml/test_serialize.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_serialize.cpp.o.d"
  "/root/repo/tests/ml/test_trainer.cpp" "tests/CMakeFiles/test_ml.dir/ml/test_trainer.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/test_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/pt_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/CMakeFiles/pt_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/pt_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/archsim/CMakeFiles/pt_archsim.dir/DependInfo.cmake"
  "/root/repo/build/src/clsim/CMakeFiles/pt_clsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
