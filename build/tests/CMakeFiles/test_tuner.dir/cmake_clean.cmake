file(REMOVE_RECURSE
  "CMakeFiles/test_tuner.dir/tuner/test_autotuner.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_autotuner.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_evaluator.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_evaluator.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_input_aware.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_input_aware.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_iterative.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_iterative.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_model.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_model.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_param.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_param.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_persist.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_persist.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_sampler.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_sampler.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_search.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_search.cpp.o.d"
  "CMakeFiles/test_tuner.dir/tuner/test_validity.cpp.o"
  "CMakeFiles/test_tuner.dir/tuner/test_validity.cpp.o.d"
  "test_tuner"
  "test_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
