
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tuner/test_autotuner.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_autotuner.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_autotuner.cpp.o.d"
  "/root/repo/tests/tuner/test_evaluator.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_evaluator.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_evaluator.cpp.o.d"
  "/root/repo/tests/tuner/test_input_aware.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_input_aware.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_input_aware.cpp.o.d"
  "/root/repo/tests/tuner/test_iterative.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_iterative.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_iterative.cpp.o.d"
  "/root/repo/tests/tuner/test_model.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_model.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_model.cpp.o.d"
  "/root/repo/tests/tuner/test_param.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_param.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_param.cpp.o.d"
  "/root/repo/tests/tuner/test_persist.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_persist.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_persist.cpp.o.d"
  "/root/repo/tests/tuner/test_sampler.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_sampler.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_sampler.cpp.o.d"
  "/root/repo/tests/tuner/test_search.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_search.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_search.cpp.o.d"
  "/root/repo/tests/tuner/test_validity.cpp" "tests/CMakeFiles/test_tuner.dir/tuner/test_validity.cpp.o" "gcc" "tests/CMakeFiles/test_tuner.dir/tuner/test_validity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/pt_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/CMakeFiles/pt_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/pt_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/archsim/CMakeFiles/pt_archsim.dir/DependInfo.cmake"
  "/root/repo/build/src/clsim/CMakeFiles/pt_clsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
