file(REMOVE_RECURSE
  "CMakeFiles/test_clsim.dir/clsim/test_error.cpp.o"
  "CMakeFiles/test_clsim.dir/clsim/test_error.cpp.o.d"
  "CMakeFiles/test_clsim.dir/clsim/test_executor.cpp.o"
  "CMakeFiles/test_clsim.dir/clsim/test_executor.cpp.o.d"
  "CMakeFiles/test_clsim.dir/clsim/test_executor_stress.cpp.o"
  "CMakeFiles/test_clsim.dir/clsim/test_executor_stress.cpp.o.d"
  "CMakeFiles/test_clsim.dir/clsim/test_kernel.cpp.o"
  "CMakeFiles/test_clsim.dir/clsim/test_kernel.cpp.o.d"
  "CMakeFiles/test_clsim.dir/clsim/test_memory.cpp.o"
  "CMakeFiles/test_clsim.dir/clsim/test_memory.cpp.o.d"
  "CMakeFiles/test_clsim.dir/clsim/test_platform.cpp.o"
  "CMakeFiles/test_clsim.dir/clsim/test_platform.cpp.o.d"
  "CMakeFiles/test_clsim.dir/clsim/test_profile.cpp.o"
  "CMakeFiles/test_clsim.dir/clsim/test_profile.cpp.o.d"
  "CMakeFiles/test_clsim.dir/clsim/test_queue.cpp.o"
  "CMakeFiles/test_clsim.dir/clsim/test_queue.cpp.o.d"
  "CMakeFiles/test_clsim.dir/clsim/test_types.cpp.o"
  "CMakeFiles/test_clsim.dir/clsim/test_types.cpp.o.d"
  "test_clsim"
  "test_clsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
