# Empty compiler generated dependencies file for test_clsim.
# This may be replaced when dependencies are built.
