file(REMOVE_RECURSE
  "CMakeFiles/test_archsim.dir/archsim/test_devices.cpp.o"
  "CMakeFiles/test_archsim.dir/archsim/test_devices.cpp.o.d"
  "CMakeFiles/test_archsim.dir/archsim/test_timing_model.cpp.o"
  "CMakeFiles/test_archsim.dir/archsim/test_timing_model.cpp.o.d"
  "test_archsim"
  "test_archsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_archsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
