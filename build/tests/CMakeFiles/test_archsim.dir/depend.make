# Empty dependencies file for test_archsim.
# This may be replaced when dependencies are built.
