#pragma once

// Stereo benchmark (paper Table 1): dense disparity estimation between two
// 1024x1024 rectified images by window-based SAD block matching over a
// disparity range, producing a disparity map (distance to objects).
//
// Tuning parameters (Table 2): work-group shape, outputs per thread, the
// memory space of each input image (image memory and/or local tiling,
// independently for left and right), and three driver-pragma unroll factors:
// the disparity loop {1,2,4,8} and the window difference loops in x and y
// {1,2,4} each. Space size: 8^4 * 2^4 * 4*3*3 = 2,359,296 — the largest of
// the three benchmarks, and (via the right image's disparity-extended local
// tile) the one with the most invalid configurations on GPUs.

#include "benchmarks/benchmark.hpp"

namespace pt::benchkit {

class StereoBenchmark final : public TunableBenchmark {
 public:
  struct Geometry {
    std::size_t width = 1024;
    std::size_t height = 1024;
    int max_disparity = 64;
    int window_radius = 2;  // 5x5 SAD window
  };

  StereoBenchmark() : StereoBenchmark(Geometry{}) {}
  explicit StereoBenchmark(const Geometry& geometry);

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }
  [[nodiscard]] const tuner::ParamSpace& space() const noexcept override {
    return space_;
  }
  [[nodiscard]] const Geometry& geometry() const noexcept { return geometry_; }

  [[nodiscard]] clsim::BuildOptions build_options(
      const tuner::Configuration& config) const override;

  [[nodiscard]] LaunchPlan prepare(
      const clsim::Device& device,
      const tuner::Configuration& config) const override;

  [[nodiscard]] double verify(const clsim::Device& device,
                              const tuner::Configuration& config) const override;
  [[nodiscard]] CheckedVerification verify_checked(
      const clsim::Device& device,
      const tuner::Configuration& config) const override;

  /// Complete clstat constraint set: geometry limits, the two optional
  /// local tiles' combined budget, register pressure, and image support.
  [[nodiscard]] clsim::analyze::KernelConstraints constraints() const override;

  /// Scalar reference disparity map.
  [[nodiscard]] std::vector<float> reference() const;

  /// Deterministic left-image intensity and the planted disparity field.
  [[nodiscard]] static float left_value(std::size_t x, std::size_t y) noexcept;
  [[nodiscard]] static int true_disparity(std::size_t x, std::size_t y,
                                          int max_disparity) noexcept;

 private:
  void build_space();
  void build_program();
  double run_functional(const clsim::Device& device,
                        const tuner::Configuration& config,
                        clsim::CheckReport* report) const;

  std::string name_ = "stereo";
  Geometry geometry_;
  tuner::ParamSpace space_;

  clsim::Buffer left_;
  clsim::Buffer right_;
  clsim::Image2D left_image_;
  clsim::Image2D right_image_;
  clsim::Buffer output_;  // disparity per pixel (float)

  clsim::Program program_;
};

}  // namespace pt::benchkit
