#pragma once

// Raycasting benchmark (paper Table 1): volume visualization generating a
// 1024x1024 image from a 512^3 volume by orthographic front-to-back ray
// marching with a transfer-function lookup and early ray termination.
//
// Tuning parameters (Table 2): work-group shape, rays per thread, the
// memory space of the volume (buffer vs image), the placement of the
// transfer function (any combination of image / local / constant on top of
// a global fallback), interleaved ray assignment, and a *manual* unroll
// factor {1,2,4,8,16} for the traversal loop (macros, not driver pragmas —
// the paper credits this for raycasting's better model accuracy on AMD).
// Space size: 8^4 * 2^5 * 5 = 655,360.

#include "benchmarks/benchmark.hpp"

namespace pt::benchkit {

class RaycastingBenchmark final : public TunableBenchmark {
 public:
  struct Geometry {
    std::size_t volume = 512;   // cubic volume edge
    std::size_t width = 1024;   // output image
    std::size_t height = 1024;
    float termination_alpha = 0.98f;  // early-exit opacity threshold
  };

  RaycastingBenchmark() : RaycastingBenchmark(Geometry{}) {}
  explicit RaycastingBenchmark(const Geometry& geometry);

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }
  [[nodiscard]] const tuner::ParamSpace& space() const noexcept override {
    return space_;
  }
  [[nodiscard]] const Geometry& geometry() const noexcept { return geometry_; }

  [[nodiscard]] clsim::BuildOptions build_options(
      const tuner::Configuration& config) const override;

  [[nodiscard]] LaunchPlan prepare(
      const clsim::Device& device,
      const tuner::Configuration& config) const override;

  [[nodiscard]] double verify(const clsim::Device& device,
                              const tuner::Configuration& config) const override;
  [[nodiscard]] CheckedVerification verify_checked(
      const clsim::Device& device,
      const tuner::Configuration& config) const override;

  /// Complete clstat constraint set: geometry limits, the staged
  /// transfer-function's local/constant budgets (mutually exclusive paths),
  /// register pressure, and the derived image-usage condition.
  [[nodiscard]] clsim::analyze::KernelConstraints constraints() const override;

  /// Scalar reference rendering.
  [[nodiscard]] std::vector<float> reference() const;

  /// Deterministic volume density in [0, 1).
  [[nodiscard]] static float density(std::size_t x, std::size_t y,
                                     std::size_t z) noexcept;

  static constexpr std::size_t kTfEntries = 256;

  /// Volumes up to this edge length are materialized for functional runs;
  /// larger instances are timing-only (the paper-scale 512^3 volume would
  /// cost a gigabyte of host memory that timing experiments never touch).
  static constexpr std::size_t kMaxFunctionalVolume = 192;

  /// True when the volume data exists and verify()/functional queues work.
  [[nodiscard]] bool materialized() const noexcept { return materialized_; }

 private:
  void build_space();
  void build_program();
  double run_functional(const clsim::Device& device,
                        const tuner::Configuration& config,
                        clsim::CheckReport* report) const;

  std::string name_ = "raycasting";
  Geometry geometry_;
  bool materialized_;
  tuner::ParamSpace space_;

  clsim::Buffer volume_;    // volume^3 floats (densities)
  clsim::Image3D volume_image_;
  clsim::Buffer tf_;        // kTfEntries * 2 floats: (emission, alpha)
  clsim::Image2D tf_image_; // same data as a 256x1 2-channel image
  clsim::Buffer output_;    // width*height floats

  clsim::Program program_;
};

}  // namespace pt::benchkit
