#pragma once

// By-name construction of the paper's benchmarks, used by the bench
// harnesses and examples ("--benchmark=stereo").

#include <memory>
#include <string>
#include <vector>

#include "benchmarks/benchmark.hpp"

namespace pt::benchkit {

/// Names of the available benchmarks, in paper order.
[[nodiscard]] std::vector<std::string> benchmark_names();

/// Construct a paper-scale benchmark by name; throws std::invalid_argument
/// for unknown names.
[[nodiscard]] std::unique_ptr<TunableBenchmark> make_benchmark(
    const std::string& name);

/// Construct a small-geometry instance suitable for functional verification
/// (every work-item actually executes).
[[nodiscard]] std::unique_ptr<TunableBenchmark> make_benchmark_small(
    const std::string& name);

}  // namespace pt::benchkit
