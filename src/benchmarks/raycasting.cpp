#include "benchmarks/raycasting.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pt::benchkit {

namespace {

struct RayData {
  clsim::Buffer volume;
  clsim::Image3D volume_image;
  clsim::Buffer tf;
  clsim::Image2D tf_image;
  clsim::Buffer output;
  std::size_t n;  // volume edge
  std::size_t width;
  std::size_t height;
  float termination_alpha;
};

struct RayConfig {
  int wg_x, wg_y, ppt_x, ppt_y;
  bool image_data, image_tf, local_tf, const_tf, interleaved;
  int unroll;
};

RayConfig decode_options(const clsim::BuildOptions& o) {
  RayConfig c{};
  c.wg_x = o.require("WG_X");
  c.wg_y = o.require("WG_Y");
  c.ppt_x = o.require("PPT_X");
  c.ppt_y = o.require("PPT_Y");
  c.image_data = o.require("IMAGE_DATA") != 0;
  c.image_tf = o.require("IMAGE_TF") != 0;
  c.local_tf = o.require("LOCAL_TF") != 0;
  c.const_tf = o.require("CONST_TF") != 0;
  c.interleaved = o.require("INTERLEAVED") != 0;
  c.unroll = o.require("UNROLL");
  return c;
}

clsim::KernelProfile make_profile(const RayData& data, const RayConfig& c,
                                  std::uint64_t fingerprint) {
  using clsim::AccessPattern;
  using clsim::MemorySpace;

  clsim::KernelProfile p;
  p.kernel_name = "raycasting";
  p.config_fingerprint = fingerprint;

  const double rays = static_cast<double>(c.ppt_x) * c.ppt_y;
  // Early ray termination cuts the average traversal depth.
  const double avg_steps = 0.6 * static_cast<double>(data.n);
  const std::size_t group_items =
      static_cast<std::size_t>(c.wg_x) * static_cast<std::size_t>(c.wg_y);

  p.flops_per_item = rays * avg_steps * 10.0;
  p.int_ops_per_item = rays * avg_steps * 6.0;
  p.divergence = 0.25;  // data-dependent early exit

  // Traversal loop, manually unrolled with preprocessor macros.
  clsim::LoopInfo march;
  march.trip_count = rays * avg_steps;
  march.unroll_factor = static_cast<std::size_t>(c.unroll);
  march.via_driver_pragma = false;
  p.loops.push_back(march);

  // Volume samples: one per step.
  clsim::MemoryStream vol;
  vol.space = c.image_data ? MemorySpace::kImage : MemorySpace::kGlobal;
  vol.pattern = c.image_data
                    ? AccessPattern::kTiled2D
                    : (c.interleaved ? AccessPattern::kCoalesced
                                     : AccessPattern::kStrided);
  vol.stride_bytes = static_cast<std::size_t>(c.ppt_x) * 4;
  vol.accesses_per_item = rays * avg_steps;
  vol.bytes_per_access = 4;
  // Several rays pass near each voxel when the image oversamples the volume.
  vol.reuse_factor = std::max(
      1.0, static_cast<double>(data.width) / static_cast<double>(data.n) *
               static_cast<double>(data.height) / static_cast<double>(data.n));
  p.streams.push_back(vol);

  // Transfer-function lookups: one per step, data-dependent index. The
  // 2 KiB table is cache-resident on every modern device; represent the
  // hit rate by shrinking the off-chip traffic for cached paths.
  clsim::MemoryStream tf;
  tf.accesses_per_item = rays * avg_steps;
  tf.bytes_per_access = 8;  // (emission, alpha) pair
  tf.pattern = AccessPattern::kRandom;
  if (c.local_tf) {
    tf.space = MemorySpace::kLocal;
    // Cooperative fill from the next level down (image/constant/global).
    clsim::MemoryStream fill;
    fill.space = c.image_tf ? MemorySpace::kImage
                            : (c.const_tf ? MemorySpace::kConstant
                                          : MemorySpace::kGlobal);
    fill.pattern = AccessPattern::kCoalesced;
    fill.accesses_per_item =
        static_cast<double>(RaycastingBenchmark::kTfEntries) /
        static_cast<double>(group_items);
    fill.bytes_per_access = 8;
    p.streams.push_back(fill);
    p.local_mem_bytes_per_group = RaycastingBenchmark::kTfEntries * 8;
    p.barriers_per_item = 1.0;
  } else if (c.const_tf) {
    tf.space = MemorySpace::kConstant;  // divergent constant reads serialize
    p.constant_mem_bytes = RaycastingBenchmark::kTfEntries * 8;
  } else if (c.image_tf) {
    tf.space = MemorySpace::kImage;
    tf.accesses_per_item *= 0.1;  // texture cache absorbs the hot table
  } else {
    tf.space = MemorySpace::kGlobal;
    tf.accesses_per_item *= 0.1;  // L1/L2-resident
  }
  p.streams.push_back(tf);

  clsim::MemoryStream stores;
  stores.space = MemorySpace::kGlobal;
  stores.pattern = (c.interleaved || c.ppt_x == 1)
                       ? AccessPattern::kCoalesced
                       : AccessPattern::kStrided;
  stores.stride_bytes = static_cast<std::size_t>(c.ppt_x) * 4;
  stores.accesses_per_item = rays;
  stores.bytes_per_access = 4;
  stores.is_write = true;
  p.streams.push_back(stores);

  p.registers_per_item = static_cast<std::size_t>(
      24.0 + 2.0 * c.unroll + std::min(48.0, rays * 2.0) +
      (c.local_tf ? 4.0 : 0.0));
  p.compile_complexity =
      1500.0 + 80.0 * c.unroll + (c.local_tf ? 300.0 : 0.0) +
      (c.image_data ? 200.0 : 0.0) + (c.image_tf ? 150.0 : 0.0);
  return p;
}

clsim::KernelBody make_body(RayData data, RayConfig c) {
  return [data, c](clsim::WorkItemCtx& ctx) -> clsim::WorkItemTask {
    const long n = static_cast<long>(data.n);
    const long width = static_cast<long>(data.width);
    const long height = static_cast<long>(data.height);
    const auto vol = ctx.view<const float>(data.volume, "volume");
    const auto tf_buf = ctx.view<const float>(data.tf, "tf");
    auto out = ctx.view<float>(data.output, "output");

    // Optionally stage the transfer function in local memory.
    clsim::CheckedSpan<float> tf_local;
    if (c.local_tf) {
      const long group_items = static_cast<long>(c.wg_x) * c.wg_y;
      const long lid = static_cast<long>(ctx.local_id(1)) * c.wg_x +
                       static_cast<long>(ctx.local_id(0));
      tf_local =
          ctx.local_view<float>(RaycastingBenchmark::kTfEntries * 2, "tf_local");
      for (long i = lid;
           i < static_cast<long>(RaycastingBenchmark::kTfEntries);
           i += group_items) {
        // Pull through the configured source space (functionally identical).
        if (c.image_tf) {
          tf_local[static_cast<std::size_t>(2 * i)] =
              data.tf_image.sample(i, 0, 0);
          tf_local[static_cast<std::size_t>(2 * i + 1)] =
              data.tf_image.sample(i, 0, 1);
        } else {
          tf_local[static_cast<std::size_t>(2 * i)] =
              tf_buf[static_cast<std::size_t>(2 * i)];
          tf_local[static_cast<std::size_t>(2 * i + 1)] =
              tf_buf[static_cast<std::size_t>(2 * i + 1)];
        }
      }
      co_await ctx.barrier();
    }

    auto sample_volume = [&](long vx, long vy, long vz) -> float {
      if (c.image_data) return data.volume_image.sample(vx, vy, vz);
      const long cx = std::clamp<long>(vx, 0, n - 1);
      const long cy = std::clamp<long>(vy, 0, n - 1);
      const long cz = std::clamp<long>(vz, 0, n - 1);
      return vol[static_cast<std::size_t>((cz * n + cy) * n + cx)];
    };
    auto lookup_tf = [&](int idx, float& emission, float& alpha) {
      if (c.local_tf) {
        emission = tf_local[static_cast<std::size_t>(2 * idx)];
        alpha = tf_local[static_cast<std::size_t>(2 * idx + 1)];
      } else if (c.image_tf) {
        emission = data.tf_image.sample(idx, 0, 0);
        alpha = data.tf_image.sample(idx, 0, 1);
      } else {
        // Constant and plain-global lookups read the same buffer.
        emission = tf_buf[static_cast<std::size_t>(2 * idx)];
        alpha = tf_buf[static_cast<std::size_t>(2 * idx + 1)];
      }
    };

    const long lx = static_cast<long>(ctx.local_id(0));
    const long ly = static_cast<long>(ctx.local_id(1));
    const long group_x = static_cast<long>(ctx.group_id(0));
    const long group_y = static_cast<long>(ctx.group_id(1));
    const long tile_x = group_x * c.wg_x * c.ppt_x;
    const long tile_y = group_y * c.wg_y * c.ppt_y;

    for (int ry = 0; ry < c.ppt_y; ++ry) {
      for (int rx = 0; rx < c.ppt_x; ++rx) {
        const long px = c.interleaved
                            ? tile_x + static_cast<long>(rx) * c.wg_x + lx
                            : (group_x * c.wg_x + lx) * c.ppt_x + rx;
        const long py = c.interleaved
                            ? tile_y + static_cast<long>(ry) * c.wg_y + ly
                            : (group_y * c.wg_y + ly) * c.ppt_y + ry;
        if (px >= width || py >= height) continue;

        const long vx = px * n / width;
        const long vy = py * n / height;
        float color = 0.0f;
        float acc_alpha = 0.0f;
        for (long z = 0; z < n; ++z) {
          const float dens = sample_volume(vx, vy, z);
          const int idx = std::clamp<int>(
              static_cast<int>(dens *
                               static_cast<float>(
                                   RaycastingBenchmark::kTfEntries)),
              0, static_cast<int>(RaycastingBenchmark::kTfEntries) - 1);
          float emission = 0.0f;
          float alpha = 0.0f;
          lookup_tf(idx, emission, alpha);
          color += (1.0f - acc_alpha) * alpha * emission;
          acc_alpha += (1.0f - acc_alpha) * alpha;
          if (acc_alpha > data.termination_alpha) break;
        }
        out[static_cast<std::size_t>(py * width + px)] = color;
      }
    }
    co_return;
  };
}

}  // namespace

float RaycastingBenchmark::density(std::size_t x, std::size_t y,
                                   std::size_t z) noexcept {
  const double fx = static_cast<double>(x);
  const double fy = static_cast<double>(y);
  const double fz = static_cast<double>(z);
  const double v = 0.5 + 0.2 * std::sin(0.21 * fx + 0.1 * fz) +
                   0.2 * std::cos(0.17 * fy) +
                   0.1 * std::sin(0.05 * (fx + fy + fz));
  return static_cast<float>(std::clamp(v, 0.0, 0.999));
}

RaycastingBenchmark::RaycastingBenchmark(const Geometry& geometry)
    : geometry_(geometry),
      materialized_(geometry.volume <= kMaxFunctionalVolume),
      volume_(materialized_ ? geometry.volume * geometry.volume *
                                  geometry.volume * sizeof(float)
                            : sizeof(float)),
      volume_image_(materialized_ ? geometry.volume : 1,
                    materialized_ ? geometry.volume : 1,
                    materialized_ ? geometry.volume : 1),
      tf_(kTfEntries * 2 * sizeof(float)),
      tf_image_(kTfEntries, 1, 2),
      output_(geometry.width * geometry.height * sizeof(float)),
      program_("raycasting") {
  if (materialized_) {
    const std::size_t n = geometry_.volume;
    auto vol = volume_.as<float>();
    auto img = volume_image_.data();
    for (std::size_t z = 0; z < n; ++z)
      for (std::size_t y = 0; y < n; ++y)
        for (std::size_t x = 0; x < n; ++x) {
          const float v = density(x, y, z);
          vol[(z * n + y) * n + x] = v;
          img[(z * n + y) * n + x] = v;
        }
  }

  auto tf = tf_.as<float>();
  auto tfi = tf_image_.data();
  for (std::size_t i = 0; i < kTfEntries; ++i) {
    const double t = static_cast<double>(i) / (kTfEntries - 1);
    // Emission ramps up with density; opacity is low for "air", higher for
    // "tissue" — enough alpha variation to exercise early termination.
    const float emission = static_cast<float>(t * t);
    const float alpha = static_cast<float>(t > 0.55 ? 0.08 * t : 0.002);
    tf[2 * i] = emission;
    tf[2 * i + 1] = alpha;
    tfi[2 * i] = emission;
    tfi[2 * i + 1] = alpha;
  }

  build_space();
  build_program();
}

void RaycastingBenchmark::build_space() {
  const std::vector<int> pow2 = {1, 2, 4, 8, 16, 32, 64, 128};
  const std::vector<int> onoff = {0, 1};
  space_.add("WG_X", pow2);
  space_.add("WG_Y", pow2);
  space_.add("PPT_X", pow2);
  space_.add("PPT_Y", pow2);
  space_.add("IMAGE_DATA", onoff);
  space_.add("IMAGE_TF", onoff);
  space_.add("LOCAL_TF", onoff);
  space_.add("CONST_TF", onoff);
  space_.add("INTERLEAVED", onoff);
  space_.add("UNROLL", {1, 2, 4, 8, 16});
}

void RaycastingBenchmark::build_program() {
  RayData data{volume_,  volume_image_,   tf_,
               tf_image_, output_,        geometry_.volume,
               geometry_.width, geometry_.height, geometry_.termination_alpha};
  const bool materialized = materialized_;
  program_.add_kernel(
      "raycasting",
      [data, materialized](const clsim::DeviceInfo& /*device*/,
             const clsim::BuildOptions& options) -> clsim::CompiledKernel {
        const RayConfig c = decode_options(options);
        if (static_cast<std::size_t>(c.ppt_x) > data.width ||
            static_cast<std::size_t>(c.ppt_y) > data.height)
          throw clsim::ClException(clsim::Status::kBuildProgramFailure,
                                   "rays per thread exceed the image extent");
        const std::uint64_t fp = clsim::fingerprint_values(
            {c.wg_x, c.wg_y, c.ppt_x, c.ppt_y, c.image_data, c.image_tf,
             c.local_tf, c.const_tf, c.interleaved, c.unroll},
            clsim::fnv1a("raycasting", 10));
        clsim::CompiledKernel compiled;
        compiled.name = "raycasting";
        compiled.profile = make_profile(data, c, fp);
        if (materialized) {
          compiled.body = make_body(data, c);
        } else {
          compiled.body = [](clsim::WorkItemCtx&) -> clsim::WorkItemTask {
            throw clsim::ClException(
                clsim::Status::kInvalidOperation,
                "raycasting volume not materialized (timing-only instance; "
                "construct with Geometry::volume <= kMaxFunctionalVolume "
                "for functional runs)");
            co_return;  // unreachable; makes this lambda a coroutine
          };
        }
        return compiled;
      });
}

clsim::analyze::KernelConstraints RaycastingBenchmark::constraints() const {
  namespace az = clsim::analyze;
  using Cat = az::ConstraintCategory;
  using Rel = az::Relation;
  using DL = az::DeviceLimit;
  const auto lim = az::AffineExpr::device_limit;
  const auto c = az::cexpr;
  const az::AffineExpr none;

  az::KernelConstraints kc;
  kc.kernel_name = name_;
  kc.domain = make_param_domain(space_);
  const az::ParamDomain& dom = kc.domain;

  const az::AffineExpr wg_x = az::param_expr(dom, "WG_X");
  const az::AffineExpr wg_y = az::param_expr(dom, "WG_Y");
  const az::AffineExpr ppt_x = az::param_expr(dom, "PPT_X");
  const az::AffineExpr ppt_y = az::param_expr(dom, "PPT_Y");
  const az::AffineExpr image_data = az::param_expr(dom, "IMAGE_DATA");
  const az::AffineExpr image_tf = az::param_expr(dom, "IMAGE_TF");
  const az::AffineExpr local_tf = az::param_expr(dom, "LOCAL_TF");
  const az::AffineExpr const_tf = az::param_expr(dom, "CONST_TF");
  const az::AffineExpr unroll = az::param_expr(dom, "UNROLL");

  const double tf_bytes = static_cast<double>(kTfEntries) * 8.0;

  kc.constraints.push_back({"wg_x_item_limit", Cat::kWorkGroupGeometry, wg_x,
                            Rel::kLessEqual, lim(DL::kMaxWorkItem0), none});
  kc.constraints.push_back({"wg_y_item_limit", Cat::kWorkGroupGeometry, wg_y,
                            Rel::kLessEqual, lim(DL::kMaxWorkItem1), none});
  kc.constraints.push_back({"group_size_limit", Cat::kWorkGroupGeometry,
                            wg_x * wg_y, Rel::kLessEqual,
                            lim(DL::kMaxWorkGroupSize), none});

  kc.constraints.push_back({"ppt_x_within_width", Cat::kBuildPrecondition,
                            ppt_x, Rel::kLessEqual,
                            c(static_cast<double>(geometry_.width)), none});
  kc.constraints.push_back({"ppt_y_within_height", Cat::kBuildPrecondition,
                            ppt_y, Rel::kLessEqual,
                            c(static_cast<double>(geometry_.height)), none});

  // Staged transfer function: local memory when LOCAL_TF, constant memory
  // only on the CONST_TF-without-LOCAL_TF path (the profile's else-if).
  kc.constraints.push_back({"tf_local_budget", Cat::kLocalMemory,
                            c(tf_bytes), Rel::kLessEqual,
                            lim(DL::kLocalMemBytes), local_tf});
  kc.constraints.push_back({"tf_constant_budget", Cat::kConstantMemory,
                            c(tf_bytes), Rel::kLessEqual,
                            lim(DL::kConstantMemBytes),
                            const_tf * (c(1.0) - local_tf)});

  // Mirrors make_profile's registers_per_item (size_t truncation included).
  const az::AffineExpr regs_per_item =
      floor(c(24.0) + c(2.0) * unroll +
            min(c(48.0), ppt_x * ppt_y * c(2.0)) +
            select(local_tf, c(4.0), c(0.0)));
  kc.constraints.push_back({"register_file_budget", Cat::kRegisters,
                            regs_per_item * (wg_x * wg_y), Rel::kLessEqual,
                            lim(DL::kRegistersPerCu), none});

  // Image usage follows the profile's stream selection: the volume when
  // IMAGE_DATA, and the transfer function when IMAGE_TF feeds either the
  // local-tile fill or the direct path not shadowed by CONST_TF.
  const az::AffineExpr uses_image =
      max(image_data, image_tf * max(local_tf, c(1.0) - const_tf));
  kc.constraints.push_back({"image_support", Cat::kImageSupport, c(1.0),
                            Rel::kLessEqual, lim(DL::kImagesSupported),
                            uses_image});

  // The tf-staging barrier executes on every LOCAL_TF launch, outside all
  // divergent control flow.
  kc.constraints.push_back({"tf_fill_barrier_uniform",
                            Cat::kBarrierUniformity, c(0.0), Rel::kLessEqual,
                            c(0.0), local_tf});

  kc.complete = true;
  return kc;
}

clsim::BuildOptions RaycastingBenchmark::build_options(
    const tuner::Configuration& config) const {
  clsim::BuildOptions options;
  for (std::size_t d = 0; d < space_.dimension_count(); ++d)
    options.define(space_.parameter(d).name, config.values[d]);
  return options;
}

LaunchPlan RaycastingBenchmark::prepare(
    const clsim::Device& device, const tuner::Configuration& config) const {
  const clsim::BuildOptions options = build_options(config);
  auto [kernel, build_ms] =
      program_.build_kernel(device, "raycasting", options);
  const auto ppt_x = static_cast<std::size_t>(space_.value_of(config, "PPT_X"));
  const auto ppt_y = static_cast<std::size_t>(space_.value_of(config, "PPT_Y"));
  const auto wg_x = static_cast<std::size_t>(space_.value_of(config, "WG_X"));
  const auto wg_y = static_cast<std::size_t>(space_.value_of(config, "WG_Y"));
  auto round_up = [](std::size_t need, std::size_t wg) {
    return (need + wg - 1) / wg * wg;
  };
  const std::size_t need_x = (geometry_.width + ppt_x - 1) / ppt_x;
  const std::size_t need_y = (geometry_.height + ppt_y - 1) / ppt_y;
  return LaunchPlan{std::move(kernel),
                    clsim::NDRange(round_up(need_x, wg_x),
                                   round_up(need_y, wg_y)),
                    clsim::NDRange(wg_x, wg_y), build_ms};
}

double RaycastingBenchmark::run_functional(const clsim::Device& device,
                                           const tuner::Configuration& config,
                                           clsim::CheckReport* report) const {
  if (!materialized_)
    throw std::logic_error(
        "RaycastingBenchmark::verify: timing-only instance (volume > "
        "kMaxFunctionalVolume)");
  LaunchPlan plan = prepare(device, config);
  auto out = output_.as<float>();
  std::fill(out.begin(), out.end(), -1.0f);

  clsim::CommandQueue::Options options{clsim::ExecMode::kFunctional, nullptr};
  if (report != nullptr) options.check = clsim::CheckMode::kOn;
  clsim::CommandQueue queue(device, options);
  queue.enqueue_nd_range(plan.kernel, plan.global, plan.local);
  if (report != nullptr) *report = queue.check_report();

  const auto expected = reference();
  double max_err = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i)
    max_err = std::max(max_err,
                       static_cast<double>(std::abs(out[i] - expected[i])));
  return max_err;
}

double RaycastingBenchmark::verify(const clsim::Device& device,
                                   const tuner::Configuration& config) const {
  return run_functional(device, config, nullptr);
}

CheckedVerification RaycastingBenchmark::verify_checked(
    const clsim::Device& device, const tuner::Configuration& config) const {
  CheckedVerification result;
  result.max_abs_error = run_functional(device, config, &result.report);
  return result;
}

std::vector<float> RaycastingBenchmark::reference() const {
  const long n = static_cast<long>(geometry_.volume);
  const long width = static_cast<long>(geometry_.width);
  const long height = static_cast<long>(geometry_.height);
  const auto vol = volume_.as<const float>();
  const auto tf = tf_.as<const float>();
  std::vector<float> out(static_cast<std::size_t>(width * height));
  for (long py = 0; py < height; ++py) {
    for (long px = 0; px < width; ++px) {
      const long vx = px * n / width;
      const long vy = py * n / height;
      float color = 0.0f;
      float acc_alpha = 0.0f;
      for (long z = 0; z < n; ++z) {
        const float dens = vol[static_cast<std::size_t>((z * n + vy) * n + vx)];
        const int idx = std::clamp<int>(
            static_cast<int>(dens * static_cast<float>(kTfEntries)), 0,
            static_cast<int>(kTfEntries) - 1);
        const float emission = tf[static_cast<std::size_t>(2 * idx)];
        const float alpha = tf[static_cast<std::size_t>(2 * idx + 1)];
        color += (1.0f - acc_alpha) * alpha * emission;
        acc_alpha += (1.0f - acc_alpha) * alpha;
        if (acc_alpha > geometry_.termination_alpha) break;
      }
      out[static_cast<std::size_t>(py * width + px)] = color;
    }
  }
  return out;
}

}  // namespace pt::benchkit
