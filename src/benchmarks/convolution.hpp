#pragma once

// Convolution benchmark (paper Table 1): 2D convolution of a 2048x2048
// image with a 5x5 box filter — a stencil computation. Nine tuning
// parameters (Table 2): work-group shape, outputs per thread, and five
// boolean optimizations (image memory, local-memory tiling, input padding,
// interleaved output assignment, driver-pragma loop unrolling). The space
// has 8*8*8*8 * 2^5 = 131,072 configurations.
//
// All configurations are functionally equivalent: boundary handling is
// clamp-to-edge, implemented either by explicit clamping, by a pre-padded
// input whose apron replicates the edge, or by the image sampler.

#include <cstddef>

#include "benchmarks/benchmark.hpp"

namespace pt::benchkit {

class ConvolutionBenchmark final : public TunableBenchmark {
 public:
  struct Geometry {
    std::size_t width = 2048;
    std::size_t height = 2048;
    int radius = 2;  // 5x5 box filter
  };

  /// Full paper-scale instance.
  ConvolutionBenchmark() : ConvolutionBenchmark(Geometry{}) {}
  /// Custom instance (tests use small images so functional runs are cheap).
  explicit ConvolutionBenchmark(const Geometry& geometry);

  [[nodiscard]] const std::string& name() const noexcept override {
    return name_;
  }
  [[nodiscard]] const tuner::ParamSpace& space() const noexcept override {
    return space_;
  }
  [[nodiscard]] const Geometry& geometry() const noexcept { return geometry_; }

  [[nodiscard]] clsim::BuildOptions build_options(
      const tuner::Configuration& config) const override;

  [[nodiscard]] LaunchPlan prepare(
      const clsim::Device& device,
      const tuner::Configuration& config) const override;

  [[nodiscard]] double verify(const clsim::Device& device,
                              const tuner::Configuration& config) const override;
  [[nodiscard]] CheckedVerification verify_checked(
      const clsim::Device& device,
      const tuner::Configuration& config) const override;

  /// Complete clstat constraint set: work-group geometry, local-tile and
  /// constant budgets, register pressure, image support, and the factory's
  /// ppt-vs-extent build precondition.
  [[nodiscard]] clsim::analyze::KernelConstraints constraints() const override;

  /// Scalar reference result (clamp-to-edge box filter of the input).
  [[nodiscard]] std::vector<float> reference() const;

  /// The deterministic input signal (exposed for tests).
  [[nodiscard]] static float input_value(std::size_t x, std::size_t y) noexcept;

 private:
  void build_space();
  void build_program();
  double run_functional(const clsim::Device& device,
                        const tuner::Configuration& config,
                        clsim::CheckReport* report) const;

  std::string name_ = "convolution";
  Geometry geometry_;
  tuner::ParamSpace space_;

  // Shared data objects (handle semantics; kernels capture copies).
  clsim::Buffer input_;    // width*height floats
  clsim::Buffer padded_;   // (width+2R)*(height+2R), apron = clamped edges
  clsim::Image2D image_;   // same pixels as input_
  clsim::Buffer filter_;   // (2R+1)^2 coefficients (box)
  clsim::Buffer output_;   // width*height floats

  clsim::Program program_;
};

}  // namespace pt::benchkit
