#include "benchmarks/registry.hpp"

#include <stdexcept>

#include "benchmarks/convolution.hpp"
#include "benchmarks/raycasting.hpp"
#include "benchmarks/stereo.hpp"

namespace pt::benchkit {

std::vector<std::string> benchmark_names() {
  return {"convolution", "raycasting", "stereo"};
}

std::unique_ptr<TunableBenchmark> make_benchmark(const std::string& name) {
  if (name == "convolution")
    return std::make_unique<ConvolutionBenchmark>();
  if (name == "raycasting") return std::make_unique<RaycastingBenchmark>();
  if (name == "stereo") return std::make_unique<StereoBenchmark>();
  throw std::invalid_argument("unknown benchmark: " + name);
}

std::unique_ptr<TunableBenchmark> make_benchmark_small(
    const std::string& name) {
  if (name == "convolution") {
    ConvolutionBenchmark::Geometry g;
    g.width = 48;
    g.height = 32;
    return std::make_unique<ConvolutionBenchmark>(g);
  }
  if (name == "raycasting") {
    RaycastingBenchmark::Geometry g;
    g.volume = 16;
    g.width = 24;
    g.height = 16;
    return std::make_unique<RaycastingBenchmark>(g);
  }
  if (name == "stereo") {
    StereoBenchmark::Geometry g;
    g.width = 32;
    g.height = 24;
    g.max_disparity = 8;
    return std::make_unique<StereoBenchmark>(g);
  }
  throw std::invalid_argument("unknown benchmark: " + name);
}

}  // namespace pt::benchkit
