#include "benchmarks/convolution.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace pt::benchkit {

namespace {

/// Everything a convolution kernel instance needs, captured by value
/// (memory objects are shared handles, so copies are cheap).
struct ConvData {
  clsim::Buffer input;
  clsim::Buffer padded;
  clsim::Image2D image;
  clsim::Buffer filter;
  clsim::Buffer output;
  std::size_t width;
  std::size_t height;
  int radius;
};

/// Fully decoded tuning configuration.
struct ConvConfig {
  int wg_x, wg_y, ppt_x, ppt_y;
  bool use_image, use_local, pad, interleaved, unroll;
};

ConvConfig decode_options(const clsim::BuildOptions& o) {
  ConvConfig c{};
  c.wg_x = o.require("WG_X");
  c.wg_y = o.require("WG_Y");
  c.ppt_x = o.require("PPT_X");
  c.ppt_y = o.require("PPT_Y");
  c.use_image = o.require("USE_IMAGE") != 0;
  c.use_local = o.require("USE_LOCAL") != 0;
  c.pad = o.require("PAD") != 0;
  c.interleaved = o.require("INTERLEAVED") != 0;
  c.unroll = o.require("UNROLL") != 0;
  return c;
}

std::size_t tile_width(const ConvConfig& c, int radius) {
  return static_cast<std::size_t>(c.wg_x * c.ppt_x + 2 * radius);
}
std::size_t tile_height(const ConvConfig& c, int radius) {
  return static_cast<std::size_t>(c.wg_y * c.ppt_y + 2 * radius);
}

/// Static profile consumed by the timing model (DESIGN.md, convolution).
clsim::KernelProfile make_profile(const ConvData& data, const ConvConfig& c,
                                  std::uint64_t fingerprint) {
  using clsim::AccessPattern;
  using clsim::MemorySpace;

  clsim::KernelProfile p;
  p.kernel_name = "convolution";
  p.config_fingerprint = fingerprint;

  const int d = 2 * data.radius + 1;
  const double taps = static_cast<double>(d * d);
  const double outputs = static_cast<double>(c.ppt_x) * c.ppt_y;
  const std::size_t group_items =
      static_cast<std::size_t>(c.wg_x) * static_cast<std::size_t>(c.wg_y);

  // Arithmetic: one MAD per tap per output, plus addressing; explicit
  // boundary clamping (no padding, no image sampler) costs extra integer
  // ops and divergent branches.
  p.flops_per_item = outputs * taps * 2.0;
  double addr_ops = outputs * taps * 1.5;
  if (!c.pad && !c.use_image && !c.use_local) addr_ops += outputs * taps * 2.0;
  p.int_ops_per_item = addr_ops;
  p.divergence = (c.pad || c.use_image) ? 0.02 : 0.08;

  // The filter loop: d*d trips per output, unrolled via a driver pragma.
  clsim::LoopInfo filter_loop;
  filter_loop.trip_count = taps * outputs;
  filter_loop.unroll_factor = c.unroll ? 8 : 1;
  filter_loop.via_driver_pragma = true;
  p.loops.push_back(filter_loop);

  const std::size_t stride_bytes = static_cast<std::size_t>(c.ppt_x) * 4;

  if (c.use_local) {
    const double tile_elems =
        static_cast<double>(tile_width(c, data.radius)) *
        static_cast<double>(tile_height(c, data.radius));
    // Cooperative tile fill: each element loaded once per group.
    clsim::MemoryStream fill;
    fill.space = c.use_image ? MemorySpace::kImage : MemorySpace::kGlobal;
    fill.pattern = AccessPattern::kCoalesced;
    fill.accesses_per_item = tile_elems / static_cast<double>(group_items);
    fill.bytes_per_access = 4;
    fill.reuse_factor = 1.0;
    p.streams.push_back(fill);
    // Compute reads come from local memory.
    clsim::MemoryStream local_reads;
    local_reads.space = MemorySpace::kLocal;
    local_reads.pattern = c.interleaved ? AccessPattern::kCoalesced
                                        : AccessPattern::kStrided;
    local_reads.stride_bytes = stride_bytes;
    local_reads.accesses_per_item = outputs * taps;
    local_reads.bytes_per_access = 4;
    p.streams.push_back(local_reads);
    p.local_mem_bytes_per_group =
        tile_width(c, data.radius) * tile_height(c, data.radius) * 4;
    p.barriers_per_item = 1.0;
  } else {
    clsim::MemoryStream reads;
    reads.space = c.use_image ? MemorySpace::kImage : MemorySpace::kGlobal;
    reads.pattern = c.interleaved ? AccessPattern::kTiled2D
                                  : AccessPattern::kStrided;
    reads.stride_bytes = stride_bytes;
    reads.accesses_per_item = outputs * taps;
    reads.bytes_per_access = 4;
    reads.reuse_factor = taps;  // stencil overlap between neighbours
    p.streams.push_back(reads);
  }

  // Filter coefficients: broadcast constant reads.
  clsim::MemoryStream coeff;
  coeff.space = MemorySpace::kConstant;
  coeff.pattern = AccessPattern::kBroadcast;
  coeff.accesses_per_item = outputs * taps;
  coeff.bytes_per_access = 4;
  coeff.reuse_factor = static_cast<double>(group_items);
  p.streams.push_back(coeff);

  // Output stores.
  clsim::MemoryStream stores;
  stores.space = MemorySpace::kGlobal;
  stores.pattern = (c.interleaved || c.ppt_x == 1)
                       ? AccessPattern::kCoalesced
                       : AccessPattern::kStrided;
  stores.stride_bytes = stride_bytes;
  stores.accesses_per_item = outputs;
  stores.bytes_per_access = 4;
  stores.is_write = true;
  p.streams.push_back(stores);

  p.constant_mem_bytes = static_cast<std::size_t>(taps) * 4;
  p.registers_per_item = static_cast<std::size_t>(
      16.0 + std::min(96.0, outputs * (c.use_local ? 0.5 : 1.0)) +
      (c.unroll ? 6.0 : 0.0) + (c.use_local ? 4.0 : 0.0));
  p.compile_complexity = 1200.0 + (c.unroll ? taps * 60.0 : 0.0) +
                         (c.use_local ? 400.0 : 0.0) +
                         (c.use_image ? 200.0 : 0.0);
  return p;
}

/// Functional kernel body: every variant computes the identical
/// clamp-to-edge box filter.
clsim::KernelBody make_body(ConvData data, ConvConfig c) {
  return [data, c](clsim::WorkItemCtx& ctx) -> clsim::WorkItemTask {
    const long width = static_cast<long>(data.width);
    const long height = static_cast<long>(data.height);
    const int radius = data.radius;
    const int diameter = 2 * radius + 1;
    const long pad_stride = width + 2 * radius;

    const auto in = ctx.view<const float>(data.input, "input");
    const auto padded = ctx.view<const float>(data.padded, "padded");
    const auto coeffs = ctx.view<const float>(data.filter, "filter");
    auto out = ctx.view<float>(data.output, "output");

    // Clamp-to-edge read through whichever path the configuration picked.
    auto load = [&](long x, long y) -> float {
      if (c.use_image) return data.image.sample(x, y);
      if (c.pad) {
        // The apron replicates the clamped edge, so clamping to the padded
        // extent preserves clamp-to-edge semantics; without it, groups past
        // the image (rounded-up ND-range) read beyond the buffer while
        // filling their local tile.
        const long px = std::clamp<long>(x, -radius, width - 1 + radius);
        const long py = std::clamp<long>(y, -radius, height - 1 + radius);
        return padded[static_cast<std::size_t>((py + radius) * pad_stride +
                                               (px + radius))];
      }
      const long cx = std::clamp<long>(x, 0, width - 1);
      const long cy = std::clamp<long>(y, 0, height - 1);
      return in[static_cast<std::size_t>(cy * width + cx)];
    };

    const long lx = static_cast<long>(ctx.local_id(0));
    const long ly = static_cast<long>(ctx.local_id(1));
    const long group_x = static_cast<long>(ctx.group_id(0));
    const long group_y = static_cast<long>(ctx.group_id(1));
    const long group_items = static_cast<long>(c.wg_x) * c.wg_y;
    const long lid = ly * c.wg_x + lx;

    // The output tile this group covers (identical for both layouts).
    const long tile_out_x = group_x * c.wg_x * c.ppt_x;
    const long tile_out_y = group_y * c.wg_y * c.ppt_y;

    clsim::CheckedSpan<float> tile;
    const long tw = static_cast<long>(c.wg_x) * c.ppt_x + 2 * radius;
    const long th = static_cast<long>(c.wg_y) * c.ppt_y + 2 * radius;
    if (c.use_local) {
      tile = ctx.local_view<float>(static_cast<std::size_t>(tw * th), "tile");
      for (long idx = lid; idx < tw * th; idx += group_items) {
        const long tx = idx % tw;
        const long ty = idx / tw;
        tile[static_cast<std::size_t>(idx)] =
            load(tile_out_x - radius + tx, tile_out_y - radius + ty);
      }
      co_await ctx.barrier();
    }

    for (int oy = 0; oy < c.ppt_y; ++oy) {
      for (int ox = 0; ox < c.ppt_x; ++ox) {
        const long out_x =
            c.interleaved ? tile_out_x + static_cast<long>(ox) * c.wg_x + lx
                          : (group_x * c.wg_x + lx) * c.ppt_x + ox;
        const long out_y =
            c.interleaved ? tile_out_y + static_cast<long>(oy) * c.wg_y + ly
                          : (group_y * c.wg_y + ly) * c.ppt_y + oy;
        if (out_x >= width || out_y >= height) continue;

        float sum = 0.0f;
        for (int fy = 0; fy < diameter; ++fy) {
          for (int fx = 0; fx < diameter; ++fx) {
            float v;
            if (c.use_local) {
              const long tx = out_x - tile_out_x + fx;
              const long ty = out_y - tile_out_y + fy;
              v = tile[static_cast<std::size_t>(ty * tw + tx)];
            } else {
              v = load(out_x + fx - radius, out_y + fy - radius);
            }
            sum += v * coeffs[static_cast<std::size_t>(fy * diameter + fx)];
          }
        }
        out[static_cast<std::size_t>(out_y * width + out_x)] = sum;
      }
    }
    co_return;
  };
}

}  // namespace

float ConvolutionBenchmark::input_value(std::size_t x, std::size_t y) noexcept {
  // Deterministic, smooth-ish signal with enough variation to catch
  // indexing bugs in every kernel variant.
  const double fx = static_cast<double>(x);
  const double fy = static_cast<double>(y);
  return static_cast<float>(0.5 + 0.25 * std::sin(0.11 * fx) +
                            0.25 * std::cos(0.07 * fy + 0.013 * fx));
}

ConvolutionBenchmark::ConvolutionBenchmark(const Geometry& geometry)
    : geometry_(geometry),
      input_(geometry.width * geometry.height * sizeof(float)),
      padded_((geometry.width + 2 * geometry.radius) *
              (geometry.height + 2 * geometry.radius) * sizeof(float)),
      image_(geometry.width, geometry.height),
      filter_(static_cast<std::size_t>(2 * geometry.radius + 1) *
              static_cast<std::size_t>(2 * geometry.radius + 1) *
              sizeof(float)),
      output_(geometry.width * geometry.height * sizeof(float)),
      program_("convolution") {
  const std::size_t w = geometry_.width;
  const std::size_t h = geometry_.height;
  const int r = geometry_.radius;

  auto in = input_.as<float>();
  for (std::size_t y = 0; y < h; ++y)
    for (std::size_t x = 0; x < w; ++x)
      in[y * w + x] = input_value(x, y);

  // Padded copy whose apron replicates the clamped edge, so the padded
  // path computes the same result as explicit clamping.
  auto pad = padded_.as<float>();
  const std::size_t pw = w + 2 * r;
  const std::size_t ph = h + 2 * r;
  for (std::size_t y = 0; y < ph; ++y) {
    for (std::size_t x = 0; x < pw; ++x) {
      const long sx = std::clamp<long>(static_cast<long>(x) - r, 0,
                                       static_cast<long>(w) - 1);
      const long sy = std::clamp<long>(static_cast<long>(y) - r, 0,
                                       static_cast<long>(h) - 1);
      pad[y * pw + x] = in[static_cast<std::size_t>(sy) * w +
                           static_cast<std::size_t>(sx)];
    }
  }

  auto img = image_.data();
  std::copy(in.begin(), in.end(), img.begin());

  const int d = 2 * r + 1;
  auto coeffs = filter_.as<float>();
  for (auto& cf : coeffs) cf = 1.0f / static_cast<float>(d * d);

  build_space();
  build_program();
}

void ConvolutionBenchmark::build_space() {
  const std::vector<int> pow2 = {1, 2, 4, 8, 16, 32, 64, 128};
  const std::vector<int> onoff = {0, 1};
  space_.add("WG_X", pow2);
  space_.add("WG_Y", pow2);
  space_.add("PPT_X", pow2);
  space_.add("PPT_Y", pow2);
  space_.add("USE_IMAGE", onoff);
  space_.add("USE_LOCAL", onoff);
  space_.add("PAD", onoff);
  space_.add("INTERLEAVED", onoff);
  space_.add("UNROLL", onoff);
}

void ConvolutionBenchmark::build_program() {
  ConvData data{input_, padded_, image_, filter_, output_,
                geometry_.width, geometry_.height, geometry_.radius};
  program_.add_kernel(
      "convolution",
      [data](const clsim::DeviceInfo& /*device*/,
             const clsim::BuildOptions& options) -> clsim::CompiledKernel {
        const ConvConfig c = decode_options(options);
        if (static_cast<std::size_t>(c.ppt_x) > data.width ||
            static_cast<std::size_t>(c.ppt_y) > data.height)
          throw clsim::ClException(
              clsim::Status::kBuildProgramFailure,
              "per-thread work exceeds the image extent");
        const std::uint64_t fp = clsim::fingerprint_values(
            {c.wg_x, c.wg_y, c.ppt_x, c.ppt_y, c.use_image, c.use_local,
             c.pad, c.interleaved, c.unroll},
            clsim::fnv1a("convolution", 11));
        clsim::CompiledKernel compiled;
        compiled.name = "convolution";
        compiled.profile = make_profile(data, c, fp);
        compiled.body = make_body(data, c);
        return compiled;
      });
}

clsim::analyze::KernelConstraints ConvolutionBenchmark::constraints() const {
  namespace az = clsim::analyze;
  using Cat = az::ConstraintCategory;
  using Rel = az::Relation;
  using DL = az::DeviceLimit;
  const auto lim = az::AffineExpr::device_limit;
  const auto c = az::cexpr;
  const az::AffineExpr none;  // absent guard: constraint always applies

  az::KernelConstraints kc;
  kc.kernel_name = name_;
  kc.domain = make_param_domain(space_);
  const az::ParamDomain& dom = kc.domain;

  const az::AffineExpr wg_x = az::param_expr(dom, "WG_X");
  const az::AffineExpr wg_y = az::param_expr(dom, "WG_Y");
  const az::AffineExpr ppt_x = az::param_expr(dom, "PPT_X");
  const az::AffineExpr ppt_y = az::param_expr(dom, "PPT_Y");
  const az::AffineExpr use_image = az::param_expr(dom, "USE_IMAGE");
  const az::AffineExpr use_local = az::param_expr(dom, "USE_LOCAL");
  const az::AffineExpr pad = az::param_expr(dom, "PAD");
  const az::AffineExpr unroll = az::param_expr(dom, "UNROLL");

  const double r = static_cast<double>(geometry_.radius);
  const int d = 2 * geometry_.radius + 1;
  const double taps = static_cast<double>(d * d);
  const double pw = static_cast<double>(geometry_.width) + 2.0 * r;
  const double ph = static_cast<double>(geometry_.height) + 2.0 * r;

  // Launch geometry (clsim validate_launch, 2D launch).
  kc.constraints.push_back({"wg_x_item_limit", Cat::kWorkGroupGeometry, wg_x,
                            Rel::kLessEqual, lim(DL::kMaxWorkItem0), none});
  kc.constraints.push_back({"wg_y_item_limit", Cat::kWorkGroupGeometry, wg_y,
                            Rel::kLessEqual, lim(DL::kMaxWorkItem1), none});
  kc.constraints.push_back({"group_size_limit", Cat::kWorkGroupGeometry,
                            wg_x * wg_y, Rel::kLessEqual,
                            lim(DL::kMaxWorkGroupSize), none});

  // Factory build precondition: per-thread work within the image extent.
  kc.constraints.push_back({"ppt_x_within_width", Cat::kBuildPrecondition,
                            ppt_x, Rel::kLessEqual,
                            c(static_cast<double>(geometry_.width)), none});
  kc.constraints.push_back({"ppt_y_within_height", Cat::kBuildPrecondition,
                            ppt_y, Rel::kLessEqual,
                            c(static_cast<double>(geometry_.height)), none});

  // Local tile (wg*ppt + halo)^2 floats, only on the tiling path.
  const az::AffineExpr tile_w = wg_x * ppt_x + c(2.0 * r);
  const az::AffineExpr tile_h = wg_y * ppt_y + c(2.0 * r);
  kc.constraints.push_back({"local_tile_budget", Cat::kLocalMemory,
                            tile_w * tile_h * c(4.0), Rel::kLessEqual,
                            lim(DL::kLocalMemBytes), use_local});

  // Filter coefficients live in constant memory on every path.
  kc.constraints.push_back({"filter_constant_budget", Cat::kConstantMemory,
                            c(taps * 4.0), Rel::kLessEqual,
                            lim(DL::kConstantMemBytes), none});

  // Mirrors make_profile's registers_per_item formula exactly, including
  // the size_t truncation (floor).
  const az::AffineExpr regs_per_item =
      floor(c(16.0) +
            min(c(96.0), ppt_x * ppt_y * select(use_local, c(0.5), c(1.0))) +
            select(unroll, c(6.0), c(0.0)) +
            select(use_local, c(4.0), c(0.0)));
  kc.constraints.push_back({"register_file_budget", Cat::kRegisters,
                            regs_per_item * (wg_x * wg_y), Rel::kLessEqual,
                            lim(DL::kRegistersPerCu), none});

  // Image path requires image support.
  kc.constraints.push_back({"image_support", Cat::kImageSupport, c(1.0),
                            Rel::kLessEqual, lim(DL::kImagesSupported),
                            use_image});

  // Padded-input footprint: reads are clamped to the apron (the PR 3 fix),
  // so the maximal linear index is the last padded texel regardless of the
  // rounded-up ND-range. Stating it keeps the footprint auditable — the
  // regression test re-derives the pre-fix (unclamped) index and shows the
  // analyzer proves those configurations out of bounds.
  kc.constraints.push_back({"padded_input_footprint", Cat::kGlobalFootprint,
                            c(pw * ph - 1.0), Rel::kLess, c(pw * ph),
                            pad * (c(1.0) - use_image)});

  // The tile-fill barrier sits outside all divergent control flow.
  kc.constraints.push_back({"tile_fill_barrier_uniform",
                            Cat::kBarrierUniformity, c(0.0), Rel::kLessEqual,
                            c(0.0), use_local});

  kc.complete = true;
  return kc;
}

clsim::BuildOptions ConvolutionBenchmark::build_options(
    const tuner::Configuration& config) const {
  clsim::BuildOptions options;
  for (std::size_t d = 0; d < space_.dimension_count(); ++d)
    options.define(space_.parameter(d).name, config.values[d]);
  return options;
}

LaunchPlan ConvolutionBenchmark::prepare(
    const clsim::Device& device, const tuner::Configuration& config) const {
  const clsim::BuildOptions options = build_options(config);
  auto [kernel, build_ms] =
      program_.build_kernel(device, "convolution", options);
  const auto ppt_x = static_cast<std::size_t>(space_.value_of(config, "PPT_X"));
  const auto ppt_y = static_cast<std::size_t>(space_.value_of(config, "PPT_Y"));
  const auto wg_x = static_cast<std::size_t>(space_.value_of(config, "WG_X"));
  const auto wg_y = static_cast<std::size_t>(space_.value_of(config, "WG_Y"));
  // Hosts round the global size up to a multiple of the work-group size;
  // surplus work-items are guarded out inside the kernel.
  auto round_up = [](std::size_t need, std::size_t wg) {
    return (need + wg - 1) / wg * wg;
  };
  const std::size_t need_x = (geometry_.width + ppt_x - 1) / ppt_x;
  const std::size_t need_y = (geometry_.height + ppt_y - 1) / ppt_y;
  LaunchPlan plan{std::move(kernel),
                  clsim::NDRange(round_up(need_x, wg_x), round_up(need_y, wg_y)),
                  clsim::NDRange(wg_x, wg_y), build_ms};
  return plan;
}

double ConvolutionBenchmark::run_functional(const clsim::Device& device,
                                            const tuner::Configuration& config,
                                            clsim::CheckReport* report) const {
  LaunchPlan plan = prepare(device, config);
  // Clear the (shared) output so stale results cannot mask failures.
  auto out = output_.as<float>();
  std::fill(out.begin(), out.end(), -1.0f);

  clsim::CommandQueue::Options options{clsim::ExecMode::kFunctional, nullptr};
  if (report != nullptr) options.check = clsim::CheckMode::kOn;
  clsim::CommandQueue queue(device, options);
  queue.enqueue_nd_range(plan.kernel, plan.global, plan.local);
  if (report != nullptr) *report = queue.check_report();

  const auto expected = reference();
  double max_err = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i)
    max_err = std::max(max_err,
                       static_cast<double>(std::abs(out[i] - expected[i])));
  return max_err;
}

double ConvolutionBenchmark::verify(const clsim::Device& device,
                                    const tuner::Configuration& config) const {
  return run_functional(device, config, nullptr);
}

CheckedVerification ConvolutionBenchmark::verify_checked(
    const clsim::Device& device, const tuner::Configuration& config) const {
  CheckedVerification result;
  result.max_abs_error = run_functional(device, config, &result.report);
  return result;
}

std::vector<float> ConvolutionBenchmark::reference() const {
  const long w = static_cast<long>(geometry_.width);
  const long h = static_cast<long>(geometry_.height);
  const int r = geometry_.radius;
  const int d = 2 * r + 1;
  const auto in = input_.as<const float>();
  const auto coeffs = filter_.as<const float>();
  std::vector<float> out(static_cast<std::size_t>(w * h));
  for (long y = 0; y < h; ++y) {
    for (long x = 0; x < w; ++x) {
      float sum = 0.0f;
      for (int fy = 0; fy < d; ++fy) {
        for (int fx = 0; fx < d; ++fx) {
          const long sx = std::clamp<long>(x + fx - r, 0, w - 1);
          const long sy = std::clamp<long>(y + fy - r, 0, h - 1);
          sum += in[static_cast<std::size_t>(sy * w + sx)] *
                 coeffs[static_cast<std::size_t>(fy * d + fx)];
        }
      }
      out[static_cast<std::size_t>(y * w + x)] = sum;
    }
  }
  return out;
}

}  // namespace pt::benchkit
