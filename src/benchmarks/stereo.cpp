#include "benchmarks/stereo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pt::benchkit {

namespace {

struct StereoData {
  clsim::Buffer left;
  clsim::Buffer right;
  clsim::Image2D left_image;
  clsim::Image2D right_image;
  clsim::Buffer output;
  std::size_t width;
  std::size_t height;
  int max_disparity;
  int window_radius;
};

struct StereoConfig {
  int wg_x, wg_y, ppt_x, ppt_y;
  bool image_left, image_right, local_left, local_right;
  int unroll_disp, unroll_dx, unroll_dy;
};

StereoConfig decode_options(const clsim::BuildOptions& o) {
  StereoConfig c{};
  c.wg_x = o.require("WG_X");
  c.wg_y = o.require("WG_Y");
  c.ppt_x = o.require("PPT_X");
  c.ppt_y = o.require("PPT_Y");
  c.image_left = o.require("IMAGE_LEFT") != 0;
  c.image_right = o.require("IMAGE_RIGHT") != 0;
  c.local_left = o.require("LOCAL_LEFT") != 0;
  c.local_right = o.require("LOCAL_RIGHT") != 0;
  c.unroll_disp = o.require("UNROLL_DISP");
  c.unroll_dx = o.require("UNROLL_DX");
  c.unroll_dy = o.require("UNROLL_DY");
  return c;
}

/// Left tile: the group's output footprint plus the window halo.
std::size_t left_tile_w(const StereoConfig& c, const StereoData& d) {
  return static_cast<std::size_t>(c.wg_x * c.ppt_x + 2 * d.window_radius);
}
std::size_t tile_h(const StereoConfig& c, const StereoData& d) {
  return static_cast<std::size_t>(c.wg_y * c.ppt_y + 2 * d.window_radius);
}
/// Right tile additionally extends max_disparity pixels to the left.
std::size_t right_tile_w(const StereoConfig& c, const StereoData& d) {
  return left_tile_w(c, d) + static_cast<std::size_t>(d.max_disparity);
}

clsim::KernelProfile make_profile(const StereoData& data,
                                  const StereoConfig& c,
                                  std::uint64_t fingerprint) {
  using clsim::AccessPattern;
  using clsim::MemorySpace;

  clsim::KernelProfile p;
  p.kernel_name = "stereo";
  p.config_fingerprint = fingerprint;

  const double outputs = static_cast<double>(c.ppt_x) * c.ppt_y;
  const int w = 2 * data.window_radius + 1;
  const double taps = static_cast<double>(w * w);
  const double disparities = static_cast<double>(data.max_disparity);
  const std::size_t group_items =
      static_cast<std::size_t>(c.wg_x) * static_cast<std::size_t>(c.wg_y);

  // SAD: subtract, abs, accumulate per tap per disparity; plus the running
  // minimum update per disparity.
  p.flops_per_item = outputs * (disparities * taps * 3.0 + disparities * 2.0);
  p.int_ops_per_item = outputs * disparities * taps * 1.5;
  p.divergence = 0.05;  // min-update branch

  // Loop nest, all unrolled via driver pragmas (the AMD-unfriendly path).
  clsim::LoopInfo disp_loop;
  disp_loop.trip_count = outputs * disparities;
  disp_loop.unroll_factor = static_cast<std::size_t>(c.unroll_disp);
  disp_loop.via_driver_pragma = true;
  p.loops.push_back(disp_loop);
  clsim::LoopInfo dy_loop;
  dy_loop.trip_count = outputs * disparities * w;
  dy_loop.unroll_factor = static_cast<std::size_t>(c.unroll_dy);
  dy_loop.via_driver_pragma = true;
  p.loops.push_back(dy_loop);
  clsim::LoopInfo dx_loop;
  dx_loop.trip_count = outputs * disparities * taps;
  dx_loop.unroll_factor = static_cast<std::size_t>(c.unroll_dx);
  dx_loop.via_driver_pragma = true;
  p.loops.push_back(dx_loop);

  std::size_t local_bytes = 0;
  double barriers = 0.0;

  auto add_side = [&](bool use_image, bool use_local, std::size_t tile_w,
                      double reuse) {
    if (use_local) {
      clsim::MemoryStream fill;
      fill.space = use_image ? MemorySpace::kImage : MemorySpace::kGlobal;
      fill.pattern = AccessPattern::kCoalesced;
      fill.accesses_per_item =
          static_cast<double>(tile_w) * static_cast<double>(tile_h(c, data)) /
          static_cast<double>(group_items);
      fill.bytes_per_access = 4;
      p.streams.push_back(fill);
      clsim::MemoryStream reads;
      reads.space = MemorySpace::kLocal;
      reads.pattern = AccessPattern::kStrided;
      reads.stride_bytes = static_cast<std::size_t>(c.ppt_x) * 4;
      reads.accesses_per_item = outputs * disparities * taps;
      reads.bytes_per_access = 4;
      p.streams.push_back(reads);
      local_bytes += tile_w * tile_h(c, data) * 4;
      barriers = 1.0;
    } else {
      clsim::MemoryStream reads;
      reads.space = use_image ? MemorySpace::kImage : MemorySpace::kGlobal;
      reads.pattern = AccessPattern::kTiled2D;
      reads.accesses_per_item = outputs * disparities * taps;
      reads.bytes_per_access = 4;
      reads.reuse_factor = reuse;  // window + disparity overlap
      p.streams.push_back(reads);
    }
  };
  // The left window repeats identically across the disparity loop; the
  // right window slides, so its effective reuse is lower.
  add_side(c.image_left, c.local_left, left_tile_w(c, data),
           taps * disparities * 0.5);
  add_side(c.image_right, c.local_right, right_tile_w(c, data),
           taps * 4.0);

  clsim::MemoryStream stores;
  stores.space = MemorySpace::kGlobal;
  stores.pattern = (c.ppt_x == 1) ? AccessPattern::kCoalesced
                                  : AccessPattern::kStrided;
  stores.stride_bytes = static_cast<std::size_t>(c.ppt_x) * 4;
  stores.accesses_per_item = outputs;
  stores.bytes_per_access = 4;
  stores.is_write = true;
  p.streams.push_back(stores);

  p.local_mem_bytes_per_group = local_bytes;
  p.barriers_per_item = barriers;
  p.registers_per_item = static_cast<std::size_t>(
      20.0 + 2.0 * c.unroll_disp + 1.5 * (c.unroll_dx + c.unroll_dy) +
      std::min(64.0, outputs * 1.5) +
      ((c.local_left || c.local_right) ? 6.0 : 0.0));
  // Unroll combinations multiply generated code size.
  p.compile_complexity =
      1800.0 +
      30.0 * static_cast<double>(c.unroll_disp * c.unroll_dx * c.unroll_dy) +
      (c.local_left ? 250.0 : 0.0) + (c.local_right ? 250.0 : 0.0) +
      (c.image_left ? 120.0 : 0.0) + (c.image_right ? 120.0 : 0.0);
  return p;
}

clsim::KernelBody make_body(StereoData data, StereoConfig c) {
  return [data, c](clsim::WorkItemCtx& ctx) -> clsim::WorkItemTask {
    const long width = static_cast<long>(data.width);
    const long height = static_cast<long>(data.height);
    const int rad = data.window_radius;
    const int max_d = data.max_disparity;
    const auto left = ctx.view<const float>(data.left, "left");
    const auto right = ctx.view<const float>(data.right, "right");
    auto out = ctx.view<float>(data.output, "output");

    const long lx = static_cast<long>(ctx.local_id(0));
    const long ly = static_cast<long>(ctx.local_id(1));
    const long group_x = static_cast<long>(ctx.group_id(0));
    const long group_y = static_cast<long>(ctx.group_id(1));
    const long group_items = static_cast<long>(c.wg_x) * c.wg_y;
    const long lid = ly * c.wg_x + lx;

    const long tile_out_x = group_x * c.wg_x * c.ppt_x;
    const long tile_out_y = group_y * c.wg_y * c.ppt_y;

    auto load_left_direct = [&](long x, long y) -> float {
      if (c.image_left) return data.left_image.sample(x, y);
      const long cx = std::clamp<long>(x, 0, width - 1);
      const long cy = std::clamp<long>(y, 0, height - 1);
      return left[static_cast<std::size_t>(cy * width + cx)];
    };
    auto load_right_direct = [&](long x, long y) -> float {
      if (c.image_right) return data.right_image.sample(x, y);
      const long cx = std::clamp<long>(x, 0, width - 1);
      const long cy = std::clamp<long>(y, 0, height - 1);
      return right[static_cast<std::size_t>(cy * width + cx)];
    };

    // Optional local tiles. Layout: left tile then right tile in the arena.
    const long ltw = static_cast<long>(c.wg_x) * c.ppt_x + 2 * rad;
    const long rtw = ltw + max_d;
    const long th = static_cast<long>(c.wg_y) * c.ppt_y + 2 * rad;
    clsim::CheckedSpan<float> ltile;
    clsim::CheckedSpan<float> rtile;
    if (c.local_left)
      ltile = ctx.local_view<float>(static_cast<std::size_t>(ltw * th), "ltile");
    if (c.local_right)
      rtile = ctx.local_view<float>(static_cast<std::size_t>(rtw * th), "rtile");
    if (c.local_left) {
      for (long i = lid; i < ltw * th; i += group_items) {
        const long tx = i % ltw;
        const long ty = i / ltw;
        ltile[static_cast<std::size_t>(i)] = load_left_direct(
            tile_out_x - rad + tx, tile_out_y - rad + ty);
      }
    }
    if (c.local_right) {
      for (long i = lid; i < rtw * th; i += group_items) {
        const long tx = i % rtw;
        const long ty = i / rtw;
        rtile[static_cast<std::size_t>(i)] = load_right_direct(
            tile_out_x - rad - max_d + tx, tile_out_y - rad + ty);
      }
    }
    if (c.local_left || c.local_right) co_await ctx.barrier();

    auto load_left = [&](long x, long y) -> float {
      if (c.local_left) {
        const long tx = x - (tile_out_x - rad);
        const long ty = y - (tile_out_y - rad);
        if (tx >= 0 && tx < ltw && ty >= 0 && ty < th)
          return ltile[static_cast<std::size_t>(ty * ltw + tx)];
      }
      return load_left_direct(x, y);
    };
    auto load_right = [&](long x, long y) -> float {
      if (c.local_right) {
        const long tx = x - (tile_out_x - rad - max_d);
        const long ty = y - (tile_out_y - rad);
        if (tx >= 0 && tx < rtw && ty >= 0 && ty < th)
          return rtile[static_cast<std::size_t>(ty * rtw + tx)];
      }
      return load_right_direct(x, y);
    };

    for (int oy = 0; oy < c.ppt_y; ++oy) {
      for (int ox = 0; ox < c.ppt_x; ++ox) {
        const long px = (group_x * c.wg_x + lx) * c.ppt_x + ox;
        const long py = (group_y * c.wg_y + ly) * c.ppt_y + oy;
        if (px >= width || py >= height) continue;

        float best_cost = std::numeric_limits<float>::max();
        int best_d = 0;
        for (int d = 0; d < max_d; ++d) {
          float cost = 0.0f;
          for (int dy = -rad; dy <= rad; ++dy) {
            for (int dx = -rad; dx <= rad; ++dx) {
              const float l = load_left(px + dx, py + dy);
              const float r = load_right(px + dx - d, py + dy);
              cost += std::abs(l - r);
            }
          }
          if (cost < best_cost) {
            best_cost = cost;
            best_d = d;
          }
        }
        out[static_cast<std::size_t>(py * width + px)] =
            static_cast<float>(best_d);
      }
    }
    co_return;
  };
}

}  // namespace

float StereoBenchmark::left_value(std::size_t x, std::size_t y) noexcept {
  const double fx = static_cast<double>(x);
  const double fy = static_cast<double>(y);
  // High-frequency texture so block matching locks onto unique patterns.
  return static_cast<float>(0.5 + 0.2 * std::sin(1.7 * fx + 0.9 * fy) +
                            0.15 * std::cos(2.3 * fx - 1.1 * fy) +
                            0.15 * std::sin(0.37 * fx * fy * 0.01));
}

int StereoBenchmark::true_disparity(std::size_t x, std::size_t y,
                                    int max_disparity) noexcept {
  // Smooth planted disparity field, capped inside the search range.
  const double v = 0.5 + 0.5 * std::sin(0.011 * static_cast<double>(x)) *
                             std::cos(0.017 * static_cast<double>(y));
  const int d = static_cast<int>(v * (max_disparity - 1));
  return std::clamp(d, 0, max_disparity - 1);
}

StereoBenchmark::StereoBenchmark(const Geometry& geometry)
    : geometry_(geometry),
      left_(geometry.width * geometry.height * sizeof(float)),
      right_(geometry.width * geometry.height * sizeof(float)),
      left_image_(geometry.width, geometry.height),
      right_image_(geometry.width, geometry.height),
      output_(geometry.width * geometry.height * sizeof(float)),
      program_("stereo") {
  const std::size_t w = geometry_.width;
  const std::size_t h = geometry_.height;
  auto l = left_.as<float>();
  auto r = right_.as<float>();
  auto li = left_image_.data();
  auto ri = right_image_.data();
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const float lv = left_value(x, y);
      l[y * w + x] = lv;
      li[y * w + x] = lv;
      // Right image: left shifted by the planted disparity (clamped).
      const int d = true_disparity(x, y, geometry_.max_disparity);
      const std::size_t sx =
          x + static_cast<std::size_t>(d) < w ? x + static_cast<std::size_t>(d)
                                              : w - 1;
      const float rv = left_value(sx, y);
      r[y * w + x] = rv;
      ri[y * w + x] = rv;
    }
  }

  build_space();
  build_program();
}

void StereoBenchmark::build_space() {
  const std::vector<int> pow2 = {1, 2, 4, 8, 16, 32, 64, 128};
  const std::vector<int> onoff = {0, 1};
  space_.add("WG_X", pow2);
  space_.add("WG_Y", pow2);
  space_.add("PPT_X", pow2);
  space_.add("PPT_Y", pow2);
  space_.add("IMAGE_LEFT", onoff);
  space_.add("IMAGE_RIGHT", onoff);
  space_.add("LOCAL_LEFT", onoff);
  space_.add("LOCAL_RIGHT", onoff);
  space_.add("UNROLL_DISP", {1, 2, 4, 8});
  space_.add("UNROLL_DX", {1, 2, 4});
  space_.add("UNROLL_DY", {1, 2, 4});
}

void StereoBenchmark::build_program() {
  StereoData data{left_,        right_,      left_image_,
                  right_image_, output_,     geometry_.width,
                  geometry_.height, geometry_.max_disparity,
                  geometry_.window_radius};
  program_.add_kernel(
      "stereo",
      [data](const clsim::DeviceInfo& /*device*/,
             const clsim::BuildOptions& options) -> clsim::CompiledKernel {
        const StereoConfig c = decode_options(options);
        if (static_cast<std::size_t>(c.ppt_x) > data.width ||
            static_cast<std::size_t>(c.ppt_y) > data.height)
          throw clsim::ClException(
              clsim::Status::kBuildProgramFailure,
              "per-thread work exceeds the image extent");
        const std::uint64_t fp = clsim::fingerprint_values(
            {c.wg_x, c.wg_y, c.ppt_x, c.ppt_y, c.image_left, c.image_right,
             c.local_left, c.local_right, c.unroll_disp, c.unroll_dx,
             c.unroll_dy},
            clsim::fnv1a("stereo", 6));
        clsim::CompiledKernel compiled;
        compiled.name = "stereo";
        compiled.profile = make_profile(data, c, fp);
        compiled.body = make_body(data, c);
        return compiled;
      });
}

clsim::analyze::KernelConstraints StereoBenchmark::constraints() const {
  namespace az = clsim::analyze;
  using Cat = az::ConstraintCategory;
  using Rel = az::Relation;
  using DL = az::DeviceLimit;
  const auto lim = az::AffineExpr::device_limit;
  const auto c = az::cexpr;
  const az::AffineExpr none;

  az::KernelConstraints kc;
  kc.kernel_name = name_;
  kc.domain = make_param_domain(space_);
  const az::ParamDomain& dom = kc.domain;

  const az::AffineExpr wg_x = az::param_expr(dom, "WG_X");
  const az::AffineExpr wg_y = az::param_expr(dom, "WG_Y");
  const az::AffineExpr ppt_x = az::param_expr(dom, "PPT_X");
  const az::AffineExpr ppt_y = az::param_expr(dom, "PPT_Y");
  const az::AffineExpr image_left = az::param_expr(dom, "IMAGE_LEFT");
  const az::AffineExpr image_right = az::param_expr(dom, "IMAGE_RIGHT");
  const az::AffineExpr local_left = az::param_expr(dom, "LOCAL_LEFT");
  const az::AffineExpr local_right = az::param_expr(dom, "LOCAL_RIGHT");
  const az::AffineExpr unroll_disp = az::param_expr(dom, "UNROLL_DISP");
  const az::AffineExpr unroll_dx = az::param_expr(dom, "UNROLL_DX");
  const az::AffineExpr unroll_dy = az::param_expr(dom, "UNROLL_DY");

  const double rad = static_cast<double>(geometry_.window_radius);
  const double disp = static_cast<double>(geometry_.max_disparity);

  kc.constraints.push_back({"wg_x_item_limit", Cat::kWorkGroupGeometry, wg_x,
                            Rel::kLessEqual, lim(DL::kMaxWorkItem0), none});
  kc.constraints.push_back({"wg_y_item_limit", Cat::kWorkGroupGeometry, wg_y,
                            Rel::kLessEqual, lim(DL::kMaxWorkItem1), none});
  kc.constraints.push_back({"group_size_limit", Cat::kWorkGroupGeometry,
                            wg_x * wg_y, Rel::kLessEqual,
                            lim(DL::kMaxWorkGroupSize), none});

  kc.constraints.push_back({"ppt_x_within_width", Cat::kBuildPrecondition,
                            ppt_x, Rel::kLessEqual,
                            c(static_cast<double>(geometry_.width)), none});
  kc.constraints.push_back({"ppt_y_within_height", Cat::kBuildPrecondition,
                            ppt_y, Rel::kLessEqual,
                            c(static_cast<double>(geometry_.height)), none});

  // Both tiles share the local arena: left (wg_x*ppt_x + 2r) wide, right
  // additionally max_disparity wider, both (wg_y*ppt_y + 2r) tall.
  const az::AffineExpr ltw = wg_x * ppt_x + c(2.0 * rad);
  const az::AffineExpr rtw = ltw + c(disp);
  const az::AffineExpr th = wg_y * ppt_y + c(2.0 * rad);
  const az::AffineExpr local_bytes =
      select(local_left, ltw * th * c(4.0), c(0.0)) +
      select(local_right, rtw * th * c(4.0), c(0.0));
  kc.constraints.push_back({"local_tiles_budget", Cat::kLocalMemory,
                            local_bytes, Rel::kLessEqual,
                            lim(DL::kLocalMemBytes), none});

  // Mirrors make_profile's registers_per_item (size_t truncation included).
  const az::AffineExpr regs_per_item =
      floor(c(20.0) + c(2.0) * unroll_disp +
            c(1.5) * (unroll_dx + unroll_dy) +
            min(c(64.0), ppt_x * ppt_y * c(1.5)) +
            select(max(local_left, local_right), c(6.0), c(0.0)));
  kc.constraints.push_back({"register_file_budget", Cat::kRegisters,
                            regs_per_item * (wg_x * wg_y), Rel::kLessEqual,
                            lim(DL::kRegistersPerCu), none});

  // Either side on the image path requires image support.
  kc.constraints.push_back({"image_support", Cat::kImageSupport, c(1.0),
                            Rel::kLessEqual, lim(DL::kImagesSupported),
                            max(image_left, image_right)});

  // The shared tile-fill barrier executes whenever any tile is staged, and
  // sits outside all divergent control flow.
  kc.constraints.push_back({"tile_fill_barrier_uniform",
                            Cat::kBarrierUniformity, c(0.0), Rel::kLessEqual,
                            c(0.0), max(local_left, local_right)});

  kc.complete = true;
  return kc;
}

clsim::BuildOptions StereoBenchmark::build_options(
    const tuner::Configuration& config) const {
  clsim::BuildOptions options;
  for (std::size_t d = 0; d < space_.dimension_count(); ++d)
    options.define(space_.parameter(d).name, config.values[d]);
  return options;
}

LaunchPlan StereoBenchmark::prepare(
    const clsim::Device& device, const tuner::Configuration& config) const {
  const clsim::BuildOptions options = build_options(config);
  auto [kernel, build_ms] = program_.build_kernel(device, "stereo", options);
  const auto ppt_x = static_cast<std::size_t>(space_.value_of(config, "PPT_X"));
  const auto ppt_y = static_cast<std::size_t>(space_.value_of(config, "PPT_Y"));
  const auto wg_x = static_cast<std::size_t>(space_.value_of(config, "WG_X"));
  const auto wg_y = static_cast<std::size_t>(space_.value_of(config, "WG_Y"));
  auto round_up = [](std::size_t need, std::size_t wg) {
    return (need + wg - 1) / wg * wg;
  };
  const std::size_t need_x = (geometry_.width + ppt_x - 1) / ppt_x;
  const std::size_t need_y = (geometry_.height + ppt_y - 1) / ppt_y;
  return LaunchPlan{std::move(kernel),
                    clsim::NDRange(round_up(need_x, wg_x),
                                   round_up(need_y, wg_y)),
                    clsim::NDRange(wg_x, wg_y), build_ms};
}

double StereoBenchmark::run_functional(const clsim::Device& device,
                                       const tuner::Configuration& config,
                                       clsim::CheckReport* report) const {
  LaunchPlan plan = prepare(device, config);
  auto out = output_.as<float>();
  std::fill(out.begin(), out.end(), -1.0f);

  clsim::CommandQueue::Options options{clsim::ExecMode::kFunctional, nullptr};
  if (report != nullptr) options.check = clsim::CheckMode::kOn;
  clsim::CommandQueue queue(device, options);
  queue.enqueue_nd_range(plan.kernel, plan.global, plan.local);
  if (report != nullptr) *report = queue.check_report();

  const auto expected = reference();
  double max_err = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i)
    max_err = std::max(max_err,
                       static_cast<double>(std::abs(out[i] - expected[i])));
  return max_err;
}

double StereoBenchmark::verify(const clsim::Device& device,
                               const tuner::Configuration& config) const {
  return run_functional(device, config, nullptr);
}

CheckedVerification StereoBenchmark::verify_checked(
    const clsim::Device& device, const tuner::Configuration& config) const {
  CheckedVerification result;
  result.max_abs_error = run_functional(device, config, &result.report);
  return result;
}

std::vector<float> StereoBenchmark::reference() const {
  const long width = static_cast<long>(geometry_.width);
  const long height = static_cast<long>(geometry_.height);
  const int rad = geometry_.window_radius;
  const int max_d = geometry_.max_disparity;
  const auto left = left_.as<const float>();
  const auto right = right_.as<const float>();
  auto sample = [&](std::span<const float> img, long x, long y) {
    const long cx = std::clamp<long>(x, 0, width - 1);
    const long cy = std::clamp<long>(y, 0, height - 1);
    return img[static_cast<std::size_t>(cy * width + cx)];
  };
  std::vector<float> out(static_cast<std::size_t>(width * height));
  for (long py = 0; py < height; ++py) {
    for (long px = 0; px < width; ++px) {
      float best_cost = std::numeric_limits<float>::max();
      int best_d = 0;
      for (int d = 0; d < max_d; ++d) {
        float cost = 0.0f;
        for (int dy = -rad; dy <= rad; ++dy)
          for (int dx = -rad; dx <= rad; ++dx)
            cost += std::abs(sample(left, px + dx, py + dy) -
                             sample(right, px + dx - d, py + dy));
        if (cost < best_cost) {
          best_cost = cost;
          best_d = d;
        }
      }
      out[static_cast<std::size_t>(py * width + px)] =
          static_cast<float>(best_d);
    }
  }
  return out;
}

}  // namespace pt::benchkit
