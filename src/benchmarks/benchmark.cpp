#include "benchmarks/benchmark.hpp"

namespace pt::benchkit {

clsim::analyze::KernelConstraints TunableBenchmark::constraints() const {
  clsim::analyze::KernelConstraints kc;
  kc.kernel_name = name();
  kc.domain = make_param_domain(space());
  kc.complete = false;  // proves nothing; always sound
  return kc;
}

clsim::analyze::ParamDomain make_param_domain(const tuner::ParamSpace& space) {
  std::vector<clsim::analyze::Dimension> dims;
  dims.reserve(space.dimension_count());
  for (std::size_t d = 0; d < space.dimension_count(); ++d) {
    const tuner::TuningParameter& p = space.parameter(d);
    dims.push_back(clsim::analyze::Dimension{p.name, p.values});
  }
  return clsim::analyze::ParamDomain{std::move(dims)};
}

clsim::analyze::StaticChecker make_static_checker(
    const TunableBenchmark& benchmark, const clsim::Device& device) {
  return clsim::analyze::StaticChecker{benchmark.constraints(), device.info()};
}

clsim::analyze::ConfigVerdict check_config(
    const clsim::analyze::StaticChecker& checker,
    const tuner::Configuration& config) {
  return checker.check(std::span<const int>(config.values));
}

BenchmarkEvaluator::BenchmarkEvaluator(const TunableBenchmark& benchmark,
                                       clsim::Device device)
    : benchmark_(&benchmark),
      device_(device),
      // Tuning sweeps enqueue one launch per evaluated configuration; a
      // bounded event history keeps long sweeps' memory flat while the
      // aggregate cost counters still cover every command.
      queue_(device, clsim::CommandQueue::Options{
                         .mode = clsim::ExecMode::kTimingOnly,
                         .pool = nullptr,
                         .event_retention = 256}) {}

std::string BenchmarkEvaluator::name() const {
  return benchmark_->name() + "@" + device_.name();
}

tuner::Measurement BenchmarkEvaluator::measure(
    const tuner::Configuration& config) {
  tuner::Measurement result;
  try {
    LaunchPlan plan = benchmark_->prepare(device_, config);
    queue_.record_build(plan.build_time_ms, benchmark_->name());
    result.cost_ms += plan.build_time_ms;
    const clsim::Event ev =
        queue_.enqueue_nd_range(plan.kernel, plan.global, plan.local);
    result.valid = true;
    result.time_ms = ev.duration_ms();
    result.cost_ms += ev.duration_ms();
    result.status = clsim::Status::kSuccess;
  } catch (const clsim::ClException& e) {
    if (!e.is_invalid_configuration()) throw;  // programming error
    result.valid = false;
    result.status = e.status();
    // A rejected configuration still wastes time: the build (or the build
    // attempt) plus the failed launch round-trip.
    result.cost_ms += device_.info().base_compile_ms * 0.5 +
                      2.0 * device_.info().launch_overhead_ms;
  }
  return result;
}

}  // namespace pt::benchkit
