#pragma once

// TunableBenchmark: a parameterized OpenCL workload — a tuning space (paper
// Table 2), a clsim Program whose kernel factories specialize per
// configuration, and launch geometry derived from the configuration.
// BenchmarkEvaluator adapts a (benchmark, device) pair to the tuner's
// Evaluator interface, turning driver rejections into invalid measurements.

#include <memory>
#include <string>

#include "clsim/clsim.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/param.hpp"

namespace pt::benchkit {

/// A kernel built and configured for one (device, configuration) pair.
struct LaunchPlan {
  clsim::Kernel kernel;
  clsim::NDRange global;
  clsim::NDRange local;
  double build_time_ms = 0.0;
};

/// Result of a clcheck-instrumented functional run: the usual max-error
/// verdict plus every sanitizer finding the launch produced.
struct CheckedVerification {
  double max_abs_error = 0.0;
  clsim::CheckReport report;

  [[nodiscard]] bool clean() const noexcept { return report.clean(); }
};

class TunableBenchmark {
 public:
  virtual ~TunableBenchmark() = default;

  [[nodiscard]] virtual const std::string& name() const noexcept = 0;
  [[nodiscard]] virtual const tuner::ParamSpace& space() const noexcept = 0;

  /// Map a configuration to the -D define set the kernel factory consumes.
  [[nodiscard]] virtual clsim::BuildOptions build_options(
      const tuner::Configuration& config) const = 0;

  /// Build the kernel and compute the ND-range for a configuration. Throws
  /// ClException (kBuildProgramFailure) for statically invalid
  /// configurations; launch-time invalidity surfaces at enqueue.
  [[nodiscard]] virtual LaunchPlan prepare(
      const clsim::Device& device,
      const tuner::Configuration& config) const = 0;

  /// Run the kernel functionally on the device and compare its output with
  /// the scalar reference; returns the max absolute error. Use benchmarks
  /// constructed with small geometries — this executes every work-item.
  [[nodiscard]] virtual double verify(const clsim::Device& device,
                                      const tuner::Configuration& config) const = 0;

  /// verify() under the clcheck sanitizer: same functional run and error
  /// metric, with every kernel memory access instrumented. Slower (checked
  /// launches are sequential) but catches out-of-bounds accesses, races and
  /// barrier/allocation divergence that a correct-looking output can mask.
  [[nodiscard]] virtual CheckedVerification verify_checked(
      const clsim::Device& device, const tuner::Configuration& config) const = 0;

  /// Static (clstat) constraint description of this benchmark's kernel over
  /// its tuning space: resource formulas and launch preconditions as
  /// AffineExprs the analyzer can evaluate without any launch. The default
  /// is an *incomplete* empty set — a StaticChecker over it proves nothing
  /// and answers kUnknown everywhere, which is always sound. Benchmarks that
  /// override this and set `complete = true` promise the set captures every
  /// failure mode (driver rejection or clcheck finding).
  [[nodiscard]] virtual clsim::analyze::KernelConstraints constraints() const;
};

/// Mirror a tuner::ParamSpace as an analyzer ParamDomain (same dimension
/// order and value lists, so a decoded Configuration indexes both).
[[nodiscard]] clsim::analyze::ParamDomain make_param_domain(
    const tuner::ParamSpace& space);

/// Convenience: bind a benchmark's constraint set to one device.
[[nodiscard]] clsim::analyze::StaticChecker make_static_checker(
    const TunableBenchmark& benchmark, const clsim::Device& device);

/// Point verdict for a decoded configuration (values in space order).
[[nodiscard]] clsim::analyze::ConfigVerdict check_config(
    const clsim::analyze::StaticChecker& checker,
    const tuner::Configuration& config);

/// Adapts (benchmark, device) to tuner::Evaluator. Measurements run on a
/// timing-only queue; invalid configurations are caught and reported with
/// their cost (failed builds and launches still take time — section 6).
class BenchmarkEvaluator final : public tuner::Evaluator {
 public:
  BenchmarkEvaluator(const TunableBenchmark& benchmark, clsim::Device device);

  [[nodiscard]] const tuner::ParamSpace& space() const override {
    return benchmark_->space();
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] tuner::Measurement measure(
      const tuner::Configuration& config) override;

  [[nodiscard]] const clsim::Device& device() const noexcept {
    return device_;
  }
  /// The queue accumulating the simulated data-gathering timeline.
  [[nodiscard]] const clsim::CommandQueue& queue() const noexcept {
    return queue_;
  }

 private:
  const TunableBenchmark* benchmark_;
  clsim::Device device_;
  clsim::CommandQueue queue_;
};

}  // namespace pt::benchkit
