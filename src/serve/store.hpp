#pragma once

// TunedConfigStore — the persistent, versioned store of tuned results
// behind the TuneService (DESIGN.md §9).
//
// The store maps (TuneKey, seed) to the outcome of one successful tune:
// the winning configuration, its measured time, the data-gathering cost
// that was paid for it, and (optionally) the trained performance model so
// later kPredict requests need no retune. Entries live in an in-memory map
// and, when a directory is configured, in one text file per entry — the
// same layout per-GPU tuning caches use, so a second process (or a later
// run) starts warm.
//
// Entries are versioned by two labels: the model version (the tuner /
// serialization generation) and the catalog version (the device-roster
// generation). A stored entry whose versions differ from the store's
// current ones is stale — lookups treat it as a miss, and set_versions()
// drops the whole in-memory map, so bumping either label invalidates the
// cache without deleting files.
//
// Thread-safe: all public members take an internal mutex (the service
// calls them from concurrent workers).

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "serve/protocol.hpp"
#include "tuner/model.hpp"

namespace pt::serve {

class TunedConfigStore {
 public:
  struct Options {
    /// Directory for on-disk entries ("" = memory-only store). Created on
    /// first put() if absent.
    std::string directory;
    /// Embed the trained model in persisted entries (the expensive part of
    /// an entry; turn off to store only the winning configuration).
    bool persist_models = true;
    /// Current generation labels (see file comment). Loaded entries must
    /// match both exactly.
    std::string model_version = "v1";
    std::string catalog_version = "v1";
  };

  /// One stored tune outcome.
  struct Entry {
    TuneKey key;
    std::uint64_t seed = 1;
    std::string model_version;
    std::string catalog_version;
    tuner::Configuration best_config;
    double best_time_ms = 0.0;
    /// Simulated wall cost the original tune paid gathering data — what a
    /// cache hit saves.
    double data_gathering_cost_ms = 0.0;
    /// Trained performance model (may be null when the producer did not
    /// keep it or persist_models was off); shared so concurrent kPredict
    /// requests read one instance.
    std::shared_ptr<const tuner::AnnPerformanceModel> model;
  };

  explicit TunedConfigStore(Options options);

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// The entry for (key, seed) at the current versions: from memory, else
  /// (when a directory is configured) from disk — a disk hit is promoted
  /// into memory. Stale or unreadable entries are misses.
  [[nodiscard]] std::optional<Entry> lookup(const TuneKey& key,
                                            std::uint64_t seed);

  /// Insert (or replace) an entry. Stamps the store's current versions,
  /// updates memory and, when a directory is configured, writes the entry
  /// file.
  void put(Entry entry);

  /// Bump the generation labels: the in-memory map is cleared and on-disk
  /// entries written under the old labels no longer validate. The files
  /// stay (rolling back the versions brings them back).
  void set_versions(std::string model_version, std::string catalog_version);

  /// In-memory entry count (on-disk entries are not enumerated).
  [[nodiscard]] std::size_t size() const;

  /// File name an entry is stored under: a sanitized human-readable stem
  /// plus a hash of the exact (key, seed), so distinct keys never collide
  /// on sanitization.
  [[nodiscard]] static std::string entry_filename(const TuneKey& key,
                                                  std::uint64_t seed);

  /// Serialize / parse one entry (the on-disk format; exposed for tests).
  static void save_entry(const Entry& entry, bool persist_model,
                         std::ostream& os);
  [[nodiscard]] static Entry load_entry(std::istream& is);

 private:
  using MemoryKey = std::pair<TuneKey, std::uint64_t>;
  struct MemoryKeyHash {
    [[nodiscard]] std::size_t operator()(const MemoryKey& k) const noexcept {
      const std::size_t h = TuneKeyHash{}(k.first);
      return h ^ (std::hash<std::uint64_t>{}(k.second) + 0x9e3779b97f4a7c15ULL +
                  (h << 6U) + (h >> 2U));
    }
  };

  [[nodiscard]] std::string entry_path(const TuneKey& key,
                                       std::uint64_t seed) const;
  [[nodiscard]] std::optional<Entry> load_from_disk(const TuneKey& key,
                                                    std::uint64_t seed) const;
  void write_to_disk(const Entry& entry) const;

  Options options_;
  mutable std::mutex mutex_;
  std::unordered_map<MemoryKey, Entry, MemoryKeyHash> memory_;
};

}  // namespace pt::serve
