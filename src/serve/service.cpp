#include "serve/service.hpp"

#include <stdexcept>
#include <utility>

#include "common/log.hpp"
#include "common/telemetry/telemetry.hpp"
#include "tuner/options.hpp"

namespace pt::serve {

namespace tel = common::telemetry;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

TuneResponse make_failure(const TuneRequest& request, ResponseStatus status,
                          std::string error) {
  TuneResponse response;
  response.status = status;
  response.key = request.key;
  response.seed = request.seed;
  response.error = std::move(error);
  return response;
}

/// The scan inference mode rides on the store's model version: a tune
/// executed under (say) int8 scan inference must not validate against an
/// entry cached under fp64 — flipping the mode invalidates the cache the
/// same way a model-format bump does.
TunedConfigStore::Options with_scan_mode(TunedConfigStore::Options store,
                                         const tuner::AutoTunerOptions& tuner) {
  store.model_version += "+scan-";
  store.model_version +=
      tuner::scan_inference_name(tuner.model.scan.inference);
  return store;
}

}  // namespace

TuneService::TuneService(TuneServiceOptions options, EvaluatorFactory factory)
    : options_(std::move(options)),
      factory_(std::move(factory)),
      store_(with_scan_mode(options_.store, options_.tuner)),
      tuner_(options_.tuner),
      pool_(options_.workers == 0 ? 1 : options_.workers) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
}

TuneService::~TuneService() { shutdown(); }

std::future<TuneResponse> TuneService::submit(const std::string& tenant,
                                              TuneRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.admitted = Clock::now();
  pending.tenant = tenant;
  std::future<TuneResponse> fut = pending.promise.get_future();

  const std::lock_guard<std::mutex> lock(mutex_);
  if (tel::enabled()) tel::count("serve.requests");
  if (stopping_) {
    deliver(pending, make_failure(pending.request, ResponseStatus::kShutdown,
                                  "service stopped"));
    return fut;
  }
  const auto [it, inserted] = queues_.try_emplace(tenant);
  if (inserted) tenant_order_.push_back(tenant);
  if (it->second.size() >= options_.queue_capacity) {
    ++stats_.rejected;
    if (tel::enabled()) tel::count("serve.rejected");
    deliver(pending,
            make_failure(pending.request, ResponseStatus::kRejectedQueueFull,
                         "tenant queue full (" + tenant + ")"));
    return fut;
  }
  ++stats_.submitted;
  it->second.push_back(std::move(pending));
  pump();
  return fut;
}

TuneResponse TuneService::request(const std::string& tenant, TuneRequest req) {
  return submit(tenant, std::move(req)).get();
}

void TuneService::invalidate(std::string model_version,
                             std::string catalog_version) {
  store_.set_versions(std::move(model_version), std::move(catalog_version));
}

TuneServiceStats TuneService::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void TuneService::shutdown() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!stopping_) {
    stopping_ = true;
    for (auto& [tenant, queue] : queues_) {
      for (Pending& pending : queue)
        deliver(pending,
                make_failure(pending.request, ResponseStatus::kShutdown,
                             "service stopped"));
      queue.clear();
    }
  }
  idle_cv_.wait(lock, [this] { return active_ == 0; });
}

void TuneService::pump() {
  while (!stopping_ && active_ < options_.workers) {
    // Round-robin: starting at the cursor, dispatch the first tenant with
    // queued work; the cursor moves past it so the next dispatch visits
    // the following tenant first.
    Pending next;
    bool found = false;
    const std::size_t n = tenant_order_.size();
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t i = (rr_cursor_ + step) % n;
      std::deque<Pending>& queue = queues_[tenant_order_[i]];
      if (queue.empty()) continue;
      next = std::move(queue.front());
      queue.pop_front();
      rr_cursor_ = (i + 1) % n;
      found = true;
      break;
    }
    if (!found) return;

    // Coalescing: a tune of a (key, seed) already executing rides on that
    // execution instead of occupying a worker. Cache-bypassing requests
    // (allow_cached == false) demand a fresh run and are never merged.
    if (next.request.kind == RequestKind::kTune && next.request.allow_cached) {
      const InFlightKey key{next.request.key, next.request.seed};
      const auto it = in_flight_.find(key);
      if (it != in_flight_.end()) {
        ++stats_.coalesced;
        if (tel::enabled()) tel::count("serve.coalesced");
        it->second.waiters.push_back(std::move(next));
        continue;
      }
      in_flight_.emplace(key, InFlight{});
    }

    ++active_;
    // Pending is move-only (promise); std::function needs a copyable
    // callable, hence the shared_ptr hop.
    auto carried = std::make_shared<Pending>(std::move(next));
    pool_.submit([this, carried] { run_job(std::move(*carried)); });
  }
}

void TuneService::run_job(Pending pending) {
  TuneResponse response = execute(pending.request);

  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Pending> waiters;
  if (pending.request.kind == RequestKind::kTune &&
      pending.request.allow_cached) {
    const auto it =
        in_flight_.find(InFlightKey{pending.request.key, pending.request.seed});
    if (it != in_flight_.end()) {
      waiters = std::move(it->second.waiters);
      in_flight_.erase(it);
    }
  }
  for (Pending& waiter : waiters) {
    TuneResponse copy = response;
    copy.coalesced = true;
    deliver(waiter, std::move(copy));
  }
  deliver(pending, std::move(response));
  --active_;
  pump();
  if (active_ == 0) idle_cv_.notify_all();
}

void TuneService::deliver(Pending& pending, TuneResponse response) {
  response.latency_ms = ms_since(pending.admitted);
  ++stats_.completed;
  ++stats_.completed_by_tenant[pending.tenant];
  pending.promise.set_value(std::move(response));
}

TuneResponse TuneService::execute(const TuneRequest& request) {
  try {
    return request.kind == RequestKind::kPredict ? execute_predict(request)
                                                 : execute_tune(request);
  } catch (const std::exception& e) {
    return make_failure(request, ResponseStatus::kInvalidKey, e.what());
  }
}

TuneResponse TuneService::execute_tune(const TuneRequest& request) {
  TuneResponse response;
  response.key = request.key;
  response.seed = request.seed;

  if (request.allow_cached) {
    if (auto entry = store_.lookup(request.key, request.seed)) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.cache_hits;
      }
      if (tel::enabled()) tel::count("serve.cache.hits");
      response.status = ResponseStatus::kOk;
      response.from_cache = true;
      response.best_config = std::move(entry->best_config);
      response.best_time_ms = entry->best_time_ms;
      return response;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.cache_misses;
    }
    if (tel::enabled()) tel::count("serve.cache.misses");
  }

  std::unique_ptr<tuner::Evaluator> evaluator =
      factory_ ? factory_(request.key) : nullptr;
  if (evaluator == nullptr)
    return make_failure(request, ResponseStatus::kInvalidKey,
                        "unknown key: " + request.key.to_string());

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.tunes_executed;
  }
  if (tel::enabled()) tel::count("serve.tune.runs");
  // The determinism contract (see class comment): fresh evaluator, the
  // service's tuner options, a context that only carries the client seed.
  tel::Span span("serve.tune");
  tuner::AutoTuneResult result =
      tuner_.tune(*evaluator, tuner::TuneRun::with_seed(request.seed));
  span.finish();

  if (!result.success)
    return make_failure(
        request, ResponseStatus::kNoPrediction,
        "no prediction (" + result.stage2_rejections.to_string() + ")");

  response.status = ResponseStatus::kOk;
  response.best_config = result.best_config;
  response.best_time_ms = result.best_time_ms;

  TunedConfigStore::Entry entry;
  entry.key = request.key;
  entry.seed = request.seed;
  entry.best_config = std::move(result.best_config);
  entry.best_time_ms = result.best_time_ms;
  entry.data_gathering_cost_ms = result.data_gathering_cost_ms;
  if (result.model.has_value())
    entry.model = std::make_shared<tuner::AnnPerformanceModel>(
        std::move(*result.model));
  store_.put(std::move(entry));
  return response;
}

TuneResponse TuneService::execute_predict(const TuneRequest& request) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.predicts;
  }
  if (tel::enabled()) tel::count("serve.predicts");

  if (!request.config.has_value())
    return make_failure(request, ResponseStatus::kInvalidKey,
                        "predict without a configuration");
  auto entry = store_.lookup(request.key, request.seed);
  if (!entry)
    return make_failure(
        request, ResponseStatus::kNotTuned,
        "no stored entry for " + request.key.to_string() + " at seed " +
            std::to_string(request.seed));
  if (entry->model == nullptr || !entry->model->fitted())
    return make_failure(request, ResponseStatus::kNotTuned,
                        "stored entry for " + request.key.to_string() +
                            " has no model");

  TuneResponse response;
  response.status = ResponseStatus::kOk;
  response.key = request.key;
  response.seed = request.seed;
  response.from_cache = true;
  response.best_config = entry->best_config;
  response.best_time_ms = entry->best_time_ms;
  response.predicted_ms = entry->model->predict_ms(*request.config);
  return response;
}

}  // namespace pt::serve
