#pragma once

// TuneService — the multi-tenant tuning daemon (DESIGN.md §9).
//
// A long-lived service that accepts concurrent TuneRequests from named
// tenants, schedules them fairly, and answers:
//
//   * admission control: each tenant has a bounded FIFO queue; a request
//     arriving at a full queue is rejected immediately
//     (kRejectedQueueFull) instead of growing the backlog;
//   * fair scheduling: a round-robin cursor walks the tenants, dispatching
//     one request per visit, so a tenant flooding its queue cannot starve
//     the others — under saturation every tenant drains at the same rate;
//   * coalescing: tune requests for a (key, seed) already being tuned
//     attach to the in-flight run and receive its result (marked
//     `coalesced`), so duplicate work is never executed twice;
//   * caching: completed tunes land in the persistent TunedConfigStore;
//     repeat requests are answered from it (marked `from_cache`) without
//     touching the tuner.
//
// Determinism: a served tune runs the canonical
// AutoTuner::tune(evaluator, TuneRun::with_seed(request.seed)) on a fresh
// evaluator from the service's factory, with no observer or per-run
// telemetry collector. Results are therefore bit-identical to a direct
// call with the same options and seed, regardless of service concurrency
// (tests/serve/test_serve.cpp holds this invariant).
//
// Execution: requests run on a ThreadPool owned by the service (its size =
// options.workers). The tuner's internal parallelism (ensemble training,
// prediction scans) continues to use the global pool; the nesting-safe
// parallel_for keeps the two layers deadlock-free.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "serve/protocol.hpp"
#include "serve/store.hpp"
#include "tuner/autotuner.hpp"

namespace pt::serve {

/// Resolve a TuneKey to a fresh evaluator. Called once per executed tune
/// (never for cache hits); may be called concurrently. Return nullptr for
/// unknown keys (the request fails with kInvalidKey).
using EvaluatorFactory =
    std::function<std::unique_ptr<tuner::Evaluator>(const TuneKey&)>;

struct TuneServiceOptions {
  /// Concurrent request executions (and the size of the service's pool).
  std::size_t workers = 2;
  /// Bounded per-tenant queue depth; admission control rejects beyond it.
  std::size_t queue_capacity = 64;
  /// Tuner configuration used for every served tune. The run context's
  /// seed is always overridden by the request's seed; leave observer and
  /// telemetry unset — served runs are headless.
  tuner::AutoTunerOptions tuner{};
  /// Persistent store configuration (directory, versions; see store.hpp).
  /// The effective model_version is suffixed with "+scan-<mode>" (the
  /// tuner's scan inference mode), so cached tunes never validate across a
  /// mode flip.
  TunedConfigStore::Options store{};
};

/// Monotonic counters, snapshot under the service lock.
struct TuneServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;      // admission-control rejections
  std::uint64_t cache_hits = 0;    // tunes answered from the store
  std::uint64_t cache_misses = 0;  // tunes that had to execute
  std::uint64_t coalesced = 0;     // requests merged onto in-flight tunes
  std::uint64_t tunes_executed = 0;
  std::uint64_t predicts = 0;
  /// Completed (including coalesced/rejected/shutdown) per tenant — the
  /// fairness evidence.
  std::unordered_map<std::string, std::uint64_t> completed_by_tenant;
};

class TuneService {
 public:
  TuneService(TuneServiceOptions options, EvaluatorFactory factory);
  ~TuneService();

  TuneService(const TuneService&) = delete;
  TuneService& operator=(const TuneService&) = delete;

  /// Admit one request for `tenant`. Always returns a future that will be
  /// fulfilled — immediately for rejections (kRejectedQueueFull) and after
  /// shutdown (kShutdown), otherwise when the request completes.
  [[nodiscard]] std::future<TuneResponse> submit(const std::string& tenant,
                                                 TuneRequest request);

  /// Blocking convenience: submit and wait.
  [[nodiscard]] TuneResponse request(const std::string& tenant,
                                     TuneRequest req);

  /// Bump the store's generation labels (device catalog or model format
  /// changed): cached entries stop validating, subsequent tunes re-run.
  void invalidate(std::string model_version, std::string catalog_version);

  [[nodiscard]] TunedConfigStore& store() noexcept { return store_; }
  [[nodiscard]] const TuneServiceOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] TuneServiceStats stats() const;

  /// Stop accepting work, fail everything still queued with kShutdown and
  /// drain in-flight executions. Idempotent; the destructor calls it.
  void shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  /// One admitted request waiting in a tenant queue (or attached to an
  /// in-flight execution).
  struct Pending {
    TuneRequest request;
    std::promise<TuneResponse> promise;
    Clock::time_point admitted;
    std::string tenant;
  };

  /// One executing tune and the duplicates riding on it.
  struct InFlight {
    std::vector<Pending> waiters;
  };
  using InFlightKey = std::pair<TuneKey, std::uint64_t>;
  struct InFlightKeyHash {
    [[nodiscard]] std::size_t operator()(
        const InFlightKey& k) const noexcept {
      const std::size_t h = TuneKeyHash{}(k.first);
      return h ^ (std::hash<std::uint64_t>{}(k.second) +
                  0x9e3779b97f4a7c15ULL + (h << 6U) + (h >> 2U));
    }
  };

  /// Dispatch queued requests onto free workers (round-robin over
  /// tenants). Caller must hold mutex_.
  void pump();
  /// Worker-side: execute one request and deliver its result (and its
  /// coalesced waiters').
  void run_job(Pending pending);
  /// The request logic proper; called without the lock.
  [[nodiscard]] TuneResponse execute(const TuneRequest& request);
  [[nodiscard]] TuneResponse execute_tune(const TuneRequest& request);
  [[nodiscard]] TuneResponse execute_predict(const TuneRequest& request);

  /// Fulfill one pending with `response`, stamping its own latency and
  /// tenant bookkeeping. Caller must hold mutex_.
  void deliver(Pending& pending, TuneResponse response);

  TuneServiceOptions options_;
  EvaluatorFactory factory_;
  TunedConfigStore store_;
  tuner::AutoTuner tuner_;

  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  bool stopping_ = false;
  std::size_t active_ = 0;
  std::unordered_map<std::string, std::deque<Pending>> queues_;
  std::vector<std::string> tenant_order_;  // round-robin universe
  std::size_t rr_cursor_ = 0;
  std::unordered_map<InFlightKey, InFlight, InFlightKeyHash> in_flight_;
  TuneServiceStats stats_;

  /// Last member: destroyed (joined) first, so workers never outlive the
  /// state above.
  common::ThreadPool pool_;
};

/// A tenant's handle on a service: remembers the tenant name and forwards
/// requests. Cheap to copy; many sessions may share one service.
class Session {
 public:
  Session(TuneService& service, std::string tenant)
      : service_(&service), tenant_(std::move(tenant)) {}

  [[nodiscard]] const std::string& tenant() const noexcept { return tenant_; }

  [[nodiscard]] std::future<TuneResponse> submit(TuneRequest request) {
    return service_->submit(tenant_, std::move(request));
  }
  [[nodiscard]] TuneResponse request(TuneRequest req) {
    return service_->request(tenant_, std::move(req));
  }

  /// Conveniences for the two request kinds.
  [[nodiscard]] TuneResponse tune(TuneKey key, std::uint64_t seed,
                                  bool allow_cached = true) {
    TuneRequest req;
    req.kind = RequestKind::kTune;
    req.key = std::move(key);
    req.seed = seed;
    req.allow_cached = allow_cached;
    return request(std::move(req));
  }
  [[nodiscard]] TuneResponse predict(TuneKey key,
                                     tuner::Configuration config,
                                     std::uint64_t seed) {
    TuneRequest req;
    req.kind = RequestKind::kPredict;
    req.key = std::move(key);
    req.seed = seed;
    req.config = std::move(config);
    return request(std::move(req));
  }

 private:
  TuneService* service_;
  std::string tenant_;
};

}  // namespace pt::serve
