#pragma once

// The tuning-as-a-service wire types (DESIGN.md §9).
//
// A TuneService answers two kinds of requests, both addressed by a TuneKey
// — the (kernel, device, input-size) triple that identifies one tuning
// problem, the same key shape per-GPU tuning caches use:
//
//   kTune    -> find the best configuration for the key (running the
//               two-stage tuner unless the persistent store already holds
//               an entry for the key at the requested seed);
//   kPredict -> evaluate the stored performance model of the key at one
//               configuration, without measuring anything.
//
// Requests carry a client-supplied seed so served results are reproducible
// and bit-identical to a direct AutoTuner::tune(evaluator,
// TuneRun::with_seed(seed)) call with the service's tuner options: the
// store is keyed by (key, seed), and a cache hit returns exactly what the
// original tune returned.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "tuner/param.hpp"

namespace pt::serve {

/// Address of one tuning problem: which kernel, on which device, at which
/// input size. All three are free-form labels; the service's evaluator
/// factory decides what they mean (see catalog.hpp for the built-in
/// benchmark-registry binding).
struct TuneKey {
  std::string kernel;
  std::string device;
  std::string input;

  [[nodiscard]] bool operator==(const TuneKey& other) const noexcept {
    return kernel == other.kernel && device == other.device &&
           input == other.input;
  }
  [[nodiscard]] bool operator!=(const TuneKey& other) const noexcept {
    return !(*this == other);
  }

  /// "kernel @ device / input" — for logs and error messages.
  [[nodiscard]] std::string to_string() const {
    return kernel + " @ " + device + " / " + input;
  }
};

/// FNV-1a over the three fields with separators, so ("a","bc") and
/// ("ab","c") hash differently.
struct TuneKeyHash {
  [[nodiscard]] std::size_t operator()(const TuneKey& key) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::string_view s) {
      for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
      }
      h ^= 0xffU;  // field separator
      h *= 1099511628211ULL;
    };
    mix(key.kernel);
    mix(key.device);
    mix(key.input);
    return static_cast<std::size_t>(h);
  }
};

enum class RequestKind : std::uint8_t {
  kTune,     // run (or serve from store) a full tune for the key
  kPredict,  // evaluate the key's stored model at request.config
};

enum class ResponseStatus : std::uint8_t {
  kOk,                 // best_config / predicted_ms is valid
  kNotTuned,           // predict for a key+seed with no stored entry
  kRejectedQueueFull,  // admission control: the tenant's queue is full
  kInvalidKey,         // the evaluator factory does not recognise the key
  kNoPrediction,       // the tune ran but found no valid configuration
                       // (the paper's stereo-on-GPU failure mode)
  kShutdown,           // the service stopped before the request ran
};

[[nodiscard]] constexpr std::string_view to_string(
    ResponseStatus status) noexcept {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kNotTuned: return "not_tuned";
    case ResponseStatus::kRejectedQueueFull: return "rejected_queue_full";
    case ResponseStatus::kInvalidKey: return "invalid_key";
    case ResponseStatus::kNoPrediction: return "no_prediction";
    case ResponseStatus::kShutdown: return "shutdown";
  }
  return "unknown";
}

/// One client request. Default-constructed it is a tune of an empty key —
/// fill in at least kind, key and seed.
struct TuneRequest {
  RequestKind kind = RequestKind::kTune;
  TuneKey key;
  /// Client-supplied tuner seed. Served tunes run the canonical
  /// AutoTuner::tune(evaluator, TuneRun::with_seed(seed)), so equal
  /// (key, seed) requests have bit-identical answers.
  std::uint64_t seed = 1;
  /// kPredict: the configuration to price (values in the key's space
  /// order). Ignored for kTune.
  std::optional<tuner::Configuration> config;
  /// kTune: answer from the persistent store when it holds (key, seed).
  /// false forces a fresh tune (whose result still refreshes the store).
  bool allow_cached = true;
};

/// One service answer. `status == kOk` is the success case; everything else
/// explains in `error` why there is no answer.
struct TuneResponse {
  ResponseStatus status = ResponseStatus::kShutdown;
  TuneKey key;
  std::uint64_t seed = 1;
  /// The answer came from the persistent store, not a fresh tune.
  bool from_cache = false;
  /// This request was merged onto another in-flight tune of the same
  /// (key, seed) instead of running its own.
  bool coalesced = false;
  /// kTune + kOk: the winning configuration and its measured time.
  tuner::Configuration best_config;
  double best_time_ms = 0.0;
  /// kPredict + kOk: the stored model's predicted time for request.config.
  double predicted_ms = 0.0;
  /// Human-readable diagnosis for non-kOk statuses.
  std::string error;
  /// Wall time from admission to completion, as seen by the service.
  double latency_ms = 0.0;
};

}  // namespace pt::serve
