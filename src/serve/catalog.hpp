#pragma once

// The built-in TuneKey binding: resolve keys against the paper's benchmark
// registry and device catalog.
//
//   key.kernel -> benchkit::make_benchmark* name ("convolution", ...)
//   key.device -> exact clsim::Platform device name ("Nvidia K40", ...)
//   key.input  -> geometry label: "paper" (the paper-scale instance) or
//                 "small" (the small verification geometry)
//
// The returned evaluators own their benchmark instance, so the factory's
// products outlive the catalog-side objects they were built from; the
// catalog itself must outlive the factory (the service holds the factory
// for its lifetime, so build the catalog next to the service).

#include <memory>
#include <string>

#include "clsim/platform.hpp"
#include "serve/service.hpp"

namespace pt::serve {

class BenchmarkCatalog {
 public:
  /// Uses archsim::default_platform() when no platform is given.
  BenchmarkCatalog();
  explicit BenchmarkCatalog(clsim::Platform platform);

  [[nodiscard]] const clsim::Platform& platform() const noexcept {
    return platform_;
  }

  /// A generation label derived from the device roster (names, in order) —
  /// what TunedConfigStore::Options::catalog_version should be set to, so
  /// changing the modeled hardware invalidates stored entries.
  [[nodiscard]] std::string version() const;

  /// Resolve one key; nullptr for unknown kernel/device/input labels.
  [[nodiscard]] std::unique_ptr<tuner::Evaluator> make_evaluator(
      const TuneKey& key) const;

  /// The catalog as a service factory. The factory references this
  /// catalog; keep it alive for the service's lifetime.
  [[nodiscard]] EvaluatorFactory factory() const;

 private:
  clsim::Platform platform_;
};

}  // namespace pt::serve
