#include "serve/catalog.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "archsim/devices.hpp"
#include "benchmarks/benchmark.hpp"
#include "benchmarks/registry.hpp"

namespace pt::serve {

namespace {

/// Evaluator that owns the benchmark it measures, so factory products are
/// self-contained (BenchmarkEvaluator itself only borrows its benchmark).
class OwningBenchmarkEvaluator final : public tuner::Evaluator {
 public:
  OwningBenchmarkEvaluator(
      std::unique_ptr<benchkit::TunableBenchmark> benchmark,
      clsim::Device device)
      : benchmark_(std::move(benchmark)),
        eval_(*benchmark_, std::move(device)) {}

  [[nodiscard]] const tuner::ParamSpace& space() const override {
    return eval_.space();
  }
  [[nodiscard]] std::string name() const override { return eval_.name(); }
  [[nodiscard]] tuner::Measurement measure(
      const tuner::Configuration& config) override {
    return eval_.measure(config);
  }
  [[nodiscard]] tuner::Evaluator* inner() noexcept override { return &eval_; }

 private:
  std::unique_ptr<benchkit::TunableBenchmark> benchmark_;
  benchkit::BenchmarkEvaluator eval_;
};

/// The archsim TimingModel keys its measurement noise off a mutable call
/// counter, so a device whose oracle is shared across evaluators would give
/// each tune a different noise stream — breaking the serve determinism
/// contract (served result == direct AutoTuner run at the same seed). Give
/// each evaluator its own oracle, rebuilt from the same options, so every
/// tune replays from call zero. Custom (non-archsim) oracles are shared
/// as-is; their replay semantics are the caller's business.
clsim::Device replay_device(const clsim::Device& device) {
  const auto* model =
      dynamic_cast<const archsim::TimingModel*>(&device.oracle());
  if (model == nullptr) return device;
  return archsim::make_device(
      device.info(),
      std::make_shared<const archsim::TimingModel>(model->options()));
}

}  // namespace

BenchmarkCatalog::BenchmarkCatalog()
    : BenchmarkCatalog(archsim::default_platform()) {}

BenchmarkCatalog::BenchmarkCatalog(clsim::Platform platform)
    : platform_(std::move(platform)) {}

std::string BenchmarkCatalog::version() const {
  std::string v = "catalog";
  for (const clsim::Device& device : platform_.devices()) {
    v += '|';
    v += device.info().name;
  }
  return v;
}

std::unique_ptr<tuner::Evaluator> BenchmarkCatalog::make_evaluator(
    const TuneKey& key) const {
  const auto names = benchkit::benchmark_names();
  if (std::find(names.begin(), names.end(), key.kernel) == names.end())
    return nullptr;
  const auto device = platform_.find_device(key.device);
  if (!device || device->info().name != key.device) return nullptr;
  std::unique_ptr<benchkit::TunableBenchmark> benchmark;
  if (key.input == "paper")
    benchmark = benchkit::make_benchmark(key.kernel);
  else if (key.input == "small")
    benchmark = benchkit::make_benchmark_small(key.kernel);
  else
    return nullptr;
  return std::make_unique<OwningBenchmarkEvaluator>(std::move(benchmark),
                                                    replay_device(*device));
}

EvaluatorFactory BenchmarkCatalog::factory() const {
  return [this](const TuneKey& key) { return make_evaluator(key); };
}

}  // namespace pt::serve
