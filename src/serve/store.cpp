#include "serve/store.hpp"

#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/log.hpp"
#include "common/telemetry/telemetry.hpp"
#include "tuner/persist.hpp"

namespace pt::serve {

namespace tel = common::telemetry;

namespace {

constexpr const char* kMagic = "portatune-tuned-entry-v1";

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  if (!(is >> token) || token != expected)
    throw std::runtime_error("tuned entry load: expected '" + expected +
                             "', got '" + token + "'");
}

/// Length-prefixed string: "<len> <bytes>". Key fields (device names like
/// "AMD Radeon HD 7970") contain spaces, so token reads won't do.
void write_string(std::ostream& os, const std::string& s) {
  os << s.size() << ' ' << s;
}

std::string read_string(std::istream& is) {
  std::size_t len = 0;
  if (!(is >> len)) throw std::runtime_error("tuned entry load: bad length");
  if (is.get() != ' ')
    throw std::runtime_error("tuned entry load: missing separator");
  std::string s(len, '\0');
  if (len != 0 && !is.read(s.data(), static_cast<std::streamsize>(len)))
    throw std::runtime_error("tuned entry load: truncated string");
  return s;
}

double read_double(std::istream& is) {
  double v = 0.0;
  if (!(is >> v)) throw std::runtime_error("tuned entry load: bad double");
  return v;
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  if (!(is >> v)) throw std::runtime_error("tuned entry load: bad integer");
  return v;
}

/// Keep [A-Za-z0-9._-], fold everything else (spaces, slashes) to '_'.
std::string sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                      c == '_';
    out.push_back(keep ? c : '_');
  }
  return out;
}

}  // namespace

TunedConfigStore::TunedConfigStore(Options options)
    : options_(std::move(options)) {}

std::string TunedConfigStore::entry_filename(const TuneKey& key,
                                             std::uint64_t seed) {
  // Exact-key hash suffix: sanitization may collapse distinct keys
  // ("a/b" and "a_b") onto one stem.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    h ^= 0xffU;
    h *= 1099511628211ULL;
  };
  mix(key.kernel);
  mix(key.device);
  mix(key.input);
  h ^= seed;
  h *= 1099511628211ULL;

  std::ostringstream name;
  name << sanitize(key.kernel) << '-' << sanitize(key.device) << '-'
       << sanitize(key.input) << '-' << seed << '-' << std::hex << h
       << ".tune";
  return name.str();
}

void TunedConfigStore::save_entry(const Entry& entry, bool persist_model,
                                  std::ostream& os) {
  const auto old_precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);

  os << kMagic << '\n';
  os << "key ";
  write_string(os, entry.key.kernel);
  os << ' ';
  write_string(os, entry.key.device);
  os << ' ';
  write_string(os, entry.key.input);
  os << '\n';
  os << "seed " << entry.seed << '\n';
  os << "versions ";
  write_string(os, entry.model_version);
  os << ' ';
  write_string(os, entry.catalog_version);
  os << '\n';
  os << "config " << entry.best_config.values.size();
  for (const int v : entry.best_config.values) os << ' ' << v;
  os << '\n';
  os << "best_time_ms " << entry.best_time_ms << '\n';
  os << "data_gathering_cost_ms " << entry.data_gathering_cost_ms << '\n';
  const bool with_model =
      persist_model && entry.model != nullptr && entry.model->fitted();
  os << "model " << (with_model ? 1 : 0) << '\n';
  if (with_model) tuner::save_model(*entry.model, os);

  os.precision(old_precision);
}

TunedConfigStore::Entry TunedConfigStore::load_entry(std::istream& is) {
  std::string magic;
  if (!(is >> magic) || magic != kMagic)
    throw std::runtime_error("tuned entry load: bad magic '" + magic + "'");

  Entry entry;
  expect_token(is, "key");
  if (is.get() != ' ')
    throw std::runtime_error("tuned entry load: missing separator");
  entry.key.kernel = read_string(is);
  if (is.get() != ' ')
    throw std::runtime_error("tuned entry load: missing separator");
  entry.key.device = read_string(is);
  if (is.get() != ' ')
    throw std::runtime_error("tuned entry load: missing separator");
  entry.key.input = read_string(is);

  expect_token(is, "seed");
  entry.seed = read_u64(is);

  expect_token(is, "versions");
  if (is.get() != ' ')
    throw std::runtime_error("tuned entry load: missing separator");
  entry.model_version = read_string(is);
  if (is.get() != ' ')
    throw std::runtime_error("tuned entry load: missing separator");
  entry.catalog_version = read_string(is);

  expect_token(is, "config");
  const std::uint64_t n = read_u64(is);
  entry.best_config.values.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    int v = 0;
    if (!(is >> v)) throw std::runtime_error("tuned entry load: bad value");
    entry.best_config.values.push_back(v);
  }

  expect_token(is, "best_time_ms");
  entry.best_time_ms = read_double(is);
  expect_token(is, "data_gathering_cost_ms");
  entry.data_gathering_cost_ms = read_double(is);

  expect_token(is, "model");
  const std::uint64_t with_model = read_u64(is);
  if (with_model != 0)
    entry.model = std::make_shared<tuner::AnnPerformanceModel>(
        tuner::load_model(is));
  return entry;
}

std::string TunedConfigStore::entry_path(const TuneKey& key,
                                         std::uint64_t seed) const {
  return (std::filesystem::path(options_.directory) /
          entry_filename(key, seed))
      .string();
}

std::optional<TunedConfigStore::Entry> TunedConfigStore::load_from_disk(
    const TuneKey& key, std::uint64_t seed) const {
  const std::string path = entry_path(key, seed);
  std::ifstream is(path);
  if (!is) return std::nullopt;
  try {
    Entry entry = load_entry(is);
    if (entry.key != key || entry.seed != seed) {
      common::log_warn("tuned store: ", path, " holds a different key (",
                       entry.key.to_string(), "); ignoring");
      return std::nullopt;
    }
    if (entry.model_version != options_.model_version ||
        entry.catalog_version != options_.catalog_version) {
      if (tel::enabled()) tel::count("serve.store.stale");
      return std::nullopt;  // stale generation — treat as a miss
    }
    return entry;
  } catch (const std::exception& e) {
    common::log_warn("tuned store: failed to load ", path, ": ", e.what());
    return std::nullopt;
  }
}

void TunedConfigStore::write_to_disk(const Entry& entry) const {
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    common::log_warn("tuned store: cannot create ", options_.directory, ": ",
                     ec.message());
    return;
  }
  const std::string path = entry_path(entry.key, entry.seed);
  // Write-then-rename so a concurrent reader never sees a half entry.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp);
    if (!os) {
      common::log_warn("tuned store: cannot write ", tmp);
      return;
    }
    save_entry(entry, options_.persist_models, os);
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec)
    common::log_warn("tuned store: cannot publish ", path, ": ",
                     ec.message());
}

std::optional<TunedConfigStore::Entry> TunedConfigStore::lookup(
    const TuneKey& key, std::uint64_t seed) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = memory_.find(MemoryKey{key, seed});
  if (it != memory_.end()) return it->second;
  if (options_.directory.empty()) return std::nullopt;
  auto loaded = load_from_disk(key, seed);
  if (loaded) memory_.emplace(MemoryKey{key, seed}, *loaded);
  return loaded;
}

void TunedConfigStore::put(Entry entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entry.model_version = options_.model_version;
  entry.catalog_version = options_.catalog_version;
  if (!options_.directory.empty()) write_to_disk(entry);
  memory_.insert_or_assign(MemoryKey{entry.key, entry.seed},
                           std::move(entry));
}

void TunedConfigStore::set_versions(std::string model_version,
                                    std::string catalog_version) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (options_.model_version == model_version &&
      options_.catalog_version == catalog_version)
    return;
  options_.model_version = std::move(model_version);
  options_.catalog_version = std::move(catalog_version);
  memory_.clear();
  if (tel::enabled()) tel::count("serve.store.invalidations");
  common::log_info("tuned store: invalidated (model=", options_.model_version,
                   ", catalog=", options_.catalog_version, ")");
}

std::size_t TunedConfigStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return memory_.size();
}

}  // namespace pt::serve
