#pragma once

// Umbrella header for the simulated OpenCL runtime.

#include "clsim/analyze/checker.hpp"     // IWYU pragma: export
#include "clsim/check/check.hpp"         // IWYU pragma: export
#include "clsim/check/checked_span.hpp"  // IWYU pragma: export
#include "clsim/check/report.hpp"        // IWYU pragma: export
#include "clsim/check/shadow.hpp"        // IWYU pragma: export
#include "clsim/device.hpp"     // IWYU pragma: export
#include "clsim/error.hpp"      // IWYU pragma: export
#include "clsim/executor.hpp"   // IWYU pragma: export
#include "clsim/kernel.hpp"     // IWYU pragma: export
#include "clsim/kernel_profile.hpp"  // IWYU pragma: export
#include "clsim/memory.hpp"     // IWYU pragma: export
#include "clsim/platform.hpp"   // IWYU pragma: export
#include "clsim/queue.hpp"      // IWYU pragma: export
#include "clsim/types.hpp"      // IWYU pragma: export
#include "clsim/work_item.hpp"  // IWYU pragma: export
