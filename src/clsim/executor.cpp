#include "clsim/executor.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <vector>

#include "clsim/check/check.hpp"

namespace pt::clsim {

void NDRangeExecutor::run(const NDRange& global, const NDRange& local,
                          std::size_t local_mem_bytes, const KernelBody& body,
                          check::LaunchCheckState* check) const {
  const std::size_t dims = global.dimensions();
  if (dims == 0)
    throw ClException(Status::kInvalidWorkDimension, "empty global range");
  if (local.dimensions() != dims)
    throw ClException(Status::kInvalidWorkDimension,
                      "local range dimensionality differs from global");
  for (std::size_t d = 0; d < dims; ++d) {
    if (local[d] == 0)
      throw ClException(Status::kInvalidWorkGroupSize, "zero local size");
    if (global[d] % local[d] != 0)
      throw ClException(Status::kInvalidWorkGroupSize,
                        "local size does not divide global size");
  }
  if (!body)
    throw ClException(Status::kInvalidOperation,
                      "kernel has no functional body");

  const std::size_t groups_x = global.extent(0) / local.extent(0);
  const std::size_t groups_y = global.extent(1) / local.extent(1);
  const std::size_t groups_z = global.extent(2) / local.extent(2);
  const std::size_t total_groups = groups_x * groups_y * groups_z;

  auto run_one = [&](std::size_t flat) {
    const std::array<std::size_t, 3> gid = {
        flat % groups_x, (flat / groups_x) % groups_y,
        flat / (groups_x * groups_y)};
    run_group(global, local, dims, gid, flat, local_mem_bytes, body, check);
  };

  // Checked launches run sequentially: shadow state is single-threaded by
  // construction and findings come out in a deterministic order.
  if (check == nullptr && pool_ != nullptr && total_groups > 1) {
    pool_->parallel_for(0, total_groups, run_one);
  } else {
    for (std::size_t g = 0; g < total_groups; ++g) run_one(g);
  }
}

void NDRangeExecutor::run_group(const NDRange& global, const NDRange& local,
                                std::size_t dims,
                                std::array<std::size_t, 3> group_id,
                                std::size_t group_flat,
                                std::size_t local_mem_bytes,
                                const KernelBody& body,
                                check::LaunchCheckState* check) const {
  const std::size_t items = local.total();
  WorkGroupState group_state(local_mem_bytes);

  std::optional<check::GroupCheckState> group_check;
  std::vector<check::ItemChecker> checkers;
  if (check != nullptr) {
    group_check.emplace(local_mem_bytes);
    checkers.reserve(items);
  }

  // Contexts must outlive the coroutines that reference them.
  std::vector<WorkItemCtx> contexts;
  contexts.reserve(items);
  for (std::size_t lz = 0; lz < local.extent(2); ++lz)
    for (std::size_t ly = 0; ly < local.extent(1); ++ly)
      for (std::size_t lx = 0; lx < local.extent(0); ++lx) {
        contexts.emplace_back(global, local, dims, group_id,
                              std::array<std::size_t, 3>{lx, ly, lz},
                              &group_state);
        if (check != nullptr) {
          const std::array<std::size_t, 3> gid = {
              group_id[0] * local.extent(0) + lx,
              group_id[1] * local.extent(1) + ly,
              group_id[2] * local.extent(2) + lz};
          const std::size_t item_flat =
              gid[0] + gid[1] * global.extent(0) +
              gid[2] * global.extent(0) * global.extent(1);
          checkers.emplace_back(check, &*group_check, gid,
                                static_cast<std::uint32_t>(item_flat),
                                static_cast<std::uint32_t>(group_flat));
          contexts.back().bind_checker(&checkers.back());
        }
      }

  std::vector<WorkItemTask> tasks;
  tasks.reserve(items);
  for (auto& ctx : contexts) tasks.push_back(body(ctx));

  // Round-based scheduling: resume every live item once per round; a round
  // ends with every item either done or parked at the same barrier. Each
  // round therefore spans exactly one barrier interval — the clcheck
  // "epoch" the race detector keys happens-before on.
  std::size_t done = 0;
  while (done < items) {
    std::size_t finished_this_round = 0;
    std::size_t at_barrier = 0;
    for (auto& task : tasks) {
      if (task.done()) continue;
      task.resume();
      if (task.done()) {
        ++finished_this_round;
      } else if (task.at_barrier()) {
        ++at_barrier;
      }
    }
    done += finished_this_round;
    if (at_barrier != 0 && done != 0 && done < items) {
      // Some items passed their last barrier and returned while others are
      // still waiting — undefined behaviour in OpenCL, an error here.
      if (check != nullptr) {
        // Report the full stuck set instead of throwing, then abandon the
        // group (resuming past a divergent barrier would deadlock).
        std::ostringstream ss;
        ss << at_barrier << " of " << items
           << " work-items are stuck at a barrier the rest never reach;"
           << " stuck local linear ids:";
        std::size_t listed = 0;
        for (std::size_t i = 0; i < tasks.size(); ++i) {
          if (tasks[i].done() || !tasks[i].at_barrier()) continue;
          if (listed++ < 8)
            ss << ' ' << i;
          else
            break;
        }
        if (at_barrier > 8) ss << " ...";
        check::Finding finding;
        finding.kind = check::FindingKind::kBarrierDivergence;
        finding.kernel = check->kernel_name();
        finding.resource = "barrier";
        finding.group_linear = static_cast<std::uint32_t>(group_flat);
        finding.message = ss.str();
        check->report().add(std::move(finding));
        return;
      }
      throw ClException(Status::kInvalidOperation,
                        "barrier divergence inside a work-group");
    }
    if (group_check) ++group_check->epoch;
  }

  if (check != nullptr && !checkers.empty()) {
    // Items that ran *fewer or more* local_allocs than their peers never hit
    // the per-allocation record comparison — catch the count mismatch here.
    std::size_t min_allocs = checkers.front().alloc_count();
    std::size_t max_allocs = min_allocs;
    for (const auto& checker : checkers) {
      min_allocs = std::min(min_allocs, checker.alloc_count());
      max_allocs = std::max(max_allocs, checker.alloc_count());
    }
    if (min_allocs != max_allocs) {
      std::ostringstream ss;
      ss << "work-items of the group ran different numbers of local "
         << "allocations (min " << min_allocs << ", max " << max_allocs
         << "); subsequent allocations alias across items";
      check::Finding finding;
      finding.kind = check::FindingKind::kDivergentLocalAlloc;
      finding.kernel = check->kernel_name();
      finding.resource = "local-arena";
      finding.group_linear = static_cast<std::uint32_t>(group_flat);
      finding.message = ss.str();
      check->report().add(std::move(finding));
    }
  }
}

}  // namespace pt::clsim
