#include "clsim/executor.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <vector>

#include "clsim/check/check.hpp"
#include "common/telemetry/telemetry.hpp"

namespace pt::clsim {

namespace tel = pt::common::telemetry;

void NDRangeExecutor::run(const NDRange& global, const NDRange& local,
                          std::size_t local_mem_bytes, const KernelBody& body,
                          check::LaunchCheckState* check,
                          const KernelProfile* profile) const {
  const std::size_t dims = global.dimensions();
  if (dims == 0)
    throw ClException(Status::kInvalidWorkDimension, "empty global range");
  if (local.dimensions() != dims)
    throw ClException(Status::kInvalidWorkDimension,
                      "local range dimensionality differs from global");
  for (std::size_t d = 0; d < dims; ++d) {
    if (local[d] == 0)
      throw ClException(Status::kInvalidWorkGroupSize, "zero local size");
    if (global[d] % local[d] != 0)
      throw ClException(Status::kInvalidWorkGroupSize,
                        "local size does not divide global size");
  }
  if (!body)
    throw ClException(Status::kInvalidOperation,
                      "kernel has no functional body");

  const std::size_t groups_x = global.extent(0) / local.extent(0);
  const std::size_t groups_y = global.extent(1) / local.extent(1);
  const std::size_t groups_z = global.extent(2) / local.extent(2);
  const std::size_t total_groups = groups_x * groups_y * groups_z;

  // Barrier-free direct dispatch: only when the profile vouches for zero
  // barriers and no clcheck instrumentation is attached (checked launches
  // key their happens-before epochs on the round structure).
  const bool direct = options_.enable_fast_path && check == nullptr &&
                      profile != nullptr && profile->barriers_per_item == 0.0;
  if (tel::enabled())
    tel::count(direct ? "clsim.exec.fast_path" : "clsim.exec.round_path");

  auto run_one = [&](std::size_t flat) {
    const std::array<std::size_t, 3> gid = {
        flat % groups_x, (flat / groups_x) % groups_y,
        flat / (groups_x * groups_y)};
    if (direct)
      run_group_direct(global, local, dims, gid, flat, local_mem_bytes, body);
    else
      run_group(global, local, dims, gid, flat, local_mem_bytes, body, check);
  };

  // Checked launches run sequentially: shadow state is single-threaded by
  // construction and findings come out in a deterministic order.
  if (check == nullptr && pool_ != nullptr && total_groups > 1) {
    // Batch several tiny work-groups per pool task, but never below the
    // chunk count the pool would pick on its own — small launches keep
    // their parallelism, large launches of small groups stop paying one
    // task per group.
    const std::size_t items_per_group = local.total();
    const std::size_t want =
        std::max<std::size_t>(1, kTargetItemsPerTask / items_per_group);
    const std::size_t keep_chunks = std::max<std::size_t>(
        1, total_groups / (4 * std::max<std::size_t>(1, pool_->size())));
    pool_->parallel_for(0, total_groups, std::min(want, keep_chunks), run_one);
  } else {
    for (std::size_t g = 0; g < total_groups; ++g) run_one(g);
  }
}

void NDRangeExecutor::run_group_direct(const NDRange& global,
                                       const NDRange& local, std::size_t dims,
                                       std::array<std::size_t, 3> group_id,
                                       std::size_t group_flat,
                                       std::size_t local_mem_bytes,
                                       const KernelBody& body) const {
  const std::size_t items = local.total();
  WorkGroupState group_state(local_mem_bytes);
  // One context serves every item of the group in turn: the direct path
  // destroys each coroutine before the next is created, so no two frames
  // ever observe the context simultaneously.
  WorkItemCtx ctx(global, local, dims, group_id, {0, 0, 0}, &group_state);

  std::size_t flat = 0;
  for (std::size_t lz = 0; lz < local.extent(2); ++lz) {
    for (std::size_t ly = 0; ly < local.extent(1); ++ly) {
      for (std::size_t lx = 0; lx < local.extent(0); ++lx, ++flat) {
        ctx.reset_item({lx, ly, lz});
        WorkItemTask task = body(ctx);
        task.resume();
        if (task.done()) continue;
        // The profile declared the kernel barrier-free, yet this item
        // suspended at a barrier.
        if (flat != 0) {
          // Earlier items already ran to completion without reaching any
          // barrier — the round scheduler diagnoses exactly this state, on
          // its first round, as divergence.
          throw ClException(Status::kInvalidOperation,
                            "barrier divergence inside a work-group");
        }
        // Item 0 parked at its first barrier before any other item ran:
        // hand the whole group to the round scheduler. Item 0 keeps its
        // coroutine (and this context, which stays alive in this frame);
        // the remaining items get the usual one-context-per-item setup.
        if (tel::enabled()) tel::count("clsim.exec.fallback");
        std::vector<WorkItemCtx> contexts;
        contexts.reserve(items - 1);
        std::vector<WorkItemTask> tasks;
        tasks.reserve(items);
        tasks.push_back(std::move(task));
        std::size_t rest = 0;
        for (std::size_t rz = 0; rz < local.extent(2); ++rz)
          for (std::size_t ry = 0; ry < local.extent(1); ++ry)
            for (std::size_t rx = 0; rx < local.extent(0); ++rx) {
              if (rest++ == 0) continue;  // item 0 is already running
              contexts.emplace_back(global, local, dims, group_id,
                                    std::array<std::size_t, 3>{rx, ry, rz},
                                    &group_state);
              tasks.push_back(body(contexts.back()));
            }
        run_rounds(tasks, items, /*first_round_resumed=*/1, nullptr, nullptr,
                   group_flat);
        return;
      }
    }
  }
}

void NDRangeExecutor::run_group(const NDRange& global, const NDRange& local,
                                std::size_t dims,
                                std::array<std::size_t, 3> group_id,
                                std::size_t group_flat,
                                std::size_t local_mem_bytes,
                                const KernelBody& body,
                                check::LaunchCheckState* check) const {
  const std::size_t items = local.total();
  WorkGroupState group_state(local_mem_bytes);

  std::optional<check::GroupCheckState> group_check;
  std::vector<check::ItemChecker> checkers;
  if (check != nullptr) {
    group_check.emplace(local_mem_bytes);
    checkers.reserve(items);
  }

  // Contexts must outlive the coroutines that reference them.
  std::vector<WorkItemCtx> contexts;
  contexts.reserve(items);
  for (std::size_t lz = 0; lz < local.extent(2); ++lz)
    for (std::size_t ly = 0; ly < local.extent(1); ++ly)
      for (std::size_t lx = 0; lx < local.extent(0); ++lx) {
        contexts.emplace_back(global, local, dims, group_id,
                              std::array<std::size_t, 3>{lx, ly, lz},
                              &group_state);
        if (check != nullptr) {
          const std::array<std::size_t, 3> gid = {
              group_id[0] * local.extent(0) + lx,
              group_id[1] * local.extent(1) + ly,
              group_id[2] * local.extent(2) + lz};
          const std::size_t item_flat =
              gid[0] + gid[1] * global.extent(0) +
              gid[2] * global.extent(0) * global.extent(1);
          checkers.emplace_back(check, &*group_check, gid,
                                static_cast<std::uint32_t>(item_flat),
                                static_cast<std::uint32_t>(group_flat));
          contexts.back().bind_checker(&checkers.back());
        }
      }

  std::vector<WorkItemTask> tasks;
  tasks.reserve(items);
  for (auto& ctx : contexts) tasks.push_back(body(ctx));

  const bool completed =
      run_rounds(tasks, items, /*first_round_resumed=*/0, check,
                 group_check ? &*group_check : nullptr, group_flat);
  if (!completed) return;  // group abandoned after a divergence finding

  if (check != nullptr && !checkers.empty()) {
    // Items that ran *fewer or more* local_allocs than their peers never hit
    // the per-allocation record comparison — catch the count mismatch here.
    std::size_t min_allocs = checkers.front().alloc_count();
    std::size_t max_allocs = min_allocs;
    for (const auto& checker : checkers) {
      min_allocs = std::min(min_allocs, checker.alloc_count());
      max_allocs = std::max(max_allocs, checker.alloc_count());
    }
    if (min_allocs != max_allocs) {
      std::ostringstream ss;
      ss << "work-items of the group ran different numbers of local "
         << "allocations (min " << min_allocs << ", max " << max_allocs
         << "); subsequent allocations alias across items";
      check::Finding finding;
      finding.kind = check::FindingKind::kDivergentLocalAlloc;
      finding.kernel = check->kernel_name();
      finding.resource = "local-arena";
      finding.group_linear = static_cast<std::uint32_t>(group_flat);
      finding.message = ss.str();
      check->report().add(std::move(finding));
    }
  }
}

bool NDRangeExecutor::run_rounds(std::vector<WorkItemTask>& tasks,
                                 std::size_t items,
                                 std::size_t first_round_resumed,
                                 check::LaunchCheckState* check,
                                 check::GroupCheckState* group_check,
                                 std::size_t group_flat) const {
  // Round-based scheduling: resume every live item once per round; a round
  // ends with every item either done or parked at the same barrier. Each
  // round therefore spans exactly one barrier interval — the clcheck
  // "epoch" the race detector keys happens-before on.
  std::size_t done = 0;
  std::size_t skip = first_round_resumed;
  while (done < items) {
    std::size_t finished_this_round = 0;
    std::size_t at_barrier = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      WorkItemTask& task = tasks[i];
      if (task.done()) continue;
      if (i < skip) {
        // Already resumed this round by the direct-dispatch guard; it is
        // parked at the barrier that triggered the fallback.
        ++at_barrier;
        continue;
      }
      task.resume();
      if (task.done()) {
        ++finished_this_round;
      } else if (task.at_barrier()) {
        ++at_barrier;
      }
    }
    skip = 0;
    done += finished_this_round;
    if (at_barrier != 0 && done != 0 && done < items) {
      // Some items passed their last barrier and returned while others are
      // still waiting — undefined behaviour in OpenCL, an error here.
      if (check != nullptr) {
        // Report the full stuck set instead of throwing, then abandon the
        // group (resuming past a divergent barrier would deadlock).
        std::ostringstream ss;
        ss << at_barrier << " of " << items
           << " work-items are stuck at a barrier the rest never reach;"
           << " stuck local linear ids:";
        std::size_t listed = 0;
        for (std::size_t i = 0; i < tasks.size(); ++i) {
          if (tasks[i].done() || !tasks[i].at_barrier()) continue;
          if (listed++ < 8)
            ss << ' ' << i;
          else
            break;
        }
        if (at_barrier > 8) ss << " ...";
        check::Finding finding;
        finding.kind = check::FindingKind::kBarrierDivergence;
        finding.kernel = check->kernel_name();
        finding.resource = "barrier";
        finding.group_linear = static_cast<std::uint32_t>(group_flat);
        finding.message = ss.str();
        check->report().add(std::move(finding));
        return false;
      }
      throw ClException(Status::kInvalidOperation,
                        "barrier divergence inside a work-group");
    }
    if (group_check != nullptr) ++group_check->epoch;
  }
  return true;
}

}  // namespace pt::clsim
