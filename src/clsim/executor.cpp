#include "clsim/executor.hpp"

#include <vector>

namespace pt::clsim {

void NDRangeExecutor::run(const NDRange& global, const NDRange& local,
                          std::size_t local_mem_bytes,
                          const KernelBody& body) const {
  const std::size_t dims = global.dimensions();
  if (dims == 0)
    throw ClException(Status::kInvalidWorkDimension, "empty global range");
  if (local.dimensions() != dims)
    throw ClException(Status::kInvalidWorkDimension,
                      "local range dimensionality differs from global");
  for (std::size_t d = 0; d < dims; ++d) {
    if (local[d] == 0)
      throw ClException(Status::kInvalidWorkGroupSize, "zero local size");
    if (global[d] % local[d] != 0)
      throw ClException(Status::kInvalidWorkGroupSize,
                        "local size does not divide global size");
  }
  if (!body)
    throw ClException(Status::kInvalidOperation,
                      "kernel has no functional body");

  const std::size_t groups_x = global.extent(0) / local.extent(0);
  const std::size_t groups_y = global.extent(1) / local.extent(1);
  const std::size_t groups_z = global.extent(2) / local.extent(2);
  const std::size_t total_groups = groups_x * groups_y * groups_z;

  auto run_one = [&](std::size_t flat) {
    const std::array<std::size_t, 3> gid = {
        flat % groups_x, (flat / groups_x) % groups_y,
        flat / (groups_x * groups_y)};
    run_group(global, local, dims, gid, local_mem_bytes, body);
  };

  if (pool_ != nullptr && total_groups > 1) {
    pool_->parallel_for(0, total_groups, run_one);
  } else {
    for (std::size_t g = 0; g < total_groups; ++g) run_one(g);
  }
}

void NDRangeExecutor::run_group(const NDRange& global, const NDRange& local,
                                std::size_t dims,
                                std::array<std::size_t, 3> group_id,
                                std::size_t local_mem_bytes,
                                const KernelBody& body) const {
  const std::size_t items = local.total();
  WorkGroupState group_state(local_mem_bytes);

  // Contexts must outlive the coroutines that reference them.
  std::vector<WorkItemCtx> contexts;
  contexts.reserve(items);
  for (std::size_t lz = 0; lz < local.extent(2); ++lz)
    for (std::size_t ly = 0; ly < local.extent(1); ++ly)
      for (std::size_t lx = 0; lx < local.extent(0); ++lx)
        contexts.emplace_back(global, local, dims, group_id,
                              std::array<std::size_t, 3>{lx, ly, lz},
                              &group_state);

  std::vector<WorkItemTask> tasks;
  tasks.reserve(items);
  for (auto& ctx : contexts) tasks.push_back(body(ctx));

  // Round-based scheduling: resume every live item once per round; a round
  // ends with every item either done or parked at the same barrier.
  std::size_t done = 0;
  while (done < items) {
    std::size_t finished_this_round = 0;
    std::size_t at_barrier = 0;
    for (auto& task : tasks) {
      if (task.done()) continue;
      task.resume();
      if (task.done()) {
        ++finished_this_round;
      } else if (task.at_barrier()) {
        ++at_barrier;
      }
    }
    done += finished_this_round;
    if (at_barrier != 0 && done != 0 && done < items) {
      // Some items passed their last barrier and returned while others are
      // still waiting — undefined behaviour in OpenCL, an error here.
      throw ClException(Status::kInvalidOperation,
                        "barrier divergence inside a work-group");
    }
  }
}

}  // namespace pt::clsim
