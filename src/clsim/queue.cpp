#include "clsim/queue.hpp"

#include <algorithm>

#include "common/telemetry/telemetry.hpp"

namespace pt::clsim {

namespace tel = pt::common::telemetry;

CommandQueue::CommandQueue(Device device, Options options)
    : device_(std::move(device)), options_(options) {}

Event CommandQueue::push_event(const std::string& label, double duration_ms,
                               const WaitList& wait_list) {
  double ready_ms = options_.out_of_order ? 0.0 : tail_ms_;
  for (const Event& dep : wait_list)
    ready_ms = std::max(ready_ms, dep.end_ms);

  Event ev;
  ev.label = label;
  ev.id = next_event_id_++;
  ev.queued_ms = tail_ms_;
  ev.start_ms = ready_ms;
  ev.end_ms = ready_ms + duration_ms;
  ev.duration = duration_ms;
  if (!options_.out_of_order) tail_ms_ = ev.end_ms;
  now_ms_ = std::max(now_ms_, ev.end_ms);
  events_.push_back(ev);
  trim_events();
  return ev;
}

void CommandQueue::trim_events() {
  const std::size_t cap = options_.event_retention;
  if (cap == 0 || events_.size() <= cap) return;
  // Aggregate counters already absorbed every event; only the per-event
  // records age out, oldest first.
  events_.erase(events_.begin(),
                events_.begin() +
                    static_cast<std::ptrdiff_t>(events_.size() - cap));
}

Event CommandQueue::enqueue_marker() {
  // Completes when everything enqueued so far has completed.
  Event ev;
  ev.label = "marker";
  ev.id = next_event_id_++;
  ev.queued_ms = tail_ms_;
  ev.start_ms = now_ms_;
  ev.end_ms = now_ms_;
  ev.duration = 0.0;
  events_.push_back(ev);
  trim_events();
  return ev;
}

Event CommandQueue::enqueue_nd_range(const Kernel& kernel,
                                     const NDRange& global,
                                     const NDRange& local,
                                     const WaitList& wait_list) {
  const Status status = kernel.validate_launch(global, local);
  if (status != Status::kSuccess) {
    if (tel::enabled())
      tel::count(std::string("clsim.launch.rejected.") + to_string(status));
    throw ClException(status, "enqueue_nd_range of " + kernel.name() + " " +
                                  to_string(global) + "/" + to_string(local));
  }

  LaunchDescriptor launch;
  launch.profile = &kernel.profile();
  launch.global = global;
  launch.local = local;
  launch.local_mem_bytes = kernel.profile().local_mem_bytes_per_group;

  const double duration =
      device_.oracle().kernel_time_ms(device_.info(), launch);

  if (options_.mode == ExecMode::kFunctional) {
    if (!kernel.body())
      throw ClException(Status::kInvalidOperation,
                        "functional queue but kernel " + kernel.name() +
                            " has no body");
    const tel::Span exec_span(
        tel::enabled() ? "clsim.exec." + kernel.name() : std::string());
    if (options_.check == CheckMode::kOn) {
      check::LaunchCheckState launch_check(kernel.name(), &check_report_);
      NDRangeExecutor executor(nullptr);
      executor.run(global, local, kernel.profile().local_mem_bytes_per_group,
                   kernel.body(), &launch_check);
    } else {
      NDRangeExecutor executor(options_.pool, options_.executor);
      executor.run(global, local, kernel.profile().local_mem_bytes_per_group,
                   kernel.body(), nullptr, &kernel.profile());
    }
  }

  const Event ev = push_event(kernel.name(), duration, wait_list);
  total_kernel_ms_ += duration;
  if (tel::enabled()) {
    tel::count("clsim.launches");
    tel::count("clsim.sim_kernel_ms", duration);
    // Per-kernel simulated-time attribution.
    tel::count("clsim.sim_kernel_ms." + kernel.name(), duration);
  }
  return ev;
}

Event CommandQueue::enqueue_write(Buffer& dst, const void* src,
                                  std::size_t bytes, std::size_t offset,
                                  const WaitList& wait_list) {
  dst.write(src, bytes, offset);
  const double duration = device_.oracle().transfer_time_ms(
      device_.info(), bytes, TransferDirection::kHostToDevice);
  const Event ev = push_event("write", duration, wait_list);
  total_transfer_ms_ += duration;
  if (tel::enabled()) {
    tel::count("clsim.transfers");
    tel::count("clsim.transfer_ms", duration);
  }
  return ev;
}

Event CommandQueue::enqueue_read(const Buffer& src, void* dst,
                                 std::size_t bytes, std::size_t offset,
                                 const WaitList& wait_list) {
  src.read(dst, bytes, offset);
  const double duration = device_.oracle().transfer_time_ms(
      device_.info(), bytes, TransferDirection::kDeviceToHost);
  const Event ev = push_event("read", duration, wait_list);
  total_transfer_ms_ += duration;
  if (tel::enabled()) {
    tel::count("clsim.transfers");
    tel::count("clsim.transfer_ms", duration);
  }
  return ev;
}

Event CommandQueue::enqueue_copy(const Buffer& src, Buffer& dst,
                                 std::size_t bytes, std::size_t src_offset,
                                 std::size_t dst_offset,
                                 const WaitList& wait_list) {
  if (src_offset + bytes > src.size_bytes() ||
      dst_offset + bytes > dst.size_bytes())
    throw ClException(Status::kInvalidValue,
                      "enqueue_copy: range exceeds a buffer");
  std::vector<unsigned char> staging(bytes);
  src.read(staging.data(), bytes, src_offset);
  dst.write(staging.data(), bytes, dst_offset);
  // On-device copy: bounded by device memory bandwidth (read + write).
  const double duration =
      static_cast<double>(2 * bytes) /
          (device_.info().global_bw_gbps * 1e9) * 1e3 +
      device_.info().launch_overhead_ms;
  const Event ev = push_event("copy", duration, wait_list);
  total_transfer_ms_ += duration;
  if (tel::enabled()) {
    tel::count("clsim.transfers");
    tel::count("clsim.transfer_ms", duration);
  }
  return ev;
}

Event CommandQueue::enqueue_fill(Buffer& dst, const void* pattern,
                                 std::size_t pattern_bytes, std::size_t bytes,
                                 std::size_t offset,
                                 const WaitList& wait_list) {
  if (pattern_bytes == 0 || bytes % pattern_bytes != 0)
    throw ClException(Status::kInvalidValue,
                      "enqueue_fill: size is not a pattern multiple");
  if (offset + bytes > dst.size_bytes())
    throw ClException(Status::kInvalidValue,
                      "enqueue_fill: range exceeds the buffer");
  const auto* src = static_cast<const unsigned char*>(pattern);
  for (std::size_t pos = 0; pos < bytes; pos += pattern_bytes)
    dst.write(src, pattern_bytes, offset + pos);
  const double duration =
      static_cast<double>(bytes) / (device_.info().global_bw_gbps * 1e9) *
          1e3 +
      device_.info().launch_overhead_ms;
  const Event ev = push_event("fill", duration, wait_list);
  total_transfer_ms_ += duration;
  if (tel::enabled()) {
    tel::count("clsim.transfers");
    tel::count("clsim.transfer_ms", duration);
  }
  return ev;
}

Event CommandQueue::record_build(double build_time_ms,
                                 const std::string& label) {
  const Event ev = push_event("build:" + label, build_time_ms, {});
  total_build_ms_ += build_time_ms;
  if (tel::enabled()) {
    tel::count("clsim.builds");
    tel::count("clsim.sim_build_ms", build_time_ms);
  }
  return ev;
}

}  // namespace pt::clsim
