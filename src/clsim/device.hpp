#pragma once

// Device abstraction: static capability/limit information (what
// clGetDeviceInfo would report) plus a timing oracle that supplies the
// simulated clock. Limits are what make tuning configurations *invalid* on
// some devices but not others — a central mechanism in the paper.

#include <cstddef>
#include <memory>
#include <string>

#include "clsim/types.hpp"

namespace pt::clsim {

struct KernelProfile;

/// Static device description (mirrors the relevant clGetDeviceInfo fields,
/// plus the microarchitectural parameters the timing model needs).
struct DeviceInfo {
  std::string name;
  std::string vendor;
  DeviceType type = DeviceType::kGpu;

  // --- Limits (validity rules) ---
  std::size_t max_work_group_size = 1024;      // total items per group
  std::size_t max_work_item_sizes[3] = {1024, 1024, 64};
  std::size_t local_mem_bytes = 48 * 1024;     // per work-group budget
  std::size_t constant_mem_bytes = 64 * 1024;
  std::size_t global_mem_bytes = 4ull << 30;
  std::size_t max_image2d_width = 16384;
  std::size_t max_image2d_height = 16384;
  bool images_supported = true;

  // --- Microarchitecture (timing model inputs) ---
  std::size_t compute_units = 1;
  std::size_t simd_width = 1;           // warp/wavefront width (1 on CPU)
  std::size_t max_groups_per_cu = 16;   // scheduler limit
  std::size_t max_items_per_cu = 2048;  // resident work-item limit
  std::size_t registers_per_cu = 65536; // register file entries (32-bit)
  double clock_ghz = 1.0;
  double flops_per_cycle_per_cu = 2.0;  // per-PE*PEs: peak mul-add lanes
  double global_bw_gbps = 100.0;        // DRAM bandwidth
  double l2_bw_gbps = 300.0;
  double local_bw_gbps = 1000.0;        // scratchpad aggregate
  double texture_bw_gbps = 200.0;       // image/texture path
  double constant_bw_gbps = 400.0;      // broadcast-optimized path
  std::size_t cache_line_bytes = 128;
  std::size_t l2_bytes = 512 * 1024;
  bool global_cached = true;            // Fermi+: global loads cached

  /// Warps (or wavefronts) resident per CU needed to reach peak DRAM
  /// bandwidth; below this, memory latency is exposed (occupancy effect).
  double latency_hiding_warps = 32.0;

  // --- CPU-specific modeling knobs (ignored for GPUs) ---
  std::size_t vector_width = 1;          // implicit vectorization lanes
  double group_sched_overhead_us = 0.0;  // per-work-group scheduling cost
  double software_image_ops = 0.0;       // extra ops per image access

  // --- Host link ---
  double transfer_bw_gbps = 6.0;        // PCIe (or memcpy) bandwidth
  double transfer_latency_ms = 0.02;

  // --- Host/driver overheads ---
  double launch_overhead_ms = 0.01;     // per clEnqueueNDRangeKernel
  double base_compile_ms = 100.0;       // fixed program-build cost
  double compile_ms_per_kstmt = 60.0;   // kernel build cost driver
  /// 0 = the driver applies `#pragma unroll` faithfully; larger values make
  /// pragma unrolling increasingly erratic (see archsim::TimingModel).
  double pragma_unroll_unreliability = 0.0;

  // --- Noise magnitudes (lognormal sigma) ---
  /// Deterministic per-configuration "unmodeled effects" dispersion.
  double structural_noise_sigma = 0.08;
  /// Per-measurement jitter.
  double measurement_noise_sigma = 0.01;
};

/// Geometry and resources of one kernel launch, as seen by the oracle.
struct LaunchDescriptor {
  const KernelProfile* profile = nullptr;
  NDRange global;
  NDRange local;
  std::size_t local_mem_bytes = 0;  // total per group, static + dynamic
};

/// Supplies the simulated clock: how long a launch/transfer/build takes on a
/// given device. Implemented by archsim::TimingModel; clsim only needs the
/// interface, which keeps the runtime independent of the cost model.
class TimingOracle {
 public:
  virtual ~TimingOracle() = default;

  /// Simulated kernel execution time in milliseconds.
  [[nodiscard]] virtual double kernel_time_ms(
      const DeviceInfo& device, const LaunchDescriptor& launch) const = 0;

  /// Simulated host<->device transfer time in milliseconds.
  [[nodiscard]] virtual double transfer_time_ms(
      const DeviceInfo& device, std::size_t bytes,
      TransferDirection direction) const = 0;

  /// Simulated program build time in milliseconds.
  [[nodiscard]] virtual double compile_time_ms(
      const DeviceInfo& device, const KernelProfile& profile) const = 0;
};

/// A device: info + oracle. Shared (value-semantic handle) across contexts.
class Device {
 public:
  Device(DeviceInfo info, std::shared_ptr<const TimingOracle> oracle);

  [[nodiscard]] const DeviceInfo& info() const noexcept { return *info_; }
  [[nodiscard]] const TimingOracle& oracle() const noexcept {
    return *oracle_;
  }
  [[nodiscard]] const std::string& name() const noexcept {
    return info_->name;
  }
  [[nodiscard]] DeviceType type() const noexcept { return info_->type; }

 private:
  std::shared_ptr<const DeviceInfo> info_;
  std::shared_ptr<const TimingOracle> oracle_;
};

}  // namespace pt::clsim
