#include "clsim/memory.hpp"

#include <algorithm>
#include <cmath>

namespace pt::clsim {

void Buffer::write(const void* src, std::size_t bytes, std::size_t offset) const {
  if (offset + bytes > storage_->size())
    throw std::out_of_range("Buffer::write: range exceeds buffer");
  std::memcpy(storage_->data() + offset, src, bytes);
}

void Buffer::read(void* dst, std::size_t bytes, std::size_t offset) const {
  if (offset + bytes > storage_->size())
    throw std::out_of_range("Buffer::read: range exceeds buffer");
  std::memcpy(dst, storage_->data() + offset, bytes);
}

Image2D::Image2D(std::size_t width, std::size_t height, std::size_t channels)
    : width_(width),
      height_(height),
      channels_(channels),
      data_(std::make_shared<std::vector<float>>(width * height * channels,
                                                 0.0f)) {
  if (width == 0 || height == 0 || channels == 0)
    throw std::invalid_argument("Image2D: zero dimension");
}

float& Image2D::at(std::size_t x, std::size_t y, std::size_t c) const {
  if (x >= width_ || y >= height_ || c >= channels_)
    throw std::out_of_range("Image2D::at");
  return (*data_)[(y * width_ + x) * channels_ + c];
}

namespace {
/// Resolve a coordinate against an extent for the given addressing mode.
long resolve(long v, long extent, AddressMode mode) noexcept {
  if (mode == AddressMode::kRepeat) {
    long m = v % extent;
    if (m < 0) m += extent;
    return m;
  }
  return std::clamp<long>(v, 0, extent - 1);
}
}  // namespace

float Image2D::sample(long x, long y, std::size_t c,
                      AddressMode mode) const noexcept {
  const long cx = resolve(x, static_cast<long>(width_), mode);
  const long cy = resolve(y, static_cast<long>(height_), mode);
  return (*data_)[(static_cast<std::size_t>(cy) * width_ +
                   static_cast<std::size_t>(cx)) *
                      channels_ +
                  c];
}

float Image2D::sample_linear(float x, float y, std::size_t c,
                             AddressMode mode) const noexcept {
  // Half-texel convention: texel centres sit at integer + 0.5.
  const float fx = x - 0.5f;
  const float fy = y - 0.5f;
  const long x0 = static_cast<long>(std::floor(fx));
  const long y0 = static_cast<long>(std::floor(fy));
  const float tx = fx - static_cast<float>(x0);
  const float ty = fy - static_cast<float>(y0);
  const float v00 = sample(x0, y0, c, mode);
  const float v10 = sample(x0 + 1, y0, c, mode);
  const float v01 = sample(x0, y0 + 1, c, mode);
  const float v11 = sample(x0 + 1, y0 + 1, c, mode);
  const float top = v00 + tx * (v10 - v00);
  const float bottom = v01 + tx * (v11 - v01);
  return top + ty * (bottom - top);
}

float Image2D::sample(long x, long y, std::size_t c) const noexcept {
  const long cx = std::clamp<long>(x, 0, static_cast<long>(width_) - 1);
  const long cy = std::clamp<long>(y, 0, static_cast<long>(height_) - 1);
  return (*data_)[(static_cast<std::size_t>(cy) * width_ +
                   static_cast<std::size_t>(cx)) *
                      channels_ +
                  c];
}

Image3D::Image3D(std::size_t width, std::size_t height, std::size_t depth)
    : width_(width),
      height_(height),
      depth_(depth),
      data_(std::make_shared<std::vector<float>>(width * height * depth,
                                                 0.0f)) {
  if (width == 0 || height == 0 || depth == 0)
    throw std::invalid_argument("Image3D: zero dimension");
}

float& Image3D::at(std::size_t x, std::size_t y, std::size_t z) const {
  if (x >= width_ || y >= height_ || z >= depth_)
    throw std::out_of_range("Image3D::at");
  return (*data_)[(z * height_ + y) * width_ + x];
}

float Image3D::sample_linear(float x, float y, float z) const noexcept {
  const float fx = x - 0.5f;
  const float fy = y - 0.5f;
  const float fz = z - 0.5f;
  const long x0 = static_cast<long>(std::floor(fx));
  const long y0 = static_cast<long>(std::floor(fy));
  const long z0 = static_cast<long>(std::floor(fz));
  const float tx = fx - static_cast<float>(x0);
  const float ty = fy - static_cast<float>(y0);
  const float tz = fz - static_cast<float>(z0);
  auto lerp = [](float a, float b, float t) { return a + t * (b - a); };
  const float c00 = lerp(sample(x0, y0, z0), sample(x0 + 1, y0, z0), tx);
  const float c10 =
      lerp(sample(x0, y0 + 1, z0), sample(x0 + 1, y0 + 1, z0), tx);
  const float c01 =
      lerp(sample(x0, y0, z0 + 1), sample(x0 + 1, y0, z0 + 1), tx);
  const float c11 =
      lerp(sample(x0, y0 + 1, z0 + 1), sample(x0 + 1, y0 + 1, z0 + 1), tx);
  return lerp(lerp(c00, c10, ty), lerp(c01, c11, ty), tz);
}

float Image3D::sample(long x, long y, long z) const noexcept {
  const long cx = std::clamp<long>(x, 0, static_cast<long>(width_) - 1);
  const long cy = std::clamp<long>(y, 0, static_cast<long>(height_) - 1);
  const long cz = std::clamp<long>(z, 0, static_cast<long>(depth_) - 1);
  return (*data_)[(static_cast<std::size_t>(cz) * height_ +
                   static_cast<std::size_t>(cy)) *
                      width_ +
                  static_cast<std::size_t>(cx)];
}

}  // namespace pt::clsim
