#pragma once

// Program/Kernel layer of the simulated runtime.
//
// A Program holds kernel *factories*: callables that, given a device and
// build options (the -D macro set a real driver would see), produce a
// CompiledKernel — a functional body plus the static KernelProfile the
// timing model consumes. Building a program performs the static validation a
// real compiler does, and charges simulated compile time.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "clsim/device.hpp"
#include "clsim/error.hpp"
#include "clsim/kernel_profile.hpp"
#include "clsim/memory.hpp"
#include "clsim/work_item.hpp"

namespace pt::clsim {

/// Preprocessor-macro analogue: integer -D definitions keyed by name.
class BuildOptions {
 public:
  BuildOptions() = default;
  explicit BuildOptions(std::map<std::string, int> defines)
      : defines_(std::move(defines)) {}

  void define(const std::string& name, int value) { defines_[name] = value; }

  /// Value of a define; throws kBuildProgramFailure if missing (mirrors an
  /// #error for a required macro).
  [[nodiscard]] int require(const std::string& name) const;

  [[nodiscard]] int get(const std::string& name, int fallback) const noexcept;
  [[nodiscard]] bool has(const std::string& name) const noexcept {
    return defines_.count(name) != 0;
  }
  [[nodiscard]] const std::map<std::string, int>& defines() const noexcept {
    return defines_;
  }

  /// Render as a driver-style option string ("-D A=1 -D B=2").
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, int> defines_;
};

/// Result of compiling one kernel for one (device, options) pair.
struct CompiledKernel {
  std::string name;
  KernelProfile profile;
  /// Functional body; may be empty for timing-only studies, in which case
  /// only enqueue with ExecMode::kTimingOnly is legal.
  KernelBody body;
};

/// A kernel argument (cl_mem / scalar analogue).
using KernelArg =
    std::variant<std::monostate, Buffer, Image2D, Image3D, int, float, double>;

/// Bound argument list passed to kernel bodies via the closure environment.
class KernelArgs {
 public:
  void set(std::size_t index, KernelArg arg);
  [[nodiscard]] std::size_t count() const noexcept { return args_.size(); }

  [[nodiscard]] Buffer buffer(std::size_t index) const;
  [[nodiscard]] Image2D image2d(std::size_t index) const;
  [[nodiscard]] Image3D image3d(std::size_t index) const;
  [[nodiscard]] int scalar_int(std::size_t index) const;
  [[nodiscard]] float scalar_float(std::size_t index) const;

 private:
  const KernelArg& at(std::size_t index) const;
  std::vector<KernelArg> args_;
};

/// Factory: compile a kernel for (device, options) or throw ClException with
/// kBuildProgramFailure for statically invalid configurations.
using KernelFactory =
    std::function<CompiledKernel(const DeviceInfo&, const BuildOptions&)>;

/// A built (device-specialized) kernel ready for launch.
class Kernel {
 public:
  Kernel(Device device, CompiledKernel compiled);

  [[nodiscard]] const std::string& name() const noexcept {
    return compiled_->name;
  }
  [[nodiscard]] const KernelProfile& profile() const noexcept {
    return compiled_->profile;
  }
  [[nodiscard]] const KernelBody& body() const noexcept {
    return compiled_->body;
  }
  [[nodiscard]] const Device& device() const noexcept { return device_; }

  void set_arg(std::size_t index, KernelArg arg) {
    args_.set(index, std::move(arg));
  }
  [[nodiscard]] const KernelArgs& args() const noexcept { return args_; }

  /// Launch-time validation of an ND-range against the device limits.
  /// Returns the status a real clEnqueueNDRangeKernel would: kSuccess or the
  /// specific invalid-configuration code.
  [[nodiscard]] Status validate_launch(const NDRange& global,
                                       const NDRange& local) const noexcept;

 private:
  Device device_;
  std::shared_ptr<const CompiledKernel> compiled_;
  KernelArgs args_;
};

/// A program: named kernel factories, buildable per device.
class Program {
 public:
  explicit Program(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  void add_kernel(const std::string& kernel_name, KernelFactory factory);
  [[nodiscard]] std::vector<std::string> kernel_names() const;

  /// Compile every kernel for the device. Returns the built kernels and the
  /// simulated build time. Throws ClException(kBuildProgramFailure) if any
  /// factory rejects the options (static invalidity).
  struct BuildResult {
    std::vector<Kernel> kernels;
    double build_time_ms = 0.0;
  };
  [[nodiscard]] BuildResult build(const Device& device,
                                  const BuildOptions& options) const;

  /// Build and return a single kernel by name.
  [[nodiscard]] std::pair<Kernel, double> build_kernel(
      const Device& device, const std::string& kernel_name,
      const BuildOptions& options) const;

 private:
  std::string name_;
  std::map<std::string, KernelFactory> factories_;
};

}  // namespace pt::clsim
