#include "clsim/platform.hpp"

#include "clsim/error.hpp"

namespace pt::clsim {

std::vector<Device> Platform::devices_of_type(DeviceType type) const {
  std::vector<Device> out;
  for (const auto& d : devices_)
    if (d.type() == type) out.push_back(d);
  return out;
}

std::optional<Device> Platform::find_device(const std::string& needle) const {
  for (const auto& d : devices_)
    if (d.name().find(needle) != std::string::npos) return d;
  return std::nullopt;
}

Device Platform::device_by_name(const std::string& name) const {
  for (const auto& d : devices_)
    if (d.name() == name) return d;
  throw ClException(Status::kDeviceNotFound, name);
}

}  // namespace pt::clsim
