#include "clsim/kernel_profile.hpp"

namespace pt::clsim {

const char* to_string(AccessPattern pattern) noexcept {
  switch (pattern) {
    case AccessPattern::kCoalesced: return "coalesced";
    case AccessPattern::kStrided: return "strided";
    case AccessPattern::kBroadcast: return "broadcast";
    case AccessPattern::kTiled2D: return "tiled2d";
    case AccessPattern::kRandom: return "random";
  }
  return "unknown";
}

double KernelProfile::total_global_traffic_bytes_per_item() const noexcept {
  double bytes = 0.0;
  for (const auto& s : streams) {
    if (s.space == MemorySpace::kGlobal || s.space == MemorySpace::kImage) {
      bytes += s.accesses_per_item * static_cast<double>(s.bytes_per_access);
    }
  }
  return bytes;
}

bool KernelProfile::uses_space(MemorySpace space) const noexcept {
  for (const auto& s : streams)
    if (s.space == space) return true;
  return false;
}

bool KernelProfile::any_pragma_unroll() const noexcept {
  for (const auto& l : loops)
    if (l.via_driver_pragma && l.unroll_factor > 1) return true;
  return false;
}

std::uint64_t fnv1a(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fingerprint_values(const std::vector<int>& values,
                                 std::uint64_t seed) noexcept {
  std::uint64_t hash = seed;
  for (int v : values) {
    hash ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    hash *= 0x100000001b3ULL;
    hash ^= hash >> 29;
  }
  return hash;
}

}  // namespace pt::clsim
