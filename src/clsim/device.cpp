#include "clsim/device.hpp"

#include <stdexcept>

namespace pt::clsim {

Device::Device(DeviceInfo info, std::shared_ptr<const TimingOracle> oracle)
    : info_(std::make_shared<const DeviceInfo>(std::move(info))),
      oracle_(std::move(oracle)) {
  if (!oracle_) throw std::invalid_argument("Device: null timing oracle");
  if (info_->compute_units == 0)
    throw std::invalid_argument("Device: zero compute units");
  if (info_->simd_width == 0)
    throw std::invalid_argument("Device: zero SIMD width");
}

}  // namespace pt::clsim
