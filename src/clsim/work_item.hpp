#pragma once

// Work-item execution machinery. Each work-item runs as a C++20 coroutine so
// kernels can call `co_await ctx.barrier()` with real OpenCL semantics: all
// work-items of a group reach the barrier before any proceeds. The executor
// resumes items in rounds between barriers.
//
// Kernel bodies have the signature
//   WorkItemTask body(WorkItemCtx& ctx);
// and use ctx for ids, local memory and barriers. Bodies that never barrier
// can ignore the coroutine aspect entirely (just `co_return` at the end).

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "clsim/check/checked_span.hpp"
#include "clsim/error.hpp"
#include "clsim/frame_pool.hpp"
#include "clsim/memory.hpp"
#include "clsim/types.hpp"

namespace pt::clsim {

/// Tag type returned by WorkItemCtx::barrier(); awaiting it parks the item.
struct BarrierTag {};

/// Coroutine handle type for one work-item's execution.
class WorkItemTask {
 public:
  struct promise_type {
    std::exception_ptr exception;
    bool at_barrier = false;

    /// Coroutine frames come from the thread-local FramePool instead of
    /// the global heap: a tuning run creates one frame per work-item, and
    /// the freelist turns that steady-state cost into a pointer pop.
    static void* operator new(std::size_t size) {
      return FramePool::allocate(size);
    }
    static void operator delete(void* ptr) noexcept {
      FramePool::deallocate(ptr);
    }

    WorkItemTask get_return_object() {
      return WorkItemTask(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }

    /// `co_await BarrierTag{}` marks the item as parked at a barrier.
    auto await_transform(BarrierTag) noexcept {
      struct Awaiter {
        promise_type* promise;
        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<>) const noexcept {
          promise->at_barrier = true;
        }
        void await_resume() const noexcept { promise->at_barrier = false; }
      };
      return Awaiter{this};
    }
  };

  WorkItemTask() = default;
  explicit WorkItemTask(std::coroutine_handle<promise_type> handle)
      : handle_(handle) {}
  WorkItemTask(WorkItemTask&& other) noexcept : handle_(other.handle_) {
    other.handle_ = nullptr;
  }
  WorkItemTask& operator=(WorkItemTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = nullptr;
    }
    return *this;
  }
  WorkItemTask(const WorkItemTask&) = delete;
  WorkItemTask& operator=(const WorkItemTask&) = delete;
  ~WorkItemTask() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return handle_.done(); }
  [[nodiscard]] bool at_barrier() const noexcept {
    return handle_.promise().at_barrier;
  }

  /// Run until the next barrier or completion; rethrows kernel exceptions.
  void resume() {
    handle_.resume();
    if (handle_.done() && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Per-work-group shared state: the local-memory arena.
class WorkGroupState {
 public:
  explicit WorkGroupState(std::size_t local_mem_bytes)
      : arena_(local_mem_bytes) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return arena_.size(); }
  [[nodiscard]] std::byte* base() noexcept { return arena_.data(); }

 private:
  std::vector<std::byte> arena_;
};

/// Everything a kernel body can ask about its work-item, plus local memory
/// allocation and barriers. One instance per work-item; the local arena is
/// shared across the group, and because every item executes the same
/// allocation sequence, per-item cursors hand out identical offsets.
class WorkItemCtx {
 public:
  WorkItemCtx(NDRange global, NDRange local, std::size_t dims,
              std::array<std::size_t, 3> group_id,
              std::array<std::size_t, 3> local_id,
              WorkGroupState* group_state)
      : global_(global),
        local_(local),
        dims_(dims),
        group_id_(group_id),
        local_id_(local_id),
        group_state_(group_state) {}

  [[nodiscard]] std::size_t work_dim() const noexcept { return dims_; }
  [[nodiscard]] std::size_t global_size(std::size_t d) const noexcept {
    return global_.extent(d);
  }
  [[nodiscard]] std::size_t local_size(std::size_t d) const noexcept {
    return local_.extent(d);
  }
  [[nodiscard]] std::size_t num_groups(std::size_t d) const noexcept {
    return global_.extent(d) / local_.extent(d);
  }
  [[nodiscard]] std::size_t group_id(std::size_t d) const noexcept {
    return group_id_[d];
  }
  [[nodiscard]] std::size_t local_id(std::size_t d) const noexcept {
    return local_id_[d];
  }
  [[nodiscard]] std::size_t global_id(std::size_t d) const noexcept {
    return group_id_[d] * local_.extent(d) + local_id_[d];
  }

  /// Allocate `count` Ts from the group-shared local arena. All items of the
  /// group receive the same span (same allocation sequence → same offsets).
  template <typename T>
  [[nodiscard]] std::span<T> local_alloc(std::size_t count) {
    const std::size_t align = alignof(T);
    std::size_t offset = (cursor_ + align - 1) / align * align;
    const std::size_t bytes = count * sizeof(T);
    if (offset + bytes > group_state_->capacity())
      throw ClException(Status::kOutOfLocalMemory,
                        "local_alloc exceeds the group's local arena");
    cursor_ = offset + bytes;
    return {reinterpret_cast<T*>(group_state_->base() + offset), count};
  }

  /// Checked view of a global buffer (clcheck accessor). With checking off
  /// this is exactly `buffer.as<T>()` wrapped unchecked — zero overhead,
  /// identical behavior; with checking on every access is bounds-validated
  /// and recorded in the buffer's shadow under `name`.
  template <typename T>
  [[nodiscard]] CheckedSpan<T> view(const Buffer& buffer,
                                    std::string_view name) {
    auto span = buffer.template as<T>();
    if (checker_ == nullptr) return CheckedSpan<T>(span);
    const auto res = checker_->launch().global_resource(
        buffer.storage_key(), buffer.size_bytes(), name);
    return CheckedSpan<T>(span, checker_, res.shadow, res.id, 0);
  }

  /// Checked local_alloc (clcheck accessor): same allocation semantics as
  /// local_alloc, with bounds/race/init checking and allocation-divergence
  /// linting when checking is on.
  template <typename T>
  [[nodiscard]] CheckedSpan<T> local_view(std::size_t count,
                                          std::string_view name) {
    auto span = local_alloc<T>(count);
    if (checker_ == nullptr) return CheckedSpan<T>(span);
    const std::size_t offset = static_cast<std::size_t>(
        reinterpret_cast<const std::byte*>(span.data()) -
        group_state_->base());
    const std::uint32_t id = checker_->launch().intern_name(name);
    checker_->on_local_alloc({offset, count * sizeof(T), alignof(T)}, id);
    return CheckedSpan<T>(span, checker_, &checker_->group().local_shadow(),
                          id, offset);
  }

  /// Work-group barrier; usage: `co_await ctx.barrier();`
  [[nodiscard]] BarrierTag barrier() const noexcept { return {}; }

  /// Executor hook: attach the clcheck per-item state (null = unchecked).
  void bind_checker(check::ItemChecker* checker) noexcept {
    checker_ = checker;
  }

  /// Executor hook (direct-dispatch path): retarget this context at another
  /// work-item of the same group, resetting the local-allocation cursor.
  /// Only legal between work-item runs — the direct path destroys each
  /// coroutine before the next one observes the context.
  void reset_item(std::array<std::size_t, 3> local_id) noexcept {
    local_id_ = local_id;
    cursor_ = 0;
  }

 private:
  NDRange global_;
  NDRange local_;
  std::size_t dims_;
  std::array<std::size_t, 3> group_id_;
  std::array<std::size_t, 3> local_id_;
  WorkGroupState* group_state_;
  check::ItemChecker* checker_ = nullptr;
  std::size_t cursor_ = 0;
};

/// A kernel's functional body: invoked once per work-item.
using KernelBody = std::function<WorkItemTask(WorkItemCtx&)>;

}  // namespace pt::clsim
