#pragma once

// Thread-local size-bucketed freelist arena for work-item coroutine frames.
//
// A tuning run launches millions of work-items, and every one of them is a
// C++20 coroutine whose frame the compiler heap-allocates. Routing those
// allocations through a per-thread freelist turns the steady-state cost of
// a frame into a pointer pop/push instead of a malloc/free pair, without
// any cross-thread synchronization: frames are created and destroyed on
// the thread that runs the work-group, and a block freed on a different
// thread simply joins that thread's cache.
//
// Each block carries a small header recording its bucket size, so
// deallocation needs no size argument (coroutine frames are destroyed via
// the promise's unsized operator delete). Blocks above kMaxPooledBytes
// bypass the pool. Every cached block is released when its thread exits,
// so the pool is leak-clean under ASan.

#include <cstddef>
#include <cstdint>

namespace pt::clsim {

class FramePool {
 public:
  /// Size classes are multiples of this many bytes (header included).
  static constexpr std::size_t kGranularity = 64;
  /// Largest block (header included) served from the freelists; bigger
  /// requests go straight to the global heap.
  static constexpr std::size_t kMaxPooledBytes = 8192;
  /// Blocks cached per bucket per thread before frees fall through to the
  /// heap — bounds the idle memory a burst of large groups can pin.
  static constexpr std::size_t kMaxFreePerBucket = 128;

  /// Per-thread counters (reads report the calling thread's cache only).
  struct Stats {
    std::uint64_t allocations = 0;  // total allocate() calls
    std::uint64_t reuses = 0;       // served by popping a freelist
    std::uint64_t oversized = 0;    // above kMaxPooledBytes, heap direct
  };

  [[nodiscard]] static void* allocate(std::size_t bytes);
  static void deallocate(void* ptr) noexcept;

  [[nodiscard]] static Stats thread_stats() noexcept;
  static void reset_thread_stats() noexcept;

  /// Route this thread's allocations straight to the heap (freeing stays
  /// header-driven, so blocks cross the mode switch safely). This exists so
  /// bench/micro_exec can reproduce the pre-pool executor as its baseline;
  /// production code never sets it.
  static void set_thread_bypass(bool bypass) noexcept;
  [[nodiscard]] static bool thread_bypass() noexcept;

  /// Return every block cached by the calling thread to the heap.
  static void trim_thread_cache() noexcept;
};

}  // namespace pt::clsim
