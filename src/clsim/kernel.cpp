#include "clsim/kernel.hpp"

#include <sstream>

namespace pt::clsim {

int BuildOptions::require(const std::string& name) const {
  const auto it = defines_.find(name);
  if (it == defines_.end())
    throw ClException(Status::kBuildProgramFailure,
                      "missing required define " + name);
  return it->second;
}

int BuildOptions::get(const std::string& name, int fallback) const noexcept {
  const auto it = defines_.find(name);
  return it == defines_.end() ? fallback : it->second;
}

std::string BuildOptions::to_string() const {
  std::ostringstream ss;
  bool first = true;
  for (const auto& [name, value] : defines_) {
    if (!first) ss << ' ';
    first = false;
    ss << "-D " << name << '=' << value;
  }
  return ss.str();
}

void KernelArgs::set(std::size_t index, KernelArg arg) {
  if (index >= args_.size()) args_.resize(index + 1);
  args_[index] = std::move(arg);
}

const KernelArg& KernelArgs::at(std::size_t index) const {
  if (index >= args_.size() ||
      std::holds_alternative<std::monostate>(args_[index]))
    throw ClException(Status::kInvalidKernelArgs,
                      "kernel argument " + std::to_string(index) + " not set");
  return args_[index];
}

Buffer KernelArgs::buffer(std::size_t index) const {
  const auto& arg = at(index);
  if (const auto* b = std::get_if<Buffer>(&arg)) return *b;
  throw ClException(Status::kInvalidKernelArgs,
                    "argument " + std::to_string(index) + " is not a buffer");
}

Image2D KernelArgs::image2d(std::size_t index) const {
  const auto& arg = at(index);
  if (const auto* img = std::get_if<Image2D>(&arg)) return *img;
  throw ClException(Status::kInvalidKernelArgs,
                    "argument " + std::to_string(index) + " is not an Image2D");
}

Image3D KernelArgs::image3d(std::size_t index) const {
  const auto& arg = at(index);
  if (const auto* img = std::get_if<Image3D>(&arg)) return *img;
  throw ClException(Status::kInvalidKernelArgs,
                    "argument " + std::to_string(index) + " is not an Image3D");
}

int KernelArgs::scalar_int(std::size_t index) const {
  const auto& arg = at(index);
  if (const auto* v = std::get_if<int>(&arg)) return *v;
  throw ClException(Status::kInvalidKernelArgs,
                    "argument " + std::to_string(index) + " is not an int");
}

float KernelArgs::scalar_float(std::size_t index) const {
  const auto& arg = at(index);
  if (const auto* v = std::get_if<float>(&arg)) return *v;
  throw ClException(Status::kInvalidKernelArgs,
                    "argument " + std::to_string(index) + " is not a float");
}

Kernel::Kernel(Device device, CompiledKernel compiled)
    : device_(std::move(device)),
      compiled_(std::make_shared<const CompiledKernel>(std::move(compiled))) {}

Status Kernel::validate_launch(const NDRange& global,
                               const NDRange& local) const noexcept {
  const DeviceInfo& dev = device_.info();
  const std::size_t dims = global.dimensions();
  if (dims == 0 || dims > 3) return Status::kInvalidWorkDimension;
  if (local.dimensions() != dims) return Status::kInvalidWorkGroupSize;

  for (std::size_t d = 0; d < dims; ++d) {
    if (local[d] == 0) return Status::kInvalidWorkGroupSize;
    if (local[d] > dev.max_work_item_sizes[d]) return Status::kInvalidWorkItemSize;
    if (global[d] % local[d] != 0) return Status::kInvalidWorkGroupSize;
  }
  const std::size_t group_items = local.total();
  if (group_items > dev.max_work_group_size)
    return Status::kInvalidWorkGroupSize;

  const KernelProfile& prof = compiled_->profile;
  if (prof.local_mem_bytes_per_group > dev.local_mem_bytes)
    return Status::kOutOfLocalMemory;
  if (prof.constant_mem_bytes > dev.constant_mem_bytes)
    return Status::kOutOfResources;
  // A group must fit the register file of one compute unit.
  if (prof.registers_per_item * group_items > dev.registers_per_cu)
    return Status::kOutOfResources;
  if (prof.uses_space(MemorySpace::kImage) && !dev.images_supported)
    return Status::kInvalidOperation;
  return Status::kSuccess;
}

void Program::add_kernel(const std::string& kernel_name,
                         KernelFactory factory) {
  if (!factory)
    throw ClException(Status::kInvalidValue, "null kernel factory");
  factories_[kernel_name] = std::move(factory);
}

std::vector<std::string> Program::kernel_names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, _] : factories_) names.push_back(name);
  return names;
}

Program::BuildResult Program::build(const Device& device,
                                    const BuildOptions& options) const {
  BuildResult result;
  result.kernels.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    CompiledKernel compiled = factory(device.info(), options);
    result.build_time_ms +=
        device.oracle().compile_time_ms(device.info(), compiled.profile);
    result.kernels.emplace_back(device, std::move(compiled));
  }
  return result;
}

std::pair<Kernel, double> Program::build_kernel(
    const Device& device, const std::string& kernel_name,
    const BuildOptions& options) const {
  const auto it = factories_.find(kernel_name);
  if (it == factories_.end())
    throw ClException(Status::kInvalidKernelName,
                      "no kernel named " + kernel_name + " in program " +
                          name_);
  CompiledKernel compiled = it->second(device.info(), options);
  const double build_ms =
      device.oracle().compile_time_ms(device.info(), compiled.profile);
  return {Kernel(device, std::move(compiled)), build_ms};
}

}  // namespace pt::clsim
