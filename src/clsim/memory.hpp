#pragma once

// Memory objects of the simulated runtime. They are functionally backed by
// host memory (the simulator executes kernels on the host), while *timing*
// of traffic to them is the oracle's business. Images provide the clamped
// sampling semantics the raycasting benchmark relies on.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

namespace pt::clsim {

/// Image addressing modes (CLK_ADDRESS_* analogues) for sampling.
enum class AddressMode { kClampToEdge, kRepeat };

/// Untyped linear device buffer (cl_mem analogue). Handle semantics: copies
/// share storage, matching OpenCL's reference-counted cl_mem.
class Buffer {
 public:
  explicit Buffer(std::size_t bytes)
      : storage_(std::make_shared<std::vector<unsigned char>>(bytes, 0)) {}

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return storage_->size();
  }

  /// Typed view; the byte size must be an exact multiple of sizeof(T) and
  /// the storage must satisfy alignof(T) — reinterpreting under-aligned
  /// storage as an over-aligned T would be undefined behaviour.
  /// Constness is shallow (handle semantics, like cl_mem): pass `const T`
  /// for a read-only view.
  template <typename T>
  [[nodiscard]] std::span<T> as() const {
    if (storage_->size() % sizeof(T) != 0)
      throw std::invalid_argument("Buffer::as: size not a multiple of T");
    if (reinterpret_cast<std::uintptr_t>(storage_->data()) % alignof(T) != 0)
      throw std::invalid_argument(
          "Buffer::as: storage is under-aligned for T");
    return {reinterpret_cast<T*>(storage_->data()),
            storage_->size() / sizeof(T)};
  }

  void write(const void* src, std::size_t bytes, std::size_t offset = 0) const;
  void read(void* dst, std::size_t bytes, std::size_t offset = 0) const;

  [[nodiscard]] bool shares_storage_with(const Buffer& other) const noexcept {
    return storage_ == other.storage_;
  }

  /// Storage identity (stable across handle copies) — the clcheck resource
  /// key, so every view of one buffer shares one shadow.
  [[nodiscard]] const void* storage_key() const noexcept {
    return storage_.get();
  }

 private:
  std::shared_ptr<std::vector<unsigned char>> storage_;
};

/// 2D image of float texels with `channels` components. Sampling clamps to
/// the edge (CLK_ADDRESS_CLAMP_TO_EDGE) — what the benchmarks use.
class Image2D {
 public:
  Image2D(std::size_t width, std::size_t height, std::size_t channels = 1);

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return data_->size() * sizeof(float);
  }

  /// Texel reference (shallow constness — handle semantics like cl_mem).
  [[nodiscard]] float& at(std::size_t x, std::size_t y,
                          std::size_t c = 0) const;

  /// Clamped integer-coordinate read (out-of-range coordinates clamp).
  [[nodiscard]] float sample(long x, long y, std::size_t c = 0) const noexcept;

  /// Integer-coordinate read with an explicit addressing mode.
  [[nodiscard]] float sample(long x, long y, std::size_t c,
                             AddressMode mode) const noexcept;

  /// Bilinear read at continuous texel coordinates (CLK_FILTER_LINEAR with
  /// the OpenCL half-texel convention: the centre of texel i is i + 0.5).
  [[nodiscard]] float sample_linear(
      float x, float y, std::size_t c = 0,
      AddressMode mode = AddressMode::kClampToEdge) const noexcept;

  [[nodiscard]] std::span<float> data() const noexcept { return *data_; }

 private:
  std::size_t width_;
  std::size_t height_;
  std::size_t channels_;
  std::shared_ptr<std::vector<float>> data_;
};

/// 3D image (volume) of single-float texels with trilinear-free nearest
/// sampling and edge clamping, as the raycaster needs.
class Image3D {
 public:
  Image3D(std::size_t width, std::size_t height, std::size_t depth);

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return data_->size() * sizeof(float);
  }

  /// Voxel reference (shallow constness — handle semantics like cl_mem).
  [[nodiscard]] float& at(std::size_t x, std::size_t y, std::size_t z) const;

  [[nodiscard]] float sample(long x, long y, long z) const noexcept;

  /// Trilinear read at continuous voxel coordinates (half-texel convention,
  /// clamp-to-edge).
  [[nodiscard]] float sample_linear(float x, float y, float z) const noexcept;

  [[nodiscard]] std::span<float> data() const noexcept { return *data_; }

 private:
  std::size_t width_;
  std::size_t height_;
  std::size_t depth_;
  std::shared_ptr<std::vector<float>> data_;
};

}  // namespace pt::clsim
