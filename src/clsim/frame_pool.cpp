#include "clsim/frame_pool.hpp"

#include <array>
#include <cstring>
#include <new>

namespace pt::clsim {

namespace {

/// Prefix stored in front of every block: the bucketed block size (header
/// included), or 0 for oversized blocks that bypass the pool. Padded to
/// max_align_t so the frame behind it keeps default new-alignment.
constexpr std::size_t kHeaderBytes = alignof(std::max_align_t);
static_assert(kHeaderBytes >= sizeof(std::size_t));
static_assert(FramePool::kGranularity % kHeaderBytes == 0);

/// Freed blocks are chained through their first pointer-sized bytes.
struct FreeNode {
  FreeNode* next;
};

constexpr std::size_t kBuckets =
    FramePool::kMaxPooledBytes / FramePool::kGranularity;

struct ThreadCache {
  std::array<FreeNode*, kBuckets> heads{};
  std::array<std::size_t, kBuckets> counts{};
  FramePool::Stats stats;
  bool bypass = false;

  ~ThreadCache() { release_all(); }

  void release_all() noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) {
      FreeNode* node = heads[b];
      while (node != nullptr) {
        FreeNode* next = node->next;
        ::operator delete(static_cast<void*>(node));
        node = next;
      }
      heads[b] = nullptr;
      counts[b] = 0;
    }
  }
};

ThreadCache& cache() noexcept {
  thread_local ThreadCache tc;
  return tc;
}

std::size_t read_header(void* raw) noexcept {
  std::size_t size = 0;
  std::memcpy(&size, raw, sizeof(size));
  return size;
}

void write_header(void* raw, std::size_t size) noexcept {
  std::memcpy(raw, &size, sizeof(size));
}

}  // namespace

void* FramePool::allocate(std::size_t bytes) {
  ThreadCache& tc = cache();
  ++tc.stats.allocations;
  const std::size_t total = bytes + kHeaderBytes;
  if (tc.bypass) {
    void* raw = ::operator new(total);
    write_header(raw, 0);
    return static_cast<char*>(raw) + kHeaderBytes;
  }
  if (total > kMaxPooledBytes) {
    ++tc.stats.oversized;
    void* raw = ::operator new(total);
    write_header(raw, 0);
    return static_cast<char*>(raw) + kHeaderBytes;
  }
  const std::size_t rounded =
      (total + kGranularity - 1) / kGranularity * kGranularity;
  const std::size_t bucket = rounded / kGranularity - 1;
  void* raw;  // NOLINT(cppcoreguidelines-init-variables)
  if (tc.heads[bucket] != nullptr) {
    FreeNode* node = tc.heads[bucket];
    tc.heads[bucket] = node->next;
    --tc.counts[bucket];
    ++tc.stats.reuses;
    raw = static_cast<void*>(node);
  } else {
    raw = ::operator new(rounded);
  }
  write_header(raw, rounded);
  return static_cast<char*>(raw) + kHeaderBytes;
}

void FramePool::deallocate(void* ptr) noexcept {
  if (ptr == nullptr) return;
  void* raw = static_cast<char*>(ptr) - kHeaderBytes;
  const std::size_t rounded = read_header(raw);
  if (rounded == 0) {
    ::operator delete(raw);
    return;
  }
  ThreadCache& tc = cache();
  const std::size_t bucket = rounded / kGranularity - 1;
  if (tc.counts[bucket] >= kMaxFreePerBucket) {
    ::operator delete(raw);
    return;
  }
  auto* node = static_cast<FreeNode*>(raw);
  node->next = tc.heads[bucket];
  tc.heads[bucket] = node;
  ++tc.counts[bucket];
}

FramePool::Stats FramePool::thread_stats() noexcept { return cache().stats; }

void FramePool::reset_thread_stats() noexcept { cache().stats = Stats{}; }

void FramePool::trim_thread_cache() noexcept { cache().release_all(); }

void FramePool::set_thread_bypass(bool bypass) noexcept {
  cache().bypass = bypass;
}

bool FramePool::thread_bypass() noexcept { return cache().bypass; }

}  // namespace pt::clsim
