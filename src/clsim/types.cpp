#include "clsim/types.hpp"

#include <sstream>

namespace pt::clsim {

std::string to_string(const NDRange& range) {
  std::ostringstream ss;
  ss << '(';
  const std::size_t dims = range.dimensions();
  for (std::size_t d = 0; d < dims; ++d) {
    if (d) ss << ", ";
    ss << range[d];
  }
  ss << ')';
  return ss.str();
}

const char* to_string(DeviceType type) noexcept {
  switch (type) {
    case DeviceType::kCpu: return "CPU";
    case DeviceType::kGpu: return "GPU";
    case DeviceType::kAccelerator: return "Accelerator";
  }
  return "Unknown";
}

const char* to_string(MemorySpace space) noexcept {
  switch (space) {
    case MemorySpace::kGlobal: return "global";
    case MemorySpace::kLocal: return "local";
    case MemorySpace::kConstant: return "constant";
    case MemorySpace::kImage: return "image";
  }
  return "unknown";
}

}  // namespace pt::clsim
