#pragma once

// In-order command queue with profiling, over a simulated timeline.
//
// enqueue_nd_range validates the launch exactly like clEnqueueNDRangeKernel
// (invalid tuning configurations throw ClException here), asks the device's
// timing oracle for the duration, advances the queue's simulated clock, and
// — when the queue is functional — also executes the kernel body on the host
// so results can be checked.

#include <cstddef>
#include <string>
#include <vector>

#include "clsim/device.hpp"
#include "clsim/executor.hpp"
#include "clsim/kernel.hpp"
#include "clsim/memory.hpp"

namespace pt::clsim {

/// Whether enqueued kernels actually run on the host (functional check) or
/// only advance the simulated clock (fast path for tuning sweeps).
enum class ExecMode { kTimingOnly, kFunctional };

/// Profiling record of one command, on the queue's simulated timeline (ms).
struct Event {
  std::string label;
  std::uint64_t id = 0;  // per-queue sequence number
  double queued_ms = 0.0;
  double start_ms = 0.0;
  double end_ms = 0.0;
  /// Stored explicitly (not end-start) so a command's duration does not
  /// depend on where on the timeline it happened to land.
  double duration = 0.0;

  [[nodiscard]] double duration_ms() const noexcept { return duration; }
};

/// Events a command must wait for before it may start (cl_event wait list).
using WaitList = std::vector<Event>;

class CommandQueue {
 public:
  struct Options {
    ExecMode mode = ExecMode::kFunctional;
    /// Thread pool for functional execution (nullptr = sequential).
    common::ThreadPool* pool = nullptr;
    /// In-order (default): each command starts when its predecessor ends.
    /// Out-of-order: a command starts as soon as its wait list is satisfied
    /// (CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE) — models parallel streams.
    bool out_of_order = false;
    /// clcheck sanitizer mode. kOn instruments functional launches (bounds,
    /// races, barrier/allocation lints) and accumulates findings in
    /// check_report(); kOff (default) is bit-identical to pre-clcheck runs.
    CheckMode check = CheckMode::kOff;
    /// Keep at most this many Event records in events(). 0 (default) keeps
    /// every event, the historic behavior. Long-lived queues — tuner
    /// evaluators enqueue tens of thousands of launches per sweep — set a
    /// bound so memory stays flat; the aggregate counters (now_ms,
    /// total_kernel_ms, total_transfer_ms, total_build_ms) are unaffected
    /// by trimming, only the oldest per-event records are dropped.
    std::size_t event_retention = 0;
    /// Executor tuning knobs for functional launches (fast-path toggle).
    NDRangeExecutor::Options executor = {};
  };

  explicit CommandQueue(Device device) : CommandQueue(std::move(device), Options{}) {}
  CommandQueue(Device device, Options options);

  [[nodiscard]] const Device& device() const noexcept { return device_; }
  [[nodiscard]] ExecMode mode() const noexcept { return options_.mode; }

  /// Launch a kernel. Throws ClException for invalid configurations (the
  /// status identifies why) and propagates kernel-body exceptions.
  Event enqueue_nd_range(const Kernel& kernel, const NDRange& global,
                         const NDRange& local,
                         const WaitList& wait_list = {});

  /// Host -> device transfer into a buffer.
  Event enqueue_write(Buffer& dst, const void* src, std::size_t bytes,
                      std::size_t offset = 0,
                      const WaitList& wait_list = {});

  /// Device -> host transfer out of a buffer.
  Event enqueue_read(const Buffer& src, void* dst, std::size_t bytes,
                     std::size_t offset = 0,
                     const WaitList& wait_list = {});

  /// Device-side buffer-to-buffer copy (clEnqueueCopyBuffer analogue).
  Event enqueue_copy(const Buffer& src, Buffer& dst, std::size_t bytes,
                     std::size_t src_offset = 0, std::size_t dst_offset = 0,
                     const WaitList& wait_list = {});

  /// Fill a buffer range with a repeating pattern (clEnqueueFillBuffer).
  Event enqueue_fill(Buffer& dst, const void* pattern,
                     std::size_t pattern_bytes, std::size_t bytes,
                     std::size_t offset = 0, const WaitList& wait_list = {});

  /// A marker event covering everything enqueued so far (clEnqueueMarker).
  Event enqueue_marker();

  /// Charge simulated build time to the timeline (helper so data-gathering
  /// cost accounting includes compilation, as in the paper's section 6).
  Event record_build(double build_time_ms, const std::string& label);

  /// Block until all enqueued work completes. The simulation is synchronous,
  /// so this only exists for API fidelity.
  void finish() noexcept {}

  /// Current simulated time: the end of the latest-finishing command.
  [[nodiscard]] double now_ms() const noexcept { return now_ms_; }

  /// Sum of kernel-execution durations so far.
  [[nodiscard]] double total_kernel_ms() const noexcept {
    return total_kernel_ms_;
  }
  /// Sum of transfer durations so far.
  [[nodiscard]] double total_transfer_ms() const noexcept {
    return total_transfer_ms_;
  }
  /// Sum of build durations recorded so far.
  [[nodiscard]] double total_build_ms() const noexcept {
    return total_build_ms_;
  }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }

  /// Findings accumulated by checked launches (empty unless Options::check
  /// is CheckMode::kOn).
  [[nodiscard]] const CheckReport& check_report() const noexcept {
    return check_report_;
  }
  void clear_check_report() noexcept { check_report_.clear(); }

 private:
  Event push_event(const std::string& label, double duration_ms,
                   const WaitList& wait_list);
  /// Drop the oldest events when Options::event_retention is exceeded.
  void trim_events();

  Device device_;
  Options options_;
  double now_ms_ = 0.0;   // latest completion time
  double tail_ms_ = 0.0;  // in-order chain position
  std::uint64_t next_event_id_ = 0;
  double total_kernel_ms_ = 0.0;
  double total_transfer_ms_ = 0.0;
  double total_build_ms_ = 0.0;
  std::vector<Event> events_;
  CheckReport check_report_;
};

}  // namespace pt::clsim
