#pragma once

// Functional ND-range executor: runs a kernel body over every work-item of
// an ND-range with OpenCL semantics (work-groups, local memory, barriers).
// Used for correctness; timing comes from the device's oracle, not from
// host wall-clock.
//
// Two execution paths (DESIGN.md §3, "execution paths"):
//  - the general *round* scheduler: one coroutine, context and task slot
//    per work-item, resumed in rounds between barriers;
//  - a *direct-dispatch* fast path, taken when the launched kernel's
//    profile declares zero barriers: each work-item coroutine is created,
//    resumed to completion and destroyed immediately, reusing a single
//    per-group context. A runtime guard catches kernels whose profile lied
//    — an unexpected barrier suspension on the group's first item falls
//    back to the round scheduler for that group, so results are always
//    identical to the round path.

#include <array>
#include <cstddef>
#include <vector>

#include "clsim/kernel_profile.hpp"
#include "clsim/types.hpp"
#include "clsim/work_item.hpp"
#include "common/thread_pool.hpp"

namespace pt::clsim {

class NDRangeExecutor {
 public:
  struct Options {
    /// Allow barrier-free direct dispatch when the launch carries a profile
    /// with barriers_per_item == 0. Off forces the round scheduler for
    /// every group (the pre-fast-path behavior; used by benchmarks and
    /// parity tests).
    bool enable_fast_path = true;
  };

  /// pool == nullptr executes work-groups sequentially on the calling
  /// thread; otherwise groups are distributed across the pool (they are
  /// independent by construction, like on a real device).
  explicit NDRangeExecutor(common::ThreadPool* pool = nullptr)
      : pool_(pool) {}
  NDRangeExecutor(common::ThreadPool* pool, Options options)
      : pool_(pool), options_(options) {}

  /// Execute `body` for every work-item. `local_mem_bytes` sizes each
  /// group's local arena. The local range must evenly divide the global
  /// range in every used dimension (checked; the queue validates against
  /// device limits before calling this).
  ///
  /// Throws ClException(kInvalidOperation) on barrier divergence (some items
  /// of a group finished while others wait at a barrier), and rethrows any
  /// exception escaping a kernel body.
  ///
  /// A non-null `check` enables clcheck instrumentation: work-groups run
  /// sequentially on the calling thread (deterministic findings, no shadow
  /// synchronization), barrier divergence becomes a recorded finding naming
  /// the stuck items instead of an exception, and divergent local_alloc
  /// counts are linted at the end of each group. Checked launches always
  /// use the round scheduler.
  ///
  /// A non-null `profile` describes the compiled kernel being launched;
  /// when it declares zero barriers the barrier-free direct-dispatch path
  /// runs the group without round scheduling. Without a profile every
  /// group takes the round path.
  void run(const NDRange& global, const NDRange& local,
           std::size_t local_mem_bytes, const KernelBody& body,
           check::LaunchCheckState* check = nullptr,
           const KernelProfile* profile = nullptr) const;

 private:
  /// Work-items a single pool task should receive at minimum; launches
  /// whose groups are smaller get several groups batched per task.
  static constexpr std::size_t kTargetItemsPerTask = 1024;

  void run_group(const NDRange& global, const NDRange& local,
                 std::size_t dims, std::array<std::size_t, 3> group_id,
                 std::size_t group_flat, std::size_t local_mem_bytes,
                 const KernelBody& body,
                 check::LaunchCheckState* check) const;

  void run_group_direct(const NDRange& global, const NDRange& local,
                        std::size_t dims, std::array<std::size_t, 3> group_id,
                        std::size_t group_flat, std::size_t local_mem_bytes,
                        const KernelBody& body) const;

  /// Round-based scheduling over an existing task set. The first
  /// `first_round_resumed` tasks have already been resumed once this round
  /// (direct-path fallback hands over item 0 parked at its first barrier).
  /// Returns false when the group was abandoned after recording a
  /// barrier-divergence finding (check mode only).
  bool run_rounds(std::vector<WorkItemTask>& tasks, std::size_t items,
                  std::size_t first_round_resumed,
                  check::LaunchCheckState* check,
                  check::GroupCheckState* group_check,
                  std::size_t group_flat) const;

  common::ThreadPool* pool_;
  Options options_;
};

}  // namespace pt::clsim
