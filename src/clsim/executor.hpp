#pragma once

// Functional ND-range executor: runs a kernel body over every work-item of
// an ND-range with OpenCL semantics (work-groups, local memory, barriers).
// Used for correctness; timing comes from the device's oracle, not from
// host wall-clock.

#include <cstddef>

#include "clsim/types.hpp"
#include "clsim/work_item.hpp"
#include "common/thread_pool.hpp"

namespace pt::clsim {

class NDRangeExecutor {
 public:
  /// pool == nullptr executes work-groups sequentially on the calling
  /// thread; otherwise groups are distributed across the pool (they are
  /// independent by construction, like on a real device).
  explicit NDRangeExecutor(common::ThreadPool* pool = nullptr) : pool_(pool) {}

  /// Execute `body` for every work-item. `local_mem_bytes` sizes each
  /// group's local arena. The local range must evenly divide the global
  /// range in every used dimension (checked; the queue validates against
  /// device limits before calling this).
  ///
  /// Throws ClException(kInvalidOperation) on barrier divergence (some items
  /// of a group finished while others wait at a barrier), and rethrows any
  /// exception escaping a kernel body.
  ///
  /// A non-null `check` enables clcheck instrumentation: work-groups run
  /// sequentially on the calling thread (deterministic findings, no shadow
  /// synchronization), barrier divergence becomes a recorded finding naming
  /// the stuck items instead of an exception, and divergent local_alloc
  /// counts are linted at the end of each group.
  void run(const NDRange& global, const NDRange& local,
           std::size_t local_mem_bytes, const KernelBody& body,
           check::LaunchCheckState* check = nullptr) const;

 private:
  void run_group(const NDRange& global, const NDRange& local,
                 std::size_t dims, std::array<std::size_t, 3> group_id,
                 std::size_t group_flat, std::size_t local_mem_bytes,
                 const KernelBody& body,
                 check::LaunchCheckState* check) const;

  common::ThreadPool* pool_;
};

}  // namespace pt::clsim
