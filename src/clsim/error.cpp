#include "clsim/error.hpp"

namespace pt::clsim {

const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::kSuccess: return "CL_SUCCESS";
    case Status::kDeviceNotFound: return "CL_DEVICE_NOT_FOUND";
    case Status::kBuildProgramFailure: return "CL_BUILD_PROGRAM_FAILURE";
    case Status::kInvalidKernelName: return "CL_INVALID_KERNEL_NAME";
    case Status::kInvalidKernelArgs: return "CL_INVALID_KERNEL_ARGS";
    case Status::kInvalidWorkDimension: return "CL_INVALID_WORK_DIMENSION";
    case Status::kInvalidWorkGroupSize: return "CL_INVALID_WORK_GROUP_SIZE";
    case Status::kInvalidWorkItemSize: return "CL_INVALID_WORK_ITEM_SIZE";
    case Status::kOutOfResources: return "CL_OUT_OF_RESOURCES";
    case Status::kOutOfLocalMemory: return "CL_OUT_OF_LOCAL_MEMORY";
    case Status::kInvalidValue: return "CL_INVALID_VALUE";
    case Status::kInvalidOperation: return "CL_INVALID_OPERATION";
    case Status::kProfilingInfoNotAvailable:
      return "CL_PROFILING_INFO_NOT_AVAILABLE";
  }
  return "CL_UNKNOWN";
}

}  // namespace pt::clsim
