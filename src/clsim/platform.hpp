#pragma once

// Platform: the device roster (clGetPlatformIDs/clGetDeviceIDs analogue).
// Device construction lives in archsim (the catalog of modeled hardware);
// this class only holds and queries a set of devices.

#include <optional>
#include <string>
#include <vector>

#include "clsim/device.hpp"

namespace pt::clsim {

class Platform {
 public:
  Platform(std::string name, std::vector<Device> devices)
      : name_(std::move(name)), devices_(std::move(devices)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Device>& devices() const noexcept {
    return devices_;
  }

  /// All devices of the given type.
  [[nodiscard]] std::vector<Device> devices_of_type(DeviceType type) const;

  /// Device whose name contains `needle` (case-sensitive), if any.
  [[nodiscard]] std::optional<Device> find_device(
      const std::string& needle) const;

  /// Device by exact name; throws ClException(kDeviceNotFound) if absent.
  [[nodiscard]] Device device_by_name(const std::string& name) const;

 private:
  std::string name_;
  std::vector<Device> devices_;
};

}  // namespace pt::clsim
