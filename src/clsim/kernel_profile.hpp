#pragma once

// KernelProfile: the static, per-work-item description of a compiled kernel
// that the architectural timing model consumes. This is the information a
// real OpenCL compiler has after specializing a kernel for one tuning
// configuration (macros substituted, loops unrolled, memory spaces chosen).
//
// The benchmark kernel factories emit one profile per configuration; the
// archsim TimingModel turns (profile, launch geometry, device) into time.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "clsim/types.hpp"

namespace pt::clsim {

/// Spatial pattern of a memory stream across neighbouring work-items.
enum class AccessPattern {
  kCoalesced,   // consecutive work-items touch consecutive addresses
  kStrided,     // constant stride > element size between work-items
  kBroadcast,   // all work-items of a group read the same address
  kTiled2D,     // 2D-local footprint (stencil halo, texture-friendly)
  kRandom,      // data-dependent, no locality
};

[[nodiscard]] const char* to_string(AccessPattern pattern) noexcept;

/// One memory stream of the kernel: `accesses_per_item` touches of
/// `bytes_per_access` each, in the given logical space and pattern.
struct MemoryStream {
  MemorySpace space = MemorySpace::kGlobal;
  AccessPattern pattern = AccessPattern::kCoalesced;
  double accesses_per_item = 0.0;   // average per work-item (loops included)
  std::size_t bytes_per_access = 4;
  /// For kStrided: stride between consecutive work-items' addresses, bytes.
  std::size_t stride_bytes = 0;
  /// Average number of distinct work-items that touch each address (> 1
  /// means inter-item reuse that caches can exploit).
  double reuse_factor = 1.0;
  bool is_write = false;
};

/// Static loop structure relevant to unrolling: the timing model charges
/// loop-control overhead per iteration and credits ILP from unrolling.
struct LoopInfo {
  double trip_count = 1.0;     // average dynamic trips per work-item
  std::size_t unroll_factor = 1;
  /// True when unrolling is requested via an OpenCL driver pragma rather
  /// than performed manually in the source; some drivers apply pragmas
  /// unreliably (the paper blames this for AMD's accuracy gap, section 7).
  bool via_driver_pragma = false;
};

/// Full per-configuration profile of a compiled kernel.
struct KernelProfile {
  std::string kernel_name;

  // Arithmetic per work-item (after unrolling/specialization).
  double flops_per_item = 0.0;
  double int_ops_per_item = 0.0;

  // Memory behaviour.
  std::vector<MemoryStream> streams;

  // Loop nest (innermost loops that unrolling affects).
  std::vector<LoopInfo> loops;

  // Resources.
  std::size_t local_mem_bytes_per_group = 0;  // static + dynamic local usage
  std::size_t constant_mem_bytes = 0;         // __constant allocations
  std::size_t registers_per_item = 16;
  double barriers_per_item = 0.0;

  /// Fraction of instructions under divergent control flow (0 = uniform).
  double divergence = 0.0;

  /// Opaque fingerprint of the tuning configuration that produced this
  /// profile; drives the deterministic "unmodeled effects" noise so a given
  /// (device, configuration) pair always times the same.
  std::uint64_t config_fingerprint = 0;

  /// Rough source complexity in "statements" — drives compile-time modeling.
  double compile_complexity = 100.0;

  [[nodiscard]] double total_global_traffic_bytes_per_item() const noexcept;
  [[nodiscard]] bool uses_space(MemorySpace space) const noexcept;
  [[nodiscard]] bool any_pragma_unroll() const noexcept;
};

/// 64-bit FNV-1a over a byte string (used to build config fingerprints).
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t size) noexcept;

/// Convenience: fingerprint from a list of integer parameter values.
[[nodiscard]] std::uint64_t fingerprint_values(
    const std::vector<int>& values, std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept;

}  // namespace pt::clsim
