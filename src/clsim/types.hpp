#pragma once

// Basic value types of the simulated OpenCL runtime.

#include <array>
#include <cstddef>
#include <string>

namespace pt::clsim {

/// Up to three dimensions of work-item counts. A dimension of 0 is "unused";
/// used dimensions must be contiguous starting at x.
class NDRange {
 public:
  constexpr NDRange() = default;
  constexpr explicit NDRange(std::size_t x) : sizes_{x, 0, 0} {}
  constexpr NDRange(std::size_t x, std::size_t y) : sizes_{x, y, 0} {}
  constexpr NDRange(std::size_t x, std::size_t y, std::size_t z)
      : sizes_{x, y, z} {}

  [[nodiscard]] constexpr std::size_t dimensions() const noexcept {
    if (sizes_[2] != 0) return 3;
    if (sizes_[1] != 0) return 2;
    if (sizes_[0] != 0) return 1;
    return 0;
  }

  [[nodiscard]] constexpr std::size_t operator[](std::size_t d) const noexcept {
    return sizes_[d];
  }

  /// Size of dimension d treating unused dimensions as 1 (for products).
  [[nodiscard]] constexpr std::size_t extent(std::size_t d) const noexcept {
    return sizes_[d] == 0 ? 1 : sizes_[d];
  }

  [[nodiscard]] constexpr std::size_t total() const noexcept {
    return extent(0) * extent(1) * extent(2);
  }

  [[nodiscard]] constexpr bool operator==(const NDRange&) const noexcept =
      default;

 private:
  std::array<std::size_t, 3> sizes_{0, 0, 0};
};

[[nodiscard]] std::string to_string(const NDRange& range);

enum class DeviceType { kCpu, kGpu, kAccelerator };

[[nodiscard]] const char* to_string(DeviceType type) noexcept;

/// Logical OpenCL memory spaces (section 4.1 of the paper).
enum class MemorySpace { kGlobal, kLocal, kConstant, kImage };

[[nodiscard]] const char* to_string(MemorySpace space) noexcept;

/// Direction of a host<->device transfer.
enum class TransferDirection { kHostToDevice, kDeviceToHost };

}  // namespace pt::clsim
