#pragma once

// Error model of the simulated OpenCL runtime. Codes mirror the OpenCL
// status codes the paper's tuner has to cope with: invalid work-group
// shapes, resource exhaustion (local memory, registers), and build failures.
// Invalid tuning configurations surface as ClException with one of these
// codes, exactly like a real driver rejecting clEnqueueNDRangeKernel.

#include <stdexcept>
#include <string>

namespace pt::clsim {

enum class Status {
  kSuccess = 0,
  kDeviceNotFound,
  kBuildProgramFailure,
  kInvalidKernelName,
  kInvalidKernelArgs,
  kInvalidWorkDimension,
  kInvalidWorkGroupSize,   // group shape does not divide global / exceeds max
  kInvalidWorkItemSize,    // per-dimension limit exceeded
  kOutOfResources,         // registers / scratch exhausted at launch
  kOutOfLocalMemory,       // local allocation exceeds device local memory
  kInvalidValue,
  kInvalidOperation,
  kProfilingInfoNotAvailable,
};

[[nodiscard]] const char* to_string(Status status) noexcept;

/// Exception thrown by runtime entry points; carries the OpenCL-like status.
class ClException : public std::runtime_error {
 public:
  ClException(Status status, const std::string& message)
      : std::runtime_error(std::string(to_string(status)) + ": " + message),
        status_(status) {}

  [[nodiscard]] Status status() const noexcept { return status_; }

  /// True for the statuses that correspond to an *invalid tuning
  /// configuration* (as opposed to a programming error): these are the
  /// failures the auto-tuner must tolerate and skip.
  [[nodiscard]] bool is_invalid_configuration() const noexcept {
    return status_ == Status::kInvalidWorkGroupSize ||
           status_ == Status::kInvalidWorkItemSize ||
           status_ == Status::kOutOfResources ||
           status_ == Status::kOutOfLocalMemory ||
           status_ == Status::kBuildProgramFailure;
  }

 private:
  Status status_;
};

}  // namespace pt::clsim
