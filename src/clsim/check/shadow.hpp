#pragma once

// Per-byte shadow state for the clcheck sanitizer, in the spirit of
// ASan/TSan shadow memory: every byte of a checked resource carries its last
// writer and last reader (work-item, work-group, barrier epoch) plus an
// initialized bit. Race detection is happens-before over barrier epochs:
// within a work-group, accesses in the same epoch are concurrent; across
// work-groups nothing orders accesses, so any write/write or read-after-write
// pair touching the same byte from two groups conflicts.
//
// Checked launches execute work-groups sequentially (the executor drops the
// thread pool in check mode), so the shadow needs no host synchronization and
// every run produces the same findings in the same order.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pt::clsim::check {

/// Sentinel for "no such access yet".
inline constexpr std::uint32_t kNoAccessor = 0xffffffffu;

/// Memory-space semantics of a shadowed resource.
enum class ShadowKind {
  kLocal,   // one work-group's arena: epoch ordering, init tracking
  kGlobal,  // device buffer: cross-group conflicts, assumed host-initialized
};

/// Outcome of recording one access against the shadow.
struct Conflict {
  enum class Type { kNone, kRace, kUninitializedRead };
  Type type = Type::kNone;
  std::uint32_t other_item = kNoAccessor;  // prior accessor (flat item id)
  bool other_was_write = false;            // prior access direction
  std::size_t byte = 0;                    // first conflicting byte

  [[nodiscard]] explicit operator bool() const noexcept {
    return type != Type::kNone;
  }
};

class ShadowMemory {
 public:
  ShadowMemory(ShadowKind kind, std::size_t bytes);

  [[nodiscard]] ShadowKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return bytes_.size();
  }

  /// Record a read of [offset, offset+len) by `item` of `group` in barrier
  /// epoch `epoch`. Returns the first conflict found (race against a
  /// concurrent write, or — for local shadows — an uninitialized byte).
  Conflict on_read(std::size_t offset, std::size_t len, std::uint32_t item,
                   std::uint32_t group, std::uint32_t epoch);

  /// Record a write; returns the first write/write or read/write conflict.
  Conflict on_write(std::size_t offset, std::size_t len, std::uint32_t item,
                    std::uint32_t group, std::uint32_t epoch);

  /// Mark a range initialized without an owning work-item (e.g. data the
  /// host staged before the launch). Used by tests.
  void mark_initialized(std::size_t offset, std::size_t len);

 private:
  struct ByteState {
    std::uint32_t write_item = kNoAccessor;
    std::uint32_t write_group = kNoAccessor;
    std::uint32_t write_epoch = 0;
    std::uint32_t read_item = kNoAccessor;
    std::uint32_t read_group = kNoAccessor;
    std::uint32_t read_epoch = 0;
    bool multi_reader = false;   // >1 distinct readers in read_epoch
    bool initialized = false;    // any write so far (local shadows)
  };

  ShadowKind kind_;
  std::vector<ByteState> bytes_;
};

}  // namespace pt::clsim::check
