#include "clsim/check/check.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace pt::clsim::check {

LaunchCheckState::LaunchCheckState(std::string kernel_name,
                                   CheckReport* report)
    : kernel_(std::move(kernel_name)), report_(report) {}

std::uint32_t LaunchCheckState::intern_name(std::string_view name) {
  for (std::uint32_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return i;
  names_.emplace_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

const std::string& LaunchCheckState::resource_name(std::uint32_t id) const {
  static const std::string kUnknown = "?";
  return id < names_.size() ? names_[id] : kUnknown;
}

LaunchCheckState::Resource LaunchCheckState::global_resource(
    const void* key, std::size_t bytes, std::string_view name) {
  for (auto& entry : globals_) {
    if (entry.key == key) return {entry.shadow.get(), entry.name_id};
  }
  GlobalEntry entry;
  entry.key = key;
  entry.name_id = intern_name(name);
  entry.shadow = std::make_unique<ShadowMemory>(ShadowKind::kGlobal, bytes);
  globals_.push_back(std::move(entry));
  return {globals_.back().shadow.get(), globals_.back().name_id};
}

void* LaunchCheckState::sink(std::size_t bytes) noexcept {
  std::memset(sink_.data(), 0, std::min(bytes, sink_.size()));
  return sink_.data();
}

void ItemChecker::add_finding(FindingKind kind, std::uint32_t resource_id,
                              std::size_t byte_offset, std::size_t bytes,
                              bool is_write, std::string message) {
  Finding finding;
  finding.kind = kind;
  finding.kernel = launch_->kernel_name();
  finding.resource = launch_->resource_name(resource_id);
  finding.global_id = global_id_;
  finding.group_linear = group_flat_;
  finding.byte_offset = byte_offset;
  finding.bytes = bytes;
  finding.is_write = is_write;
  finding.message = std::move(message);
  launch_->report().add(std::move(finding));
}

void* ItemChecker::on_access(void* base, ShadowMemory* shadow,
                             std::uint32_t resource_id,
                             std::size_t base_offset, std::size_t index,
                             std::size_t count, std::size_t elem_bytes,
                             bool is_write) {
  const std::size_t byte_offset = base_offset + index * elem_bytes;
  if (index >= count) {
    std::ostringstream ss;
    ss << "index " << index << " out of range [0, " << count << ")";
    add_finding(FindingKind::kOutOfBounds, resource_id, byte_offset,
                elem_bytes, is_write, ss.str());
    return launch_->sink(elem_bytes);
  }
  const Conflict conflict =
      is_write ? shadow->on_write(byte_offset, elem_bytes, item_flat_,
                                  group_flat_, group_->epoch)
               : shadow->on_read(byte_offset, elem_bytes, item_flat_,
                                 group_flat_, group_->epoch);
  if (conflict) {
    if (conflict.type == Conflict::Type::kUninitializedRead) {
      add_finding(FindingKind::kUninitializedRead, resource_id, conflict.byte,
                  elem_bytes, false,
                  "read of a local byte no work-item has written");
    } else {
      std::ostringstream ss;
      ss << "conflicts with a prior "
         << (conflict.other_was_write ? "write" : "read") << " by work-item "
         << conflict.other_item << " not separated by a barrier";
      add_finding(shadow->kind() == ShadowKind::kLocal
                      ? FindingKind::kLocalRace
                      : FindingKind::kGlobalRace,
                  resource_id, conflict.byte, elem_bytes, is_write, ss.str());
    }
  }
  return static_cast<std::byte*>(base) + index * elem_bytes;
}

void ItemChecker::on_local_alloc(const AllocRecord& record,
                                 std::uint32_t resource_id) {
  auto& canonical = group_->canonical_allocs;
  const std::size_t idx = alloc_index_++;
  if (idx >= canonical.size()) {
    // First item to reach this allocation index defines the sequence. An
    // item running *extra* allocations relative to peers is caught by the
    // executor's end-of-group count comparison.
    canonical.push_back(record);
    return;
  }
  if (!(canonical[idx] == record)) {
    std::ostringstream ss;
    ss << "local_alloc #" << idx << " (" << record.bytes << "B at offset "
       << record.offset << ") diverges from the group's sequence ("
       << canonical[idx].bytes << "B at offset " << canonical[idx].offset
       << "); the returned spans alias other allocations";
    add_finding(FindingKind::kDivergentLocalAlloc, resource_id, record.offset,
                record.bytes, false, ss.str());
  }
}

}  // namespace pt::clsim::check
