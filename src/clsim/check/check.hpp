#pragma once

// clcheck — opt-in dynamic analysis ("kernel sanitizer") for the clsim
// executor. Because clsim runs kernels on the host, a checked launch can
// instrument every indexed access the way ASan/TSan instrument native code:
//
//   LaunchCheckState  — one per enqueue: resource table (name → shadow),
//                       the finding sink, and the out-of-bounds write sink.
//   GroupCheckState   — one per work-group: local-arena shadow, barrier
//                       epoch, canonical local_alloc sequence.
//   ItemChecker       — one per work-item: identity (ids) plus the access
//                       and allocation hooks CheckedSpan/WorkItemCtx call.
//
// Checked launches run work-groups sequentially on the calling thread, so
// all state here is single-threaded by construction and findings are
// deterministic. With CheckMode::kOff nothing in this header is
// instantiated and execution is bit-identical to an unchecked build.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "clsim/check/report.hpp"
#include "clsim/check/shadow.hpp"

namespace pt::clsim::check {

/// Whether a queue/executor instruments kernel bodies. Default everywhere is
/// kOff: zero overhead, bit-identical behavior to a checker-free build.
enum class CheckMode { kOff, kOn };

/// One local_alloc call, as seen by the divergence lint.
struct AllocRecord {
  std::size_t offset = 0;
  std::size_t bytes = 0;
  std::size_t align = 0;

  [[nodiscard]] bool operator==(const AllocRecord&) const noexcept = default;
};

/// Per-launch sanitizer state. Owns the shadow of every global buffer viewed
/// during the launch (keyed by the buffer's storage identity) and forwards
/// findings to the caller-owned CheckReport.
class LaunchCheckState {
 public:
  LaunchCheckState(std::string kernel_name, CheckReport* report);

  [[nodiscard]] const std::string& kernel_name() const noexcept {
    return kernel_;
  }
  [[nodiscard]] CheckReport& report() noexcept { return *report_; }

  struct Resource {
    ShadowMemory* shadow = nullptr;
    std::uint32_t id = 0;
  };

  /// Shadow for a global buffer, created on first view. `key` is the
  /// buffer's storage identity (shared across handle copies), so every view
  /// of the same buffer — from any work-item — shares one shadow.
  Resource global_resource(const void* key, std::size_t bytes,
                           std::string_view name);

  /// Intern a resource name (local-arena allocations reuse this table).
  std::uint32_t intern_name(std::string_view name);
  [[nodiscard]] const std::string& resource_name(std::uint32_t id) const;

  /// Scratch an out-of-bounds access is redirected to, so a faulty kernel
  /// cannot corrupt host memory. Zeroed before each use: OOB reads observe
  /// zeros, OOB writes vanish. Large enough for any scalar element type.
  [[nodiscard]] void* sink(std::size_t bytes) noexcept;

 private:
  struct GlobalEntry {
    const void* key = nullptr;
    std::uint32_t name_id = 0;
    std::unique_ptr<ShadowMemory> shadow;
  };

  std::string kernel_;
  CheckReport* report_;
  std::vector<GlobalEntry> globals_;
  std::vector<std::string> names_;
  alignas(std::max_align_t) std::array<std::byte, 256> sink_{};
};

/// Per-work-group sanitizer state.
class GroupCheckState {
 public:
  explicit GroupCheckState(std::size_t arena_bytes)
      : local_shadow_(ShadowKind::kLocal, arena_bytes) {}

  [[nodiscard]] ShadowMemory& local_shadow() noexcept { return local_shadow_; }

  /// Barrier epoch: the executor advances it once per scheduling round, so
  /// accesses separated by a barrier never share an epoch.
  std::uint32_t epoch = 0;

  /// The group's canonical local_alloc sequence (first item to allocate
  /// defines it; later items are compared against it).
  std::vector<AllocRecord> canonical_allocs;

 private:
  ShadowMemory local_shadow_;
};

/// Per-work-item hook object. WorkItemCtx holds a pointer to it (null when
/// checking is off); CheckedSpan calls on_access for every element access.
class ItemChecker {
 public:
  ItemChecker() = default;
  ItemChecker(LaunchCheckState* launch, GroupCheckState* group,
              std::array<std::size_t, 3> global_id, std::uint32_t item_flat,
              std::uint32_t group_flat)
      : launch_(launch),
        group_(group),
        global_id_(global_id),
        item_flat_(item_flat),
        group_flat_(group_flat) {}

  [[nodiscard]] LaunchCheckState& launch() noexcept { return *launch_; }
  [[nodiscard]] GroupCheckState& group() noexcept { return *group_; }
  [[nodiscard]] std::uint32_t item_flat() const noexcept { return item_flat_; }
  [[nodiscard]] std::size_t alloc_count() const noexcept {
    return alloc_index_;
  }

  /// Validate + record one element access through a checked view. `base` is
  /// the view's first element; the return value is the address to actually
  /// use: base + index*elem_bytes in bounds, the launch sink otherwise.
  void* on_access(void* base, ShadowMemory* shadow, std::uint32_t resource_id,
                  std::size_t base_offset, std::size_t index,
                  std::size_t count, std::size_t elem_bytes, bool is_write);

  /// Record one local_alloc and lint it against the group's canonical
  /// sequence (divergent sequences silently alias in the shared arena).
  void on_local_alloc(const AllocRecord& record, std::uint32_t resource_id);

 private:
  void add_finding(FindingKind kind, std::uint32_t resource_id,
                   std::size_t byte_offset, std::size_t bytes, bool is_write,
                   std::string message);

  LaunchCheckState* launch_ = nullptr;
  GroupCheckState* group_ = nullptr;
  std::array<std::size_t, 3> global_id_{};
  std::uint32_t item_flat_ = 0;
  std::uint32_t group_flat_ = 0;
  std::size_t alloc_index_ = 0;
};

}  // namespace pt::clsim::check
