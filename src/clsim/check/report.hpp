#pragma once

// Findings of the clcheck kernel sanitizer. A Finding pinpoints one dynamic
// defect (out-of-bounds access, uninitialized read, data race, barrier or
// allocation divergence) with enough context to reproduce it: kernel name,
// offending work-item, resource (buffer or local-arena allocation) and byte
// offset. A CheckReport accumulates findings across one or more launches,
// keeping per-kind counts past the storage cap so noisy kernels cannot
// exhaust memory.

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace pt::clsim::check {

enum class FindingKind {
  kOutOfBounds,         // indexed access past the end of a checked view
  kUninitializedRead,   // local-arena byte read before any item wrote it
  kLocalRace,           // conflicting local accesses not separated by barrier
  kGlobalRace,          // conflicting global accesses (cross-group, or
                        // same-group same-epoch)
  kBarrierDivergence,   // some items returned while others wait at a barrier
  kDivergentLocalAlloc, // items of one group ran different local_alloc
                        // sequences (their spans silently alias)
};

inline constexpr std::size_t kFindingKindCount = 6;

[[nodiscard]] const char* to_string(FindingKind kind) noexcept;

struct Finding {
  FindingKind kind = FindingKind::kOutOfBounds;
  std::string kernel;
  std::string resource;  // view name ("input", "tile", ...) or arena label
  std::array<std::size_t, 3> global_id{};  // offending work-item
  std::size_t group_linear = 0;            // flat work-group id
  std::size_t byte_offset = 0;             // within the resource
  std::size_t bytes = 0;                   // access size (0 when n/a)
  bool is_write = false;
  std::string message;  // details: the other party of a race, stuck items, …

  /// One-line human-readable rendering (diagnostic format of the report).
  [[nodiscard]] std::string to_string() const;
};

class CheckReport {
 public:
  /// Findings stored verbatim; beyond the cap only the counters advance.
  static constexpr std::size_t kMaxStoredFindings = 64;

  void add(Finding finding);

  [[nodiscard]] bool clean() const noexcept { return total_ == 0; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t count(FindingKind kind) const noexcept {
    return counts_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] const std::vector<Finding>& findings() const noexcept {
    return findings_;
  }

  void clear();

  /// Multi-line summary: per-kind counts plus every stored finding.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Finding> findings_;
  std::array<std::size_t, kFindingKindCount> counts_{};
  std::size_t total_ = 0;
};

}  // namespace pt::clsim::check
