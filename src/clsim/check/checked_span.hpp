#pragma once

// CheckedSpan<T> — the checked memory view kernels index instead of a raw
// std::span. Unchecked (checker == nullptr, the CheckMode::kOff path) it is
// a plain span: operator[] compiles down to the same pointer arithmetic, so
// behavior and results are bit-identical to the pre-clcheck kernels. Checked,
// every element access is validated against bounds and recorded in the
// resource's shadow; out-of-bounds accesses are redirected to a zeroed sink
// so a faulty kernel cannot corrupt the host.
//
// Reads and writes must be distinguished for the race detector, but
// `span[i]` yields the same T& for both. Mutable views therefore return a
// proxy whose conversion-to-T records a read and whose assignment records a
// write; const views return values directly.

#include <cstddef>
#include <span>
#include <type_traits>

#include "clsim/check/check.hpp"

namespace pt::clsim::check {

template <typename T>
class CheckedSpan {
 public:
  using Value = std::remove_const_t<T>;
  static constexpr bool kReadOnly = std::is_const_v<T>;

  CheckedSpan() = default;

  /// Unchecked view (CheckMode::kOff): direct element access.
  explicit CheckedSpan(std::span<T> data) : data_(data) {}

  /// Checked view bound to a work-item and a shadowed resource.
  CheckedSpan(std::span<T> data, ItemChecker* checker, ShadowMemory* shadow,
              std::uint32_t resource_id, std::size_t base_offset)
      : data_(data),
        checker_(checker),
        shadow_(shadow),
        resource_id_(resource_id),
        base_offset_(base_offset) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool checked() const noexcept { return checker_ != nullptr; }

  /// The underlying storage, bypassing the sanitizer (host-side use only).
  [[nodiscard]] std::span<T> raw() const noexcept { return data_; }

  /// Write-capable element proxy: reads record reads, writes record writes.
  class Ref {
   public:
    Ref(const CheckedSpan* span, std::size_t index)
        : span_(span), index_(index) {}

    operator Value() const {  // NOLINT(google-explicit-constructor)
      return *static_cast<const Value*>(span_->access(index_, false));
    }
    Ref& operator=(Value v)
      requires(!kReadOnly)
    {
      *static_cast<Value*>(span_->access(index_, true)) = v;
      return *this;
    }
    /// Ref = Ref must copy the *element* (read then write), not rebind the
    /// proxy — without this the implicit copy-assignment wins overload
    /// resolution over operator=(Value) and `a[i] = b[j]` writes nothing.
    Ref& operator=(const Ref& other)
      requires(!kReadOnly)
    {
      return *this = static_cast<Value>(other);
    }
    Ref& operator+=(Value v)
      requires(!kReadOnly)
    {
      const Value old =
          *static_cast<const Value*>(span_->access(index_, false));
      *static_cast<Value*>(span_->access(index_, true)) = old + v;
      return *this;
    }

   private:
    const CheckedSpan* span_;
    std::size_t index_;
  };

  /// Element access. Const views return the value (a read); mutable views
  /// return the read/write proxy.
  [[nodiscard]] auto operator[](std::size_t index) const {
    if constexpr (kReadOnly) {
      return *static_cast<const Value*>(access(index, false));
    } else {
      return Ref(this, index);
    }
  }

 private:
  /// Resolve index -> address, consulting the checker when bound. The
  /// address is only formed after the bounds decision, so a checked OOB
  /// access never computes an out-of-range pointer.
  void* access(std::size_t index, bool is_write) const {
    if (checker_ == nullptr)
      return const_cast<Value*>(data_.data() + index);
    return checker_->on_access(const_cast<Value*>(data_.data()), shadow_,
                               resource_id_, base_offset_, index,
                               data_.size(), sizeof(T), is_write);
  }

  std::span<T> data_;
  ItemChecker* checker_ = nullptr;
  ShadowMemory* shadow_ = nullptr;
  std::uint32_t resource_id_ = 0;
  std::size_t base_offset_ = 0;
};

}  // namespace pt::clsim::check

namespace pt::clsim {
using check::CheckedSpan;
using check::CheckMode;
using check::CheckReport;
}  // namespace pt::clsim
