#include "clsim/check/report.hpp"

#include <sstream>

namespace pt::clsim::check {

const char* to_string(FindingKind kind) noexcept {
  switch (kind) {
    case FindingKind::kOutOfBounds:
      return "out-of-bounds";
    case FindingKind::kUninitializedRead:
      return "uninitialized-read";
    case FindingKind::kLocalRace:
      return "local-race";
    case FindingKind::kGlobalRace:
      return "global-race";
    case FindingKind::kBarrierDivergence:
      return "barrier-divergence";
    case FindingKind::kDivergentLocalAlloc:
      return "divergent-local-alloc";
  }
  return "unknown";
}

std::string Finding::to_string() const {
  std::ostringstream ss;
  ss << check::to_string(kind) << " in kernel '" << kernel << "': work-item ("
     << global_id[0] << ',' << global_id[1] << ',' << global_id[2]
     << ") of group " << group_linear;
  if (!resource.empty()) {
    ss << ", resource '" << resource << "' byte " << byte_offset;
    if (bytes != 0) ss << " (" << bytes << (is_write ? "B write" : "B read") << ')';
  }
  if (!message.empty()) ss << ": " << message;
  return ss.str();
}

void CheckReport::add(Finding finding) {
  ++counts_[static_cast<std::size_t>(finding.kind)];
  ++total_;
  if (findings_.size() < kMaxStoredFindings)
    findings_.push_back(std::move(finding));
}

void CheckReport::clear() {
  findings_.clear();
  counts_.fill(0);
  total_ = 0;
}

std::string CheckReport::summary() const {
  std::ostringstream ss;
  if (clean()) {
    ss << "clcheck: no findings\n";
    return ss.str();
  }
  ss << "clcheck: " << total_ << " finding(s)";
  for (std::size_t k = 0; k < kFindingKindCount; ++k) {
    if (counts_[k] != 0)
      ss << ", " << to_string(static_cast<FindingKind>(k)) << "=" << counts_[k];
  }
  ss << '\n';
  for (const auto& finding : findings_) ss << "  " << finding.to_string() << '\n';
  if (total_ > findings_.size())
    ss << "  ... " << (total_ - findings_.size()) << " more suppressed\n";
  return ss.str();
}

}  // namespace pt::clsim::check
