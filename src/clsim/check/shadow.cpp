#include "clsim/check/shadow.hpp"

namespace pt::clsim::check {

ShadowMemory::ShadowMemory(ShadowKind kind, std::size_t bytes)
    : kind_(kind), bytes_(bytes) {}

void ShadowMemory::mark_initialized(std::size_t offset, std::size_t len) {
  for (std::size_t b = offset; b < offset + len && b < bytes_.size(); ++b)
    bytes_[b].initialized = true;
}

Conflict ShadowMemory::on_read(std::size_t offset, std::size_t len,
                               std::uint32_t item, std::uint32_t group,
                               std::uint32_t epoch) {
  Conflict conflict;
  for (std::size_t b = offset; b < offset + len && b < bytes_.size(); ++b) {
    ByteState& s = bytes_[b];
    if (!conflict && kind_ == ShadowKind::kLocal && !s.initialized) {
      conflict = {Conflict::Type::kUninitializedRead, kNoAccessor, false, b};
    }
    if (!conflict && s.write_item != kNoAccessor && s.write_item != item) {
      const bool racy =
          kind_ == ShadowKind::kGlobal
              ? (s.write_group != group || s.write_epoch == epoch)
              : s.write_epoch == epoch;
      if (racy)
        conflict = {Conflict::Type::kRace, s.write_item, true, b};
    }
    // Record the read (first witness per epoch; later same-epoch readers
    // only set the multi_reader flag).
    if (s.read_item == kNoAccessor || s.read_epoch != epoch) {
      s.read_item = item;
      s.read_group = group;
      s.read_epoch = epoch;
      s.multi_reader = false;
    } else if (s.read_item != item) {
      s.multi_reader = true;
    }
  }
  return conflict;
}

Conflict ShadowMemory::on_write(std::size_t offset, std::size_t len,
                                std::uint32_t item, std::uint32_t group,
                                std::uint32_t epoch) {
  Conflict conflict;
  for (std::size_t b = offset; b < offset + len && b < bytes_.size(); ++b) {
    ByteState& s = bytes_[b];
    if (!conflict && s.write_item != kNoAccessor && s.write_item != item) {
      const bool racy =
          kind_ == ShadowKind::kGlobal
              ? (s.write_group != group || s.write_epoch == epoch)
              : s.write_epoch == epoch;
      if (racy)
        conflict = {Conflict::Type::kRace, s.write_item, true, b};
    }
    if (!conflict && s.read_item != kNoAccessor &&
        (s.read_item != item || s.multi_reader)) {
      const bool racy =
          kind_ == ShadowKind::kGlobal
              ? (s.read_group != group || s.read_epoch == epoch)
              : s.read_epoch == epoch;
      if (racy)
        conflict = {Conflict::Type::kRace, s.read_item, false, b};
    }
    s.write_item = item;
    s.write_group = group;
    s.write_epoch = epoch;
    s.initialized = true;
  }
  return conflict;
}

}  // namespace pt::clsim::check
