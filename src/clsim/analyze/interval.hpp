#pragma once

// clstat interval domain. An Interval is a closed range [lo, hi] of doubles
// (in practice integer-valued: tuning parameters, byte counts, work-item
// counts — all exactly representable well below 2^53). The empty interval is
// the bottom element; every operation propagates it. Soundness contract: for
// any operation op and any points a in A, b in B, op(a, b) is contained in
// op(A, B). The property tests in tests/clsim/test_analyze.cpp exercise this
// against random concrete evaluations.

#include <algorithm>
#include <string>

namespace pt::clsim::analyze {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool empty = false;

  /// The canonical empty interval (bottom).
  [[nodiscard]] static Interval bottom() noexcept {
    return Interval{0.0, 0.0, true};
  }
  /// A single point [v, v].
  [[nodiscard]] static Interval point(double v) noexcept {
    return Interval{v, v, false};
  }
  /// [lo, hi]; an inverted pair collapses to empty.
  [[nodiscard]] static Interval range(double lo, double hi) noexcept {
    if (lo > hi) return bottom();
    return Interval{lo, hi, false};
  }

  [[nodiscard]] bool is_point() const noexcept { return !empty && lo == hi; }
  [[nodiscard]] bool contains(double v) const noexcept {
    return !empty && lo <= v && v <= hi;
  }
  /// True when the interval is exactly {0} — "definitely false" for guards.
  [[nodiscard]] bool definitely_zero() const noexcept {
    return !empty && lo == 0.0 && hi == 0.0;
  }
  /// True when 0 lies outside — "definitely true" for guards.
  [[nodiscard]] bool definitely_nonzero() const noexcept {
    return !empty && (lo > 0.0 || hi < 0.0);
  }

  [[nodiscard]] bool operator==(const Interval&) const = default;

  [[nodiscard]] std::string to_string() const;
};

/// Smallest interval containing both (join in the lattice).
[[nodiscard]] Interval hull(const Interval& a, const Interval& b) noexcept;

[[nodiscard]] Interval operator+(const Interval& a, const Interval& b) noexcept;
[[nodiscard]] Interval operator-(const Interval& a, const Interval& b) noexcept;
/// Four-corner product (handles sign mixes soundly).
[[nodiscard]] Interval operator*(const Interval& a, const Interval& b) noexcept;

[[nodiscard]] Interval min(const Interval& a, const Interval& b) noexcept;
[[nodiscard]] Interval max(const Interval& a, const Interval& b) noexcept;

/// Elementwise floor (monotone, hence [floor(lo), floor(hi)]).
[[nodiscard]] Interval floor(const Interval& a) noexcept;

/// ceil(a / b) under integer ceiling-division semantics. Requires b to be
/// strictly positive (b.lo > 0); returns bottom otherwise — the analyzer
/// only divides by work-group shapes and per-thread counts, which are >= 1.
[[nodiscard]] Interval ceil_div(const Interval& a, const Interval& b) noexcept;

}  // namespace pt::clsim::analyze
