#pragma once

// clstat checker: renders verdicts from a KernelConstraints set.
//
// Verdict lattice (kUnknown on top, the two proofs below it):
//
//              kUnknown
//      kProvedValid  kProvedInvalid
//
// Per configuration (a point), every constraint evaluates exactly, so the
// checker is decisive about each individual constraint: a violated one
// yields kProvedInvalid with the constraint named as the reason. If all
// constraints hold, the verdict is kProvedValid when the set is complete and
// kUnknown otherwise (an incomplete set can prove invalidity but never
// validity). Over a sub-box, interval evaluation may straddle a bound; the
// region sweep then bisects the box until every leaf is discharged or the
// budget runs out.
//
// Soundness contract (audited end-to-end by bench/ext_check): kProvedInvalid
// implies the driver rejects the launch or clcheck reports a finding;
// kProvedValid implies the driver accepts it and clcheck stays clean.

#include <cstdint>
#include <string>
#include <vector>

#include "clsim/analyze/constraints.hpp"
#include "clsim/device.hpp"

namespace pt::clsim::analyze {

enum class Verdict {
  kProvedValid,
  kProvedInvalid,
  kUnknown,
};

[[nodiscard]] const char* to_string(Verdict verdict) noexcept;

struct ConfigVerdict {
  Verdict verdict = Verdict::kUnknown;
  /// For kProvedInvalid: name and category of the first violated constraint.
  std::string reason;
  ConstraintCategory category = ConstraintCategory::kWorkGroupGeometry;

  [[nodiscard]] bool proved_invalid() const noexcept {
    return verdict == Verdict::kProvedInvalid;
  }
  [[nodiscard]] bool proved_valid() const noexcept {
    return verdict == Verdict::kProvedValid;
  }
};

/// One discharged (or abandoned) region from a sweep.
struct RegionVerdict {
  Box box;
  Verdict verdict = Verdict::kUnknown;
  std::string reason;  // for kProvedInvalid regions
};

struct SweepReport {
  std::vector<RegionVerdict> regions;
  std::uint64_t proved_valid_configs = 0;
  std::uint64_t proved_invalid_configs = 0;
  std::uint64_t unknown_configs = 0;
  std::size_t boxes_examined = 0;   // worklist pops (budget consumed)
  std::size_t boxes_discharged = 0; // whole boxes settled without splitting

  [[nodiscard]] double proved_fraction() const noexcept {
    const std::uint64_t total =
        proved_valid_configs + proved_invalid_configs + unknown_configs;
    if (total == 0) return 0.0;
    return static_cast<double>(proved_valid_configs + proved_invalid_configs) /
           static_cast<double>(total);
  }
};

class StaticChecker {
 public:
  StaticChecker(KernelConstraints constraints, DeviceInfo device);

  [[nodiscard]] const KernelConstraints& constraints() const noexcept {
    return constraints_;
  }
  [[nodiscard]] const ParamDomain& domain() const noexcept {
    return constraints_.domain;
  }
  [[nodiscard]] const DeviceInfo& device() const noexcept { return device_; }

  /// Decisive point check at one configuration (values per dimension, in
  /// domain order).
  [[nodiscard]] ConfigVerdict check(std::span<const int> values) const;

  /// Interval check over a sub-box: kProvedInvalid if some constraint is
  /// violated everywhere in the box, kProvedValid if every constraint
  /// provably holds everywhere (and the set is complete), else kUnknown.
  [[nodiscard]] ConfigVerdict check(const Box& box) const;

  /// Bisection sweep over `root` (or the full domain): repeatedly pops the
  /// box whose verdict is kUnknown, splits its widest dimension, and
  /// re-checks the halves, until everything is discharged, no dimension can
  /// be split, or `max_boxes` boxes have been examined. Every configuration
  /// of the root lands in exactly one reported region.
  [[nodiscard]] SweepReport sweep(std::size_t max_boxes = 4096) const;
  [[nodiscard]] SweepReport sweep(const Box& root,
                                  std::size_t max_boxes) const;

 private:
  KernelConstraints constraints_;
  DeviceInfo device_;
};

}  // namespace pt::clsim::analyze
