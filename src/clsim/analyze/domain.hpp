#pragma once

// clstat parameter domain: the analyzer's own view of a tuning space. A
// ParamDomain is an ordered list of named discrete dimensions (mirroring
// tuner::ParamSpace, without depending on the tuner layer so clsim stays
// self-contained); a Box is an axis-aligned sub-box of the space, one
// half-open *position* range per dimension over that dimension's value list.
// Boxes are what the region sweep bisects: the abstract value of a parameter
// over a box is the interval hull of the values its slice contains.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "clsim/analyze/interval.hpp"

namespace pt::clsim::analyze {

/// One discrete dimension: a name and its possible values, in order.
struct Dimension {
  std::string name;
  std::vector<int> values;
};

class ParamDomain {
 public:
  ParamDomain() = default;
  explicit ParamDomain(std::vector<Dimension> dims);

  [[nodiscard]] std::size_t dimension_count() const noexcept {
    return dims_.size();
  }
  [[nodiscard]] const Dimension& dimension(std::size_t i) const {
    return dims_.at(i);
  }
  [[nodiscard]] const std::vector<Dimension>& dimensions() const noexcept {
    return dims_;
  }

  /// Index of a dimension by name; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  /// Total number of configurations (product of value-list sizes; 0 for a
  /// domain with an empty dimension).
  [[nodiscard]] std::uint64_t size() const noexcept;

 private:
  std::vector<Dimension> dims_;
};

/// Half-open position range [lo, hi) into one dimension's value list.
struct PositionRange {
  std::size_t lo = 0;
  std::size_t hi = 0;

  [[nodiscard]] std::size_t count() const noexcept { return hi - lo; }
  [[nodiscard]] bool operator==(const PositionRange&) const = default;
};

/// An axis-aligned sub-box of a domain: one position range per dimension.
/// A box with any empty range denotes the empty region.
struct Box {
  std::vector<PositionRange> ranges;

  /// The full box of a domain (every position of every dimension).
  [[nodiscard]] static Box full(const ParamDomain& domain);

  /// A single-configuration box from value-list positions.
  [[nodiscard]] static Box point(const std::vector<std::size_t>& positions);

  [[nodiscard]] bool empty() const noexcept;
  /// Number of configurations the box contains.
  [[nodiscard]] std::uint64_t count() const noexcept;
  /// True when every dimension has exactly one position.
  [[nodiscard]] bool is_point() const noexcept;

  /// Interval hull of the *values* dimension `dim` takes over this box.
  /// Sound for arbitrary (even unsorted) value lists: scans the slice.
  [[nodiscard]] Interval value_interval(const ParamDomain& domain,
                                        std::size_t dim) const;

  /// The widest dimension (most positions); dimension_count() if no
  /// dimension has more than one position.
  [[nodiscard]] std::size_t widest_dimension() const noexcept;

  /// Split along `dim` at its midpoint into two non-empty halves.
  [[nodiscard]] std::pair<Box, Box> split(std::size_t dim) const;

  /// The concrete values of a point box (one value per dimension).
  [[nodiscard]] std::vector<int> point_values(const ParamDomain& domain) const;

  [[nodiscard]] std::string to_string(const ParamDomain& domain) const;
};

}  // namespace pt::clsim::analyze
