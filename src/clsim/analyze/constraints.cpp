#include "clsim/analyze/constraints.hpp"

namespace pt::clsim::analyze {

const char* to_string(Relation relation) noexcept {
  switch (relation) {
    case Relation::kLessEqual: return "<=";
    case Relation::kLess: return "<";
    case Relation::kEqual: return "==";
  }
  return "?";
}

const char* to_string(ConstraintCategory category) noexcept {
  switch (category) {
    case ConstraintCategory::kWorkGroupGeometry: return "work_group_geometry";
    case ConstraintCategory::kLocalMemory: return "local_memory";
    case ConstraintCategory::kConstantMemory: return "constant_memory";
    case ConstraintCategory::kRegisters: return "registers";
    case ConstraintCategory::kImageSupport: return "image_support";
    case ConstraintCategory::kBuildPrecondition: return "build_precondition";
    case ConstraintCategory::kGlobalFootprint: return "global_footprint";
    case ConstraintCategory::kBarrierUniformity: return "barrier_uniformity";
  }
  return "unknown";
}

AffineExpr cexpr(double v) { return AffineExpr::constant(v); }

AffineExpr param_expr(const ParamDomain& domain, const std::string& name) {
  return AffineExpr::param(domain.index_of(name), name);
}

}  // namespace pt::clsim::analyze
