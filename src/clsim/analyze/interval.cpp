#include "clsim/analyze/interval.hpp"

#include <cmath>
#include <sstream>

namespace pt::clsim::analyze {

std::string Interval::to_string() const {
  if (empty) return "[]";
  std::ostringstream ss;
  ss << '[' << lo << ", " << hi << ']';
  return ss.str();
}

Interval hull(const Interval& a, const Interval& b) noexcept {
  if (a.empty) return b;
  if (b.empty) return a;
  return Interval{std::min(a.lo, b.lo), std::max(a.hi, b.hi), false};
}

Interval operator+(const Interval& a, const Interval& b) noexcept {
  if (a.empty || b.empty) return Interval::bottom();
  return Interval{a.lo + b.lo, a.hi + b.hi, false};
}

Interval operator-(const Interval& a, const Interval& b) noexcept {
  if (a.empty || b.empty) return Interval::bottom();
  return Interval{a.lo - b.hi, a.hi - b.lo, false};
}

Interval operator*(const Interval& a, const Interval& b) noexcept {
  if (a.empty || b.empty) return Interval::bottom();
  const double c1 = a.lo * b.lo;
  const double c2 = a.lo * b.hi;
  const double c3 = a.hi * b.lo;
  const double c4 = a.hi * b.hi;
  return Interval{std::min(std::min(c1, c2), std::min(c3, c4)),
                  std::max(std::max(c1, c2), std::max(c3, c4)), false};
}

Interval min(const Interval& a, const Interval& b) noexcept {
  if (a.empty || b.empty) return Interval::bottom();
  return Interval{std::min(a.lo, b.lo), std::min(a.hi, b.hi), false};
}

Interval max(const Interval& a, const Interval& b) noexcept {
  if (a.empty || b.empty) return Interval::bottom();
  return Interval{std::max(a.lo, b.lo), std::max(a.hi, b.hi), false};
}

Interval floor(const Interval& a) noexcept {
  if (a.empty) return Interval::bottom();
  return Interval{std::floor(a.lo), std::floor(a.hi), false};
}

Interval ceil_div(const Interval& a, const Interval& b) noexcept {
  if (a.empty || b.empty || b.lo <= 0.0) return Interval::bottom();
  // ceil(a/b) is increasing in a for b > 0, so the bounds come from a.lo
  // and a.hi — but which divisor corner is extreme flips with the sign of
  // the dividend (a/b.hi is the smaller quotient only for a >= 0), so take
  // both corners per bound. Mirrors integer round-up division exactly for
  // integer-valued inputs.
  const auto cd = [](double n, double d) { return std::ceil(n / d); };
  return Interval{std::min(cd(a.lo, b.lo), cd(a.lo, b.hi)),
                  std::max(cd(a.hi, b.lo), cd(a.hi, b.hi)), false};
}

}  // namespace pt::clsim::analyze
