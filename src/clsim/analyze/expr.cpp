#include "clsim/analyze/expr.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "clsim/device.hpp"

namespace pt::clsim::analyze {

namespace {

enum class Op {
  kConst,
  kParam,
  kDeviceLimit,
  kAdd,
  kSub,
  kMul,
  kMin,
  kMax,
  kCeilDiv,
  kFloor,
  kSelect,
};

double limit_value(DeviceLimit limit, const DeviceInfo& device) {
  switch (limit) {
    case DeviceLimit::kMaxWorkGroupSize:
      return static_cast<double>(device.max_work_group_size);
    case DeviceLimit::kMaxWorkItem0:
      return static_cast<double>(device.max_work_item_sizes[0]);
    case DeviceLimit::kMaxWorkItem1:
      return static_cast<double>(device.max_work_item_sizes[1]);
    case DeviceLimit::kMaxWorkItem2:
      return static_cast<double>(device.max_work_item_sizes[2]);
    case DeviceLimit::kLocalMemBytes:
      return static_cast<double>(device.local_mem_bytes);
    case DeviceLimit::kConstantMemBytes:
      return static_cast<double>(device.constant_mem_bytes);
    case DeviceLimit::kGlobalMemBytes:
      return static_cast<double>(device.global_mem_bytes);
    case DeviceLimit::kRegistersPerCu:
      return static_cast<double>(device.registers_per_cu);
    case DeviceLimit::kMaxImage2dWidth:
      return static_cast<double>(device.max_image2d_width);
    case DeviceLimit::kMaxImage2dHeight:
      return static_cast<double>(device.max_image2d_height);
    case DeviceLimit::kImagesSupported:
      return device.images_supported ? 1.0 : 0.0;
  }
  throw std::logic_error("AffineExpr: unknown device limit");
}

}  // namespace

const char* to_string(DeviceLimit limit) noexcept {
  switch (limit) {
    case DeviceLimit::kMaxWorkGroupSize: return "max_work_group_size";
    case DeviceLimit::kMaxWorkItem0: return "max_work_item_sizes[0]";
    case DeviceLimit::kMaxWorkItem1: return "max_work_item_sizes[1]";
    case DeviceLimit::kMaxWorkItem2: return "max_work_item_sizes[2]";
    case DeviceLimit::kLocalMemBytes: return "local_mem_bytes";
    case DeviceLimit::kConstantMemBytes: return "constant_mem_bytes";
    case DeviceLimit::kGlobalMemBytes: return "global_mem_bytes";
    case DeviceLimit::kRegistersPerCu: return "registers_per_cu";
    case DeviceLimit::kMaxImage2dWidth: return "max_image2d_width";
    case DeviceLimit::kMaxImage2dHeight: return "max_image2d_height";
    case DeviceLimit::kImagesSupported: return "images_supported";
  }
  return "unknown_limit";
}

struct AffineExpr::Node {
  Op op = Op::kConst;
  double value = 0.0;                    // kConst
  std::size_t dim = 0;                   // kParam
  std::string name;                      // kParam (display only)
  DeviceLimit limit{};                   // kDeviceLimit
  std::shared_ptr<const Node> a, b, c;   // operands (c: select's else arm)
};

AffineExpr AffineExpr::constant(double v) {
  auto node = std::make_shared<Node>();
  node->op = Op::kConst;
  node->value = v;
  return AffineExpr{std::move(node)};
}

AffineExpr AffineExpr::param(std::size_t dim, std::string name) {
  auto node = std::make_shared<Node>();
  node->op = Op::kParam;
  node->dim = dim;
  node->name = std::move(name);
  return AffineExpr{std::move(node)};
}

AffineExpr AffineExpr::device_limit(DeviceLimit limit) {
  auto node = std::make_shared<Node>();
  node->op = Op::kDeviceLimit;
  node->limit = limit;
  return AffineExpr{std::move(node)};
}

namespace {

double eval_node(const AffineExpr::Node& n, std::span<const int> values,
                 const DeviceInfo* device) {
  switch (n.op) {
    case Op::kConst:
      return n.value;
    case Op::kParam:
      if (n.dim >= values.size())
        throw std::out_of_range("AffineExpr: parameter dimension " +
                                std::to_string(n.dim) + " out of range");
      return static_cast<double>(values[n.dim]);
    case Op::kDeviceLimit:
      if (device == nullptr)
        throw std::invalid_argument(
            "AffineExpr: device limit referenced but no device given");
      return limit_value(n.limit, *device);
    case Op::kAdd:
      return eval_node(*n.a, values, device) + eval_node(*n.b, values, device);
    case Op::kSub:
      return eval_node(*n.a, values, device) - eval_node(*n.b, values, device);
    case Op::kMul:
      return eval_node(*n.a, values, device) * eval_node(*n.b, values, device);
    case Op::kMin:
      return std::min(eval_node(*n.a, values, device),
                      eval_node(*n.b, values, device));
    case Op::kMax:
      return std::max(eval_node(*n.a, values, device),
                      eval_node(*n.b, values, device));
    case Op::kCeilDiv: {
      const double num = eval_node(*n.a, values, device);
      const double den = eval_node(*n.b, values, device);
      if (den <= 0.0)
        throw std::domain_error("AffineExpr: ceil_div by non-positive value");
      return std::ceil(num / den);
    }
    case Op::kFloor:
      return std::floor(eval_node(*n.a, values, device));
    case Op::kSelect:
      return eval_node(*n.a, values, device) != 0.0
                 ? eval_node(*n.b, values, device)
                 : eval_node(*n.c, values, device);
  }
  throw std::logic_error("AffineExpr: unknown node op");
}

Interval eval_node(const AffineExpr::Node& n, const Box& box,
                   const ParamDomain& domain, const DeviceInfo* device) {
  switch (n.op) {
    case Op::kConst:
      return Interval::point(n.value);
    case Op::kParam:
      if (n.dim >= domain.dimension_count())
        throw std::out_of_range("AffineExpr: parameter dimension " +
                                std::to_string(n.dim) + " out of range");
      return box.value_interval(domain, n.dim);
    case Op::kDeviceLimit:
      if (device == nullptr)
        throw std::invalid_argument(
            "AffineExpr: device limit referenced but no device given");
      return Interval::point(limit_value(n.limit, *device));
    case Op::kAdd:
      return eval_node(*n.a, box, domain, device) +
             eval_node(*n.b, box, domain, device);
    case Op::kSub:
      return eval_node(*n.a, box, domain, device) -
             eval_node(*n.b, box, domain, device);
    case Op::kMul:
      return eval_node(*n.a, box, domain, device) *
             eval_node(*n.b, box, domain, device);
    case Op::kMin:
      return min(eval_node(*n.a, box, domain, device),
                 eval_node(*n.b, box, domain, device));
    case Op::kMax:
      return max(eval_node(*n.a, box, domain, device),
                 eval_node(*n.b, box, domain, device));
    case Op::kCeilDiv:
      return ceil_div(eval_node(*n.a, box, domain, device),
                      eval_node(*n.b, box, domain, device));
    case Op::kFloor:
      return floor(eval_node(*n.a, box, domain, device));
    case Op::kSelect: {
      const Interval cond = eval_node(*n.a, box, domain, device);
      if (cond.empty) return Interval::bottom();
      if (cond.definitely_nonzero())
        return eval_node(*n.b, box, domain, device);
      if (cond.definitely_zero())
        return eval_node(*n.c, box, domain, device);
      return hull(eval_node(*n.b, box, domain, device),
                  eval_node(*n.c, box, domain, device));
    }
  }
  throw std::logic_error("AffineExpr: unknown node op");
}

void print_node(const AffineExpr::Node& n, std::ostringstream& out) {
  const auto infix = [&](const char* sym) {
    out << '(';
    print_node(*n.a, out);
    out << ' ' << sym << ' ';
    print_node(*n.b, out);
    out << ')';
  };
  const auto call2 = [&](const char* fn) {
    out << fn << '(';
    print_node(*n.a, out);
    out << ", ";
    print_node(*n.b, out);
    out << ')';
  };
  switch (n.op) {
    case Op::kConst: out << n.value; return;
    case Op::kParam: out << n.name; return;
    case Op::kDeviceLimit: out << to_string(n.limit); return;
    case Op::kAdd: infix("+"); return;
    case Op::kSub: infix("-"); return;
    case Op::kMul: infix("*"); return;
    case Op::kMin: call2("min"); return;
    case Op::kMax: call2("max"); return;
    case Op::kCeilDiv: call2("ceil_div"); return;
    case Op::kFloor:
      out << "floor(";
      print_node(*n.a, out);
      out << ')';
      return;
    case Op::kSelect:
      out << "select(";
      print_node(*n.a, out);
      out << ", ";
      print_node(*n.b, out);
      out << ", ";
      print_node(*n.c, out);
      out << ')';
      return;
  }
}

}  // namespace

double AffineExpr::eval(std::span<const int> values,
                        const DeviceInfo* device) const {
  if (!node_) throw std::logic_error("AffineExpr: evaluating null expression");
  return eval_node(*node_, values, device);
}

Interval AffineExpr::eval(const Box& box, const ParamDomain& domain,
                          const DeviceInfo* device) const {
  if (!node_) throw std::logic_error("AffineExpr: evaluating null expression");
  if (box.empty()) return Interval::bottom();
  return eval_node(*node_, box, domain, device);
}

std::string AffineExpr::to_string() const {
  if (!node_) return "<null>";
  std::ostringstream ss;
  print_node(*node_, ss);
  return ss.str();
}

#define PT_ANALYZE_BINARY(fn, opcode)                                \
  AffineExpr fn(const AffineExpr& a, const AffineExpr& b) {          \
    if (!a.valid() || !b.valid())                                    \
      throw std::logic_error("AffineExpr: null operand in " #fn);    \
    auto node = std::make_shared<AffineExpr::Node>();                \
    node->op = opcode;                                               \
    node->a = a.node_;                                               \
    node->b = b.node_;                                               \
    return AffineExpr{std::move(node)};                              \
  }

PT_ANALYZE_BINARY(operator+, Op::kAdd)
PT_ANALYZE_BINARY(operator-, Op::kSub)
PT_ANALYZE_BINARY(operator*, Op::kMul)
PT_ANALYZE_BINARY(min, Op::kMin)
PT_ANALYZE_BINARY(max, Op::kMax)
PT_ANALYZE_BINARY(ceil_div, Op::kCeilDiv)

#undef PT_ANALYZE_BINARY

AffineExpr floor(const AffineExpr& a) {
  if (!a.valid()) throw std::logic_error("AffineExpr: null operand in floor");
  auto node = std::make_shared<AffineExpr::Node>();
  node->op = Op::kFloor;
  node->a = a.node_;
  return AffineExpr{std::move(node)};
}

AffineExpr select(const AffineExpr& cond, const AffineExpr& then,
                  const AffineExpr& otherwise) {
  if (!cond.valid() || !then.valid() || !otherwise.valid())
    throw std::logic_error("AffineExpr: null operand in select");
  auto node = std::make_shared<AffineExpr::Node>();
  node->op = Op::kSelect;
  node->a = cond.node_;
  node->b = then.node_;
  node->c = otherwise.node_;
  return AffineExpr{std::move(node)};
}

AffineExpr round_up(const AffineExpr& a, const AffineExpr& m) {
  return ceil_div(a, m) * m;
}

}  // namespace pt::clsim::analyze
