#include "clsim/analyze/checker.hpp"

#include <deque>
#include <stdexcept>

namespace pt::clsim::analyze {

namespace {

bool holds_everywhere(Relation rel, const Interval& lhs, const Interval& rhs) {
  if (lhs.empty || rhs.empty) return true;  // vacuous over the empty region
  switch (rel) {
    case Relation::kLessEqual: return lhs.hi <= rhs.lo;
    case Relation::kLess: return lhs.hi < rhs.lo;
    case Relation::kEqual:
      return lhs.is_point() && rhs.is_point() && lhs.lo == rhs.lo;
  }
  return false;
}

bool violated_everywhere(Relation rel, const Interval& lhs,
                         const Interval& rhs) {
  if (lhs.empty || rhs.empty) return false;
  switch (rel) {
    case Relation::kLessEqual: return lhs.lo > rhs.hi;
    case Relation::kLess: return lhs.lo >= rhs.hi;
    case Relation::kEqual: return lhs.lo > rhs.hi || lhs.hi < rhs.lo;
  }
  return false;
}

bool holds_at(Relation rel, double lhs, double rhs) {
  switch (rel) {
    case Relation::kLessEqual: return lhs <= rhs;
    case Relation::kLess: return lhs < rhs;
    case Relation::kEqual: return lhs == rhs;
  }
  return false;
}

}  // namespace

const char* to_string(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kProvedValid: return "proved_valid";
    case Verdict::kProvedInvalid: return "proved_invalid";
    case Verdict::kUnknown: return "unknown";
  }
  return "unknown";
}

StaticChecker::StaticChecker(KernelConstraints constraints, DeviceInfo device)
    : constraints_(std::move(constraints)), device_(std::move(device)) {
  for (const Constraint& c : constraints_.constraints) {
    if (!c.lhs.valid() || !c.rhs.valid())
      throw std::invalid_argument("StaticChecker: constraint '" + c.name +
                                  "' has a null expression");
  }
}

ConfigVerdict StaticChecker::check(std::span<const int> values) const {
  if (values.size() != domain().dimension_count())
    throw std::invalid_argument(
        "StaticChecker: configuration arity mismatch");
  for (const Constraint& c : constraints_.constraints) {
    if (c.guard.valid() && c.guard.eval(values, &device_) == 0.0)
      continue;  // constraint gated off at this configuration
    const double lhs = c.lhs.eval(values, &device_);
    const double rhs = c.rhs.eval(values, &device_);
    if (!holds_at(c.relation, lhs, rhs))
      return ConfigVerdict{Verdict::kProvedInvalid, c.name, c.category};
  }
  if (constraints_.complete) return ConfigVerdict{Verdict::kProvedValid, {}, {}};
  return ConfigVerdict{Verdict::kUnknown, {}, {}};
}

ConfigVerdict StaticChecker::check(const Box& box) const {
  if (box.ranges.size() != domain().dimension_count())
    throw std::invalid_argument("StaticChecker: box arity mismatch");
  // A box with no configurations satisfies (and violates) everything
  // vacuously; call it valid — there is nothing to mislabel.
  if (box.empty()) return ConfigVerdict{Verdict::kProvedValid, {}, {}};

  bool all_hold = true;
  for (const Constraint& c : constraints_.constraints) {
    bool active_everywhere = true;
    if (c.guard.valid()) {
      const Interval g = c.guard.eval(box, domain(), &device_);
      if (g.definitely_zero()) continue;  // gated off across the whole box
      active_everywhere = g.definitely_nonzero();
    }
    const Interval lhs = c.lhs.eval(box, domain(), &device_);
    const Interval rhs = c.rhs.eval(box, domain(), &device_);
    if (holds_everywhere(c.relation, lhs, rhs)) continue;
    if (active_everywhere && violated_everywhere(c.relation, lhs, rhs))
      return ConfigVerdict{Verdict::kProvedInvalid, c.name, c.category};
    all_hold = false;
  }
  if (all_hold && constraints_.complete)
    return ConfigVerdict{Verdict::kProvedValid, {}, {}};
  return ConfigVerdict{Verdict::kUnknown, {}, {}};
}

SweepReport StaticChecker::sweep(std::size_t max_boxes) const {
  return sweep(Box::full(domain()), max_boxes);
}

SweepReport StaticChecker::sweep(const Box& root,
                                 std::size_t max_boxes) const {
  SweepReport report;
  std::deque<Box> worklist;
  if (!root.empty()) worklist.push_back(root);

  const auto record = [&](Box box, const ConfigVerdict& cv) {
    const std::uint64_t n = box.count();
    switch (cv.verdict) {
      case Verdict::kProvedValid: report.proved_valid_configs += n; break;
      case Verdict::kProvedInvalid: report.proved_invalid_configs += n; break;
      case Verdict::kUnknown: report.unknown_configs += n; break;
    }
    report.regions.push_back(
        RegionVerdict{std::move(box), cv.verdict, cv.reason});
  };

  while (!worklist.empty()) {
    if (report.boxes_examined >= max_boxes) {
      // Budget exhausted: flush the remaining frontier as unknown so every
      // configuration of the root is accounted for exactly once.
      for (Box& rest : worklist)
        record(std::move(rest), ConfigVerdict{Verdict::kUnknown, {}, {}});
      break;
    }
    Box box = std::move(worklist.front());
    worklist.pop_front();
    ++report.boxes_examined;

    const ConfigVerdict cv = check(box);
    if (cv.verdict != Verdict::kUnknown) {
      ++report.boxes_discharged;
      record(std::move(box), cv);
      continue;
    }
    const std::size_t dim = box.widest_dimension();
    if (dim >= box.ranges.size()) {
      // Single-point (or unsplittable) box that is still unknown: the
      // constraint set is incomplete here; report it as-is.
      record(std::move(box), cv);
      continue;
    }
    auto [left, right] = box.split(dim);
    worklist.push_back(std::move(left));
    worklist.push_back(std::move(right));
  }
  return report;
}

}  // namespace pt::clsim::analyze
