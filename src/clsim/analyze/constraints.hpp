#pragma once

// clstat kernel constraints: a declarative, per-kernel description of what a
// configuration must satisfy to launch and run cleanly. Benchmark factories
// emit one of these next to their KernelProfile; the checker evaluates it.
//
// Each Constraint is a relation between two AffineExprs, optionally gated by
// a guard expression (the constraint only applies where the guard is
// nonzero — e.g. local-memory usage only when USE_LOCAL=1). Standard
// categories cover the driver's validate_launch rules (work-group geometry,
// local/constant memory, registers, image support) plus analyzer-only facts
// such as global buffer access footprints and barrier uniformity.

#include <cstddef>
#include <string>
#include <vector>

#include "clsim/analyze/expr.hpp"

namespace pt::clsim::analyze {

enum class Relation {
  kLessEqual,     // lhs <= rhs
  kLess,          // lhs <  rhs
  kEqual,         // lhs == rhs
};

[[nodiscard]] const char* to_string(Relation relation) noexcept;

/// What a violated constraint means, mapped onto the failure the driver or
/// clcheck would report for it. Display/diagnostic only — the verdict
/// lattice does not depend on the category.
enum class ConstraintCategory {
  kWorkGroupGeometry,   // per-dimension / total work-group size limits
  kLocalMemory,         // per-group local-memory budget
  kConstantMemory,      // constant-memory budget
  kRegisters,           // register-file pressure per CU
  kImageSupport,        // image kernels on imageless devices
  kBuildPrecondition,   // factory-level build throw (e.g. ppt > extent)
  kGlobalFootprint,     // buffer access bounds (what clcheck audits)
  kBarrierUniformity,   // all items of a group reach the same barriers
};

[[nodiscard]] const char* to_string(ConstraintCategory category) noexcept;

struct Constraint {
  std::string name;          // short diagnostic label, e.g. "local_mem_budget"
  ConstraintCategory category = ConstraintCategory::kWorkGroupGeometry;
  AffineExpr lhs;
  Relation relation = Relation::kLessEqual;
  AffineExpr rhs;
  /// Optional: the constraint applies only where guard != 0. An invalid()
  /// guard means "always applies".
  AffineExpr guard;
};

/// The full constraint set of one kernel over one ParamDomain.
struct KernelConstraints {
  std::string kernel_name;
  ParamDomain domain;
  std::vector<Constraint> constraints;
  /// True when the constraint set captures *every* way the kernel can fail
  /// (driver rejection or clcheck finding). Only a complete set lets the
  /// checker return kProvedValid; an incomplete one can still prove
  /// invalidity but degrades "all constraints hold" to kUnknown.
  bool complete = false;
};

/// Convenience builders (forward to the AffineExpr factories with terser
/// call sites in benchmark factories).
[[nodiscard]] AffineExpr cexpr(double v);
[[nodiscard]] AffineExpr param_expr(const ParamDomain& domain,
                                    const std::string& name);

}  // namespace pt::clsim::analyze
