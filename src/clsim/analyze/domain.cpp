#include "clsim/analyze/domain.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pt::clsim::analyze {

ParamDomain::ParamDomain(std::vector<Dimension> dims) : dims_(std::move(dims)) {
  for (const auto& dim : dims_) {
    if (dim.name.empty())
      throw std::invalid_argument("ParamDomain: unnamed dimension");
  }
}

std::size_t ParamDomain::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < dims_.size(); ++i)
    if (dims_[i].name == name) return i;
  throw std::out_of_range("ParamDomain: no dimension named " + name);
}

std::uint64_t ParamDomain::size() const noexcept {
  std::uint64_t n = 1;
  for (const auto& dim : dims_) n *= static_cast<std::uint64_t>(dim.values.size());
  return n;
}

Box Box::full(const ParamDomain& domain) {
  Box box;
  box.ranges.reserve(domain.dimension_count());
  for (const auto& dim : domain.dimensions())
    box.ranges.push_back(PositionRange{0, dim.values.size()});
  return box;
}

Box Box::point(const std::vector<std::size_t>& positions) {
  Box box;
  box.ranges.reserve(positions.size());
  for (const std::size_t p : positions)
    box.ranges.push_back(PositionRange{p, p + 1});
  return box;
}

bool Box::empty() const noexcept {
  return std::any_of(ranges.begin(), ranges.end(),
                     [](const PositionRange& r) { return r.count() == 0; });
}

std::uint64_t Box::count() const noexcept {
  std::uint64_t n = 1;
  for (const auto& r : ranges) n *= static_cast<std::uint64_t>(r.count());
  return n;
}

bool Box::is_point() const noexcept {
  return std::all_of(ranges.begin(), ranges.end(),
                     [](const PositionRange& r) { return r.count() == 1; });
}

Interval Box::value_interval(const ParamDomain& domain, std::size_t dim) const {
  const PositionRange& r = ranges.at(dim);
  const std::vector<int>& values = domain.dimension(dim).values;
  if (r.count() == 0 || r.hi > values.size()) return Interval::bottom();
  int lo = values[r.lo];
  int hi = lo;
  for (std::size_t p = r.lo + 1; p < r.hi; ++p) {
    lo = std::min(lo, values[p]);
    hi = std::max(hi, values[p]);
  }
  return Interval::range(lo, hi);
}

std::size_t Box::widest_dimension() const noexcept {
  std::size_t best = ranges.size();
  std::size_t best_count = 1;
  for (std::size_t d = 0; d < ranges.size(); ++d) {
    if (ranges[d].count() > best_count) {
      best = d;
      best_count = ranges[d].count();
    }
  }
  return best;
}

std::pair<Box, Box> Box::split(std::size_t dim) const {
  const PositionRange& r = ranges.at(dim);
  if (r.count() < 2)
    throw std::invalid_argument("Box::split: dimension has fewer than 2 positions");
  const std::size_t mid = r.lo + r.count() / 2;
  Box left = *this;
  Box right = *this;
  left.ranges[dim].hi = mid;
  right.ranges[dim].lo = mid;
  return {std::move(left), std::move(right)};
}

std::vector<int> Box::point_values(const ParamDomain& domain) const {
  if (!is_point())
    throw std::invalid_argument("Box::point_values: box is not a point");
  std::vector<int> values;
  values.reserve(ranges.size());
  for (std::size_t d = 0; d < ranges.size(); ++d)
    values.push_back(domain.dimension(d).values.at(ranges[d].lo));
  return values;
}

std::string Box::to_string(const ParamDomain& domain) const {
  std::ostringstream ss;
  ss << '{';
  for (std::size_t d = 0; d < ranges.size(); ++d) {
    if (d != 0) ss << ", ";
    ss << domain.dimension(d).name << '='
       << value_interval(domain, d).to_string();
  }
  ss << '}';
  return ss.str();
}

}  // namespace pt::clsim::analyze
