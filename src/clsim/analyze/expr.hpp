#pragma once

// clstat expression DSL. An AffineExpr is an immutable expression tree over
// the tuning-parameter dimensions of a ParamDomain plus device limits: the
// language the per-kernel KernelConstraints are written in. The name keeps
// the affine heritage (sums of scaled parameters), but the node set is
// deliberately richer — products of parameters (wg_x * ppt_x), min/max caps,
// integer ceiling division / round-up geometry, floor (to mirror size_t
// truncation in the profiles' register formulas), and a select for
// conditional resource terms — because the benchmark resource formulas need
// exactly those shapes.
//
// Two evaluators share the tree:
//   eval(values, device)      — exact concrete evaluation at one configuration
//   eval(box, domain, device) — sound interval evaluation over a sub-box
// Soundness contract: for every configuration inside the box, the concrete
// value lies inside the interval.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "clsim/analyze/domain.hpp"
#include "clsim/analyze/interval.hpp"

namespace pt::clsim {
struct DeviceInfo;
}  // namespace pt::clsim

namespace pt::clsim::analyze {

/// Device limits an expression may reference. Resolved against a DeviceInfo
/// at evaluation time, so one constraint set serves every device.
enum class DeviceLimit {
  kMaxWorkGroupSize,
  kMaxWorkItem0,
  kMaxWorkItem1,
  kMaxWorkItem2,
  kLocalMemBytes,
  kConstantMemBytes,
  kGlobalMemBytes,
  kRegistersPerCu,
  kMaxImage2dWidth,
  kMaxImage2dHeight,
  kImagesSupported,  // 1.0 when the device supports images, else 0.0
};

[[nodiscard]] const char* to_string(DeviceLimit limit) noexcept;

class AffineExpr {
 public:
  AffineExpr() = default;  // null expression; eval() throws

  /// Literal constant.
  [[nodiscard]] static AffineExpr constant(double v);
  /// Value of tuning dimension `dim` (index into the ParamDomain).
  [[nodiscard]] static AffineExpr param(std::size_t dim, std::string name);
  /// A device limit, resolved at evaluation time.
  [[nodiscard]] static AffineExpr device_limit(DeviceLimit limit);

  [[nodiscard]] bool valid() const noexcept { return node_ != nullptr; }

  /// Exact value at one configuration (`values[dim]` per dimension).
  /// `device` may be null if the expression references no device limit.
  [[nodiscard]] double eval(std::span<const int> values,
                            const DeviceInfo* device) const;

  /// Sound interval over a sub-box. Returns bottom for an empty box.
  [[nodiscard]] Interval eval(const Box& box, const ParamDomain& domain,
                              const DeviceInfo* device) const;

  [[nodiscard]] std::string to_string() const;

  friend AffineExpr operator+(const AffineExpr& a, const AffineExpr& b);
  friend AffineExpr operator-(const AffineExpr& a, const AffineExpr& b);
  friend AffineExpr operator*(const AffineExpr& a, const AffineExpr& b);
  friend AffineExpr min(const AffineExpr& a, const AffineExpr& b);
  friend AffineExpr max(const AffineExpr& a, const AffineExpr& b);
  /// Integer ceiling division ceil(a / b); b must evaluate > 0.
  friend AffineExpr ceil_div(const AffineExpr& a, const AffineExpr& b);
  /// Truncation toward -inf — models static_cast<std::size_t> on the
  /// non-negative doubles the profiles produce.
  friend AffineExpr floor(const AffineExpr& a);
  /// cond != 0 ? then : otherwise. Interval evaluation takes the hull of
  /// both arms unless the condition's interval is definitely (non)zero.
  friend AffineExpr select(const AffineExpr& cond, const AffineExpr& then,
                           const AffineExpr& otherwise);

  /// Implementation node; nameable (for the evaluators in expr.cpp) but
  /// opaque outside it.
  struct Node;

 private:
  explicit AffineExpr(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

[[nodiscard]] AffineExpr operator+(const AffineExpr& a, const AffineExpr& b);
[[nodiscard]] AffineExpr operator-(const AffineExpr& a, const AffineExpr& b);
[[nodiscard]] AffineExpr operator*(const AffineExpr& a, const AffineExpr& b);
[[nodiscard]] AffineExpr min(const AffineExpr& a, const AffineExpr& b);
[[nodiscard]] AffineExpr max(const AffineExpr& a, const AffineExpr& b);
[[nodiscard]] AffineExpr ceil_div(const AffineExpr& a, const AffineExpr& b);
[[nodiscard]] AffineExpr floor(const AffineExpr& a);
[[nodiscard]] AffineExpr select(const AffineExpr& cond, const AffineExpr& then,
                                const AffineExpr& otherwise);

/// round_up(a, m) = ceil(a / m) * m — the ND-range rounding the benchmarks
/// apply when padding global sizes to a work-group multiple.
[[nodiscard]] AffineExpr round_up(const AffineExpr& a, const AffineExpr& m);

}  // namespace pt::clsim::analyze
