#include "tuner/iterative.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "common/log.hpp"

namespace pt::tuner {

IterativeTuner::IterativeTuner(IterativeTunerOptions options)
    : options_(std::move(options)) {
  if (options_.measurement_budget == 0)
    throw std::invalid_argument("IterativeTuner: zero budget");
  if (options_.initial_samples == 0)
    throw std::invalid_argument("IterativeTuner: zero initial sample");
  if (options_.batch_size == 0)
    throw std::invalid_argument("IterativeTuner: zero batch size");
  if (options_.exploration_fraction < 0.0 ||
      options_.exploration_fraction > 1.0)
    throw std::invalid_argument("IterativeTuner: bad exploration fraction");
}

IterativeTuneResult IterativeTuner::tune(Evaluator& evaluator,
                                         common::Rng& rng) const {
  const ParamSpace& space = evaluator.space();
  IterativeTuneResult result;

  std::vector<TrainingSample> data;
  std::unordered_set<std::uint64_t> measured;
  bool have_best = false;
  Configuration best_config;
  double best_time = 0.0;

  auto measure_index = [&](std::uint64_t index) {
    if (!measured.insert(index).second) return;
    if (result.measurements >= options_.measurement_budget) return;
    const Configuration config = space.decode(index);
    const Measurement m = evaluator.measure(config);
    ++result.measurements;
    result.data_gathering_cost_ms += m.cost_ms;
    result.measure_attempts += m.attempts;
    result.transient_faults += m.transient_faults;
    if (!m.valid) {
      ++result.invalid_measurements;
      result.rejections.note(m.status);
      return;
    }
    data.push_back({config, m.time_ms});
    if (!have_best || m.time_ms < best_time) {
      have_best = true;
      best_time = m.time_ms;
      best_config = config;
    }
  };

  // Round 0: random seed sample.
  {
    const std::size_t n = std::min(options_.initial_samples,
                                   options_.measurement_budget);
    for (const std::size_t index : rng.sample_without_replacement(
             static_cast<std::size_t>(space.size()),
             static_cast<std::size_t>(
                 std::min<std::uint64_t>(n, space.size())))) {
      measure_index(index);
    }
    ++result.rounds;
    result.incumbent_trace.push_back(have_best ? best_time : 0.0);
  }

  // Graceful degradation: an all-invalid initial sample leaves nothing to
  // train on. Instead of giving up, keep exploring at random — any valid
  // measurement un-blocks the model-guided loop below.
  while (options_.explore_until_valid && data.empty() &&
         result.measurements < options_.measurement_budget &&
         measured.size() < space.size()) {
    for (std::size_t e = 0;
         e < options_.batch_size &&
         result.measurements < options_.measurement_budget;
         ++e) {
      measure_index(rng.below(space.size()));
    }
    ++result.resample_rounds;
    ++result.rounds;
    result.incumbent_trace.push_back(have_best ? best_time : 0.0);
    if (data.empty())
      common::log_warn("iterative[", evaluator.name(),
                       "]: no valid measurement yet after ",
                       result.measurements, " attempts (",
                       result.rejections.to_string(), "); exploring further");
  }

  std::size_t rounds_without_improvement = 0;
  // The measured-set guard matters when the budget exceeds the space: once
  // every configuration is measured no round can add data, and waiting for
  // the budget to fill would loop forever.
  while (result.measurements < options_.measurement_budget && !data.empty() &&
         measured.size() < space.size()) {
    const double before = have_best ? best_time : 0.0;

    // Train on everything measured so far.
    AnnPerformanceModel model(options_.model);
    model.fit(space, data, rng);

    // Exploitation: best predictions not yet measured.
    const std::size_t batch =
        std::min(options_.batch_size,
                 options_.measurement_budget - result.measurements);
    const auto explore = static_cast<std::size_t>(
        static_cast<double>(batch) * options_.exploration_fraction + 0.5);
    const std::size_t exploit = batch - explore;

    if (exploit > 0) {
      // Streaming top-m scan with a "not yet measured" filter: no full
      // prediction vector, and the selection is exactly the exploit best
      // unmeasured configurations.
      const auto scan = model.predict_scan_top_m(
          0, space.size(), exploit, [&measured](std::uint64_t index) {
            return measured.count(index) == 0;
          });
      for (const auto& candidate : scan.top) measure_index(candidate.index);
    }
    // Exploration: fresh random configurations.
    for (std::size_t e = 0; e < explore; ++e) {
      measure_index(rng.below(space.size()));
    }

    ++result.rounds;
    result.incumbent_trace.push_back(have_best ? best_time : 0.0);
    common::log_info("iterative[", evaluator.name(), "]: round ",
                     result.rounds, " best=", have_best ? best_time : -1.0,
                     " measured=", result.measurements);

    if (have_best && before > 0.0 && best_time >= before) {
      ++rounds_without_improvement;
      if (options_.patience_rounds > 0 &&
          rounds_without_improvement >= options_.patience_rounds)
        break;
    } else {
      rounds_without_improvement = 0;
    }
  }

  if (!data.empty()) {
    AnnPerformanceModel model(options_.model);
    model.fit(space, data, rng);
    result.model = std::move(model);
  }
  result.success = have_best;
  if (have_best) {
    result.best_config = std::move(best_config);
    result.best_time_ms = best_time;
  } else {
    common::log_warn("iterative[", evaluator.name(),
                     "]: no valid configuration in ", result.measurements,
                     " measurements (", result.rejections.to_string(),
                     "); no prediction");
  }
  return result;
}

}  // namespace pt::tuner
