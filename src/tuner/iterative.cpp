#include "tuner/iterative.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_set>

#include "common/log.hpp"
#include "common/telemetry/telemetry.hpp"

namespace pt::tuner {

namespace tel = common::telemetry;

namespace {

/// Deliver the per-member training curves of a fitted model in (member,
/// epoch) order — concurrent training, deterministic callback sequence.
void replay_epochs(const TunerRunContext& run,
                   const AnnPerformanceModel& model) {
  if (run.observer == nullptr) return;
  const auto& curves = model.ensemble().train_results();
  for (std::size_t member = 0; member < curves.size(); ++member) {
    const ml::TrainResult& tr = curves[member];
    for (std::size_t epoch = 0; epoch < tr.train_loss.size(); ++epoch)
      run.observer->on_epoch(member, epoch, tr.train_loss[epoch],
                             tr.monitored_loss[epoch]);
  }
}

}  // namespace

IterativeTuner::IterativeTuner(IterativeTunerOptions options)
    : options_(std::move(options)) {
  if (options_.measurement_budget == 0)
    throw std::invalid_argument("IterativeTuner: zero budget");
  if (options_.initial_samples == 0)
    throw std::invalid_argument("IterativeTuner: zero initial sample");
  if (options_.batch_size == 0)
    throw std::invalid_argument("IterativeTuner: zero batch size");
  if (options_.exploration_fraction < 0.0 ||
      options_.exploration_fraction > 1.0)
    throw std::invalid_argument("IterativeTuner: bad exploration fraction");
}

IterativeTuneResult IterativeTuner::tune(Evaluator& evaluator,
                                         const TuneRun& request) const {
  const TunerRunContext& run = request.effective_context(options_.run);
  const bool explore_until_valid =
      request.explore_until_valid.value_or(options_.explore_until_valid);
  if (request.rng != nullptr)
    return run_tune(evaluator, *request.rng, run, explore_until_valid);
  common::Rng rng = run.make_rng();
  return run_tune(evaluator, rng, run, explore_until_valid);
}

IterativeTuneResult IterativeTuner::tune(Evaluator& evaluator) const {
  return tune(evaluator, TuneRun{});
}

IterativeTuneResult IterativeTuner::tune(Evaluator& evaluator,
                                         common::Rng& rng) const {
  TuneRun request;
  request.rng = &rng;
  return tune(evaluator, request);
}

IterativeTuneResult IterativeTuner::run_tune(Evaluator& evaluator,
                                             common::Rng& rng,
                                             const TunerRunContext& run,
                                             bool explore_until_valid) const {
  const ScopedRunContext scoped(run);
  StageScope whole(run, "iterative", "iterative.tune");

  const ParamSpace& space = evaluator.space();
  IterativeTuneResult result;

  CachingEvaluator* cache = find_layer<CachingEvaluator>(&evaluator);
  const std::size_t cache_hits_before = cache != nullptr ? cache->hits() : 0;
  const std::size_t cache_misses_before =
      cache != nullptr ? cache->misses() : 0;

  // clstat pre-filter tallies (bumped by scan workers during exploit scans).
  StaticPruneCounters static_counters;

  std::vector<TrainingSample> data;
  std::unordered_set<std::uint64_t> measured;
  bool have_best = false;
  Configuration best_config;
  double best_time = 0.0;

  // What measure_index reports to the observer; updated as the tuner moves
  // between sampling modes.
  std::string_view measure_stage = "round0";

  auto measure_index = [&](std::uint64_t index) {
    if (!measured.insert(index).second) return;
    if (result.measurements >= options_.measurement_budget) return;
    const Configuration config = space.decode(index);
    const Measurement m = evaluator.measure(config);
    ++result.measurements;
    result.data_gathering_cost_ms += m.cost_ms;
    result.measure_attempts += m.attempts;
    result.transient_faults += m.transient_faults;
    if (run.observer != nullptr) {
      run.observer->on_measurement(measure_stage, config, m);
      run.observer->on_sample(measure_stage, config, m);
    }
    if (!m.valid) {
      ++result.invalid_measurements;
      result.rejections.note(m.status);
      return;
    }
    data.push_back({config, m.time_ms});
    if (!have_best || m.time_ms < best_time) {
      have_best = true;
      best_time = m.time_ms;
      best_config = config;
    }
  };

  // Round 0: random seed sample.
  {
    StageScope stage(run, "iterative", "iterative.round0");
    const std::size_t n = std::min(options_.initial_samples,
                                   options_.measurement_budget);
    for (const std::size_t index : rng.sample_without_replacement(
             static_cast<std::size_t>(space.size()),
             static_cast<std::size_t>(
                 std::min<std::uint64_t>(n, space.size())))) {
      measure_index(index);
    }
    ++result.rounds;
    result.incumbent_trace.push_back(have_best ? best_time : 0.0);
  }

  // Graceful degradation: an all-invalid initial sample leaves nothing to
  // train on. Instead of giving up, keep exploring at random — any valid
  // measurement un-blocks the model-guided loop below.
  measure_stage = "resample";
  while (explore_until_valid && data.empty() &&
         result.measurements < options_.measurement_budget &&
         measured.size() < space.size()) {
    StageScope stage(run, "iterative", "iterative.resample");
    for (std::size_t e = 0;
         e < options_.batch_size &&
         result.measurements < options_.measurement_budget;
         ++e) {
      measure_index(rng.below(space.size()));
    }
    ++result.resample_rounds;
    ++result.rounds;
    result.incumbent_trace.push_back(have_best ? best_time : 0.0);
    if (data.empty())
      common::log_warn("iterative[", evaluator.name(),
                       "]: no valid measurement yet after ",
                       result.measurements, " attempts (",
                       result.rejections.to_string(), "); exploring further");
  }

  std::size_t rounds_without_improvement = 0;
  // The measured-set guard matters when the budget exceeds the space: once
  // every configuration is measured no round can add data, and waiting for
  // the budget to fill would loop forever.
  while (result.measurements < options_.measurement_budget && !data.empty() &&
         measured.size() < space.size()) {
    StageScope round_stage(run, "iterative", "iterative.round");
    const double before = have_best ? best_time : 0.0;

    // Train on everything measured so far.
    AnnPerformanceModel model(options_.model);
    {
      StageScope stage(run, "iterative", "iterative.model.fit");
      model.fit(space, data, rng);
    }
    replay_epochs(run, model);

    // Exploitation: best predictions not yet measured.
    const std::size_t batch =
        std::min(options_.batch_size,
                 options_.measurement_budget - result.measurements);
    const auto explore = static_cast<std::size_t>(
        static_cast<double>(batch) * options_.exploration_fraction + 0.5);
    const std::size_t exploit = batch - explore;

    if (exploit > 0) {
      // Streaming top-m scan with a "not yet measured" filter: no full
      // prediction vector, and the selection is exactly the exploit best
      // unmeasured configurations.
      StageScope stage(run, "iterative", "iterative.exploit");
      measure_stage = "exploit";
      ScanFilter filter = [&measured](std::uint64_t index) {
        return measured.count(index) == 0;
      };
      if (options_.static_checker != nullptr)
        filter = make_static_scan_filter(space, *options_.static_checker,
                                         static_counters, std::move(filter));
      const auto scan =
          model.predict_scan_top_m(0, space.size(), exploit, filter);
      for (const auto& candidate : scan.top) {
        if (run.observer != nullptr)
          run.observer->on_candidate(candidate.index, candidate.predicted_ms);
        measure_index(candidate.index);
      }
    }
    // Exploration: fresh random configurations.
    {
      StageScope stage(run, "iterative", "iterative.explore");
      measure_stage = "explore";
      for (std::size_t e = 0; e < explore; ++e) {
        measure_index(rng.below(space.size()));
      }
    }

    ++result.rounds;
    result.incumbent_trace.push_back(have_best ? best_time : 0.0);
    common::log_info("iterative[", evaluator.name(), "]: round ",
                     result.rounds, " best=", have_best ? best_time : -1.0,
                     " measured=", result.measurements);

    if (have_best && before > 0.0 && best_time >= before) {
      ++rounds_without_improvement;
      if (options_.patience_rounds > 0 &&
          rounds_without_improvement >= options_.patience_rounds)
        break;
    } else {
      rounds_without_improvement = 0;
    }
  }

  if (!data.empty()) {
    StageScope stage(run, "iterative", "iterative.model.fit");
    AnnPerformanceModel model(options_.model);
    model.fit(space, data, rng);
    stage.finish();
    replay_epochs(run, model);
    result.model = std::move(model);
  }
  result.success = have_best;
  if (have_best) {
    result.best_config = std::move(best_config);
    result.best_time_ms = best_time;
  } else {
    common::log_warn("iterative[", evaluator.name(),
                     "]: no valid configuration in ", result.measurements,
                     " measurements (", result.rejections.to_string(),
                     "); no prediction");
  }

  if (cache != nullptr) {
    result.cache_hits = cache->hits() - cache_hits_before;
    result.cache_misses = cache->misses() - cache_misses_before;
    const std::size_t lookups = result.cache_hits + result.cache_misses;
    common::log_info("iterative[", evaluator.name(), "]: cache ",
                     result.cache_hits, " hits / ", result.cache_misses,
                     " misses (hit rate ",
                     lookups != 0 ? 100.0 * static_cast<double>(
                                                result.cache_hits) /
                                        static_cast<double>(lookups)
                                  : 0.0,
                     "%)");
    if (tel::enabled() && lookups != 0)
      tel::gauge("tuner.cache.hit_rate",
                 static_cast<double>(result.cache_hits) /
                     static_cast<double>(lookups));
  }
  if (options_.static_checker != nullptr) {
    result.static_checked =
        static_cast<std::size_t>(static_counters.checked.load());
    result.static_pruned =
        static_cast<std::size_t>(static_counters.pruned.load());
    result.static_proved_valid =
        static_cast<std::size_t>(static_counters.proved_valid.load());
    result.static_unknown =
        static_cast<std::size_t>(static_counters.unknown.load());
    common::log_info(
        "iterative[", evaluator.name(), "]: static filter pruned ",
        result.static_pruned, " of ", result.static_checked,
        " checked (pruned fraction ",
        result.static_checked != 0
            ? 100.0 * static_cast<double>(result.static_pruned) /
                  static_cast<double>(result.static_checked)
            : 0.0,
        "%; verdicts: ", result.static_proved_valid, " proved valid, ",
        result.static_pruned, " proved invalid, ", result.static_unknown,
        " unknown)");
    if (tel::enabled()) {
      tel::count("tuner.scan.static_checked",
                 static_cast<double>(result.static_checked));
      tel::count("tuner.scan.static_pruned",
                 static_cast<double>(result.static_pruned));
      tel::count("tuner.scan.static_proved_valid",
                 static_cast<double>(result.static_proved_valid));
      tel::count("tuner.scan.static_unknown",
                 static_cast<double>(result.static_unknown));
      if (result.static_checked != 0)
        tel::gauge("tuner.scan.static_pruned_fraction",
                   static_cast<double>(result.static_pruned) /
                       static_cast<double>(result.static_checked));
    }
  }
  if (tel::enabled()) {
    tel::count("tuner.iterative.measurements",
               static_cast<double>(result.measurements));
    tel::count("tuner.iterative.invalid",
               static_cast<double>(result.invalid_measurements));
    tel::count("tuner.iterative.rounds",
               static_cast<double>(result.rounds));
    tel::count("tuner.iterative.resample_rounds",
               static_cast<double>(result.resample_rounds));
    tel::count("tuner.measure.attempts",
               static_cast<double>(result.measure_attempts));
    tel::count("tuner.measure.transient_faults",
               static_cast<double>(result.transient_faults));
    tel::gauge("tuner.data_gathering_cost_ms", result.data_gathering_cost_ms);
    for (const auto& [status, n] : result.rejections.sorted())
      tel::count(std::string("tuner.rejections.") + clsim::to_string(status),
                 static_cast<double>(n));
  }
  return result;
}

}  // namespace pt::tuner
