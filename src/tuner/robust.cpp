#include "tuner/robust.hpp"

#include <stdexcept>
#include <vector>

#include "common/stats.hpp"
#include "common/telemetry/telemetry.hpp"

namespace pt::tuner {

common::Rng attempt_stream(std::uint64_t seed, std::uint64_t config_index,
                           std::uint64_t attempt) noexcept {
  // Three dependent splitmix64 steps: each argument perturbs the state
  // before the next stretch, so (seed, index, attempt) triples that differ
  // in any coordinate yield unrelated streams.
  std::uint64_t state = seed ^ 0xa0761d6478bd642fULL;
  state = common::splitmix64(state) ^ config_index;
  state = common::splitmix64(state) ^ attempt;
  return common::Rng(common::splitmix64(state));
}

bool is_transient_status(clsim::Status status) noexcept {
  return status == clsim::Status::kOutOfResources;
}

// --- NoisyEvaluator ---

NoisyEvaluator::NoisyEvaluator(Evaluator& inner, Options options)
    : inner_(inner), options_(options) {
  if (options_.sigma < 0.0)
    throw std::invalid_argument("NoisyEvaluator: negative sigma");
}

Measurement NoisyEvaluator::measure(const Configuration& config) {
  const std::uint64_t index = inner_.space().encode(config);
  const std::uint64_t attempt = attempts_[index]++;
  Measurement m = inner_.measure(config);
  if (!m.valid || options_.sigma == 0.0) return m;
  common::Rng rng = attempt_stream(options_.seed, index, attempt);
  const double noisy = m.time_ms * rng.lognormal(0.0, options_.sigma);
  // The run really took the noisy time, so the cost moves with it.
  m.cost_ms += noisy - m.time_ms;
  m.time_ms = noisy;
  return m;
}

// --- FaultInjectingEvaluator ---

FaultInjectingEvaluator::FaultInjectingEvaluator(Evaluator& inner,
                                                 Options options)
    : inner_(inner), options_(options) {
  for (const double rate :
       {options_.transient_rate, options_.spurious_rate, options_.outlier_rate})
    if (rate < 0.0 || rate > 1.0)
      throw std::invalid_argument("FaultInjectingEvaluator: rate outside [0,1]");
  if (options_.outlier_factor <= 0.0)
    throw std::invalid_argument(
        "FaultInjectingEvaluator: non-positive outlier factor");
}

Measurement FaultInjectingEvaluator::measure(const Configuration& config) {
  const std::uint64_t index = inner_.space().encode(config);
  const std::uint64_t attempt = attempts_[index]++;
  common::Rng rng = attempt_stream(options_.seed, index, attempt);
  // Draw all three faults up front so each class consumes a fixed number of
  // stream values regardless of which (if any) fires.
  const bool transient = rng.bernoulli(options_.transient_rate);
  const bool spurious = rng.bernoulli(options_.spurious_rate);
  const bool outlier = rng.bernoulli(options_.outlier_rate);

  if (transient) {
    // The launch fails before the kernel runs; the real evaluator is never
    // consulted, but the failed round-trip still wastes time.
    ++transient_;
    common::telemetry::count("evaluator.fault.transient_injected");
    Measurement m;
    m.valid = false;
    m.status = clsim::Status::kOutOfResources;
    m.cost_ms = options_.fault_cost_ms;
    return m;
  }

  Measurement m = inner_.measure(config);
  if (!m.valid) return m;  // genuinely invalid: pass the real verdict through

  if (spurious) {
    // The run completed but the driver misreports it as rejected, with a
    // permanent-looking status retry cannot fix.
    ++spurious_;
    common::telemetry::count("evaluator.fault.spurious_injected");
    m.valid = false;
    m.status = clsim::Status::kInvalidWorkGroupSize;
    m.time_ms = 0.0;
    return m;
  }
  if (outlier) {
    ++outliers_;
    common::telemetry::count("evaluator.fault.outlier_injected");
    m.cost_ms += m.time_ms * (options_.outlier_factor - 1.0);
    m.time_ms *= options_.outlier_factor;
  }
  return m;
}

// --- RobustEvaluator ---

RobustEvaluator::RobustEvaluator(Evaluator& inner, Options options)
    : inner_(inner), options_(options) {
  if (options_.repeats == 0)
    throw std::invalid_argument("RobustEvaluator: zero repeats");
  if (options_.trim_fraction < 0.0 || options_.trim_fraction >= 0.5)
    throw std::invalid_argument(
        "RobustEvaluator: trim fraction outside [0, 0.5)");
  if (options_.backoff_ms < 0.0)
    throw std::invalid_argument("RobustEvaluator: negative backoff");
}

double RobustEvaluator::aggregate(const std::vector<double>& times) const {
  switch (options_.aggregation) {
    case Aggregation::kMedian:
      return common::median(times);
    case Aggregation::kTrimmedMean:
      return common::trimmed_mean(times, options_.trim_fraction);
  }
  return common::median(times);  // unreachable
}

Measurement RobustEvaluator::measure(const Configuration& config) {
  Measurement out;
  out.attempts = 0;
  std::vector<double> times;
  times.reserve(options_.repeats);
  clsim::Status last_transient = clsim::Status::kSuccess;

  for (std::size_t repeat = 0; repeat < options_.repeats; ++repeat) {
    bool repeat_succeeded = false;
    for (std::size_t try_no = 0; try_no <= options_.max_retries; ++try_no) {
      const Measurement m = inner_.measure(config);
      ++out.attempts;
      ++total_attempts_;
      common::telemetry::count("evaluator.robust.attempts");
      out.cost_ms += m.cost_ms;
      if (m.valid) {
        times.push_back(m.time_ms);
        repeat_succeeded = true;
        break;
      }
      if (!is_transient_status(m.status)) {
        // Permanent rejection: the configuration itself is invalid (or the
        // driver insists it is); repeating cannot change the verdict.
        out.valid = false;
        out.status = m.status;
        return out;
      }
      ++out.transient_faults;
      ++transient_failures_;
      common::telemetry::count("evaluator.robust.transient_failures");
      last_transient = m.status;
      if (try_no < options_.max_retries) {
        // Simulated exponential backoff before the retry.
        out.cost_ms +=
            options_.backoff_ms * static_cast<double>(1ULL << try_no);
        ++retries_;
        common::telemetry::count("evaluator.robust.retries");
      }
    }
    if (!repeat_succeeded) {
      // Retry budget exhausted on transient failures: stop burning attempts.
      ++exhausted_;
      common::telemetry::count("evaluator.robust.exhausted");
      break;
    }
  }

  if (times.empty()) {
    out.valid = false;
    out.status = last_transient;
    return out;
  }
  out.valid = true;
  out.status = clsim::Status::kSuccess;
  out.time_ms = aggregate(times);
  return out;
}

}  // namespace pt::tuner
