#include "tuner/features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pt::tuner {

FeatureCodec FeatureCodec::build(const ParamSpace& space,
                                 FeatureEncoding encoding) {
  FeatureCodec codec;
  codec.use_log2_.assign(space.dimension_count(), false);
  if (encoding != FeatureEncoding::kLog2) return codec;
  for (std::size_t d = 0; d < space.dimension_count(); ++d) {
    const auto& values = space.parameter(d).values;
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    codec.use_log2_[d] = *lo > 0 && *hi >= 4 * *lo;
  }
  return codec;
}

std::vector<double> FeatureCodec::encode(const Configuration& config) const {
  std::vector<double> features(config.values.size());
  encode_into(config, features);
  return features;
}

void FeatureCodec::encode_into(const Configuration& config,
                               std::span<double> row) const {
  if (config.values.size() != use_log2_.size() ||
      row.size() != use_log2_.size())
    throw std::invalid_argument("FeatureCodec: width mismatch");
  for (std::size_t d = 0; d < use_log2_.size(); ++d) {
    const double v = static_cast<double>(config.values[d]);
    row[d] = use_log2_[d] ? std::log2(v) : v;
  }
}

}  // namespace pt::tuner
