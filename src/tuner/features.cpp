#include "tuner/features.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pt::tuner {

FeatureCodec FeatureCodec::build(const ParamSpace& space,
                                 FeatureEncoding encoding) {
  FeatureCodec codec;
  codec.use_log2_.assign(space.dimension_count(), false);
  if (encoding != FeatureEncoding::kLog2) return codec;
  for (std::size_t d = 0; d < space.dimension_count(); ++d) {
    const auto& values = space.parameter(d).values;
    const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
    codec.use_log2_[d] = *lo > 0 && *hi >= 4 * *lo;
  }
  return codec;
}

std::vector<double> FeatureCodec::encode(const Configuration& config) const {
  std::vector<double> features(config.values.size());
  encode_into(config, features);
  return features;
}

void FeatureCodec::encode_into(const Configuration& config,
                               std::span<double> row) const {
  if (config.values.size() != use_log2_.size() ||
      row.size() != use_log2_.size())
    throw std::invalid_argument("FeatureCodec: width mismatch");
  for (std::size_t d = 0; d < use_log2_.size(); ++d) {
    const double v = static_cast<double>(config.values[d]);
    row[d] = use_log2_[d] ? std::log2(v) : v;
  }
}

RangeEncoder::RangeEncoder(const FeatureCodec& codec, const ParamSpace& space) {
  if (codec.width() != space.dimension_count())
    throw std::invalid_argument("RangeEncoder: codec/space width mismatch");
  dims_.resize(space.dimension_count());
  for (std::size_t d = 0; d < space.dimension_count(); ++d) {
    const auto& values = space.parameter(d).values;
    Dim& dim = dims_[d];
    dim.encoded.reserve(values.size());
    dim.encoded_f.reserve(values.size());
    for (const int v : values) {
      // The same expression encode_into evaluates, so fill() reproduces the
      // per-row path bit for bit.
      const double e = codec.uses_log2(d) ? std::log2(static_cast<double>(v))
                                          : static_cast<double>(v);
      dim.encoded.push_back(e);
      dim.encoded_f.push_back(static_cast<float>(e));
    }
  }
  space_size_ = space.size();
}

namespace {

// Initialize the mixed-radix digits of `index` (first dimension is the
// fastest-varying, matching ParamSpace::decode).
template <typename Dim>
void seed_digits(std::uint64_t index, const std::vector<Dim>& dims,
                 std::vector<std::size_t>& digits) {
  digits.resize(dims.size());
  for (std::size_t d = 0; d < dims.size(); ++d) {
    const std::uint64_t radix = dims[d].encoded.size();
    digits[d] = static_cast<std::size_t>(index % radix);
    index /= radix;
  }
}

template <typename Dim>
void advance_digits(const std::vector<Dim>& dims,
                    std::vector<std::size_t>& digits) {
  for (std::size_t d = 0; d < dims.size(); ++d) {
    if (++digits[d] < dims[d].encoded.size()) return;
    digits[d] = 0;
  }
}

}  // namespace

void RangeEncoder::fill(std::uint64_t lo, std::uint64_t hi, ml::Matrix& x,
                        std::span<const double> tail) const {
  if (lo > hi || hi > space_size_)
    throw std::out_of_range("RangeEncoder::fill: bad range");
  const std::size_t rows = static_cast<std::size_t>(hi - lo);
  const std::size_t cols = width(tail.size());
  x.reshape(rows, cols);
  std::vector<std::size_t> digits;
  seed_digits(lo, dims_, digits);
  double* row = x.flat().data();
  for (std::size_t r = 0; r < rows; ++r, row += cols) {
    for (std::size_t d = 0; d < dims_.size(); ++d)
      row[d] = dims_[d].encoded[digits[d]];
    for (std::size_t t = 0; t < tail.size(); ++t)
      row[dims_.size() + t] = tail[t];
    advance_digits(dims_, digits);
  }
}

void RangeEncoder::fill_f32(std::uint64_t lo, std::uint64_t hi,
                            std::vector<float>& out,
                            std::span<const float> tail) const {
  if (lo > hi || hi > space_size_)
    throw std::out_of_range("RangeEncoder::fill_f32: bad range");
  const std::size_t rows = static_cast<std::size_t>(hi - lo);
  const std::size_t cols = width(tail.size());
  out.resize(rows * cols);
  std::vector<std::size_t> digits;
  seed_digits(lo, dims_, digits);
  float* row = out.data();
  for (std::size_t r = 0; r < rows; ++r, row += cols) {
    for (std::size_t d = 0; d < dims_.size(); ++d)
      row[d] = dims_[d].encoded_f[digits[d]];
    for (std::size_t t = 0; t < tail.size(); ++t)
      row[dims_.size() + t] = tail[t];
    advance_digits(dims_, digits);
  }
}

ml::QuantCalibration RangeEncoder::calibration(
    std::span<const float> tail) const {
  ml::QuantCalibration calib;
  calib.lo.reserve(dims_.size() + tail.size());
  calib.hi.reserve(dims_.size() + tail.size());
  for (const Dim& dim : dims_) {
    const auto [lo, hi] =
        std::minmax_element(dim.encoded_f.begin(), dim.encoded_f.end());
    calib.lo.push_back(*lo);
    calib.hi.push_back(*hi);
  }
  for (const float t : tail) {
    calib.lo.push_back(t);
    calib.hi.push_back(t);
  }
  return calib;
}

}  // namespace pt::tuner
