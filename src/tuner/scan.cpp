#include "tuner/scan.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "common/telemetry/telemetry.hpp"
#include "common/thread_pool.hpp"

namespace pt::tuner {
namespace {

/// Per-chunk working set: the feature matrix, the ensemble's prediction
/// scratch, and the raw-output vector. Pooled so each worker reuses one
/// across all the chunks it executes.
struct ChunkScratch {
  ml::Matrix x;
  ml::BaggingEnsemble::PredictScratch ps;
  std::vector<double> preds;
};

class ScratchPool {
 public:
  std::unique_ptr<ChunkScratch> acquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.empty()) return std::make_unique<ChunkScratch>();
    auto s = std::move(free_.back());
    free_.pop_back();
    return s;
  }

  void release(std::unique_ptr<ChunkScratch> s) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(s));
  }

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<ChunkScratch>> free_;
};

struct RawCandidate {
  double raw = 0.0;
  std::uint64_t index = 0;
};

/// Total order: smaller raw output (faster prediction) first, index breaks
/// ties. Totality makes the merged selection independent of chunk order.
bool better(const RawCandidate& a, const RawCandidate& b) {
  if (a.raw != b.raw) return a.raw < b.raw;
  return a.index < b.index;
}

/// Bounded selection heap: keeps the best m candidates seen so far with the
/// worst of them at the front (a max-heap under `better`), so each new
/// candidate is one comparison against the current cutoff.
class BoundedTopM {
 public:
  explicit BoundedTopM(std::size_t m) : m_(m) { heap_.reserve(m); }

  [[nodiscard]] bool would_enter(const RawCandidate& c) const {
    if (m_ == 0) return false;
    if (heap_.size() < m_) return true;
    return better(c, heap_.front());
  }

  void push(const RawCandidate& c) {
    heap_.push_back(c);
    std::push_heap(heap_.begin(), heap_.end(), better);
    if (heap_.size() > m_) {
      std::pop_heap(heap_.begin(), heap_.end(), better);
      heap_.pop_back();
    }
  }

  [[nodiscard]] std::vector<RawCandidate> take() { return std::move(heap_); }

 private:
  std::size_t m_;
  std::vector<RawCandidate> heap_;
};

std::uint64_t chunk_count_for(std::uint64_t n) {
  return (n + kScanChunkRows - 1) / kScanChunkRows;
}

std::vector<ScanCandidate> merge_chunks(
    std::vector<std::vector<RawCandidate>>& chunks, std::size_t m,
    const OutputTransform& transform) {
  std::vector<RawCandidate> all;
  for (auto& v : chunks) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end(), better);
  if (all.size() > m) all.resize(m);
  std::vector<ScanCandidate> out;
  out.reserve(all.size());
  for (const auto& c : all)
    out.push_back(ScanCandidate{c.index, transform(c.raw)});
  return out;
}

}  // namespace

std::vector<double> scan_predict_range(const ml::BaggingEnsemble& ensemble,
                                       const ScanRowFiller& fill,
                                       std::uint64_t begin, std::uint64_t end,
                                       const OutputTransform& transform) {
  if (begin > end) throw std::invalid_argument("scan_predict_range: bad range");
  const std::uint64_t n = end - begin;
  std::vector<double> out(static_cast<std::size_t>(n));
  if (n == 0) return out;

  ScratchPool pool;
  common::global_pool().parallel_for(
      0, static_cast<std::size_t>(chunk_count_for(n)), [&](std::size_t c) {
        const common::telemetry::Span span("scan.chunk");
        const std::uint64_t lo = begin + c * kScanChunkRows;
        const std::uint64_t hi = std::min<std::uint64_t>(end, lo + kScanChunkRows);
        auto scratch = pool.acquire();
        fill(lo, hi, scratch->x);
        ensemble.predict_batch_into(scratch->x, scratch->preds, scratch->ps);
        const std::size_t offset = static_cast<std::size_t>(lo - begin);
        for (std::size_t i = 0; i < scratch->preds.size(); ++i)
          out[offset + i] = transform(scratch->preds[i]);
        pool.release(std::move(scratch));
      });
  return out;
}

TopMScanResult scan_top_m(const ml::BaggingEnsemble& ensemble,
                          const ScanRowFiller& fill, std::uint64_t begin,
                          std::uint64_t end, std::size_t m,
                          const OutputTransform& transform,
                          const ScanFilter& filter) {
  if (begin > end) throw std::invalid_argument("scan_top_m: bad range");
  if (!(transform.scale > 0.0))
    throw std::invalid_argument("scan_top_m: non-positive transform scale");
  TopMScanResult result;
  const std::uint64_t n = end - begin;
  result.scanned = n;
  if (n == 0 || m == 0) return result;

  const std::size_t chunks = static_cast<std::size_t>(chunk_count_for(n));
  std::vector<std::vector<RawCandidate>> chunk_top(chunks);
  std::vector<std::vector<RawCandidate>> chunk_top_unfiltered(chunks);
  std::vector<std::uint64_t> chunk_rejected(chunks, 0);

  ScratchPool pool;
  common::global_pool().parallel_for(0, chunks, [&](std::size_t c) {
    const common::telemetry::Span span("scan.chunk");
    const std::uint64_t lo = begin + c * kScanChunkRows;
    const std::uint64_t hi = std::min<std::uint64_t>(end, lo + kScanChunkRows);
    auto scratch = pool.acquire();
    fill(lo, hi, scratch->x);
    ensemble.predict_batch_into(scratch->x, scratch->preds, scratch->ps);

    BoundedTopM unfiltered(m);
    BoundedTopM filtered(m);
    std::uint64_t rejected = 0;
    for (std::size_t i = 0; i < scratch->preds.size(); ++i) {
      const RawCandidate cand{scratch->preds[i], lo + i};
      if (unfiltered.would_enter(cand)) unfiltered.push(cand);
      if (filter && filtered.would_enter(cand)) {
        // Lazy filter evaluation: only candidates good enough to enter the
        // chunk heap pay for the validity check.
        if (filter(cand.index)) {
          filtered.push(cand);
        } else {
          ++rejected;
        }
      }
    }
    chunk_top_unfiltered[c] = unfiltered.take();
    if (filter) chunk_top[c] = filtered.take();
    chunk_rejected[c] = rejected;
    pool.release(std::move(scratch));
  });

  for (std::uint64_t r : chunk_rejected) result.rejected += r;
  result.top_unfiltered = merge_chunks(chunk_top_unfiltered, m, transform);
  result.top =
      filter ? merge_chunks(chunk_top, m, transform) : result.top_unfiltered;
  if (common::telemetry::enabled()) {
    common::telemetry::count("scan.candidates_scanned",
                             static_cast<double>(result.scanned));
    common::telemetry::count("scan.candidates_filtered",
                             static_cast<double>(result.rejected));
  }
  return result;
}

}  // namespace pt::tuner
