#include "tuner/scan.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/telemetry/telemetry.hpp"
#include "common/thread_pool.hpp"

namespace pt::tuner {
namespace {

/// Per-chunk working set: the feature matrix, the ensemble's prediction
/// scratch, and the raw-output vector — plus the fp32 equivalents for the
/// batched path. Pooled so each worker reuses one across all the chunks it
/// executes.
struct ChunkScratch {
  ml::Matrix x;
  ml::BaggingEnsemble::PredictScratch ps;
  std::vector<double> preds;
  std::vector<float> xf;
  std::vector<float> predsf;
  ml::BatchedEnsemble::Scratch bs;
  ml::QuantizedEnsemble::Scratch qs;
};

class ScratchPool {
 public:
  std::unique_ptr<ChunkScratch> acquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.empty()) return std::make_unique<ChunkScratch>();
    auto s = std::move(free_.back());
    free_.pop_back();
    return s;
  }

  void release(std::unique_ptr<ChunkScratch> s) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(std::move(s));
  }

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<ChunkScratch>> free_;
};

struct RawCandidate {
  double raw = 0.0;
  std::uint64_t index = 0;
};

/// Total order: smaller raw output (faster prediction) first, index breaks
/// ties. Totality makes the merged selection independent of chunk order.
bool better(const RawCandidate& a, const RawCandidate& b) {
  if (a.raw != b.raw) return a.raw < b.raw;
  return a.index < b.index;
}

/// Bounded selection heap: keeps the best m candidates seen so far with the
/// worst of them at the front (a max-heap under `better`), so each new
/// candidate is one comparison against the current cutoff.
class BoundedTopM {
 public:
  explicit BoundedTopM(std::size_t m) : m_(m) { heap_.reserve(m); }

  [[nodiscard]] bool would_enter(const RawCandidate& c) const {
    if (m_ == 0) return false;
    if (heap_.size() < m_) return true;
    return better(c, heap_.front());
  }

  void push(const RawCandidate& c) {
    heap_.push_back(c);
    std::push_heap(heap_.begin(), heap_.end(), better);
    if (heap_.size() > m_) {
      std::pop_heap(heap_.begin(), heap_.end(), better);
      heap_.pop_back();
    }
  }

  [[nodiscard]] std::vector<RawCandidate> take() { return std::move(heap_); }

 private:
  std::size_t m_;
  std::vector<RawCandidate> heap_;
};

/// Relaxed selection for the batched fp32 path: the best-m heap plus an
/// overflow list of every candidate within `slack` (= 2x the fp32 error
/// bound) of the heap cutoff. The heap cutoff only improves as the chunk
/// streams, so pruning the overflow against the current cutoff never drops
/// a candidate that the final cutoff would have kept.
class RelaxedTopM {
 public:
  RelaxedTopM(std::size_t m, double slack) : m_(m), slack_(slack) {
    heap_.reserve(m);
  }

  /// True if offer() would retain this candidate (used for lazy filters).
  [[nodiscard]] bool would_keep(const RawCandidate& c) const {
    if (m_ == 0) return false;
    if (heap_.size() < m_) return true;
    return c.raw <= heap_.front().raw + slack_;
  }

  void offer(const RawCandidate& c) {
    if (!would_keep(c)) return;
    if (heap_.size() < m_) {
      heap_.push_back(c);
      std::push_heap(heap_.begin(), heap_.end(), better);
      return;
    }
    if (better(c, heap_.front())) {
      heap_.push_back(c);
      std::push_heap(heap_.begin(), heap_.end(), better);
      std::pop_heap(heap_.begin(), heap_.end(), better);
      const RawCandidate evicted = heap_.back();
      heap_.pop_back();
      if (evicted.raw <= heap_.front().raw + slack_)
        overflow_.push_back(evicted);
    } else {
      overflow_.push_back(c);
    }
    const std::size_t cap = std::max<std::size_t>(4 * m_, 1024);
    if (overflow_.size() > cap) {
      const double bound = heap_.front().raw + slack_;
      std::erase_if(overflow_,
                    [bound](const RawCandidate& o) { return o.raw > bound; });
    }
  }

  /// Heap plus overflow, unordered.
  [[nodiscard]] std::vector<RawCandidate> take() {
    heap_.insert(heap_.end(), overflow_.begin(), overflow_.end());
    overflow_.clear();
    return std::move(heap_);
  }

 private:
  std::size_t m_;
  double slack_;
  std::vector<RawCandidate> heap_;
  std::vector<RawCandidate> overflow_;
};

std::uint64_t chunk_count_for(std::uint64_t n) {
  return (n + kScanChunkRows - 1) / kScanChunkRows;
}

std::vector<ScanCandidate> merge_chunks(
    std::vector<std::vector<RawCandidate>>& chunks, std::size_t m,
    const OutputTransform& transform) {
  std::vector<RawCandidate> all;
  for (auto& v : chunks) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end(), better);
  if (all.size() > m) all.resize(m);
  std::vector<ScanCandidate> out;
  out.reserve(all.size());
  for (const auto& c : all)
    out.push_back(ScanCandidate{c.index, transform(c.raw)});
  return out;
}

void require_batched(const ScanOptions& options, const BatchedScan* batched,
                     const char* where) {
  if (options.inference == ScanInference::kScalarFp64) return;
  if (options.inference == ScanInference::kBatchedFp32) {
    if (!batched || !batched->engine || !batched->fill)
      throw std::invalid_argument(std::string(where) +
                                  ": batched fp32 inference requested without "
                                  "an engine and fp32 row filler");
    return;
  }
  const ml::QuantMode mode = options.inference == ScanInference::kQuantInt8
                                 ? ml::QuantMode::kInt8
                                 : ml::QuantMode::kFp16;
  if (!batched || !batched->quant || !batched->fill ||
      batched->quant->mode() != mode)
    throw std::invalid_argument(
        std::string(where) + ": " + scan_inference_name(options.inference) +
        " inference requested without a matching quantized engine and fp32 "
        "row filler");
}

void gauge_configs_per_sec(std::uint64_t n,
                           std::chrono::steady_clock::time_point start) {
  if (!common::telemetry::enabled()) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (seconds > 0.0)
    common::telemetry::gauge("tuner.scan.configs_per_sec",
                             static_cast<double>(n) / seconds);
}

/// Exact fp64 raw outputs for a set of flat indices: rows are gathered one
/// unit-range fill at a time (the filler only takes contiguous ranges) into
/// per-chunk matrices and sent through batched fp64 predicts on the pool.
/// Bit-identical to what the chunked fp64 scan computes for the same
/// indices, whatever the gathered row count: every kernel under
/// predict_batch_into accumulates per output element in a row-count
/// independent order. Batching matters on the quantized paths, whose wide
/// re-rank bands can hold thousands of survivors.
std::unordered_map<std::uint64_t, double> rerank_fp64(
    const ml::BaggingEnsemble& ensemble, const ScanRowFiller& fill,
    std::vector<std::uint64_t> indices) {
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
  std::unordered_map<std::uint64_t, double> raw64;
  raw64.reserve(indices.size());
  if (indices.empty()) return raw64;
  std::vector<double> preds(indices.size());
  const std::size_t chunks =
      (indices.size() + kScanChunkRows - 1) / kScanChunkRows;
  ScratchPool pool;
  common::global_pool().parallel_for(0, chunks, [&](std::size_t c) {
    auto scratch = pool.acquire();
    const std::size_t lo = c * kScanChunkRows;
    const std::size_t hi = std::min(indices.size(), lo + kScanChunkRows);
    fill(indices[lo], indices[lo] + 1, scratch->x);
    ml::Matrix batch(hi - lo, scratch->x.cols());
    for (std::size_t r = lo; r < hi; ++r) {
      if (r != lo) fill(indices[r], indices[r] + 1, scratch->x);
      const auto src = scratch->x.row(0);
      auto dst = batch.row(r - lo);
      for (std::size_t j = 0; j < src.size(); ++j) dst[j] = src[j];
    }
    ensemble.predict_batch_into(batch, scratch->preds, scratch->ps);
    for (std::size_t r = lo; r < hi; ++r) preds[r] = scratch->preds[r - lo];
    pool.release(std::move(scratch));
  });
  for (std::size_t r = 0; r < indices.size(); ++r)
    raw64.emplace(indices[r], preds[r]);
  return raw64;
}

/// Survivors of the global fp32 cutoff: every candidate within `slack` of
/// the m-th best fp32 output (all of them when fewer than m exist). These
/// are exactly the candidates whose fp64 rank can still reach the top m.
std::vector<RawCandidate> fp32_survivors(
    std::vector<std::vector<RawCandidate>>& chunks, std::size_t m,
    double slack) {
  std::vector<RawCandidate> all;
  for (auto& v : chunks) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end(), better);
  if (all.size() > m) {
    const double bound = all[m - 1].raw + slack;
    const auto first_out = std::find_if(
        all.begin() + static_cast<std::ptrdiff_t>(m), all.end(),
        [bound](const RawCandidate& c) { return c.raw > bound; });
    all.erase(first_out, all.end());
  }
  return all;
}

/// Re-rank survivors by their exact fp64 outputs and emit the final top-m.
std::vector<ScanCandidate> finish_fp64(
    std::vector<RawCandidate>& survivors,
    const std::unordered_map<std::uint64_t, double>& raw64, std::size_t m,
    const OutputTransform& transform) {
  for (RawCandidate& c : survivors) c.raw = raw64.at(c.index);
  std::sort(survivors.begin(), survivors.end(), better);
  if (survivors.size() > m) survivors.resize(m);
  std::vector<ScanCandidate> out;
  out.reserve(survivors.size());
  for (const auto& c : survivors)
    out.push_back(ScanCandidate{c.index, transform(c.raw)});
  return out;
}

}  // namespace

std::vector<double> scan_predict_range(const ml::BaggingEnsemble& ensemble,
                                       const ScanRowFiller& fill,
                                       std::uint64_t begin, std::uint64_t end,
                                       const OutputTransform& transform) {
  return scan_predict_range(ensemble, fill, begin, end, transform,
                            ScanOptions{}, nullptr);
}

std::vector<double> scan_predict_range(const ml::BaggingEnsemble& ensemble,
                                       const ScanRowFiller& fill,
                                       std::uint64_t begin, std::uint64_t end,
                                       const OutputTransform& transform,
                                       const ScanOptions& options,
                                       const BatchedScan* batched) {
  if (begin > end) throw std::invalid_argument("scan_predict_range: bad range");
  require_batched(options, batched, "scan_predict_range");
  const std::uint64_t n = end - begin;
  std::vector<double> out(static_cast<std::size_t>(n));
  if (n == 0) return out;
  const bool quant = options.inference == ScanInference::kQuantInt8 ||
                     options.inference == ScanInference::kFp16;
  const bool approx =
      quant || options.inference == ScanInference::kBatchedFp32;
  const auto start = std::chrono::steady_clock::now();

  ScratchPool pool;
  common::global_pool().parallel_for(
      0, static_cast<std::size_t>(chunk_count_for(n)), [&](std::size_t c) {
        const common::telemetry::Span span("scan.chunk");
        const std::uint64_t lo = begin + c * kScanChunkRows;
        const std::uint64_t hi = std::min<std::uint64_t>(end, lo + kScanChunkRows);
        auto scratch = pool.acquire();
        const std::size_t offset = static_cast<std::size_t>(lo - begin);
        const std::size_t rows = static_cast<std::size_t>(hi - lo);
        if (approx) {
          batched->fill(lo, hi, scratch->xf);
          if (quant)
            batched->quant->predict_batch_into(scratch->xf.data(), rows,
                                               scratch->predsf, scratch->qs);
          else
            batched->engine->predict_batch_into(scratch->xf.data(), rows,
                                                scratch->predsf, scratch->bs);
          for (std::size_t i = 0; i < rows; ++i)
            out[offset + i] =
                transform(static_cast<double>(scratch->predsf[i]));
        } else {
          fill(lo, hi, scratch->x);
          ensemble.predict_batch_into(scratch->x, scratch->preds, scratch->ps);
          for (std::size_t i = 0; i < scratch->preds.size(); ++i)
            out[offset + i] = transform(scratch->preds[i]);
        }
        pool.release(std::move(scratch));
      });
  gauge_configs_per_sec(n, start);
  return out;
}

TopMScanResult scan_top_m(const ml::BaggingEnsemble& ensemble,
                          const ScanRowFiller& fill, std::uint64_t begin,
                          std::uint64_t end, std::size_t m,
                          const OutputTransform& transform,
                          const ScanFilter& filter) {
  return scan_top_m(ensemble, fill, begin, end, m, transform, filter,
                    ScanOptions{}, nullptr);
}

TopMScanResult scan_top_m(const ml::BaggingEnsemble& ensemble,
                          const ScanRowFiller& fill, std::uint64_t begin,
                          std::uint64_t end, std::size_t m,
                          const OutputTransform& transform,
                          const ScanFilter& filter, const ScanOptions& options,
                          const BatchedScan* batched) {
  if (begin > end) throw std::invalid_argument("scan_top_m: bad range");
  if (!(transform.scale > 0.0))
    throw std::invalid_argument("scan_top_m: non-positive transform scale");
  require_batched(options, batched, "scan_top_m");
  TopMScanResult result;
  const std::uint64_t n = end - begin;
  result.scanned = n;
  if (n == 0 || m == 0) return result;
  const bool quant = options.inference == ScanInference::kQuantInt8 ||
                     options.inference == ScanInference::kFp16;
  const bool approx =
      quant || options.inference == ScanInference::kBatchedFp32;
  const double slack = 2.0 * (quant ? options.quant_error_bound
                                    : options.fp32_error_bound);
  const auto start = std::chrono::steady_clock::now();

  const std::size_t chunks = static_cast<std::size_t>(chunk_count_for(n));
  std::vector<std::vector<RawCandidate>> chunk_top(chunks);
  std::vector<std::vector<RawCandidate>> chunk_top_unfiltered(chunks);
  std::vector<std::uint64_t> chunk_rejected(chunks, 0);

  ScratchPool pool;
  common::global_pool().parallel_for(0, chunks, [&](std::size_t c) {
    const common::telemetry::Span span("scan.chunk");
    const std::uint64_t lo = begin + c * kScanChunkRows;
    const std::uint64_t hi = std::min<std::uint64_t>(end, lo + kScanChunkRows);
    auto scratch = pool.acquire();
    const std::size_t rows = static_cast<std::size_t>(hi - lo);
    std::uint64_t rejected = 0;
    if (approx) {
      batched->fill(lo, hi, scratch->xf);
      if (quant)
        batched->quant->predict_batch_into(scratch->xf.data(), rows,
                                           scratch->predsf, scratch->qs);
      else
        batched->engine->predict_batch_into(scratch->xf.data(), rows,
                                            scratch->predsf, scratch->bs);
      RelaxedTopM unfiltered(m, slack);
      RelaxedTopM filtered(m, slack);
      for (std::size_t i = 0; i < rows; ++i) {
        const RawCandidate cand{static_cast<double>(scratch->predsf[i]),
                                lo + i};
        unfiltered.offer(cand);
        if (filter && filtered.would_keep(cand)) {
          // Lazy filter evaluation: only candidates good enough to be
          // retained pay for the validity check.
          if (filter(cand.index)) {
            filtered.offer(cand);
          } else {
            ++rejected;
          }
        }
      }
      chunk_top_unfiltered[c] = unfiltered.take();
      if (filter) chunk_top[c] = filtered.take();
    } else {
      fill(lo, hi, scratch->x);
      ensemble.predict_batch_into(scratch->x, scratch->preds, scratch->ps);
      BoundedTopM unfiltered(m);
      BoundedTopM filtered(m);
      for (std::size_t i = 0; i < scratch->preds.size(); ++i) {
        const RawCandidate cand{scratch->preds[i], lo + i};
        if (unfiltered.would_enter(cand)) unfiltered.push(cand);
        if (filter && filtered.would_enter(cand)) {
          // Lazy filter evaluation: only candidates good enough to enter the
          // chunk heap pay for the validity check.
          if (filter(cand.index)) {
            filtered.push(cand);
          } else {
            ++rejected;
          }
        }
      }
      chunk_top_unfiltered[c] = unfiltered.take();
      if (filter) chunk_top[c] = filtered.take();
    }
    chunk_rejected[c] = rejected;
    pool.release(std::move(scratch));
  });

  for (std::uint64_t r : chunk_rejected) result.rejected += r;
  if (approx) {
    // Survivors of the coarse-pass cutoff (per selection set), then one
    // exact fp64 evaluation per unique survivor, then the fp64-ordered
    // truncation. The result matches the fp64 path exactly whenever the
    // coarse-pass error stays within the per-mode bound.
    std::vector<RawCandidate> unfiltered_survivors =
        fp32_survivors(chunk_top_unfiltered, m, slack);
    std::vector<RawCandidate> filtered_survivors =
        filter ? fp32_survivors(chunk_top, m, slack)
               : std::vector<RawCandidate>{};
    result.near_ties +=
        unfiltered_survivors.size() -
        std::min<std::size_t>(m, unfiltered_survivors.size());
    result.near_ties += filtered_survivors.size() -
                        std::min<std::size_t>(m, filtered_survivors.size());
    std::vector<std::uint64_t> indices;
    indices.reserve(unfiltered_survivors.size() + filtered_survivors.size());
    for (const auto& c : unfiltered_survivors) indices.push_back(c.index);
    for (const auto& c : filtered_survivors) indices.push_back(c.index);
    const auto raw64 = rerank_fp64(ensemble, fill, std::move(indices));
    result.fp64_reranked = raw64.size();
    if (quant) result.quant_reranked = result.fp64_reranked;
    result.top_unfiltered = finish_fp64(unfiltered_survivors, raw64, m, transform);
    result.top = filter ? finish_fp64(filtered_survivors, raw64, m, transform)
                        : result.top_unfiltered;
  } else {
    result.top_unfiltered = merge_chunks(chunk_top_unfiltered, m, transform);
    result.top =
        filter ? merge_chunks(chunk_top, m, transform) : result.top_unfiltered;
  }
  gauge_configs_per_sec(n, start);
  if (common::telemetry::enabled()) {
    common::telemetry::count("scan.candidates_scanned",
                             static_cast<double>(result.scanned));
    common::telemetry::count("scan.candidates_filtered",
                             static_cast<double>(result.rejected));
    if (approx) {
      common::telemetry::count("tuner.scan.fp64_rerank",
                               static_cast<double>(result.fp64_reranked));
      common::telemetry::count("tuner.scan.near_ties",
                               static_cast<double>(result.near_ties));
    }
    if (quant)
      common::telemetry::count("tuner.scan.quant_rerank",
                               static_cast<double>(result.quant_reranked));
  }
  return result;
}

ScanFilter make_static_scan_filter(const ParamSpace& space,
                                   const clsim::analyze::StaticChecker& checker,
                                   StaticPruneCounters& counters,
                                   ScanFilter next) {
  return [&space, &checker, &counters,
          next = std::move(next)](std::uint64_t index) {
    const Configuration config = space.decode(index);
    const clsim::analyze::ConfigVerdict verdict =
        checker.check(std::span<const int>(config.values));
    counters.checked.fetch_add(1, std::memory_order_relaxed);
    switch (verdict.verdict) {
      case clsim::analyze::Verdict::kProvedInvalid:
        counters.pruned.fetch_add(1, std::memory_order_relaxed);
        return false;
      case clsim::analyze::Verdict::kProvedValid:
        counters.proved_valid.fetch_add(1, std::memory_order_relaxed);
        break;
      case clsim::analyze::Verdict::kUnknown:
        counters.unknown.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    return !next || next(index);
  };
}

}  // namespace pt::tuner
