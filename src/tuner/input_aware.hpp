#pragma once

// Input-aware performance model — the paper's "integrating problem
// parameters into the performance model" future work (section 8; cf. Liu et
// al.'s cross-input framework in its related work).
//
// The plain AnnPerformanceModel answers "how fast is configuration c" for
// one fixed problem instance. This model adds the problem parameters (e.g.
// the image width/height of the convolution) as extra network inputs, so
// one model serves a family of instances and can extrapolate to problem
// sizes never measured.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/batched.hpp"
#include "ml/ensemble.hpp"
#include "tuner/features.hpp"
#include "tuner/observer.hpp"
#include "tuner/options.hpp"
#include "tuner/param.hpp"
#include "tuner/scan.hpp"

namespace pt::tuner {

/// A problem instance: named numeric parameters (sizes, depths, ...).
struct ProblemInstance {
  std::vector<double> values;  // aligned with the model's parameter names
};

/// One labelled observation: configuration + instance -> time.
struct InputAwareSample {
  Configuration config;
  ProblemInstance instance;
  double time_ms = 0.0;
};

class InputAwarePerformanceModel {
 public:
  struct Options {
    ml::BaggingEnsemble::Options ensemble{};
    bool log_targets = true;
    FeatureEncoding encoding = FeatureEncoding::kLog2;
    /// Apply log2 to problem parameters as well (sizes are scale-natured).
    bool log2_problem_parameters = true;
    /// Scan engine knobs (see AnnPerformanceModel::Options::scan).
    ScanOptions scan{};
    /// Per-run wiring: observer (on_stage_*/on_epoch), telemetry, seed,
    /// threads (see tuner/observer.hpp). The default context is inert.
    TunerRunContext run{};
  };

  InputAwarePerformanceModel() : InputAwarePerformanceModel(Options{}) {}
  explicit InputAwarePerformanceModel(Options options);

  /// Canonical entry point (see tuner/options.hpp): fit as the request
  /// describes. `problem_parameter_names` fixes the instance layout (and
  /// the feature order); every sample's instance must have that many
  /// values. request.sampler and the degradation knobs are ignored.
  void fit(const ParamSpace& space,
           std::vector<std::string> problem_parameter_names,
           const std::vector<InputAwareSample>& samples,
           const TuneRun& request);

  /// Shims (the pre-TuneRun API). The rng-free form draws the RNG from
  /// options().run.seed; the rng-taking form ignores run.seed but honours
  /// the rest of the context.
  void fit(const ParamSpace& space,
           std::vector<std::string> problem_parameter_names,
           const std::vector<InputAwareSample>& samples, common::Rng& rng);
  void fit(const ParamSpace& space,
           std::vector<std::string> problem_parameter_names,
           const std::vector<InputAwareSample>& samples);

  [[nodiscard]] bool fitted() const noexcept { return ensemble_.fitted(); }
  /// Switch scan inference paths on a fitted model.
  void set_scan_options(const ScanOptions& scan) noexcept {
    options_.scan = scan;
  }
  [[nodiscard]] const ScanOptions& scan_options() const noexcept {
    return options_.scan;
  }
  [[nodiscard]] const std::vector<std::string>& problem_parameter_names()
      const noexcept {
    return problem_names_;
  }

  [[nodiscard]] double predict_ms(const Configuration& config,
                                  const ProblemInstance& instance) const;

  /// Predictions for many configurations at one instance (bulk scan).
  [[nodiscard]] std::vector<double> predict_many_ms(
      const std::vector<Configuration>& configs,
      const ProblemInstance& instance) const;

  /// Predicted times for the flat-index range [begin, end) of the space at
  /// one instance — the parallel chunked scan (see tuner/scan.hpp).
  [[nodiscard]] std::vector<double> predict_range_ms(
      std::uint64_t begin, std::uint64_t end,
      const ProblemInstance& instance) const;

  /// Streaming top-m selection over [begin, end) at one instance (see
  /// AnnPerformanceModel::predict_scan_top_m for semantics).
  [[nodiscard]] TopMScanResult predict_scan_top_m(
      std::uint64_t begin, std::uint64_t end, std::size_t m,
      const ProblemInstance& instance, const ScanFilter& filter = {}) const;

  /// Feature vector (configuration features then instance features).
  [[nodiscard]] std::vector<double> encode(
      const Configuration& config, const ProblemInstance& instance) const;

 private:
  void do_fit(const ParamSpace& space,
              std::vector<std::string> problem_parameter_names,
              const std::vector<InputAwareSample>& samples, common::Rng& rng,
              const TunerRunContext& run);
  /// Instance features with the optional log2 applied (validated once, then
  /// reused for every row of a scan).
  [[nodiscard]] std::vector<double> instance_features(
      const ProblemInstance& instance) const;
  /// Scan-engine adapters (see AnnPerformanceModel).
  [[nodiscard]] OutputTransform output_transform() const noexcept;
  [[nodiscard]] ScanRowFiller row_filler(const ProblemInstance& instance) const;
  [[nodiscard]] ScanRowFillerF32 row_filler_f32(
      const ProblemInstance& instance) const;
  struct ScanEngines;
  [[nodiscard]] ScanEngines scan_engines(const ProblemInstance& instance) const;

  Options options_;
  ParamSpace space_;
  FeatureCodec codec_;
  RangeEncoder range_encoder_;
  std::vector<std::string> problem_names_;
  double target_mean_ = 0.0;
  double target_scale_ = 1.0;
  ml::BaggingEnsemble ensemble_;
  ml::BatchedEnsembleCache batched_;
};

}  // namespace pt::tuner
