#pragma once

// Persistence for trained performance models: save a fitted
// AnnPerformanceModel (options, parameter space, feature codec, target
// scaling and the ensemble weights) to a text stream and restore it later —
// so the expensive data-gathering phase can be paid once per device and the
// model reused across runs.

#include <iosfwd>

#include "tuner/model.hpp"

namespace pt::tuner {

/// Write a fitted model. Throws std::logic_error if the model is unfitted.
void save_model(const AnnPerformanceModel& model, std::ostream& os);

/// Read a model written by save_model. Throws std::runtime_error on a
/// malformed stream.
[[nodiscard]] AnnPerformanceModel load_model(std::istream& is);

}  // namespace pt::tuner
