#pragma once

// TunerOptions + TuneRun — the shared configuration base and the canonical
// per-run request struct of the tuning stack.
//
// TunerOptions collects the fields every tuner used to duplicate (the
// performance-model configuration, the opt-in clstat static pre-filter and
// the per-run wiring context); AutoTunerOptions and IterativeTunerOptions
// inherit it, so existing field names (`options.model`, `options.run`,
// `options.static_checker`) keep working unchanged and a service can
// configure both tuners through one type.
//
// TuneRun is the canonical request: one struct carrying everything that may
// vary per tune() call — the run context (seed, observer, telemetry,
// threads, check mode), an optional external RNG, an optional sampler, and
// per-request degradation overrides. Every tuner exposes exactly one
// canonical entry point taking it (`tune(Evaluator&, const TuneRun&)`,
// `fit(..., const TuneRun&)`); the historic overload matrix
// (`tune(eval)` / `tune(eval, rng)` / `tune(eval, sampler, rng)`) survives
// as thin delegating shims, bit-identical to the canonical calls they
// forward to. The serve layer (src/serve) only ever issues TuneRuns.

#include <cstddef>
#include <memory>
#include <optional>

#include "clsim/analyze/checker.hpp"
#include "common/rng.hpp"
#include "tuner/model.hpp"
#include "tuner/observer.hpp"

namespace pt::tuner {

class Sampler;

/// Configuration shared by every tuner. Derived option structs add their
/// stage budgets and tuner-specific knobs on top.
struct TunerOptions {
  /// Performance-model configuration (ensemble topology, encoding, scan
  /// engine knobs).
  AnnPerformanceModel::Options model{};
  /// Opt-in clstat static pre-filter for prediction scans. Must be built
  /// over the evaluated space (same dimension order) and the target device.
  /// See the derived options for each tuner's pruning semantics.
  std::shared_ptr<const clsim::analyze::StaticChecker> static_checker;
  /// Per-run wiring: observer, telemetry, seed, threads, check mode (see
  /// tuner/observer.hpp). The default context is inert — results are
  /// bit-identical to a context-free run. A TuneRun's context, when set,
  /// takes precedence for that run.
  TunerRunContext run{};
};

/// One tune request. Default-constructed it reproduces `tune(evaluator)`
/// exactly: context and knobs fall back to the tuner's options.
struct TuneRun {
  /// Per-run wiring override; when absent the tuner's options().run
  /// applies (including its seed).
  std::optional<TunerRunContext> context;
  /// External generator for callers that thread one RNG through several
  /// runs (the pre-context API). When set, the context/options seed is
  /// ignored; the rest of the effective context still applies.
  common::Rng* rng = nullptr;
  /// Stage-1 sampler override (AutoTuner only; others ignore it).
  /// nullptr = the paper's uniform RandomSampler.
  const Sampler* sampler = nullptr;
  /// Per-request graceful-degradation overrides (nullopt = the value in the
  /// tuner's options). stage2_stream_limit applies to AutoTuner,
  /// explore_until_valid to IterativeTuner.
  std::optional<std::size_t> stage2_stream_limit;
  std::optional<bool> explore_until_valid;

  /// The effective run context given a tuner's options.
  [[nodiscard]] const TunerRunContext& effective_context(
      const TunerRunContext& fallback) const noexcept {
    return context ? *context : fallback;
  }

  /// Convenience: a request that only overrides the seed (what a served
  /// tune uses — client-supplied seed, otherwise inert context).
  [[nodiscard]] static TuneRun with_seed(std::uint64_t seed) {
    TuneRun request;
    request.context = TunerRunContext{};
    request.context->seed = seed;
    return request;
  }

  /// Convenience: a request threading an external generator (the harness
  /// idiom: one RNG across several runs).
  [[nodiscard]] static TuneRun with_rng(common::Rng& rng) {
    TuneRun request;
    request.rng = &rng;
    return request;
  }
};

}  // namespace pt::tuner
