#pragma once

// Iterative (active-learning) auto-tuner — an extension beyond the paper's
// one-shot two-stage design, in the spirit of the active-learning work its
// related-work section cites (Ogilvie et al.).
//
// Instead of spending the whole measurement budget on one random sample,
// the iterative tuner alternates:
//
//   round:  train the model on everything measured so far
//           -> scan predictions
//           -> measure a mixed batch: the most promising configurations
//              (exploitation) plus fresh random ones (exploration)
//
// until the measurement budget is exhausted or the incumbent stops
// improving. All measurements (including earlier rounds' winners) feed the
// next round's model, so the model sharpens exactly where the tuner is
// searching. The exploration share guards against the invalid-region trap
// that breaks the one-shot tuner on stereo/GPU.

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/model.hpp"
#include "tuner/observer.hpp"
#include "tuner/options.hpp"

namespace pt::tuner {

/// The shared fields (model, static_checker, run) live in TunerOptions;
/// their names are unchanged (`options.model`, `options.run`, ...).
struct IterativeTunerOptions : TunerOptions {
  std::size_t measurement_budget = 2000;  // total configurations measured
  std::size_t initial_samples = 400;      // round-0 random sample
  std::size_t batch_size = 200;           // measurements per later round
  /// Fraction of each later batch drawn at random (exploration).
  double exploration_fraction = 0.25;
  /// Stop early after this many rounds without improving the incumbent
  /// (0 = never stop early).
  std::size_t patience_rounds = 0;
  /// Graceful degradation: when the initial sample yields no valid
  /// measurement (so there is nothing to train on), keep drawing fresh
  /// random batches until one measures valid or the budget/space runs out,
  /// instead of giving up after round 0. Off by default so results are
  /// bit-identical to the pre-degradation tuner unless a caller opts in.
  /// A TuneRun may override it per request.
  bool explore_until_valid = false;
  /// The inherited static_checker pre-filters the exploitation scan:
  /// proven-invalid configurations never enter a round's exploit batch, so
  /// their slots go to configurations that can actually measure. Unlike the
  /// one-shot tuner this *changes the measurement trajectory* (different
  /// configurations get measured, feeding different models) — sound but not
  /// bit-identical to a filter-free run. Random exploration stays
  /// unfiltered, preserving the invalid-region labels it supplies.
};

struct IterativeTuneResult {
  bool success = false;
  Configuration best_config;
  double best_time_ms = 0.0;

  std::size_t rounds = 0;
  std::size_t measurements = 0;
  std::size_t invalid_measurements = 0;
  /// Extra exploration-only rounds spent hunting for a first valid
  /// measurement (only with options.explore_until_valid).
  std::size_t resample_rounds = 0;
  /// Raw evaluator attempts behind all measurements (see tuner/robust.hpp).
  std::size_t measure_attempts = 0;
  /// Transient failures absorbed by downstream retry decorators.
  std::size_t transient_faults = 0;
  /// Why invalid measurements were rejected, by status.
  RejectionCounts rejections;
  double data_gathering_cost_ms = 0.0;
  /// Incumbent best time at the end of each round (convergence trace).
  std::vector<double> incumbent_trace;
  /// Final model, trained on every valid measurement.
  std::optional<AnnPerformanceModel> model;
  /// Cache hit/miss deltas over this run, when a CachingEvaluator is found
  /// anywhere in the evaluator stack (see find_layer); 0/0 otherwise.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// clstat pre-filter tallies over all exploit scans (all zero unless
  /// options.static_checker was set; see AutoTuneResult for semantics).
  std::size_t static_checked = 0;
  std::size_t static_pruned = 0;
  std::size_t static_proved_valid = 0;
  std::size_t static_unknown = 0;
};

class IterativeTuner {
 public:
  IterativeTuner() : IterativeTuner(IterativeTunerOptions{}) {}
  explicit IterativeTuner(IterativeTunerOptions options);

  [[nodiscard]] const IterativeTunerOptions& options() const noexcept {
    return options_;
  }

  /// Canonical entry point (see tuner/options.hpp). A default-constructed
  /// TuneRun reproduces `tune(evaluator)` exactly; request.sampler is
  /// ignored (this tuner draws its own exploration samples).
  [[nodiscard]] IterativeTuneResult tune(Evaluator& evaluator,
                                         const TuneRun& request) const;

  /// Shims (the pre-TuneRun API). The rng-taking form ignores run.seed but
  /// honours the rest of the context.
  [[nodiscard]] IterativeTuneResult tune(Evaluator& evaluator) const;
  [[nodiscard]] IterativeTuneResult tune(Evaluator& evaluator,
                                         common::Rng& rng) const;

 private:
  [[nodiscard]] IterativeTuneResult run_tune(Evaluator& evaluator,
                                             common::Rng& rng,
                                             const TunerRunContext& run,
                                             bool explore_until_valid) const;

  IterativeTunerOptions options_;
};

}  // namespace pt::tuner
