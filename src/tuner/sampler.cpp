#include "tuner/sampler.hpp"

#include <algorithm>
#include <unordered_set>

namespace pt::tuner {

std::vector<Configuration> RandomSampler::sample(const ParamSpace& space,
                                                 std::size_t n,
                                                 common::Rng& rng) const {
  const std::uint64_t total = space.size();
  n = static_cast<std::size_t>(
      std::min<std::uint64_t>(n, total));
  const auto indices = rng.sample_without_replacement(
      static_cast<std::size_t>(total), n);
  std::vector<Configuration> out;
  out.reserve(n);
  for (const std::size_t idx : indices) out.push_back(space.decode(idx));
  return out;
}

std::vector<Configuration> LatinHypercubeSampler::sample(
    const ParamSpace& space, std::size_t n, common::Rng& rng) const {
  const std::uint64_t total = space.size();
  n = static_cast<std::size_t>(std::min<std::uint64_t>(n, total));

  const std::size_t dims = space.dimension_count();
  // Per dimension: a stream of value indices where each value appears
  // floor/ceil(n / k) times, shuffled (the classic LHS stratification
  // adapted to discrete levels).
  std::vector<std::vector<std::size_t>> streams(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const std::size_t k = space.parameter(d).values.size();
    auto& stream = streams[d];
    stream.reserve(n);
    for (std::size_t i = 0; i < n; ++i) stream.push_back(i % k);
    rng.shuffle(stream);
  }

  std::vector<Configuration> out;
  out.reserve(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    Configuration config;
    config.values.reserve(dims);
    for (std::size_t d = 0; d < dims; ++d)
      config.values.push_back(space.parameter(d).values[streams[d][i]]);
    if (seen.insert(space.encode(config)).second) {
      out.push_back(std::move(config));
    }
  }
  // Top up collisions with fresh uniform draws.
  while (out.size() < n) {
    Configuration config = space.random(rng);
    if (seen.insert(space.encode(config)).second)
      out.push_back(std::move(config));
  }
  return out;
}

}  // namespace pt::tuner
