#include "tuner/search.hpp"

#include <cmath>
#include <stdexcept>

namespace pt::tuner {

namespace {

/// Track the running best across measurements.
struct Best {
  bool found = false;
  Configuration config;
  double time_ms = 0.0;

  void offer(const Configuration& candidate, const Measurement& m) {
    if (!m.valid) return;
    if (!found || m.time_ms < time_ms) {
      found = true;
      config = candidate;
      time_ms = m.time_ms;
    }
  }
};

void finalize(SearchResult& result, const Best& best) {
  result.success = best.found;
  if (best.found) {
    result.best_config = best.config;
    result.best_time_ms = best.time_ms;
  }
}

}  // namespace

SearchResult exhaustive_search(Evaluator& evaluator,
                               std::uint64_t hard_limit) {
  return exhaustive_table(evaluator, hard_limit).result;
}

ExhaustiveTable exhaustive_table(Evaluator& evaluator,
                                 std::uint64_t hard_limit) {
  const ParamSpace& space = evaluator.space();
  if (space.size() > hard_limit)
    throw std::invalid_argument(
        "exhaustive search: space exceeds the hard limit");
  ExhaustiveTable table;
  table.times.reserve(static_cast<std::size_t>(space.size()));
  Best best;
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    const Configuration config = space.decode(i);
    const Measurement m = evaluator.measure(config);
    ++table.result.evaluations;
    table.result.total_cost_ms += m.cost_ms;
    if (!m.valid) {
      ++table.result.invalid;
      table.result.rejections.note(m.status);
      continue;
    }
    table.times.emplace_back(i, m.time_ms);
    best.offer(config, m);
  }
  finalize(table.result, best);
  return table;
}

SearchResult random_search(Evaluator& evaluator, std::size_t n,
                           common::Rng& rng) {
  const ParamSpace& space = evaluator.space();
  n = static_cast<std::size_t>(
      std::min<std::uint64_t>(n, space.size()));
  const auto indices = rng.sample_without_replacement(
      static_cast<std::size_t>(space.size()), n);
  SearchResult result;
  Best best;
  for (const std::size_t index : indices) {
    const Configuration config = space.decode(index);
    const Measurement m = evaluator.measure(config);
    ++result.evaluations;
    result.total_cost_ms += m.cost_ms;
    if (!m.valid) {
      ++result.invalid;
      result.rejections.note(m.status);
      continue;
    }
    best.offer(config, m);
  }
  finalize(result, best);
  return result;
}

SearchResult hill_climb(Evaluator& evaluator, std::size_t restarts,
                        common::Rng& rng, std::size_t max_steps_per_climb) {
  const ParamSpace& space = evaluator.space();
  SearchResult result;
  Best global_best;

  for (std::size_t r = 0; r < restarts; ++r) {
    // Find a valid random starting point (bounded retries).
    Configuration current;
    Measurement current_m;
    bool started = false;
    for (std::size_t attempt = 0; attempt < 64; ++attempt) {
      current = space.random(rng);
      current_m = evaluator.measure(current);
      ++result.evaluations;
      result.total_cost_ms += current_m.cost_ms;
      if (current_m.valid) {
        started = true;
        break;
      }
      ++result.invalid;
      result.rejections.note(current_m.status);
    }
    if (!started) continue;
    global_best.offer(current, current_m);

    for (std::size_t step = 0; step < max_steps_per_climb; ++step) {
      bool improved = false;
      Configuration best_neighbour;
      Measurement best_neighbour_m;
      for (const auto& n : space.neighbours(current)) {
        const Measurement m = evaluator.measure(n);
        ++result.evaluations;
        result.total_cost_ms += m.cost_ms;
        if (!m.valid) {
          ++result.invalid;
          result.rejections.note(m.status);
          continue;
        }
        if (m.time_ms < current_m.time_ms &&
            (!improved || m.time_ms < best_neighbour_m.time_ms)) {
          improved = true;
          best_neighbour = n;
          best_neighbour_m = m;
        }
      }
      if (!improved) break;
      current = best_neighbour;
      current_m = best_neighbour_m;
      global_best.offer(current, current_m);
    }
  }
  finalize(result, global_best);
  return result;
}

SearchResult simulated_annealing(Evaluator& evaluator,
                                 const AnnealingOptions& options,
                                 common::Rng& rng) {
  const ParamSpace& space = evaluator.space();
  SearchResult result;
  Best best;

  Configuration current;
  Measurement current_m;
  bool have_current = false;
  double temperature = options.initial_temperature;

  for (std::size_t e = 0; e < options.evaluations; ++e) {
    if (!have_current) {
      current = space.random(rng);
      current_m = evaluator.measure(current);
      ++result.evaluations;
      result.total_cost_ms += current_m.cost_ms;
      if (!current_m.valid) {
        ++result.invalid;
        result.rejections.note(current_m.status);
        continue;
      }
      have_current = true;
      best.offer(current, current_m);
      continue;
    }

    const auto neighbours = space.neighbours(current);
    if (neighbours.empty()) break;
    const Configuration candidate =
        neighbours[static_cast<std::size_t>(rng.below(neighbours.size()))];
    const Measurement m = evaluator.measure(candidate);
    ++result.evaluations;
    result.total_cost_ms += m.cost_ms;
    temperature *= options.cooling;
    if (!m.valid) {
      ++result.invalid;
      result.rejections.note(m.status);
      continue;
    }
    best.offer(candidate, m);
    // Metropolis on the log-time scale (temperature is scale-free).
    const double delta =
        std::log(m.time_ms) - std::log(current_m.time_ms);
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(1e-6, temperature))) {
      current = candidate;
      current_m = m;
    }
  }
  finalize(result, best);
  return result;
}

}  // namespace pt::tuner
