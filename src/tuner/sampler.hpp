#pragma once

// Configuration samplers for the tuner's first stage. The paper draws the
// training set uniformly at random; Latin hypercube sampling is provided as
// the sampler ablation (DESIGN.md section 5).

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tuner/param.hpp"

namespace pt::tuner {

class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Draw `n` distinct configurations from the space (n is clamped to the
  /// space size).
  [[nodiscard]] virtual std::vector<Configuration> sample(
      const ParamSpace& space, std::size_t n, common::Rng& rng) const = 0;
};

/// Uniform sampling without replacement over the flat index range.
class RandomSampler final : public Sampler {
 public:
  [[nodiscard]] std::vector<Configuration> sample(
      const ParamSpace& space, std::size_t n,
      common::Rng& rng) const override;
};

/// Latin-hypercube-style stratified sampling: each parameter's value list is
/// cycled through a stratified permutation so every value appears nearly
/// equally often across the sample. Duplicate configurations are rejected
/// and redrawn (the spaces are vastly larger than the sample sizes).
class LatinHypercubeSampler final : public Sampler {
 public:
  [[nodiscard]] std::vector<Configuration> sample(
      const ParamSpace& space, std::size_t n,
      common::Rng& rng) const override;
};

}  // namespace pt::tuner
