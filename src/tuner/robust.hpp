#pragma once

// Measurement-robustness layer: evaluator decorators that (a) make the
// simulated runtime *messier* — multiplicative log-normal timing noise,
// injected transient launch failures, spurious-invalid verdicts and timing
// outliers — and (b) make the tuner's measurement path *robust* to exactly
// that mess by repeating measurements with robust aggregation and bounded
// retry-with-backoff. Real auto-tuners harden this way (CLTune averages
// multiple runs per configuration; stencil workgroup autotuners must survive
// illegal workgroup sizes at every step); the paper's tuner only ever sees
// one clean measurement per configuration.
//
// Determinism contract: every injected fault and noise draw comes from an
// RNG stream forked per (seed, configuration index, attempt number) — never
// from a shared sequential generator — so a fault schedule is a pure
// function of *which* configuration is measured for the *n-th* time, not of
// global call order or thread count. Two runs with the same seed see
// bit-identical schedules even if the surrounding tuner interleaves
// measurements differently.
//
// The intended decorator stack (outermost first):
//
//   CachingEvaluator -> RobustEvaluator -> FaultInjecting/Noisy -> real
//
// so the cache pins the first *aggregated* result, the robust layer pays
// for repeats/retries in cost_ms, and the injectors corrupt only raw
// attempts.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "tuner/evaluator.hpp"

namespace pt::tuner {

/// Independent RNG stream for the `attempt`-th measurement of the
/// configuration at `config_index` under `seed`. Pure function of its
/// arguments (splitmix64 mixing), so schedules cannot depend on call order.
[[nodiscard]] common::Rng attempt_stream(std::uint64_t seed,
                                         std::uint64_t config_index,
                                         std::uint64_t attempt) noexcept;

/// True for statuses worth retrying: failures that model a transient
/// runtime condition (resource exhaustion at launch) rather than a property
/// of the configuration itself.
[[nodiscard]] bool is_transient_status(clsim::Status status) noexcept;

/// Multiplicative log-normal measurement noise: a valid measurement's time
/// becomes time * exp(N(0, sigma)). Repeated measurements of the same
/// configuration draw fresh (but reproducible) factors, so averaging over
/// repeats actually converges.
class NoisyEvaluator final : public Evaluator {
 public:
  struct Options {
    double sigma = 0.1;      // log-normal sigma; 0 disables the decorator
    std::uint64_t seed = 1;  // stream seed (independent of the tuner's RNG)
  };

  NoisyEvaluator(Evaluator& inner, Options options);

  [[nodiscard]] const ParamSpace& space() const override {
    return inner_.space();
  }
  [[nodiscard]] std::string name() const override { return inner_.name(); }

  [[nodiscard]] Measurement measure(const Configuration& config) override;

  [[nodiscard]] Evaluator* inner() noexcept override { return &inner_; }

 private:
  Evaluator& inner_;
  Options options_;
  /// Times each configuration has been measured, keyed by flat index —
  /// the attempt counter behind the per-(config, attempt) streams.
  std::unordered_map<std::uint64_t, std::uint64_t> attempts_;
};

/// Deterministic fault injector. Three independent fault classes, each an
/// i.i.d. per-attempt Bernoulli draw from the (config, attempt) stream:
///
///  - transient launch failure: the launch "fails" before the kernel runs —
///    reported invalid with CL_OUT_OF_RESOURCES (a retryable status) and a
///    small wasted cost; the configuration itself is fine.
///  - spurious-invalid verdict: the measurement completes but is reported
///    invalid with CL_INVALID_WORK_GROUP_SIZE — a *permanent-looking*
///    status, so retry cannot help; only the tuner's candidate streaming
///    can. (This is the fault class that reproduces the paper's
///    all-second-stage-invalid failure on demand.)
///  - timing outlier: the measured time is multiplied by outlier_factor
///    (a straggler/contended run); robust aggregation should reject it.
class FaultInjectingEvaluator final : public Evaluator {
 public:
  struct Options {
    double transient_rate = 0.0;   // P(transient launch failure) per attempt
    double spurious_rate = 0.0;    // P(spurious-invalid verdict) per attempt
    double outlier_rate = 0.0;     // P(timing outlier) per attempt
    double outlier_factor = 10.0;  // multiplier applied to outlier times
    double fault_cost_ms = 0.5;    // wasted cost of a failed launch attempt
    std::uint64_t seed = 1;
  };

  FaultInjectingEvaluator(Evaluator& inner, Options options);

  [[nodiscard]] const ParamSpace& space() const override {
    return inner_.space();
  }
  [[nodiscard]] std::string name() const override { return inner_.name(); }

  [[nodiscard]] Measurement measure(const Configuration& config) override;

  [[nodiscard]] Evaluator* inner() noexcept override { return &inner_; }

  [[nodiscard]] std::size_t transient_injected() const noexcept {
    return transient_;
  }
  [[nodiscard]] std::size_t spurious_injected() const noexcept {
    return spurious_;
  }
  [[nodiscard]] std::size_t outliers_injected() const noexcept {
    return outliers_;
  }

 private:
  Evaluator& inner_;
  Options options_;
  std::unordered_map<std::uint64_t, std::uint64_t> attempts_;
  std::size_t transient_ = 0;
  std::size_t spurious_ = 0;
  std::size_t outliers_ = 0;
};

/// Robust measurement: repeat the inner measurement and aggregate with a
/// robust statistic; retry transient failures with (simulated) exponential
/// backoff. Every repeat, retry and backoff wait is charged to cost_ms —
/// robustness is not free, and the tuner's cost accounting must say so.
///
/// Outcome policy per measure() call:
///  - a *permanent* rejection (non-transient status) on any attempt ends the
///    call immediately: the configuration is reported invalid with that
///    status (repeating cannot un-reject it);
///  - a repeat whose retries are exhausted by transient failures ends the
///    call: if earlier repeats succeeded their aggregate is returned,
///    otherwise the transient status is reported (retry exhaustion);
///  - otherwise `repeats` successful times are aggregated.
/// The returned Measurement carries attempts/transient_faults so tuners can
/// report fault counters without knowing the decorator is there.
class RobustEvaluator final : public Evaluator {
 public:
  enum class Aggregation { kMedian, kTrimmedMean };

  struct Options {
    std::size_t repeats = 3;  // successful measurements to aggregate
    Aggregation aggregation = Aggregation::kMedian;
    double trim_fraction = 0.2;    // per-side, for kTrimmedMean
    std::size_t max_retries = 3;   // extra attempts per repeat on transients
    double backoff_ms = 1.0;       // simulated wait before retry k: 2^k * this
  };

  RobustEvaluator(Evaluator& inner, Options options);

  [[nodiscard]] const ParamSpace& space() const override {
    return inner_.space();
  }
  [[nodiscard]] std::string name() const override { return inner_.name(); }

  [[nodiscard]] Measurement measure(const Configuration& config) override;

  [[nodiscard]] Evaluator* inner() noexcept override { return &inner_; }

  /// Raw inner measurements across all measure() calls.
  [[nodiscard]] std::size_t total_attempts() const noexcept {
    return total_attempts_;
  }
  /// Transient failures seen (recovered or not).
  [[nodiscard]] std::size_t transient_failures() const noexcept {
    return transient_failures_;
  }
  /// Backoff retries actually taken.
  [[nodiscard]] std::size_t retries() const noexcept { return retries_; }
  /// measure() calls that ended in retry exhaustion.
  [[nodiscard]] std::size_t exhausted() const noexcept { return exhausted_; }

 private:
  [[nodiscard]] double aggregate(const std::vector<double>& times) const;

  Evaluator& inner_;
  Options options_;
  std::size_t total_attempts_ = 0;
  std::size_t transient_failures_ = 0;
  std::size_t retries_ = 0;
  std::size_t exhausted_ = 0;
};

}  // namespace pt::tuner
