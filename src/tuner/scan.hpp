#pragma once

// Parallel prediction-scan engine: evaluates a fitted ensemble over a flat
// index range in fixed 65536-row chunks dispatched on the global thread
// pool, with per-worker reusable scratch so a full-space scan performs no
// per-chunk allocations once the buffers are warm.
//
// Chunking is defined by the *index range*, never by the pool size, so every
// result is bit-identical regardless of the number of threads.
//
// Two entry points:
//  - scan_predict_range: the dense path; one predicted value per index.
//  - scan_top_m: the streaming selection path; keeps a bounded per-chunk
//    worst-on-top heap of the best m candidates (O(workers * m) memory,
//    O(n log m) time) instead of materializing |space| predictions. An
//    optional validity filter is evaluated lazily — only for candidates that
//    would enter the heap — and a parallel unfiltered top list is kept so
//    callers can top up when the filter rejects too much.
//
// Candidates are ordered by (raw network output, index): the output
// transform (affine with positive scale, optionally exp) is strictly
// increasing, so ranking raw outputs ranks predicted times, and the index
// tie-break makes the order total — merge results cannot depend on chunk
// arrival order.

// The scan has four inference paths, selected by ScanOptions::inference:
//  - kScalarFp64 (default): the fp64 reference — per-chunk Matrix fill and
//    BaggingEnsemble::predict_batch_into.
//  - kBatchedFp32: the SIMD fast path — per-chunk fp32 row fill and a packed
//    ml::BatchedEnsemble forward. Selection stays *exactly* fp64-identical:
//    each chunk keeps, besides its best-m heap, every candidate whose fp32
//    output lies within 2 * fp32_error_bound of the heap cutoff, and after
//    the merge all candidates within that band of the global fp32 cutoff are
//    re-ranked through the fp64 path (whose per-row results are bit-identical
//    to the fp64 scan's chunked results, because every kernel under
//    predict_batch_into accumulates per output element in a row-count
//    independent order). As long as |fp32 - fp64| <= fp32_error_bound on raw
//    outputs — bound ~1e-4, observed ~1e-6 for the paper's networks — the
//    returned top-M is the one the fp64 scan would return, candidate for
//    candidate, predicted values included.
//  - kQuantInt8 / kFp16: the quantized tiers (ml/quant.hpp) — the same
//    two-tier scheme with a coarser first pass and a wider band: the chunk
//    heaps keep every candidate within 2 * quant_error_bound of the cutoff,
//    and every survivor of the merged quantized cutoff is re-ranked through
//    fp64 (batched — one gathered matrix per rerank chunk). The exactness
//    contract is the same: whenever |quant raw - fp64 raw| stays within
//    quant_error_bound, the returned top-M is identical to the fp64 scan's,
//    indices and predicted values both.

#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "clsim/analyze/checker.hpp"
#include "ml/batched.hpp"
#include "ml/ensemble.hpp"
#include "tuner/param.hpp"

namespace pt::tuner {

/// Rows per scan chunk. Fixed (not derived from the pool size) so results
/// are independent of the number of worker threads.
inline constexpr std::size_t kScanChunkRows = 65536;

/// Maps a raw network output to a predicted time: y * scale + mean, then
/// exp when `exponentiate` (matches the model's target standardization and
/// optional log-target transform bit for bit). Strictly increasing as long
/// as scale > 0, which scan_top_m requires.
struct OutputTransform {
  double scale = 1.0;
  double mean = 0.0;
  bool exponentiate = false;

  [[nodiscard]] double operator()(double y) const noexcept {
    const double raw = y * scale + mean;
    return exponentiate ? std::exp(raw) : raw;
  }
};

/// One selected configuration: flat index plus its predicted time.
struct ScanCandidate {
  std::uint64_t index = 0;
  double predicted_ms = 0.0;
};

/// Result of scan_top_m. `top` is the best-first filtered selection (equal
/// to `top_unfiltered` when no filter was given); `rejected` counts filter
/// rejections, which only happen for candidates good enough to enter a
/// chunk heap at the moment they were scanned. The last two fields are only
/// non-zero on the batched fp32 path: `fp64_reranked` counts candidates sent
/// through the fp64 reference for exact ranking, `near_ties` the subset that
/// sat outside the fp32 top-m but within the error band (i.e. the ones whose
/// fate fp64 actually decided).
struct TopMScanResult {
  std::vector<ScanCandidate> top;
  std::vector<ScanCandidate> top_unfiltered;
  std::uint64_t scanned = 0;
  std::uint64_t rejected = 0;
  std::uint64_t fp64_reranked = 0;
  std::uint64_t near_ties = 0;
  /// Candidates re-ranked through fp64 because the coarse pass ran on a
  /// quantized engine (kQuantInt8/kFp16). Equal to fp64_reranked on those
  /// paths, zero otherwise.
  std::uint64_t quant_reranked = 0;
};

/// Which inference engine the scan drives.
enum class ScanInference {
  kScalarFp64,   // per-chunk fp64 matrix forward (reference)
  kBatchedFp32,  // packed SIMD fp32 forward with fp64 near-tie re-ranking
  kQuantInt8,    // s8-weight/u7-activation forward, wide-band fp64 re-rank
  kFp16,         // f16-storage/fp32-compute forward, wide-band fp64 re-rank
};

/// QuantMode behind a quantized scan inference; call only for kQuantInt8 /
/// kFp16.
[[nodiscard]] constexpr ml::QuantMode scan_quant_mode(
    ScanInference inference) noexcept {
  return inference == ScanInference::kQuantInt8 ? ml::QuantMode::kInt8
                                                : ml::QuantMode::kFp16;
}

[[nodiscard]] constexpr const char* scan_inference_name(
    ScanInference inference) noexcept {
  switch (inference) {
    case ScanInference::kScalarFp64:
      return "fp64";
    case ScanInference::kBatchedFp32:
      return "fp32";
    case ScanInference::kQuantInt8:
      return "int8";
    case ScanInference::kFp16:
      return "fp16";
  }
  return "fp64";
}

/// Scan tuning knobs, carried by the model layer (AnnPerformanceModel
/// options) so callers opt in without new plumbing at every call site.
struct ScanOptions {
  ScanInference inference = ScanInference::kScalarFp64;
  /// Upper bound assumed on |fp32 raw output - fp64 raw output|. Candidates
  /// within 2x this bound of the fp32 selection cutoff are re-ranked in
  /// fp64. In raw (standardized) output units.
  double fp32_error_bound = 1e-4;
  /// Same role for the quantized tiers (kQuantInt8/kFp16): assumed upper
  /// bound on |quantized raw output - fp64 raw output|. Deliberately loose —
  /// int8 error is dominated by the u7 activation resolution times the
  /// output layer's L1 norm, measured at ~0.06 worst-case on the paper's
  /// default ensemble (k=5, 30 sigmoid hidden); tests verify the measured
  /// error stays under half this bound so it keeps a 2x margin. The band is
  /// around the top-M cutoff — deep in the tail of the score distribution —
  /// so widening it re-ranks few extra rows.
  double quant_error_bound = 0.15;
};

/// Validity predicate over flat indices. Called concurrently from worker
/// threads; must be thread-safe (read-only captures are fine).
using ScanFilter = std::function<bool(std::uint64_t)>;

/// Verdict tallies of a clstat static pre-filter built by
/// make_static_scan_filter. Atomic: scan workers bump them concurrently.
/// Queries happen lazily (heap-entry candidates only), so `checked` is a
/// lower bound on the provable configurations in the scanned range; the
/// three verdict counters always sum to it.
struct StaticPruneCounters {
  std::atomic<std::uint64_t> checked{0};
  std::atomic<std::uint64_t> pruned{0};        // kProvedInvalid, rejected
  std::atomic<std::uint64_t> proved_valid{0};  // kProvedValid, kept
  std::atomic<std::uint64_t> unknown{0};       // kUnknown, kept
};

/// Wrap a clstat StaticChecker as a ScanFilter: each queried flat index is
/// decoded through `space` and rejected iff the analyzer proves the
/// configuration invalid — sound, so only configurations that would measure
/// invalid are ever pruned. Verdicts are tallied into `counters`. All three
/// references must outlive the returned filter. A non-empty `next` filter
/// is consulted after a configuration survives the static check (so e.g. a
/// learned validity filter never feature-encodes proven-invalid points).
[[nodiscard]] ScanFilter make_static_scan_filter(
    const ParamSpace& space, const clsim::analyze::StaticChecker& checker,
    StaticPruneCounters& counters, ScanFilter next = {});

/// Fills `x` (reshaped by the callee) with the feature rows for flat
/// indices [lo, hi). Called concurrently from worker threads.
using ScanRowFiller =
    std::function<void(std::uint64_t lo, std::uint64_t hi, ml::Matrix& x)>;

/// fp32 counterpart: writes (hi - lo) feature rows back to back into `rows`
/// (resized by the callee). Called concurrently from worker threads.
using ScanRowFillerF32 = std::function<void(
    std::uint64_t lo, std::uint64_t hi, std::vector<float>& rows)>;

/// The reduced-precision engines and their shared fp32 row filler, passed
/// alongside the fp64 pair when ScanOptions::inference is not kScalarFp64.
/// kBatchedFp32 uses `engine`; kQuantInt8/kFp16 use `quant` (whose mode must
/// match the requested inference). The fp64 filler/ensemble are still
/// required — they are the re-ranking reference.
struct BatchedScan {
  const ml::BatchedEnsemble* engine = nullptr;
  const ml::QuantizedEnsemble* quant = nullptr;
  ScanRowFillerF32 fill;
};

/// Predicted (transformed) value for every index in [begin, end), in order.
[[nodiscard]] std::vector<double> scan_predict_range(
    const ml::BaggingEnsemble& ensemble, const ScanRowFiller& fill,
    std::uint64_t begin, std::uint64_t end, const OutputTransform& transform);

/// As above, honouring options.inference. The non-fp64 paths compute each
/// prediction at their reduced precision (values may differ from the
/// reference by up to the transform-scaled per-mode error bound); throws
/// std::invalid_argument if a reduced-precision inference is requested
/// without the matching BatchedScan engine.
[[nodiscard]] std::vector<double> scan_predict_range(
    const ml::BaggingEnsemble& ensemble, const ScanRowFiller& fill,
    std::uint64_t begin, std::uint64_t end, const OutputTransform& transform,
    const ScanOptions& options, const BatchedScan* batched);

/// Best m candidates over [begin, end) by predicted value (ascending),
/// without materializing the full prediction vector. Requires
/// transform.scale > 0. `m` may exceed the range size; the result is then
/// just every (valid) index, ranked.
[[nodiscard]] TopMScanResult scan_top_m(const ml::BaggingEnsemble& ensemble,
                                        const ScanRowFiller& fill,
                                        std::uint64_t begin, std::uint64_t end,
                                        std::size_t m,
                                        const OutputTransform& transform,
                                        const ScanFilter& filter = {});

/// As above, honouring options.inference. On the reduced-precision paths
/// the returned selection (indices *and* predicted values) is identical to
/// the fp64 reference whenever the coarse-pass error stays within the
/// per-mode bound (fp32_error_bound or quant_error_bound); throws
/// std::invalid_argument if a reduced-precision inference is requested
/// without the matching BatchedScan engine.
[[nodiscard]] TopMScanResult scan_top_m(
    const ml::BaggingEnsemble& ensemble, const ScanRowFiller& fill,
    std::uint64_t begin, std::uint64_t end, std::size_t m,
    const OutputTransform& transform, const ScanFilter& filter,
    const ScanOptions& options, const BatchedScan* batched);

}  // namespace pt::tuner
