#pragma once

// Parallel prediction-scan engine: evaluates a fitted ensemble over a flat
// index range in fixed 65536-row chunks dispatched on the global thread
// pool, with per-worker reusable scratch so a full-space scan performs no
// per-chunk allocations once the buffers are warm.
//
// Chunking is defined by the *index range*, never by the pool size, so every
// result is bit-identical regardless of the number of threads.
//
// Two entry points:
//  - scan_predict_range: the dense path; one predicted value per index.
//  - scan_top_m: the streaming selection path; keeps a bounded per-chunk
//    worst-on-top heap of the best m candidates (O(workers * m) memory,
//    O(n log m) time) instead of materializing |space| predictions. An
//    optional validity filter is evaluated lazily — only for candidates that
//    would enter the heap — and a parallel unfiltered top list is kept so
//    callers can top up when the filter rejects too much.
//
// Candidates are ordered by (raw network output, index): the output
// transform (affine with positive scale, optionally exp) is strictly
// increasing, so ranking raw outputs ranks predicted times, and the index
// tie-break makes the order total — merge results cannot depend on chunk
// arrival order.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "ml/ensemble.hpp"

namespace pt::tuner {

/// Rows per scan chunk. Fixed (not derived from the pool size) so results
/// are independent of the number of worker threads.
inline constexpr std::size_t kScanChunkRows = 65536;

/// Maps a raw network output to a predicted time: y * scale + mean, then
/// exp when `exponentiate` (matches the model's target standardization and
/// optional log-target transform bit for bit). Strictly increasing as long
/// as scale > 0, which scan_top_m requires.
struct OutputTransform {
  double scale = 1.0;
  double mean = 0.0;
  bool exponentiate = false;

  [[nodiscard]] double operator()(double y) const noexcept {
    const double raw = y * scale + mean;
    return exponentiate ? std::exp(raw) : raw;
  }
};

/// One selected configuration: flat index plus its predicted time.
struct ScanCandidate {
  std::uint64_t index = 0;
  double predicted_ms = 0.0;
};

/// Result of scan_top_m. `top` is the best-first filtered selection (equal
/// to `top_unfiltered` when no filter was given); `rejected` counts filter
/// rejections, which only happen for candidates good enough to enter a
/// chunk heap at the moment they were scanned.
struct TopMScanResult {
  std::vector<ScanCandidate> top;
  std::vector<ScanCandidate> top_unfiltered;
  std::uint64_t scanned = 0;
  std::uint64_t rejected = 0;
};

/// Validity predicate over flat indices. Called concurrently from worker
/// threads; must be thread-safe (read-only captures are fine).
using ScanFilter = std::function<bool(std::uint64_t)>;

/// Fills `x` (reshaped by the callee) with the feature rows for flat
/// indices [lo, hi). Called concurrently from worker threads.
using ScanRowFiller =
    std::function<void(std::uint64_t lo, std::uint64_t hi, ml::Matrix& x)>;

/// Predicted (transformed) value for every index in [begin, end), in order.
[[nodiscard]] std::vector<double> scan_predict_range(
    const ml::BaggingEnsemble& ensemble, const ScanRowFiller& fill,
    std::uint64_t begin, std::uint64_t end, const OutputTransform& transform);

/// Best m candidates over [begin, end) by predicted value (ascending),
/// without materializing the full prediction vector. Requires
/// transform.scale > 0. `m` may exceed the range size; the result is then
/// just every (valid) index, ranked.
[[nodiscard]] TopMScanResult scan_top_m(const ml::BaggingEnsemble& ensemble,
                                        const ScanRowFiller& fill,
                                        std::uint64_t begin, std::uint64_t end,
                                        std::size_t m,
                                        const OutputTransform& transform,
                                        const ScanFilter& filter = {});

}  // namespace pt::tuner
