#include "tuner/input_aware.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"
#include "ml/scaler.hpp"

namespace pt::tuner {

InputAwarePerformanceModel::InputAwarePerformanceModel(Options options)
    : options_(std::move(options)), ensemble_(options_.ensemble) {}

std::vector<double> InputAwarePerformanceModel::instance_features(
    const ProblemInstance& instance) const {
  if (instance.values.size() != problem_names_.size())
    throw std::invalid_argument(
        "InputAwarePerformanceModel: instance width mismatch");
  std::vector<double> features;
  features.reserve(instance.values.size());
  for (const double v : instance.values) {
    if (options_.log2_problem_parameters) {
      if (v <= 0.0)
        throw std::invalid_argument(
            "InputAwarePerformanceModel: non-positive problem parameter "
            "with log2 encoding");
      features.push_back(std::log2(v));
    } else {
      features.push_back(v);
    }
  }
  return features;
}

std::vector<double> InputAwarePerformanceModel::encode(
    const Configuration& config, const ProblemInstance& instance) const {
  const std::vector<double> inst = instance_features(instance);
  std::vector<double> features = codec_.encode(config);
  features.insert(features.end(), inst.begin(), inst.end());
  return features;
}

void InputAwarePerformanceModel::fit(
    const ParamSpace& space, std::vector<std::string> problem_parameter_names,
    const std::vector<InputAwareSample>& samples) {
  common::Rng rng = options_.run.make_rng();
  fit(space, std::move(problem_parameter_names), samples, rng);
}

void InputAwarePerformanceModel::fit(
    const ParamSpace& space, std::vector<std::string> problem_parameter_names,
    const std::vector<InputAwareSample>& samples, common::Rng& rng) {
  if (samples.empty())
    throw std::invalid_argument("InputAwarePerformanceModel::fit: no samples");
  const ScopedRunContext scoped(options_.run);
  StageScope stage(options_.run, "input_aware", "input_aware.fit");
  space_ = space;
  codec_ = FeatureCodec::build(space, options_.encoding);
  problem_names_ = std::move(problem_parameter_names);

  const std::size_t width =
      space.dimension_count() + problem_names_.size();
  ml::Dataset data;
  data.x = ml::Matrix(samples.size(), width);
  data.y = ml::Matrix(samples.size(), 1);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].time_ms <= 0.0)
      throw std::invalid_argument(
          "InputAwarePerformanceModel::fit: non-positive time");
    const auto features = encode(samples[i].config, samples[i].instance);
    auto row = data.x.row(i);
    std::copy(features.begin(), features.end(), row.begin());
    data.y(i, 0) = options_.log_targets
                       ? ml::LogTargetTransform::forward(samples[i].time_ms)
                       : samples[i].time_ms;
  }

  // Standardize the transformed targets (see AnnPerformanceModel).
  {
    common::RunningStats stats;
    for (std::size_t i = 0; i < samples.size(); ++i) stats.add(data.y(i, 0));
    target_mean_ = stats.mean();
    target_scale_ = stats.stddev() > 1e-9 ? stats.stddev() : 1.0;
    for (std::size_t i = 0; i < samples.size(); ++i)
      data.y(i, 0) = (data.y(i, 0) - target_mean_) / target_scale_;
  }

  ensemble_ = ml::BaggingEnsemble(options_.ensemble);
  ensemble_.fit(data, rng);
  stage.finish();
  // Replay per-member training curves in deterministic (member, epoch)
  // order (see tuner/observer.hpp).
  if (options_.run.observer != nullptr) {
    const auto& curves = ensemble_.train_results();
    for (std::size_t member = 0; member < curves.size(); ++member) {
      const ml::TrainResult& tr = curves[member];
      for (std::size_t epoch = 0; epoch < tr.train_loss.size(); ++epoch)
        options_.run.observer->on_epoch(member, epoch, tr.train_loss[epoch],
                                        tr.monitored_loss[epoch]);
    }
  }
}

double InputAwarePerformanceModel::predict_ms(
    const Configuration& config, const ProblemInstance& instance) const {
  if (!fitted())
    throw std::logic_error("InputAwarePerformanceModel: predict before fit");
  const double raw =
      ensemble_.predict(encode(config, instance)) * target_scale_ +
      target_mean_;
  return options_.log_targets ? ml::LogTargetTransform::inverse(raw) : raw;
}

std::vector<double> InputAwarePerformanceModel::predict_many_ms(
    const std::vector<Configuration>& configs,
    const ProblemInstance& instance) const {
  if (!fitted())
    throw std::logic_error("InputAwarePerformanceModel: predict before fit");
  if (configs.empty()) return {};
  const std::size_t width =
      space_.dimension_count() + problem_names_.size();
  ml::Matrix x(configs.size(), width);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto features = encode(configs[i], instance);
    auto row = x.row(i);
    std::copy(features.begin(), features.end(), row.begin());
  }
  auto preds = ensemble_.predict_batch(x);
  for (auto& p : preds) {
    p = p * target_scale_ + target_mean_;
    if (options_.log_targets) p = ml::LogTargetTransform::inverse(p);
  }
  return preds;
}

OutputTransform InputAwarePerformanceModel::output_transform()
    const noexcept {
  return OutputTransform{target_scale_, target_mean_, options_.log_targets};
}

ScanRowFiller InputAwarePerformanceModel::row_filler(
    const ProblemInstance& instance) const {
  // The instance features are fixed across the scan: validate and transform
  // them once, then copy into every row.
  return [this, inst = instance_features(instance)](
             std::uint64_t lo, std::uint64_t hi, ml::Matrix& x) {
    const std::size_t dims = space_.dimension_count();
    x.reshape(static_cast<std::size_t>(hi - lo), dims + inst.size());
    for (std::uint64_t idx = lo; idx < hi; ++idx) {
      auto row = x.row(static_cast<std::size_t>(idx - lo));
      codec_.encode_into(space_.decode(idx), row.subspan(0, dims));
      std::copy(inst.begin(), inst.end(), row.begin() + dims);
    }
  };
}

std::vector<double> InputAwarePerformanceModel::predict_range_ms(
    std::uint64_t begin, std::uint64_t end,
    const ProblemInstance& instance) const {
  if (!fitted())
    throw std::logic_error("InputAwarePerformanceModel: predict before fit");
  return scan_predict_range(ensemble_, row_filler(instance), begin, end,
                            output_transform());
}

TopMScanResult InputAwarePerformanceModel::predict_scan_top_m(
    std::uint64_t begin, std::uint64_t end, std::size_t m,
    const ProblemInstance& instance, const ScanFilter& filter) const {
  if (!fitted())
    throw std::logic_error("InputAwarePerformanceModel: predict before fit");
  return scan_top_m(ensemble_, row_filler(instance), begin, end, m,
                    output_transform(), filter);
}

}  // namespace pt::tuner
