#include "tuner/input_aware.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"
#include "ml/scaler.hpp"

namespace pt::tuner {

InputAwarePerformanceModel::InputAwarePerformanceModel(Options options)
    : options_(std::move(options)), ensemble_(options_.ensemble) {}

std::vector<double> InputAwarePerformanceModel::instance_features(
    const ProblemInstance& instance) const {
  if (instance.values.size() != problem_names_.size())
    throw std::invalid_argument(
        "InputAwarePerformanceModel: instance width mismatch");
  std::vector<double> features;
  features.reserve(instance.values.size());
  for (const double v : instance.values) {
    if (options_.log2_problem_parameters) {
      if (v <= 0.0)
        throw std::invalid_argument(
            "InputAwarePerformanceModel: non-positive problem parameter "
            "with log2 encoding");
      features.push_back(std::log2(v));
    } else {
      features.push_back(v);
    }
  }
  return features;
}

std::vector<double> InputAwarePerformanceModel::encode(
    const Configuration& config, const ProblemInstance& instance) const {
  const std::vector<double> inst = instance_features(instance);
  std::vector<double> features = codec_.encode(config);
  features.insert(features.end(), inst.begin(), inst.end());
  return features;
}

void InputAwarePerformanceModel::fit(
    const ParamSpace& space, std::vector<std::string> problem_parameter_names,
    const std::vector<InputAwareSample>& samples, const TuneRun& request) {
  const TunerRunContext& run = request.effective_context(options_.run);
  if (request.rng != nullptr) {
    do_fit(space, std::move(problem_parameter_names), samples, *request.rng,
           run);
    return;
  }
  common::Rng rng = run.make_rng();
  do_fit(space, std::move(problem_parameter_names), samples, rng, run);
}

void InputAwarePerformanceModel::fit(
    const ParamSpace& space, std::vector<std::string> problem_parameter_names,
    const std::vector<InputAwareSample>& samples) {
  fit(space, std::move(problem_parameter_names), samples, TuneRun{});
}

void InputAwarePerformanceModel::fit(
    const ParamSpace& space, std::vector<std::string> problem_parameter_names,
    const std::vector<InputAwareSample>& samples, common::Rng& rng) {
  TuneRun request;
  request.rng = &rng;
  fit(space, std::move(problem_parameter_names), samples, request);
}

void InputAwarePerformanceModel::do_fit(
    const ParamSpace& space, std::vector<std::string> problem_parameter_names,
    const std::vector<InputAwareSample>& samples, common::Rng& rng,
    const TunerRunContext& run) {
  if (samples.empty())
    throw std::invalid_argument("InputAwarePerformanceModel::fit: no samples");
  const ScopedRunContext scoped(run);
  StageScope stage(run, "input_aware", "input_aware.fit");
  space_ = space;
  codec_ = FeatureCodec::build(space, options_.encoding);
  range_encoder_ = RangeEncoder(codec_, space_);
  batched_.reset();
  problem_names_ = std::move(problem_parameter_names);

  const std::size_t dims = space.dimension_count();
  const std::size_t width = dims + problem_names_.size();
  ml::Dataset data;
  data.x = ml::Matrix(samples.size(), width);
  data.y = ml::Matrix(samples.size(), 1);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].time_ms <= 0.0)
      throw std::invalid_argument(
          "InputAwarePerformanceModel::fit: non-positive time");
    const auto row = data.x.row(i);
    codec_.encode_into(samples[i].config, row.subspan(0, dims));
    const auto inst = instance_features(samples[i].instance);
    std::copy(inst.begin(), inst.end(), row.begin() + dims);
    data.y(i, 0) = options_.log_targets
                       ? ml::LogTargetTransform::forward(samples[i].time_ms)
                       : samples[i].time_ms;
  }

  // Standardize the transformed targets (see AnnPerformanceModel).
  {
    common::RunningStats stats;
    for (std::size_t i = 0; i < samples.size(); ++i) stats.add(data.y(i, 0));
    target_mean_ = stats.mean();
    target_scale_ = stats.stddev() > 1e-9 ? stats.stddev() : 1.0;
    for (std::size_t i = 0; i < samples.size(); ++i)
      data.y(i, 0) = (data.y(i, 0) - target_mean_) / target_scale_;
  }

  ensemble_ = ml::BaggingEnsemble(options_.ensemble);
  ensemble_.fit(data, rng);
  stage.finish();
  // Replay per-member training curves in deterministic (member, epoch)
  // order (see tuner/observer.hpp).
  if (run.observer != nullptr) {
    const auto& curves = ensemble_.train_results();
    for (std::size_t member = 0; member < curves.size(); ++member) {
      const ml::TrainResult& tr = curves[member];
      for (std::size_t epoch = 0; epoch < tr.train_loss.size(); ++epoch)
        run.observer->on_epoch(member, epoch, tr.train_loss[epoch],
                               tr.monitored_loss[epoch]);
    }
  }
}

double InputAwarePerformanceModel::predict_ms(
    const Configuration& config, const ProblemInstance& instance) const {
  if (!fitted())
    throw std::logic_error("InputAwarePerformanceModel: predict before fit");
  const double raw =
      ensemble_.predict(encode(config, instance)) * target_scale_ +
      target_mean_;
  return options_.log_targets ? ml::LogTargetTransform::inverse(raw) : raw;
}

std::vector<double> InputAwarePerformanceModel::predict_many_ms(
    const std::vector<Configuration>& configs,
    const ProblemInstance& instance) const {
  if (!fitted())
    throw std::logic_error("InputAwarePerformanceModel: predict before fit");
  if (configs.empty()) return {};
  const std::size_t dims = space_.dimension_count();
  const auto inst = instance_features(instance);
  ml::Matrix x(configs.size(), dims + inst.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto row = x.row(i);
    codec_.encode_into(configs[i], row.subspan(0, dims));
    std::copy(inst.begin(), inst.end(), row.begin() + dims);
  }
  auto preds = ensemble_.predict_batch(x);
  for (auto& p : preds) {
    p = p * target_scale_ + target_mean_;
    if (options_.log_targets) p = ml::LogTargetTransform::inverse(p);
  }
  return preds;
}

OutputTransform InputAwarePerformanceModel::output_transform()
    const noexcept {
  return OutputTransform{target_scale_, target_mean_, options_.log_targets};
}

ScanRowFiller InputAwarePerformanceModel::row_filler(
    const ProblemInstance& instance) const {
  // The instance features are fixed across the scan: validate and transform
  // them once, then the range encoder copies them into every row tail.
  return [this, inst = instance_features(instance)](
             std::uint64_t lo, std::uint64_t hi, ml::Matrix& x) {
    range_encoder_.fill(lo, hi, x, inst);
  };
}

ScanRowFillerF32 InputAwarePerformanceModel::row_filler_f32(
    const ProblemInstance& instance) const {
  const auto inst = instance_features(instance);
  std::vector<float> inst_f(inst.begin(), inst.end());
  return [this, inst_f = std::move(inst_f)](
             std::uint64_t lo, std::uint64_t hi, std::vector<float>& rows) {
    range_encoder_.fill_f32(lo, hi, rows, inst_f);
  };
}

// Builds the BatchedScan for a reduced-precision inference mode. For the
// quantized tiers the calibration carries the instance features as
// degenerate [v, v] tail ranges, so a scan for a different instance repacks
// the int8 engine (the cache compares calibrations).
struct InputAwarePerformanceModel::ScanEngines {
  std::shared_ptr<const ml::BatchedEnsemble> engine;
  std::shared_ptr<const ml::QuantizedEnsemble> quant;
  BatchedScan batched;
};

InputAwarePerformanceModel::ScanEngines
InputAwarePerformanceModel::scan_engines(
    const ProblemInstance& instance) const {
  ScanEngines e;
  if (options_.scan.inference == ScanInference::kBatchedFp32) {
    e.engine = batched_.get(ensemble_);
    e.batched.engine = e.engine.get();
  } else {
    const auto inst = instance_features(instance);
    const std::vector<float> inst_f(inst.begin(), inst.end());
    e.quant = batched_.get_quantized(ensemble_,
                                     scan_quant_mode(options_.scan.inference),
                                     range_encoder_.calibration(inst_f));
    e.batched.quant = e.quant.get();
  }
  e.batched.fill = row_filler_f32(instance);
  return e;
}

std::vector<double> InputAwarePerformanceModel::predict_range_ms(
    std::uint64_t begin, std::uint64_t end,
    const ProblemInstance& instance) const {
  if (!fitted())
    throw std::logic_error("InputAwarePerformanceModel: predict before fit");
  if (options_.scan.inference != ScanInference::kScalarFp64) {
    const ScanEngines e = scan_engines(instance);
    return scan_predict_range(ensemble_, row_filler(instance), begin, end,
                              output_transform(), options_.scan, &e.batched);
  }
  return scan_predict_range(ensemble_, row_filler(instance), begin, end,
                            output_transform());
}

TopMScanResult InputAwarePerformanceModel::predict_scan_top_m(
    std::uint64_t begin, std::uint64_t end, std::size_t m,
    const ProblemInstance& instance, const ScanFilter& filter) const {
  if (!fitted())
    throw std::logic_error("InputAwarePerformanceModel: predict before fit");
  if (options_.scan.inference != ScanInference::kScalarFp64) {
    const ScanEngines e = scan_engines(instance);
    return scan_top_m(ensemble_, row_filler(instance), begin, end, m,
                      output_transform(), filter, options_.scan, &e.batched);
  }
  return scan_top_m(ensemble_, row_filler(instance), begin, end, m,
                    output_transform(), filter);
}

}  // namespace pt::tuner
