#include "tuner/persist.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

#include "ml/serialize.hpp"

namespace pt::tuner {

namespace {

constexpr const char* kMagic = "portatune-perf-model-v1";

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  if (!(is >> token) || token != expected)
    throw std::runtime_error("model load: expected '" + expected + "', got '" +
                             token + "'");
}

double read_double(std::istream& is) {
  double v = 0.0;
  if (!(is >> v)) throw std::runtime_error("model load: bad double");
  return v;
}

long long read_int(std::istream& is) {
  long long v = 0;
  if (!(is >> v)) throw std::runtime_error("model load: bad integer");
  return v;
}

/// Parameter names may contain no whitespace (enforced at save time).
std::string read_word(std::istream& is) {
  std::string word;
  if (!(is >> word)) throw std::runtime_error("model load: bad token");
  return word;
}

}  // namespace

void save_model(const AnnPerformanceModel& model, std::ostream& os) {
  if (!model.fitted()) throw std::logic_error("save_model: unfitted model");
  const auto old_precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);

  os << kMagic << '\n';
  os << "log_targets " << (model.options().log_targets ? 1 : 0) << '\n';
  os << "encoding "
     << (model.options().encoding == FeatureEncoding::kLog2 ? "log2" : "raw")
     << '\n';
  os << "target " << model.target_mean() << ' ' << model.target_scale()
     << '\n';

  const ParamSpace& space = model.space();
  os << "space " << space.dimension_count() << '\n';
  for (std::size_t d = 0; d < space.dimension_count(); ++d) {
    const auto& p = space.parameter(d);
    if (p.name.find_first_of(" \t\n") != std::string::npos)
      throw std::logic_error("save_model: parameter name has whitespace: " +
                             p.name);
    os << "param " << p.name << ' ' << p.values.size();
    for (const int v : p.values) os << ' ' << v;
    os << '\n';
  }
  ml::save_ensemble(model.ensemble(), os);
  os.precision(old_precision);
}

AnnPerformanceModel load_model(std::istream& is) {
  expect_token(is, kMagic);
  AnnPerformanceModel::Options options;
  expect_token(is, "log_targets");
  options.log_targets = read_int(is) != 0;
  expect_token(is, "encoding");
  const std::string encoding = read_word(is);
  if (encoding == "log2") {
    options.encoding = FeatureEncoding::kLog2;
  } else if (encoding == "raw") {
    options.encoding = FeatureEncoding::kRaw;
  } else {
    throw std::runtime_error("model load: unknown encoding " + encoding);
  }
  expect_token(is, "target");
  const double mean = read_double(is);
  const double scale = read_double(is);

  expect_token(is, "space");
  const long long dims = read_int(is);
  if (dims <= 0) throw std::runtime_error("model load: bad dimension count");
  ParamSpace space;
  for (long long d = 0; d < dims; ++d) {
    expect_token(is, "param");
    const std::string name = read_word(is);
    const long long count = read_int(is);
    if (count <= 0) throw std::runtime_error("model load: bad value count");
    std::vector<int> values;
    values.reserve(static_cast<std::size_t>(count));
    for (long long i = 0; i < count; ++i)
      values.push_back(static_cast<int>(read_int(is)));
    space.add(name, std::move(values));
  }

  ml::BaggingEnsemble ensemble = ml::load_ensemble(is);
  options.ensemble = ensemble.options();
  return AnnPerformanceModel::restore(options, std::move(space), mean, scale,
                                      std::move(ensemble));
}

}  // namespace pt::tuner
