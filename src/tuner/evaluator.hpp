#pragma once

// Evaluator: the auto-tuner's only window onto the world. It measures one
// configuration and reports either a time or "invalid" (the simulated
// driver rejected the configuration) — mirroring how the paper's tuner
// interacts with OpenCL. Decorators add caching and cost accounting.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "clsim/error.hpp"
#include "tuner/param.hpp"

namespace pt::tuner {

/// Outcome of measuring one configuration.
struct Measurement {
  bool valid = false;
  double time_ms = 0.0;  // kernel execution time (only if valid)
  /// Why the configuration was rejected (meaningful when !valid).
  clsim::Status status = clsim::Status::kSuccess;
  /// Total simulated wall cost of obtaining this measurement, including
  /// compilation and failed launch attempts — what data gathering costs.
  double cost_ms = 0.0;
  /// Raw inner measurements behind this result (> 1 when a robustness
  /// decorator repeated or retried the measurement; see tuner/robust.hpp).
  std::uint32_t attempts = 1;
  /// Transient launch failures absorbed by retry while producing it.
  std::uint32_t transient_faults = 0;
};

/// Per-status tally of rejected measurements. Call sites that skip invalid
/// measurements record the reason here so "all candidates invalid" failures
/// stay diagnosable (which driver rejection, how often) instead of a bare
/// count.
class RejectionCounts {
 public:
  void note(clsim::Status status);
  void merge(const RejectionCounts& other);

  [[nodiscard]] std::size_t total() const noexcept;
  [[nodiscard]] std::size_t count(clsim::Status status) const noexcept;
  [[nodiscard]] bool empty() const noexcept { return counts_.empty(); }

  /// "CL_OUT_OF_LOCAL_MEMORY x12, CL_INVALID_WORK_GROUP_SIZE x3" —
  /// descending by count (ties broken by status value, so the string is
  /// deterministic).
  [[nodiscard]] std::string to_string() const;

  /// (status, count) pairs in the same order as to_string().
  [[nodiscard]] std::vector<std::pair<clsim::Status, std::size_t>> sorted()
      const;

 private:
  std::vector<std::pair<clsim::Status, std::size_t>> counts_;
};

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  [[nodiscard]] virtual const ParamSpace& space() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Measure one configuration (compile + launch in the simulated runtime).
  [[nodiscard]] virtual Measurement measure(const Configuration& config) = 0;

  /// Decorators return the evaluator they wrap, so diagnostics can walk a
  /// stack without knowing its composition (see find_layer). Leaf
  /// evaluators return nullptr.
  [[nodiscard]] virtual Evaluator* inner() noexcept { return nullptr; }
};

/// Outermost layer of type T in a decorator chain, starting at `evaluator`
/// itself and following inner() links; nullptr when absent. How tuners find
/// the CachingEvaluator (for hit/miss reporting) inside an arbitrary stack.
template <typename T>
[[nodiscard]] T* find_layer(Evaluator* evaluator) noexcept {
  for (Evaluator* e = evaluator; e != nullptr; e = e->inner()) {
    if (T* layer = dynamic_cast<T*>(e)) return layer;
  }
  return nullptr;
}

/// Memoizes measurements by configuration index. Exhaustive ground-truth
/// sweeps and repeated tuner runs share one cache.
class CachingEvaluator final : public Evaluator {
 public:
  explicit CachingEvaluator(Evaluator& inner) : inner_(inner) {}

  [[nodiscard]] const ParamSpace& space() const override {
    return inner_.space();
  }
  [[nodiscard]] std::string name() const override { return inner_.name(); }

  [[nodiscard]] Measurement measure(const Configuration& config) override;

  [[nodiscard]] Evaluator* inner() noexcept override { return &inner_; }

  [[nodiscard]] std::size_t cache_size() const noexcept {
    return cache_.size();
  }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  Evaluator& inner_;
  std::unordered_map<std::uint64_t, Measurement> cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Counts measurements and accumulates simulated cost; wraps any evaluator.
class CountingEvaluator final : public Evaluator {
 public:
  explicit CountingEvaluator(Evaluator& inner) : inner_(inner) {}

  [[nodiscard]] const ParamSpace& space() const override {
    return inner_.space();
  }
  [[nodiscard]] std::string name() const override { return inner_.name(); }

  [[nodiscard]] Measurement measure(const Configuration& config) override;

  [[nodiscard]] Evaluator* inner() noexcept override { return &inner_; }

  [[nodiscard]] std::size_t total_measurements() const noexcept {
    return total_;
  }
  [[nodiscard]] std::size_t invalid_measurements() const noexcept {
    return invalid_;
  }
  [[nodiscard]] double total_cost_ms() const noexcept { return cost_ms_; }
  /// Why the invalid measurements were rejected, by status.
  [[nodiscard]] const RejectionCounts& rejections() const noexcept {
    return rejections_;
  }

  void reset() noexcept {
    total_ = 0;
    invalid_ = 0;
    cost_ms_ = 0.0;
    rejections_ = RejectionCounts{};
  }

 private:
  Evaluator& inner_;
  std::size_t total_ = 0;
  std::size_t invalid_ = 0;
  double cost_ms_ = 0.0;
  RejectionCounts rejections_;
};

}  // namespace pt::tuner
