#pragma once

// Evaluator: the auto-tuner's only window onto the world. It measures one
// configuration and reports either a time or "invalid" (the simulated
// driver rejected the configuration) — mirroring how the paper's tuner
// interacts with OpenCL. Decorators add caching and cost accounting.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "clsim/error.hpp"
#include "tuner/param.hpp"

namespace pt::tuner {

/// Outcome of measuring one configuration.
struct Measurement {
  bool valid = false;
  double time_ms = 0.0;  // kernel execution time (only if valid)
  /// Why the configuration was rejected (meaningful when !valid).
  clsim::Status status = clsim::Status::kSuccess;
  /// Total simulated wall cost of obtaining this measurement, including
  /// compilation and failed launch attempts — what data gathering costs.
  double cost_ms = 0.0;
};

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  [[nodiscard]] virtual const ParamSpace& space() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Measure one configuration (compile + launch in the simulated runtime).
  [[nodiscard]] virtual Measurement measure(const Configuration& config) = 0;
};

/// Memoizes measurements by configuration index. Exhaustive ground-truth
/// sweeps and repeated tuner runs share one cache.
class CachingEvaluator final : public Evaluator {
 public:
  explicit CachingEvaluator(Evaluator& inner) : inner_(inner) {}

  [[nodiscard]] const ParamSpace& space() const override {
    return inner_.space();
  }
  [[nodiscard]] std::string name() const override { return inner_.name(); }

  [[nodiscard]] Measurement measure(const Configuration& config) override;

  [[nodiscard]] std::size_t cache_size() const noexcept {
    return cache_.size();
  }
  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  Evaluator& inner_;
  std::unordered_map<std::uint64_t, Measurement> cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Counts measurements and accumulates simulated cost; wraps any evaluator.
class CountingEvaluator final : public Evaluator {
 public:
  explicit CountingEvaluator(Evaluator& inner) : inner_(inner) {}

  [[nodiscard]] const ParamSpace& space() const override {
    return inner_.space();
  }
  [[nodiscard]] std::string name() const override { return inner_.name(); }

  [[nodiscard]] Measurement measure(const Configuration& config) override;

  [[nodiscard]] std::size_t total_measurements() const noexcept {
    return total_;
  }
  [[nodiscard]] std::size_t invalid_measurements() const noexcept {
    return invalid_;
  }
  [[nodiscard]] double total_cost_ms() const noexcept { return cost_ms_; }

  void reset() noexcept {
    total_ = 0;
    invalid_ = 0;
    cost_ms_ = 0.0;
  }

 private:
  Evaluator& inner_;
  std::size_t total_ = 0;
  std::size_t invalid_ = 0;
  double cost_ms_ = 0.0;
};

}  // namespace pt::tuner
