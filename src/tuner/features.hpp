#pragma once

// Feature encoding shared by the performance model and the validity
// classifier: each parameter becomes one feature, either its raw value or
// log2(value) for dimensions that span a wide positive power-of-two-style
// range (work-group sizes 1..128 are exponent-natured knobs).

#include <span>
#include <vector>

#include "tuner/param.hpp"

namespace pt::tuner {

enum class FeatureEncoding { kRaw, kLog2 };

class FeatureCodec {
 public:
  FeatureCodec() = default;

  /// Decide per dimension whether log2 applies (kLog2 only, and only where
  /// all values are positive and the range is wide enough to matter).
  static FeatureCodec build(const ParamSpace& space, FeatureEncoding encoding);

  [[nodiscard]] std::size_t width() const noexcept { return use_log2_.size(); }
  [[nodiscard]] bool uses_log2(std::size_t dim) const {
    return use_log2_.at(dim);
  }

  /// Feature vector for one configuration.
  [[nodiscard]] std::vector<double> encode(const Configuration& config) const;

  /// Write features for one configuration into a pre-sized row.
  void encode_into(const Configuration& config,
                   std::span<double> row) const;

 private:
  std::vector<bool> use_log2_;
};

}  // namespace pt::tuner
