#pragma once

// Feature encoding shared by the performance model and the validity
// classifier: each parameter becomes one feature, either its raw value or
// log2(value) for dimensions that span a wide positive power-of-two-style
// range (work-group sizes 1..128 are exponent-natured knobs).

#include <cstdint>
#include <span>
#include <vector>

#include "ml/matrix.hpp"
#include "ml/quant.hpp"
#include "tuner/param.hpp"

namespace pt::tuner {

enum class FeatureEncoding { kRaw, kLog2 };

class FeatureCodec {
 public:
  FeatureCodec() = default;

  /// Decide per dimension whether log2 applies (kLog2 only, and only where
  /// all values are positive and the range is wide enough to matter).
  static FeatureCodec build(const ParamSpace& space, FeatureEncoding encoding);

  [[nodiscard]] std::size_t width() const noexcept { return use_log2_.size(); }
  [[nodiscard]] bool uses_log2(std::size_t dim) const {
    return use_log2_.at(dim);
  }

  /// Feature vector for one configuration.
  [[nodiscard]] std::vector<double> encode(const Configuration& config) const;

  /// Write features for one configuration into a pre-sized row.
  void encode_into(const Configuration& config,
                   std::span<double> row) const;

 private:
  std::vector<bool> use_log2_;
};

/// Bulk feature encoding for contiguous index ranges of a ParamSpace — the
/// prediction-scan hot path. Precomputes the per-dimension encoded value
/// tables (log2 evaluated once per distinct parameter value, not once per
/// candidate) and walks the range with an incremental mixed-radix digit
/// counter, so filling a chunk does no decode() allocation and no
/// transcendental math.
///
/// fill() is bit-identical to the naive per-row decode() + encode_into()
/// loop: the tables hold the very doubles std::log2 would produce.
/// fill_f32() emits the same values cast to float (each table entry is cast
/// once at construction), for the batched fp32 inference engine.
class RangeEncoder {
 public:
  RangeEncoder() = default;
  RangeEncoder(const FeatureCodec& codec, const ParamSpace& space);

  [[nodiscard]] bool valid() const noexcept { return !dims_.empty(); }
  /// Features per row: space dimensions plus the fixed tail width.
  [[nodiscard]] std::size_t width(std::size_t tail_width = 0) const noexcept {
    return dims_.size() + tail_width;
  }

  /// Encode configurations [lo, hi) into the rows of x (reshaped in place to
  /// (hi - lo, width(tail.size()))). Every row ends with a copy of `tail`
  /// (instance features for input-aware models; empty otherwise).
  void fill(std::uint64_t lo, std::uint64_t hi, ml::Matrix& x,
            std::span<const double> tail = {}) const;

  /// fp32 variant: rows are written back to back into `out` (resized to
  /// (hi - lo) * width(tail.size())).
  void fill_f32(std::uint64_t lo, std::uint64_t hi, std::vector<float>& out,
                std::span<const float> tail = {}) const;

  /// Per-feature quantization ranges for int8 scan inference: [min, max] of
  /// each dimension's encoded value table, plus a degenerate [v, v] range
  /// per `tail` element (the fixed instance features of input-aware scans).
  /// Every row fill_f32 produces with the same tail lies inside these
  /// ranges by construction, so quantization clamping never loses range.
  [[nodiscard]] ml::QuantCalibration calibration(
      std::span<const float> tail = {}) const;

 private:
  struct Dim {
    std::vector<double> encoded;    // encoded feature per value index
    std::vector<float> encoded_f;   // the same, cast to float
  };
  std::vector<Dim> dims_;
  std::uint64_t space_size_ = 0;
};

}  // namespace pt::tuner
