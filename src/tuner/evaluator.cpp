#include "tuner/evaluator.hpp"

#include <algorithm>

#include "common/telemetry/telemetry.hpp"

namespace pt::tuner {

void RejectionCounts::note(clsim::Status status) {
  for (auto& [s, n] : counts_) {
    if (s == status) {
      ++n;
      return;
    }
  }
  counts_.emplace_back(status, 1);
}

void RejectionCounts::merge(const RejectionCounts& other) {
  for (const auto& [status, n] : other.counts_) {
    bool found = false;
    for (auto& [s, mine] : counts_) {
      if (s == status) {
        mine += n;
        found = true;
        break;
      }
    }
    if (!found) counts_.emplace_back(status, n);
  }
}

std::size_t RejectionCounts::total() const noexcept {
  std::size_t sum = 0;
  for (const auto& [status, n] : counts_) sum += n;
  return sum;
}

std::size_t RejectionCounts::count(clsim::Status status) const noexcept {
  for (const auto& [s, n] : counts_) {
    if (s == status) return n;
  }
  return 0;
}

std::vector<std::pair<clsim::Status, std::size_t>> RejectionCounts::sorted()
    const {
  auto out = counts_;
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return static_cast<int>(a.first) < static_cast<int>(b.first);
  });
  return out;
}

std::string RejectionCounts::to_string() const {
  if (counts_.empty()) return "none";
  std::string out;
  for (const auto& [status, n] : sorted()) {
    if (!out.empty()) out += ", ";
    out += clsim::to_string(status);
    out += " x";
    out += std::to_string(n);
  }
  return out;
}

Measurement CachingEvaluator::measure(const Configuration& config) {
  const std::uint64_t key = inner_.space().encode(config);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    common::telemetry::count("evaluator.cache.hit");
    return it->second;
  }
  ++misses_;
  common::telemetry::count("evaluator.cache.miss");
  const Measurement m = inner_.measure(config);
  cache_.emplace(key, m);
  return m;
}

Measurement CountingEvaluator::measure(const Configuration& config) {
  const Measurement m = inner_.measure(config);
  ++total_;
  if (!m.valid) {
    ++invalid_;
    rejections_.note(m.status);
  }
  cost_ms_ += m.cost_ms;
  return m;
}

}  // namespace pt::tuner
