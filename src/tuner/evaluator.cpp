#include "tuner/evaluator.hpp"

namespace pt::tuner {

Measurement CachingEvaluator::measure(const Configuration& config) {
  const std::uint64_t key = inner_.space().encode(config);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const Measurement m = inner_.measure(config);
  cache_.emplace(key, m);
  return m;
}

Measurement CountingEvaluator::measure(const Configuration& config) {
  const Measurement m = inner_.measure(config);
  ++total_;
  if (!m.valid) ++invalid_;
  cost_ms_ += m.cost_ms;
  return m;
}

}  // namespace pt::tuner
