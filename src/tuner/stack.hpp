#pragma once

// EvaluatorStack — fluent, owning builder for evaluator decorator chains.
//
// Hand-wiring the production stack means declaring every intermediate layer
// in reverse order and keeping their lifetimes straight. The stack owns its
// layers and builds the same chain in one expression, innermost first:
//
//   auto stack = EvaluatorStack::wrap(base)
//                    .fault_injecting(fault_opts)
//                    .robust(robust_opts)
//                    .cached()
//                    .counting();
//   AutoTuner(options).tune(stack);
//
// Each call wraps the current top, so the *last*-added layer is outermost
// (here: counting -> cache -> robust -> fault injector -> base — the
// recommended ordering from tuner/robust.hpp). The stack is itself an
// Evaluator forwarding to the outermost layer, and participates in inner()
// chain walking, so find_layer<T>(&stack) sees every layer.
//
// Layers live on the heap (unique_ptr), so moving the stack does not
// invalidate the references between layers; `base` must outlive the stack.
// Typed stats access: stack.layer<CachingEvaluator>()->hits(), with
// stack.layer<T>() returning nullptr when T was never added.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tuner/evaluator.hpp"
#include "tuner/robust.hpp"

namespace pt::tuner {

class EvaluatorStack final : public Evaluator {
 public:
  /// Start a stack around a caller-owned base evaluator.
  [[nodiscard]] static EvaluatorStack wrap(Evaluator& base) {
    return EvaluatorStack(base);
  }

  EvaluatorStack(EvaluatorStack&&) noexcept = default;
  EvaluatorStack& operator=(EvaluatorStack&&) noexcept = default;
  EvaluatorStack(const EvaluatorStack&) = delete;
  EvaluatorStack& operator=(const EvaluatorStack&) = delete;

  // --- Fluent layer adders (each wraps the current top). The &&-qualified
  // overloads keep the one-expression builder style moving. ---
  EvaluatorStack& cached() &;
  EvaluatorStack& counting() &;
  EvaluatorStack& robust(RobustEvaluator::Options options = {}) &;
  EvaluatorStack& noisy(NoisyEvaluator::Options options) &;
  EvaluatorStack& fault_injecting(FaultInjectingEvaluator::Options options) &;

  [[nodiscard]] EvaluatorStack&& cached() && {
    return std::move(cached());
  }
  [[nodiscard]] EvaluatorStack&& counting() && {
    return std::move(counting());
  }
  [[nodiscard]] EvaluatorStack&& robust(RobustEvaluator::Options options =
                                            {}) && {
    return std::move(robust(options));
  }
  [[nodiscard]] EvaluatorStack&& noisy(NoisyEvaluator::Options options) && {
    return std::move(noisy(options));
  }
  [[nodiscard]] EvaluatorStack&& fault_injecting(
      FaultInjectingEvaluator::Options options) && {
    return std::move(fault_injecting(options));
  }

  // --- Evaluator interface: forward to the outermost layer. ---
  [[nodiscard]] const ParamSpace& space() const override {
    return top().space();
  }
  [[nodiscard]] std::string name() const override { return top().name(); }
  [[nodiscard]] Measurement measure(const Configuration& config) override {
    return top().measure(config);
  }
  [[nodiscard]] Evaluator* inner() noexcept override { return &top(); }

  // --- Introspection. ---
  /// Outermost layer of type T owned by this stack (nullptr when absent).
  template <typename T>
  [[nodiscard]] T* layer() noexcept {
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      if (T* found = dynamic_cast<T*>(it->get())) return found;
    }
    return nullptr;
  }
  template <typename T>
  [[nodiscard]] const T* layer() const noexcept {
    return const_cast<EvaluatorStack*>(this)->layer<T>();
  }

  [[nodiscard]] std::size_t layer_count() const noexcept {
    return layers_.size();
  }

  /// "counting -> cached -> robust -> <base name>": the chain outermost
  /// first, for logs and reports.
  [[nodiscard]] std::string description() const;

 private:
  explicit EvaluatorStack(Evaluator& base) : base_(&base) {}

  [[nodiscard]] Evaluator& top() noexcept {
    return layers_.empty() ? *base_ : *layers_.back();
  }
  [[nodiscard]] const Evaluator& top() const noexcept {
    return layers_.empty() ? *base_ : *layers_.back();
  }

  void push(std::unique_ptr<Evaluator> layer, std::string label);

  Evaluator* base_;
  std::vector<std::unique_ptr<Evaluator>> layers_;
  std::vector<std::string> labels_;  // parallel to layers_
};

}  // namespace pt::tuner
