#include "tuner/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"
#include "ml/scaler.hpp"

namespace pt::tuner {

AnnPerformanceModel::AnnPerformanceModel(Options options)
    : options_(std::move(options)), ensemble_(options_.ensemble) {}

std::vector<double> AnnPerformanceModel::encode_features(
    const Configuration& config) const {
  return codec_.encode(config);
}

void AnnPerformanceModel::fit(const ParamSpace& space,
                              const std::vector<TrainingSample>& samples,
                              common::Rng& rng) {
  if (samples.empty())
    throw std::invalid_argument("AnnPerformanceModel::fit: no samples");
  space_ = space;
  codec_ = FeatureCodec::build(space, options_.encoding);
  range_encoder_ = RangeEncoder(codec_, space_);
  batched_.reset();

  ml::Dataset data;
  data.x = ml::Matrix(samples.size(), space.dimension_count());
  data.y = ml::Matrix(samples.size(), 1);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].time_ms <= 0.0)
      throw std::invalid_argument(
          "AnnPerformanceModel::fit: non-positive time");
    codec_.encode_into(samples[i].config, data.x.row(i));
    data.y(i, 0) = options_.log_targets
                       ? ml::LogTargetTransform::forward(samples[i].time_ms)
                       : samples[i].time_ms;
  }

  // Standardize the (transformed) targets so the network trains at unit
  // scale; predictions are mapped back in to_time_ms().
  {
    common::RunningStats stats;
    for (std::size_t i = 0; i < samples.size(); ++i) stats.add(data.y(i, 0));
    target_mean_ = stats.mean();
    target_scale_ = stats.stddev() > 1e-9 ? stats.stddev() : 1.0;
    for (std::size_t i = 0; i < samples.size(); ++i)
      data.y(i, 0) = (data.y(i, 0) - target_mean_) / target_scale_;
  }

  ensemble_ = ml::BaggingEnsemble(options_.ensemble);
  ensemble_.fit(data, rng);
}

AnnPerformanceModel AnnPerformanceModel::restore(
    Options options, ParamSpace space, double target_mean,
    double target_scale, ml::BaggingEnsemble ensemble) {
  if (!ensemble.fitted())
    throw std::invalid_argument(
        "AnnPerformanceModel::restore: unfitted ensemble");
  if (ensemble.scaler().width() != space.dimension_count())
    throw std::invalid_argument(
        "AnnPerformanceModel::restore: space/ensemble width mismatch");
  AnnPerformanceModel model(std::move(options));
  model.codec_ = FeatureCodec::build(space, model.options_.encoding);
  model.range_encoder_ = RangeEncoder(model.codec_, space);
  model.space_ = std::move(space);
  model.target_mean_ = target_mean;
  model.target_scale_ = target_scale;
  model.ensemble_ = std::move(ensemble);
  model.batched_.reset();
  return model;
}

double AnnPerformanceModel::to_time_ms(double network_output) const noexcept {
  const double raw = network_output * target_scale_ + target_mean_;
  return options_.log_targets ? ml::LogTargetTransform::inverse(raw) : raw;
}

double AnnPerformanceModel::predict_ms(const Configuration& config) const {
  if (!fitted())
    throw std::logic_error("AnnPerformanceModel: predict before fit");
  return to_time_ms(ensemble_.predict(encode_features(config)));
}

OutputTransform AnnPerformanceModel::output_transform() const noexcept {
  return OutputTransform{target_scale_, target_mean_, options_.log_targets};
}

ScanRowFiller AnnPerformanceModel::row_filler() const {
  return [this](std::uint64_t lo, std::uint64_t hi, ml::Matrix& x) {
    range_encoder_.fill(lo, hi, x);
  };
}

ScanRowFillerF32 AnnPerformanceModel::row_filler_f32() const {
  return [this](std::uint64_t lo, std::uint64_t hi, std::vector<float>& rows) {
    range_encoder_.fill_f32(lo, hi, rows);
  };
}

// Builds the BatchedScan for a reduced-precision inference mode. The shared
// pointers keep the packed engine alive for the duration of the scan even
// if the cache is concurrently reset.
struct AnnPerformanceModel::ScanEngines {
  std::shared_ptr<const ml::BatchedEnsemble> engine;
  std::shared_ptr<const ml::QuantizedEnsemble> quant;
  BatchedScan batched;
};

AnnPerformanceModel::ScanEngines AnnPerformanceModel::scan_engines() const {
  ScanEngines e;
  if (options_.scan.inference == ScanInference::kBatchedFp32) {
    e.engine = batched_.get(ensemble_);
    e.batched.engine = e.engine.get();
  } else {
    e.quant = batched_.get_quantized(ensemble_,
                                     scan_quant_mode(options_.scan.inference),
                                     range_encoder_.calibration());
    e.batched.quant = e.quant.get();
  }
  e.batched.fill = row_filler_f32();
  return e;
}

std::vector<double> AnnPerformanceModel::predict_range_ms(
    std::uint64_t begin, std::uint64_t end) const {
  if (!fitted())
    throw std::logic_error("AnnPerformanceModel: predict before fit");
  if (options_.scan.inference != ScanInference::kScalarFp64) {
    const ScanEngines e = scan_engines();
    return scan_predict_range(ensemble_, row_filler(), begin, end,
                              output_transform(), options_.scan, &e.batched);
  }
  return scan_predict_range(ensemble_, row_filler(), begin, end,
                            output_transform());
}

TopMScanResult AnnPerformanceModel::predict_scan_top_m(
    std::uint64_t begin, std::uint64_t end, std::size_t m,
    const ScanFilter& filter) const {
  if (!fitted())
    throw std::logic_error("AnnPerformanceModel: predict before fit");
  if (options_.scan.inference != ScanInference::kScalarFp64) {
    const ScanEngines e = scan_engines();
    return scan_top_m(ensemble_, row_filler(), begin, end, m,
                      output_transform(), filter, options_.scan, &e.batched);
  }
  return scan_top_m(ensemble_, row_filler(), begin, end, m,
                    output_transform(), filter);
}

std::vector<double> AnnPerformanceModel::predict_many_ms(
    const std::vector<Configuration>& configs) const {
  if (!fitted())
    throw std::logic_error("AnnPerformanceModel: predict before fit");
  if (configs.empty()) return {};
  ml::Matrix x(configs.size(), space_.dimension_count());
  for (std::size_t i = 0; i < configs.size(); ++i)
    codec_.encode_into(configs[i], x.row(i));
  auto preds = ensemble_.predict_batch(x);
  for (auto& p : preds) p = to_time_ms(p);
  return preds;
}

}  // namespace pt::tuner
