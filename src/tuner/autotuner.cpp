#include "tuner/autotuner.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "common/log.hpp"
#include "common/telemetry/telemetry.hpp"

namespace pt::tuner {

namespace tel = common::telemetry;

namespace {

double host_ms_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Per-status rejection counters ("tuner.rejections.CL_...").
void count_rejections(const RejectionCounts& rejections) {
  if (!tel::enabled()) return;
  for (const auto& [status, n] : rejections.sorted())
    tel::count(std::string("tuner.rejections.") + clsim::to_string(status),
               static_cast<double>(n));
}

}  // namespace

AutoTuner::AutoTuner(AutoTunerOptions options) : options_(std::move(options)) {
  if (options_.training_samples == 0)
    throw std::invalid_argument("AutoTuner: zero training samples");
  if (options_.second_stage_size == 0)
    throw std::invalid_argument("AutoTuner: zero second-stage size");
}

AutoTuneResult AutoTuner::tune(Evaluator& evaluator,
                               const TuneRun& request) const {
  const TunerRunContext& run = request.effective_context(options_.run);
  const RandomSampler default_sampler;
  const Sampler& sampler =
      request.sampler != nullptr ? *request.sampler : default_sampler;
  const std::size_t stream_limit =
      request.stage2_stream_limit.value_or(options_.stage2_stream_limit);
  if (request.rng != nullptr)
    return run_tune(evaluator, sampler, *request.rng, run, stream_limit);
  common::Rng rng = run.make_rng();
  return run_tune(evaluator, sampler, rng, run, stream_limit);
}

AutoTuneResult AutoTuner::tune(Evaluator& evaluator) const {
  return tune(evaluator, TuneRun{});
}

AutoTuneResult AutoTuner::tune(Evaluator& evaluator,
                               const Sampler& sampler) const {
  TuneRun request;
  request.sampler = &sampler;
  return tune(evaluator, request);
}

AutoTuneResult AutoTuner::tune(Evaluator& evaluator, common::Rng& rng) const {
  TuneRun request;
  request.rng = &rng;
  return tune(evaluator, request);
}

AutoTuneResult AutoTuner::tune(Evaluator& evaluator, const Sampler& sampler,
                               common::Rng& rng) const {
  TuneRun request;
  request.sampler = &sampler;
  request.rng = &rng;
  return tune(evaluator, request);
}

AutoTuneResult AutoTuner::run_tune(Evaluator& evaluator, const Sampler& sampler,
                                   common::Rng& rng,
                                   const TunerRunContext& run,
                                   std::size_t stream_limit) const {
  const ScopedRunContext scoped(run);
  StageScope whole(run, "autotuner", "autotuner.tune");

  AutoTuneResult result;
  const ParamSpace& space = evaluator.space();

  // Cache hit/miss deltas: snapshot any CachingEvaluator in the stack now,
  // report the difference when the run ends.
  CachingEvaluator* cache = find_layer<CachingEvaluator>(&evaluator);
  const std::size_t cache_hits_before = cache != nullptr ? cache->hits() : 0;
  const std::size_t cache_misses_before =
      cache != nullptr ? cache->misses() : 0;

  // clstat pre-filter tallies (bumped by scan workers during stage 2).
  StaticPruneCounters static_counters;

  auto finalize = [&] {
    if (cache != nullptr) {
      result.cache_hits = cache->hits() - cache_hits_before;
      result.cache_misses = cache->misses() - cache_misses_before;
      const std::size_t lookups = result.cache_hits + result.cache_misses;
      common::log_info("autotuner[", evaluator.name(), "]: cache ",
                       result.cache_hits, " hits / ", result.cache_misses,
                       " misses (hit rate ",
                       lookups != 0 ? 100.0 * static_cast<double>(
                                                  result.cache_hits) /
                                          static_cast<double>(lookups)
                                    : 0.0,
                       "%)");
      if (tel::enabled() && lookups != 0)
        tel::gauge("tuner.cache.hit_rate",
                   static_cast<double>(result.cache_hits) /
                       static_cast<double>(lookups));
    }
    if (options_.static_checker != nullptr) {
      result.static_checked =
          static_cast<std::size_t>(static_counters.checked.load());
      result.static_pruned =
          static_cast<std::size_t>(static_counters.pruned.load());
      result.static_proved_valid =
          static_cast<std::size_t>(static_counters.proved_valid.load());
      result.static_unknown =
          static_cast<std::size_t>(static_counters.unknown.load());
      common::log_info(
          "autotuner[", evaluator.name(), "]: static filter pruned ",
          result.static_pruned, " of ", result.static_checked,
          " checked (pruned fraction ",
          result.static_checked != 0
              ? 100.0 * static_cast<double>(result.static_pruned) /
                    static_cast<double>(result.static_checked)
              : 0.0,
          "%; verdicts: ", result.static_proved_valid, " proved valid, ",
          result.static_pruned, " proved invalid, ", result.static_unknown,
          " unknown)");
      if (tel::enabled()) {
        tel::count("tuner.scan.static_checked",
                   static_cast<double>(result.static_checked));
        tel::count("tuner.scan.static_pruned",
                   static_cast<double>(result.static_pruned));
        tel::count("tuner.scan.static_proved_valid",
                   static_cast<double>(result.static_proved_valid));
        tel::count("tuner.scan.static_unknown",
                   static_cast<double>(result.static_unknown));
        if (result.static_checked != 0)
          tel::gauge("tuner.scan.static_pruned_fraction",
                     static_cast<double>(result.static_pruned) /
                         static_cast<double>(result.static_checked));
      }
    }
    if (tel::enabled()) {
      tel::count("tuner.stage1.measured",
                 static_cast<double>(result.stage1_measured));
      tel::count("tuner.stage1.valid",
                 static_cast<double>(result.stage1_valid));
      tel::count("tuner.stage2.measured",
                 static_cast<double>(result.stage2_measured));
      tel::count("tuner.stage2.invalid",
                 static_cast<double>(result.stage2_invalid));
      tel::count("tuner.stage2.streamed",
                 static_cast<double>(result.stage2_streamed));
      tel::count("tuner.stage2.filtered",
                 static_cast<double>(result.stage2_filtered));
      tel::count("tuner.measure.attempts",
                 static_cast<double>(result.measure_attempts));
      tel::count("tuner.measure.transient_faults",
                 static_cast<double>(result.transient_faults));
      tel::gauge("tuner.data_gathering_cost_ms",
                 result.data_gathering_cost_ms);
      tel::gauge("tuner.model_training_host_ms",
                 result.model_training_host_ms);
      tel::gauge("tuner.prediction_scan_host_ms",
                 result.prediction_scan_host_ms);
      count_rejections(result.stage1_rejections);
      count_rejections(result.stage2_rejections);
    }
  };

  // --- Stage 1: sample, measure, train. ---
  {
    StageScope stage(run, "autotuner", "autotuner.stage1.measure");
    const auto samples =
        sampler.sample(space, options_.training_samples, rng);
    result.stage1_measured = samples.size();
    for (const auto& config : samples) {
      const Measurement m = evaluator.measure(config);
      result.data_gathering_cost_ms += m.cost_ms;
      result.measure_attempts += m.attempts;
      result.transient_faults += m.transient_faults;
      if (m.valid) {
        result.training_data.push_back({config, m.time_ms});
      } else {
        result.invalid_training_configs.push_back(config);
        result.stage1_rejections.note(m.status);
      }
      if (run.observer != nullptr) {
        run.observer->on_measurement("stage1", config, m);
        run.observer->on_sample("stage1", config, m);
      }
    }
  }
  result.stage1_valid = result.training_data.size();
  common::log_info("autotuner[", evaluator.name(), "]: stage 1 measured ",
                   result.stage1_measured, " configs, ", result.stage1_valid,
                   " valid");
  if (!result.stage1_rejections.empty())
    common::log_info("autotuner[", evaluator.name(),
                     "]: stage 1 rejections: ",
                     result.stage1_rejections.to_string());
  if (result.training_data.empty()) {
    common::log_warn("autotuner[", evaluator.name(),
                     "]: no valid training data (",
                     result.stage1_rejections.to_string(),
                     "); giving no prediction");
    finalize();
    return result;  // success == false
  }

  {
    StageScope stage(run, "autotuner", "autotuner.model.fit");
    const auto start = std::chrono::steady_clock::now();
    AnnPerformanceModel model(options_.model);
    model.fit(space, result.training_data, rng);
    result.model_training_host_ms = host_ms_since(start);
    result.model = std::move(model);
  }
  // Replay per-member training curves in (member, epoch) order — the
  // members trained concurrently, but the stored curves make the observer
  // sequence deterministic.
  if (run.observer != nullptr) {
    const auto& curves = result.model->ensemble().train_results();
    for (std::size_t member = 0; member < curves.size(); ++member) {
      const ml::TrainResult& tr = curves[member];
      for (std::size_t epoch = 0; epoch < tr.train_loss.size(); ++epoch)
        run.observer->on_epoch(member, epoch, tr.train_loss[epoch],
                               tr.monitored_loss[epoch]);
    }
  }

  // Optional validity classifier (future-work extension): learn from the
  // free valid/invalid labels of stage 1.
  if (options_.validity_filter) {
    StageScope stage(run, "autotuner", "autotuner.validity.fit");
    std::vector<Configuration> valid_configs;
    valid_configs.reserve(result.training_data.size());
    for (const auto& sample : result.training_data)
      valid_configs.push_back(sample.config);
    ValidityModel classifier(options_.validity);
    if (options_.static_checker != nullptr &&
        options_.validity_oracle_samples != 0) {
      // Free ground truth: augment the measured labels with analyzer-certain
      // samples before fitting (kUnknown draws are dropped).
      classifier.fit_with_oracle(space, std::move(valid_configs),
                                 result.invalid_training_configs,
                                 *options_.static_checker,
                                 options_.validity_oracle_samples, rng);
    } else {
      classifier.fit(space, valid_configs, result.invalid_training_configs,
                     rng);
    }
    if (classifier.fitted()) result.validity_model = std::move(classifier);
  }

  // --- Stage 2: scan predictions, measure the M most promising. ---
  // The scan streams: a bounded top-M heap per worker instead of a
  // full-space prediction vector, with the validity filter (if any) applied
  // lazily to heap-entering candidates only.
  const auto scan_start = std::chrono::steady_clock::now();
  std::uint64_t scan_end = space.size();
  if (options_.prediction_scan_limit != 0)
    scan_end = std::min<std::uint64_t>(scan_end,
                                       options_.prediction_scan_limit);
  std::vector<ScanCandidate> candidates;
  {
    StageScope stage(run, "autotuner", "autotuner.stage2.scan");
    ScanFilter filter;
    if (result.validity_model) {
      const ValidityModel& validity = *result.validity_model;
      filter = [&space, &validity](std::uint64_t index) {
        return validity.predict_valid(space.decode(index));
      };
    }
    if (options_.static_checker != nullptr)
      filter = make_static_scan_filter(space, *options_.static_checker,
                                       static_counters, std::move(filter));
    const TopMScanResult scan = result.model->predict_scan_top_m(
        0, scan_end, options_.second_stage_size, filter);
    candidates.reserve(options_.second_stage_size);
    for (const auto& c : scan.top) candidates.push_back(c);
    if (result.validity_model) {
      result.stage2_filtered = static_cast<std::size_t>(scan.rejected);
      // If the filter was too aggressive, top up with the best remaining
      // configurations from the unfiltered ranking.
      for (const auto& c : scan.top_unfiltered) {
        if (candidates.size() >= options_.second_stage_size) break;
        if (std::find_if(candidates.begin(), candidates.end(),
                         [&c](const ScanCandidate& have) {
                           return have.index == c.index;
                         }) == candidates.end())
          candidates.push_back(c);
      }
    }
  }
  result.prediction_scan_host_ms = host_ms_since(scan_start);

  double best_time = 0.0;
  bool found = false;
  Configuration best_config;
  auto try_candidate = [&](const ScanCandidate& candidate) {
    if (run.observer != nullptr)
      run.observer->on_candidate(candidate.index, candidate.predicted_ms);
    const Configuration config = space.decode(candidate.index);
    const Measurement m = evaluator.measure(config);
    result.data_gathering_cost_ms += m.cost_ms;
    result.measure_attempts += m.attempts;
    result.transient_faults += m.transient_faults;
    ++result.stage2_measured;
    if (run.observer != nullptr)
      run.observer->on_measurement("stage2", config, m);
    if (!m.valid) {
      ++result.stage2_invalid;
      result.stage2_rejections.note(m.status);
      return;
    }
    if (!found || m.time_ms < best_time) {
      found = true;
      best_time = m.time_ms;
      best_config = config;
    }
  };
  {
    StageScope stage(run, "autotuner", "autotuner.stage2.measure");
    for (const ScanCandidate& candidate : candidates) try_candidate(candidate);
  }

  if (!found && stream_limit > result.stage2_measured) {
    // Graceful degradation: every primary candidate failed, so instead of
    // giving no prediction, walk further down the predicted ranking
    // (unfiltered — in this situation the validity filter is as suspect as
    // the candidates it passed) until something measures valid, the limit
    // is reached, or the scanned range is exhausted.
    StageScope stage(run, "autotuner", "autotuner.stage2.stream");
    common::log_warn("autotuner[", evaluator.name(), "]: all ",
                     result.stage2_measured,
                     " primary second-stage configurations invalid (",
                     result.stage2_rejections.to_string(),
                     "); streaming further candidates");
    std::unordered_set<std::uint64_t> tried;
    for (const ScanCandidate& candidate : candidates)
      tried.insert(candidate.index);
    std::uint64_t request = candidates.size();
    while (!found && result.stage2_measured < stream_limit &&
           tried.size() < scan_end) {
      request = std::min<std::uint64_t>(
          scan_end, std::max<std::uint64_t>(request * 2, 16));
      const TopMScanResult more = result.model->predict_scan_top_m(
          0, scan_end, static_cast<std::size_t>(request));
      for (const auto& c : more.top) {
        if (found || result.stage2_measured >= stream_limit)
          break;
        if (!tried.insert(c.index).second) continue;
        ++result.stage2_streamed;
        try_candidate(c);
      }
      if (request >= scan_end) break;  // ranking fully consumed
    }
    if (found)
      common::log_info("autotuner[", evaluator.name(),
                       "]: degradation stream recovered a prediction after ",
                       result.stage2_streamed, " extra candidates");
  }

  if (!found) {
    common::log_warn("autotuner[", evaluator.name(),
                     "]: all ", result.stage2_measured,
                     " second-stage configurations invalid (",
                     result.stage2_rejections.to_string(),
                     "); no prediction");
    finalize();
    return result;  // success == false, model retained for inspection
  }
  result.success = true;
  result.best_config = std::move(best_config);
  result.best_time_ms = best_time;
  common::log_info("autotuner[", evaluator.name(), "]: best ",
                   space.to_string(result.best_config), " = ",
                   result.best_time_ms, " ms");
  finalize();
  return result;
}

}  // namespace pt::tuner
