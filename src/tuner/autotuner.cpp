#include "tuner/autotuner.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_set>

#include "common/log.hpp"

namespace pt::tuner {

namespace {

double host_ms_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

AutoTuner::AutoTuner(AutoTunerOptions options) : options_(std::move(options)) {
  if (options_.training_samples == 0)
    throw std::invalid_argument("AutoTuner: zero training samples");
  if (options_.second_stage_size == 0)
    throw std::invalid_argument("AutoTuner: zero second-stage size");
}

AutoTuneResult AutoTuner::tune(Evaluator& evaluator, common::Rng& rng) const {
  const RandomSampler sampler;
  return tune(evaluator, sampler, rng);
}

AutoTuneResult AutoTuner::tune(Evaluator& evaluator, const Sampler& sampler,
                               common::Rng& rng) const {
  AutoTuneResult result;
  const ParamSpace& space = evaluator.space();

  // --- Stage 1: sample, measure, train. ---
  const auto samples =
      sampler.sample(space, options_.training_samples, rng);
  result.stage1_measured = samples.size();
  for (const auto& config : samples) {
    const Measurement m = evaluator.measure(config);
    result.data_gathering_cost_ms += m.cost_ms;
    result.measure_attempts += m.attempts;
    result.transient_faults += m.transient_faults;
    if (m.valid) {
      result.training_data.push_back({config, m.time_ms});
    } else {
      result.invalid_training_configs.push_back(config);
      result.stage1_rejections.note(m.status);
    }
  }
  result.stage1_valid = result.training_data.size();
  common::log_info("autotuner[", evaluator.name(), "]: stage 1 measured ",
                   result.stage1_measured, " configs, ", result.stage1_valid,
                   " valid");
  if (!result.stage1_rejections.empty())
    common::log_info("autotuner[", evaluator.name(),
                     "]: stage 1 rejections: ",
                     result.stage1_rejections.to_string());
  if (result.training_data.empty()) {
    common::log_warn("autotuner[", evaluator.name(),
                     "]: no valid training data (",
                     result.stage1_rejections.to_string(),
                     "); giving no prediction");
    return result;  // success == false
  }

  {
    const auto start = std::chrono::steady_clock::now();
    AnnPerformanceModel model(options_.model);
    model.fit(space, result.training_data, rng);
    result.model_training_host_ms = host_ms_since(start);
    result.model = std::move(model);
  }

  // Optional validity classifier (future-work extension): learn from the
  // free valid/invalid labels of stage 1.
  if (options_.validity_filter) {
    std::vector<Configuration> valid_configs;
    valid_configs.reserve(result.training_data.size());
    for (const auto& sample : result.training_data)
      valid_configs.push_back(sample.config);
    ValidityModel classifier(options_.validity);
    classifier.fit(space, valid_configs, result.invalid_training_configs,
                   rng);
    if (classifier.fitted()) result.validity_model = std::move(classifier);
  }

  // --- Stage 2: scan predictions, measure the M most promising. ---
  // The scan streams: a bounded top-M heap per worker instead of a
  // full-space prediction vector, with the validity filter (if any) applied
  // lazily to heap-entering candidates only.
  const auto scan_start = std::chrono::steady_clock::now();
  std::uint64_t scan_end = space.size();
  if (options_.prediction_scan_limit != 0)
    scan_end = std::min<std::uint64_t>(scan_end,
                                       options_.prediction_scan_limit);
  ScanFilter filter;
  if (result.validity_model) {
    const ValidityModel& validity = *result.validity_model;
    filter = [&space, &validity](std::uint64_t index) {
      return validity.predict_valid(space.decode(index));
    };
  }
  const TopMScanResult scan = result.model->predict_scan_top_m(
      0, scan_end, options_.second_stage_size, filter);
  std::vector<std::uint64_t> candidates;
  candidates.reserve(options_.second_stage_size);
  for (const auto& c : scan.top) candidates.push_back(c.index);
  if (result.validity_model) {
    result.stage2_filtered = static_cast<std::size_t>(scan.rejected);
    // If the filter was too aggressive, top up with the best remaining
    // configurations from the unfiltered ranking.
    for (const auto& c : scan.top_unfiltered) {
      if (candidates.size() >= options_.second_stage_size) break;
      if (std::find(candidates.begin(), candidates.end(), c.index) ==
          candidates.end())
        candidates.push_back(c.index);
    }
  }
  result.prediction_scan_host_ms = host_ms_since(scan_start);

  double best_time = 0.0;
  bool found = false;
  Configuration best_config;
  auto try_candidate = [&](std::uint64_t index) {
    const Configuration config = space.decode(index);
    const Measurement m = evaluator.measure(config);
    result.data_gathering_cost_ms += m.cost_ms;
    result.measure_attempts += m.attempts;
    result.transient_faults += m.transient_faults;
    ++result.stage2_measured;
    if (!m.valid) {
      ++result.stage2_invalid;
      result.stage2_rejections.note(m.status);
      return;
    }
    if (!found || m.time_ms < best_time) {
      found = true;
      best_time = m.time_ms;
      best_config = config;
    }
  };
  for (const std::uint64_t index : candidates) try_candidate(index);

  if (!found && options_.stage2_stream_limit > result.stage2_measured) {
    // Graceful degradation: every primary candidate failed, so instead of
    // giving no prediction, walk further down the predicted ranking
    // (unfiltered — in this situation the validity filter is as suspect as
    // the candidates it passed) until something measures valid, the limit
    // is reached, or the scanned range is exhausted.
    common::log_warn("autotuner[", evaluator.name(), "]: all ",
                     result.stage2_measured,
                     " primary second-stage configurations invalid (",
                     result.stage2_rejections.to_string(),
                     "); streaming further candidates");
    std::unordered_set<std::uint64_t> tried(candidates.begin(),
                                            candidates.end());
    std::uint64_t request = candidates.size();
    while (!found && result.stage2_measured < options_.stage2_stream_limit &&
           tried.size() < scan_end) {
      request = std::min<std::uint64_t>(
          scan_end, std::max<std::uint64_t>(request * 2, 16));
      const TopMScanResult more = result.model->predict_scan_top_m(
          0, scan_end, static_cast<std::size_t>(request));
      for (const auto& c : more.top) {
        if (found || result.stage2_measured >= options_.stage2_stream_limit)
          break;
        if (!tried.insert(c.index).second) continue;
        ++result.stage2_streamed;
        try_candidate(c.index);
      }
      if (request >= scan_end) break;  // ranking fully consumed
    }
    if (found)
      common::log_info("autotuner[", evaluator.name(),
                       "]: degradation stream recovered a prediction after ",
                       result.stage2_streamed, " extra candidates");
  }

  if (!found) {
    common::log_warn("autotuner[", evaluator.name(),
                     "]: all ", result.stage2_measured,
                     " second-stage configurations invalid (",
                     result.stage2_rejections.to_string(),
                     "); no prediction");
    return result;  // success == false, model retained for inspection
  }
  result.success = true;
  result.best_config = std::move(best_config);
  result.best_time_ms = best_time;
  common::log_info("autotuner[", evaluator.name(), "]: best ",
                   space.to_string(result.best_config), " = ",
                   result.best_time_ms, " ms");
  return result;
}

}  // namespace pt::tuner
