#pragma once

// The paper's two-stage auto-tuner (section 5, Figure 3):
//
//   Stage 1: measure N randomly sampled configurations; train the ANN model
//            on the valid ones (invalid configurations are ignored, but
//            their cost is still charged — failed compiles/launches waste
//            real time, section 6).
//   Stage 2: predict the time of every configuration in the space, take the
//            M with the lowest predictions, measure them, return the best.
//
// If every second-stage candidate is invalid, the tuner "gives no
// prediction" — exactly the failure mode the paper reports for stereo on
// the GPUs (section 6, Fig 14) — reported here as success == false.

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "tuner/evaluator.hpp"
#include "tuner/model.hpp"
#include "tuner/observer.hpp"
#include "tuner/options.hpp"
#include "tuner/sampler.hpp"
#include "tuner/validity.hpp"

namespace pt::tuner {

/// The shared fields (model, static_checker, run) live in TunerOptions;
/// their names are unchanged (`options.model`, `options.run`, ...).
struct AutoTunerOptions : TunerOptions {
  std::size_t training_samples = 2000;  // N, stage-1 sample count
  std::size_t second_stage_size = 100;  // M, stage-2 candidate count
  /// Optional guard for enormous spaces: scan at most this many predictions
  /// in stage 2 (0 = scan the whole space, the paper's behaviour).
  std::uint64_t prediction_scan_limit = 0;
  /// Extension (the paper's future work): train a validity classifier on
  /// stage 1's valid/invalid labels and exclude predicted-invalid
  /// configurations from the second stage.
  bool validity_filter = false;
  ValidityModel::Options validity{};
  /// The inherited static_checker skips configurations the analyzer proves
  /// invalid before they enter the stage-2 prediction scan's top-M heap.
  /// Sound pruning only removes configurations that would measure invalid,
  /// so it never changes which valid configuration wins — it just avoids
  /// wasting candidate slots and measurements on proven rejects.
  /// With validity_filter and static_checker set: augment the classifier's
  /// training set with this many analyzer-certain labels (free — zero
  /// launches) via ValidityModel::fit_with_oracle. Draws from the run RNG,
  /// so enabling it changes downstream sampling streams.
  std::size_t validity_oracle_samples = 0;
  /// Graceful degradation: when every one of the M second-stage candidates
  /// fails or comes back invalid, keep streaming further candidates from
  /// the prediction ranking (in predicted order, unfiltered) until a valid
  /// one is found, up to this many total stage-2 measurements. 0 disables
  /// streaming — the paper's behaviour, "no prediction" — and is the
  /// default so results are bit-identical to the streaming-free tuner
  /// unless a caller opts in. Set it to at least the space size to
  /// guarantee a prediction whenever any valid configuration exists in the
  /// scanned range. A TuneRun may override it per request.
  std::size_t stage2_stream_limit = 0;
};

struct AutoTuneResult {
  /// False when every stage-2 candidate was invalid (no prediction).
  bool success = false;
  Configuration best_config;
  double best_time_ms = 0.0;

  // Bookkeeping.
  std::size_t stage1_measured = 0;
  std::size_t stage1_valid = 0;
  std::size_t stage2_measured = 0;
  std::size_t stage2_invalid = 0;
  /// Stage-2 candidates measured beyond the initial M by the graceful
  /// degradation stream (0 unless stage2_stream_limit kicked in).
  std::size_t stage2_streamed = 0;
  /// Raw evaluator attempts behind all measurements — equals
  /// stage1_measured + stage2_measured unless a robustness decorator
  /// (tuner/robust.hpp) repeated or retried measurements downstream.
  std::size_t measure_attempts = 0;
  /// Transient failures absorbed by downstream retry decorators.
  std::size_t transient_faults = 0;
  /// Why stage-1 / stage-2 measurements were rejected, by status — keeps
  /// "all candidates invalid" diagnosable instead of a bare count.
  RejectionCounts stage1_rejections;
  RejectionCounts stage2_rejections;
  /// Simulated wall cost of all measurements (compile + run + failures).
  double data_gathering_cost_ms = 0.0;
  /// Host wall time spent training the ensemble.
  double model_training_host_ms = 0.0;
  /// Host wall time spent scanning predictions.
  double prediction_scan_host_ms = 0.0;

  /// The fitted model (valid whenever stage 1 yielded any valid sample).
  std::optional<AnnPerformanceModel> model;
  /// Stage-1 valid training data (for inspection and reuse).
  std::vector<TrainingSample> training_data;
  /// Stage-1 configurations the device rejected (the validity labels).
  std::vector<Configuration> invalid_training_configs;
  /// Fitted validity classifier (only with options.validity_filter and
  /// both classes observed in stage 1).
  std::optional<ValidityModel> validity_model;
  /// Candidates the validity filter rejected during the prediction scan.
  /// Counted lazily: only configurations good enough to enter a scan
  /// chunk's bounded top-M heap are ever tested, so this is a lower bound
  /// on the number of predicted-invalid configurations in the space.
  std::size_t stage2_filtered = 0;
  /// clstat static pre-filter tallies (all zero unless options.static_checker
  /// was set). Queries happen lazily at scan heap entry, so static_checked
  /// is a lower bound on the provable configurations in the space; the
  /// verdict mix always sums to static_checked.
  std::size_t static_checked = 0;
  std::size_t static_pruned = 0;        // kProvedInvalid, skipped
  std::size_t static_proved_valid = 0;  // kProvedValid, kept
  std::size_t static_unknown = 0;       // kUnknown, kept
  /// Cache hit/miss deltas over this run, when a CachingEvaluator is found
  /// anywhere in the evaluator stack (see find_layer); 0/0 otherwise.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

class AutoTuner {
 public:
  AutoTuner() : AutoTuner(AutoTunerOptions{}) {}
  explicit AutoTuner(AutoTunerOptions options);

  [[nodiscard]] const AutoTunerOptions& options() const noexcept {
    return options_;
  }

  /// Canonical entry point: run both stages against the evaluator as the
  /// request describes. A default-constructed TuneRun reproduces
  /// `tune(evaluator)` exactly — context (and so the seed) from
  /// options().run, the paper's uniform random sampler, the options'
  /// degradation knobs. All other overloads are thin shims over this one
  /// and bit-identical to the requests they construct.
  [[nodiscard]] AutoTuneResult tune(Evaluator& evaluator,
                                    const TuneRun& request) const;

  /// Shims (the pre-TuneRun API). The rng-taking forms are for callers
  /// that thread their own generator; they ignore run.seed but honour the
  /// rest of the context.
  [[nodiscard]] AutoTuneResult tune(Evaluator& evaluator) const;
  [[nodiscard]] AutoTuneResult tune(Evaluator& evaluator,
                                    const Sampler& sampler) const;
  [[nodiscard]] AutoTuneResult tune(Evaluator& evaluator,
                                    common::Rng& rng) const;
  [[nodiscard]] AutoTuneResult tune(Evaluator& evaluator, const Sampler& sampler,
                                    common::Rng& rng) const;

 private:
  [[nodiscard]] AutoTuneResult run_tune(Evaluator& evaluator,
                                        const Sampler& sampler,
                                        common::Rng& rng,
                                        const TunerRunContext& run,
                                        std::size_t stream_limit) const;

  AutoTunerOptions options_;
};

}  // namespace pt::tuner
