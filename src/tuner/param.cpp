#include "tuner/param.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pt::tuner {

void ParamSpace::add(const std::string& name, std::vector<int> values) {
  if (values.empty())
    throw std::invalid_argument("ParamSpace::add: empty value list for " +
                                name);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end())
    throw std::invalid_argument("ParamSpace::add: duplicate values for " +
                                name);
  for (const auto& p : params_)
    if (p.name == name)
      throw std::invalid_argument("ParamSpace::add: duplicate parameter " +
                                  name);
  params_.push_back(TuningParameter{name, std::move(values)});
}

std::size_t ParamSpace::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < params_.size(); ++i)
    if (params_[i].name == name) return i;
  throw std::out_of_range("ParamSpace: no parameter named " + name);
}

std::uint64_t ParamSpace::size() const noexcept {
  if (params_.empty()) return 0;
  std::uint64_t n = 1;
  for (const auto& p : params_) n *= p.values.size();
  return n;
}

Configuration ParamSpace::decode(std::uint64_t index) const {
  if (index >= size()) throw std::out_of_range("ParamSpace::decode");
  Configuration config;
  config.values.reserve(params_.size());
  for (const auto& p : params_) {
    const std::uint64_t radix = p.values.size();
    config.values.push_back(p.values[static_cast<std::size_t>(index % radix)]);
    index /= radix;
  }
  return config;
}

std::uint64_t ParamSpace::encode(const Configuration& config) const {
  if (config.values.size() != params_.size())
    throw std::invalid_argument("ParamSpace::encode: dimension mismatch");
  std::uint64_t index = 0;
  std::uint64_t stride = 1;
  for (std::size_t d = 0; d < params_.size(); ++d) {
    const auto& values = params_[d].values;
    const auto it =
        std::find(values.begin(), values.end(), config.values[d]);
    if (it == values.end())
      throw std::invalid_argument("ParamSpace::encode: value " +
                                  std::to_string(config.values[d]) +
                                  " not allowed for " + params_[d].name);
    index += stride *
             static_cast<std::uint64_t>(std::distance(values.begin(), it));
    stride *= values.size();
  }
  return index;
}

bool ParamSpace::contains(const Configuration& config) const noexcept {
  if (config.values.size() != params_.size()) return false;
  for (std::size_t d = 0; d < params_.size(); ++d) {
    const auto& values = params_[d].values;
    if (std::find(values.begin(), values.end(), config.values[d]) ==
        values.end())
      return false;
  }
  return true;
}

int ParamSpace::value_of(const Configuration& config,
                         const std::string& name) const {
  return config.values.at(index_of(name));
}

Configuration ParamSpace::random(common::Rng& rng) const {
  Configuration config;
  config.values.reserve(params_.size());
  for (const auto& p : params_) {
    config.values.push_back(
        p.values[static_cast<std::size_t>(rng.below(p.values.size()))]);
  }
  return config;
}

std::vector<Configuration> ParamSpace::neighbours(
    const Configuration& config) const {
  std::vector<Configuration> out;
  for (std::size_t d = 0; d < params_.size(); ++d) {
    const auto& values = params_[d].values;
    const auto it =
        std::find(values.begin(), values.end(), config.values[d]);
    if (it == values.end())
      throw std::invalid_argument("ParamSpace::neighbours: foreign config");
    const auto pos = static_cast<std::size_t>(std::distance(values.begin(), it));
    if (pos > 0) {
      Configuration n = config;
      n.values[d] = values[pos - 1];
      out.push_back(std::move(n));
    }
    if (pos + 1 < values.size()) {
      Configuration n = config;
      n.values[d] = values[pos + 1];
      out.push_back(std::move(n));
    }
  }
  return out;
}

std::string ParamSpace::to_string(const Configuration& config) const {
  std::ostringstream ss;
  ss << '(';
  for (std::size_t d = 0; d < config.values.size(); ++d) {
    if (d) ss << ", ";
    ss << config.values[d];
  }
  ss << ')';
  return ss.str();
}

}  // namespace pt::tuner
