#pragma once

// Validity classifier — the "better scheme to deal with invalid
// configurations" the paper leaves as future work (sections 7 and 8).
//
// The baseline tuner simply ignores invalid configurations during training,
// so the performance model extrapolates blithely into invalid regions and
// can fill the entire second stage with configurations the driver rejects
// ("the auto-tuner gives no prediction at all" — observed for stereo on the
// GPUs). This classifier learns P(valid | configuration) from the *same*
// stage-1 measurements (the invalid ones are free labels) and filters the
// second-stage candidates.

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/scaler.hpp"

#include "clsim/analyze/checker.hpp"
#include "common/rng.hpp"
#include "ml/mlp.hpp"
#include "tuner/features.hpp"
#include "tuner/param.hpp"

namespace pt::tuner {

class ValidityModel {
 public:
  struct Options {
    std::size_t hidden_units = 16;
    std::size_t max_epochs = 400;
    /// Configurations scoring below this are filtered out of stage 2.
    double threshold = 0.5;
    FeatureEncoding encoding = FeatureEncoding::kLog2;
  };

  ValidityModel() : ValidityModel(Options{}) {}
  explicit ValidityModel(Options options) : options_(options) {}

  /// Train on labelled configurations. Requires at least one example of
  /// each class; with a single-class sample the model stays unfitted (and
  /// score() reports everything valid — a no-op filter).
  void fit(const ParamSpace& space, const std::vector<Configuration>& valid,
           const std::vector<Configuration>& invalid, common::Rng& rng);

  /// fit() after augmenting the labelled sets with free clstat samples:
  /// draws `oracle_samples` uniform configurations, asks the analyzer, and
  /// appends kProvedValid / kProvedInvalid points to the respective class.
  /// kUnknown points are dropped — the classifier only trains on
  /// analyzer-certain labels, which cost zero launches (the measured labels
  /// passed in keep covering whatever the analyzer cannot decide).
  void fit_with_oracle(const ParamSpace& space,
                       std::vector<Configuration> valid,
                       std::vector<Configuration> invalid,
                       const clsim::analyze::StaticChecker& checker,
                       std::size_t oracle_samples, common::Rng& rng);

  [[nodiscard]] bool fitted() const noexcept { return net_ != nullptr; }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// P(valid)-like score in [0, 1]; 1.0 when unfitted.
  [[nodiscard]] double score(const Configuration& config) const;

  /// Classification at the configured threshold; true when unfitted.
  [[nodiscard]] bool predict_valid(const Configuration& config) const {
    return score(config) >= options_.threshold;
  }

  /// Confusion counts of a labelled set ("valid" is the positive class).
  struct Confusion {
    std::size_t true_positive = 0;   // valid, predicted valid
    std::size_t false_positive = 0;  // invalid, predicted valid
    std::size_t false_negative = 0;  // valid, predicted invalid
    std::size_t true_negative = 0;   // invalid, predicted invalid

    [[nodiscard]] std::size_t total() const noexcept {
      return true_positive + false_positive + false_negative + true_negative;
    }
    [[nodiscard]] double accuracy() const noexcept {
      const std::size_t n = total();
      return n == 0 ? 0.0
                    : static_cast<double>(true_positive + true_negative) /
                          static_cast<double>(n);
    }
  };

  /// Classify a labelled set and tally the confusion matrix.
  [[nodiscard]] Confusion confusion(
      const std::vector<Configuration>& valid,
      const std::vector<Configuration>& invalid) const;

  /// Fraction of a labelled set classified correctly (for evaluation).
  [[nodiscard]] double accuracy(const ParamSpace& space,
                                const std::vector<Configuration>& valid,
                                const std::vector<Configuration>& invalid) const;

 private:
  Options options_;
  ParamSpace space_;
  FeatureCodec codec_;
  ml::StandardScaler scaler_;
  std::unique_ptr<ml::Mlp> net_;
};

}  // namespace pt::tuner
