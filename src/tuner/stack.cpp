#include "tuner/stack.hpp"

namespace pt::tuner {

void EvaluatorStack::push(std::unique_ptr<Evaluator> layer,
                          std::string label) {
  layers_.push_back(std::move(layer));
  labels_.push_back(std::move(label));
}

EvaluatorStack& EvaluatorStack::cached() & {
  push(std::make_unique<CachingEvaluator>(top()), "cached");
  return *this;
}

EvaluatorStack& EvaluatorStack::counting() & {
  push(std::make_unique<CountingEvaluator>(top()), "counting");
  return *this;
}

EvaluatorStack& EvaluatorStack::robust(RobustEvaluator::Options options) & {
  push(std::make_unique<RobustEvaluator>(top(), options), "robust");
  return *this;
}

EvaluatorStack& EvaluatorStack::noisy(NoisyEvaluator::Options options) & {
  push(std::make_unique<NoisyEvaluator>(top(), options), "noisy");
  return *this;
}

EvaluatorStack& EvaluatorStack::fault_injecting(
    FaultInjectingEvaluator::Options options) & {
  push(std::make_unique<FaultInjectingEvaluator>(top(), options),
       "fault_injecting");
  return *this;
}

std::string EvaluatorStack::description() const {
  std::string out;
  for (auto it = labels_.rbegin(); it != labels_.rend(); ++it) {
    out += *it;
    out += " -> ";
  }
  out += base_->name();
  return out;
}

}  // namespace pt::tuner
