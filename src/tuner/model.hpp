#pragma once

// ANN-based performance model (paper section 5.2): maps a tuning
// configuration to a predicted execution time via a bagging ensemble of
// sigmoid MLPs trained on the logarithm of measured times.
//
// Feature encoding: the paper feeds parameter values directly. Power-of-two
// parameters (work-group sizes 1..128) are extremely skewed on a linear
// scale, so by default such dimensions are fed as log2(value) — an
// information-preserving reparameterization (the exponent *is* the natural
// coordinate of those knobs). kRaw reproduces the paper's literal encoding;
// the ablation bench compares both.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "ml/batched.hpp"
#include "ml/ensemble.hpp"
#include "tuner/features.hpp"
#include "tuner/param.hpp"
#include "tuner/scan.hpp"

namespace pt::tuner {

/// One labelled observation for model fitting.
struct TrainingSample {
  Configuration config;
  double time_ms = 0.0;
};

class AnnPerformanceModel {
 public:
  struct Options {
    ml::BaggingEnsemble::Options ensemble{};
    /// Train on log(time) so squared error means relative error (paper 5.2).
    bool log_targets = true;
    FeatureEncoding encoding = FeatureEncoding::kLog2;
    /// Scan engine knobs; scan.inference = kBatchedFp32 opts the bulk
    /// prediction paths into the SIMD engine (top-m results stay identical
    /// to the fp64 reference, see tuner/scan.hpp).
    ScanOptions scan{};
  };

  AnnPerformanceModel() : AnnPerformanceModel(Options{}) {}
  explicit AnnPerformanceModel(Options options);

  /// Fit on (configuration, time) pairs from the given space. All samples
  /// must be valid (invalid configurations are ignored upstream, as in the
  /// paper). Throws std::invalid_argument on an empty sample set.
  void fit(const ParamSpace& space, const std::vector<TrainingSample>& samples,
           common::Rng& rng);

  [[nodiscard]] bool fitted() const noexcept { return ensemble_.fitted(); }
  [[nodiscard]] const Options& options() const noexcept { return options_; }
  /// Switch scan inference paths on a fitted model (e.g. benches comparing
  /// fp64 vs batched fp32 on the same ensemble).
  void set_scan_options(const ScanOptions& scan) noexcept {
    options_.scan = scan;
  }
  [[nodiscard]] const ScanOptions& scan_options() const noexcept {
    return options_.scan;
  }
  [[nodiscard]] const ml::BaggingEnsemble& ensemble() const noexcept {
    return ensemble_;
  }

  /// Predicted execution time (ms) for one configuration.
  [[nodiscard]] double predict_ms(const Configuration& config) const;

  /// Predicted times for a contiguous flat-index range [begin, end) of the
  /// space — the bulk path used to scan entire configuration spaces.
  /// Chunks of kScanChunkRows rows are dispatched on the global thread pool;
  /// results are bit-identical for every pool size.
  [[nodiscard]] std::vector<double> predict_range_ms(std::uint64_t begin,
                                                     std::uint64_t end) const;

  /// Streaming top-m selection over [begin, end): the m configurations with
  /// the lowest predicted time (ascending), found in O(n log m) time and
  /// O(workers * m) memory — no full prediction vector. The optional filter
  /// (e.g. a validity model; must be thread-safe) is applied during the
  /// scan, lazily, and the result also carries the unfiltered top-m so
  /// callers can top up after heavy filtering.
  [[nodiscard]] TopMScanResult predict_scan_top_m(
      std::uint64_t begin, std::uint64_t end, std::size_t m,
      const ScanFilter& filter = {}) const;

  /// Predicted times for an explicit list of configurations.
  [[nodiscard]] std::vector<double> predict_many_ms(
      const std::vector<Configuration>& configs) const;

  /// The feature vector used for a configuration (exposed for tests).
  [[nodiscard]] std::vector<double> encode_features(
      const Configuration& config) const;

  /// The space the model was fitted on (empty before fit).
  [[nodiscard]] const ParamSpace& space() const noexcept { return space_; }
  /// Target standardization parameters (see persist.hpp).
  [[nodiscard]] double target_mean() const noexcept { return target_mean_; }
  [[nodiscard]] double target_scale() const noexcept { return target_scale_; }

  /// Rebuild a fitted model from persisted state (see tuner/persist.hpp).
  [[nodiscard]] static AnnPerformanceModel restore(Options options,
                                                   ParamSpace space,
                                                   double target_mean,
                                                   double target_scale,
                                                   ml::BaggingEnsemble ensemble);

 private:
  [[nodiscard]] double to_time_ms(double network_output) const noexcept;
  /// Scan-engine adapters: the transform equivalent to to_time_ms and
  /// fillers that encode a flat-index range into feature rows (via the
  /// precomputed RangeEncoder — no per-row decode allocation).
  [[nodiscard]] OutputTransform output_transform() const noexcept;
  [[nodiscard]] ScanRowFiller row_filler() const;
  [[nodiscard]] ScanRowFillerF32 row_filler_f32() const;
  struct ScanEngines;
  [[nodiscard]] ScanEngines scan_engines() const;

  Options options_;
  ParamSpace space_;
  FeatureCodec codec_;
  RangeEncoder range_encoder_;
  // Targets are standardized (zero mean, unit variance, after the optional
  // log transform) before training: the network then starts near the right
  // output scale and Rprop converges in far fewer epochs.
  double target_mean_ = 0.0;
  double target_scale_ = 1.0;
  ml::BaggingEnsemble ensemble_;
  // Packed reduced-precision engines (fp32 + quantized tiers), built lazily
  // on the first scan in each mode and dropped whenever the ensemble
  // changes (fit/restore).
  ml::BatchedEnsembleCache batched_;
};

}  // namespace pt::tuner
