#include "tuner/validity.hpp"

#include <algorithm>

#include "ml/dataset.hpp"
#include "ml/scaler.hpp"
#include "ml/trainer.hpp"

namespace pt::tuner {

void ValidityModel::fit(const ParamSpace& space,
                        const std::vector<Configuration>& valid,
                        const std::vector<Configuration>& invalid,
                        common::Rng& rng) {
  net_.reset();
  if (valid.empty() || invalid.empty()) return;  // single class: no filter
  space_ = space;
  codec_ = FeatureCodec::build(space, options_.encoding);

  ml::Dataset data;
  const std::size_t n = valid.size() + invalid.size();
  data.x = ml::Matrix(n, space.dimension_count());
  data.y = ml::Matrix(n, 1);
  std::size_t row = 0;
  for (const auto& config : valid) {
    codec_.encode_into(config, data.x.row(row));
    data.y(row, 0) = 1.0;
    ++row;
  }
  for (const auto& config : invalid) {
    codec_.encode_into(config, data.x.row(row));
    data.y(row, 0) = 0.0;
    ++row;
  }

  scaler_ = ml::StandardScaler();
  scaler_.fit(data.x);
  scaler_.transform_inplace(data.x);

  auto net = std::make_unique<ml::Mlp>(
      space.dimension_count(),
      std::vector<ml::LayerSpec>{
          {options_.hidden_units, ml::Activation::kSigmoid},
          {1, ml::Activation::kSigmoid}});  // sigmoid output: a score in [0,1]
  net->init_weights(rng);
  ml::RpropTrainer::Options topt;
  topt.common.max_epochs = options_.max_epochs;
  topt.common.patience = options_.max_epochs / 8;
  ml::RpropTrainer(topt).train(*net, data, rng);
  net_ = std::move(net);
}

void ValidityModel::fit_with_oracle(const ParamSpace& space,
                                    std::vector<Configuration> valid,
                                    std::vector<Configuration> invalid,
                                    const clsim::analyze::StaticChecker& checker,
                                    std::size_t oracle_samples,
                                    common::Rng& rng) {
  const std::uint64_t total = space.size();
  for (std::size_t i = 0; i < oracle_samples && total != 0; ++i) {
    Configuration config = space.decode(rng.below(total));
    const clsim::analyze::ConfigVerdict verdict =
        checker.check(std::span<const int>(config.values));
    switch (verdict.verdict) {
      case clsim::analyze::Verdict::kProvedValid:
        valid.push_back(std::move(config));
        break;
      case clsim::analyze::Verdict::kProvedInvalid:
        invalid.push_back(std::move(config));
        break;
      case clsim::analyze::Verdict::kUnknown:
        break;  // uncertain: not a training label
    }
  }
  fit(space, valid, invalid, rng);
}

double ValidityModel::score(const Configuration& config) const {
  if (!fitted()) return 1.0;
  std::vector<double> features(codec_.width());
  codec_.encode_into(config, features);
  scaler_.transform_row(features);
  return net_->forward(features)[0];
}

namespace {

/// Batch-score a labelled set: one encode_into per row, one scaler pass and
/// one batched forward instead of a per-configuration allocating loop.
std::vector<double> batch_scores(const FeatureCodec& codec,
                                 const ml::StandardScaler& scaler,
                                 const ml::Mlp& net,
                                 const std::vector<Configuration>& configs) {
  ml::Matrix x(configs.size(), codec.width());
  for (std::size_t i = 0; i < configs.size(); ++i)
    codec.encode_into(configs[i], x.row(i));
  scaler.transform_inplace(x);
  const ml::Matrix y = net.forward_batch(x);
  std::vector<double> out(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) out[i] = y(i, 0);
  return out;
}

}  // namespace

ValidityModel::Confusion ValidityModel::confusion(
    const std::vector<Configuration>& valid,
    const std::vector<Configuration>& invalid) const {
  Confusion c;
  if (!fitted()) {
    c.true_positive = valid.size();
    c.false_positive = invalid.size();
    return c;
  }
  const auto valid_scores = batch_scores(codec_, scaler_, *net_, valid);
  for (const double s : valid_scores) {
    if (s >= options_.threshold)
      ++c.true_positive;
    else
      ++c.false_negative;
  }
  const auto invalid_scores = batch_scores(codec_, scaler_, *net_, invalid);
  for (const double s : invalid_scores) {
    if (s >= options_.threshold)
      ++c.false_positive;
    else
      ++c.true_negative;
  }
  return c;
}

double ValidityModel::accuracy(
    const ParamSpace& space, const std::vector<Configuration>& valid,
    const std::vector<Configuration>& invalid) const {
  (void)space;
  return confusion(valid, invalid).accuracy();
}

}  // namespace pt::tuner
