#include "tuner/validity.hpp"

#include <algorithm>

#include "ml/dataset.hpp"
#include "ml/scaler.hpp"
#include "ml/trainer.hpp"

namespace pt::tuner {

void ValidityModel::fit(const ParamSpace& space,
                        const std::vector<Configuration>& valid,
                        const std::vector<Configuration>& invalid,
                        common::Rng& rng) {
  net_.reset();
  if (valid.empty() || invalid.empty()) return;  // single class: no filter
  space_ = space;
  codec_ = FeatureCodec::build(space, options_.encoding);

  ml::Dataset data;
  const std::size_t n = valid.size() + invalid.size();
  data.x = ml::Matrix(n, space.dimension_count());
  data.y = ml::Matrix(n, 1);
  std::size_t row = 0;
  for (const auto& config : valid) {
    codec_.encode_into(config, data.x.row(row));
    data.y(row, 0) = 1.0;
    ++row;
  }
  for (const auto& config : invalid) {
    codec_.encode_into(config, data.x.row(row));
    data.y(row, 0) = 0.0;
    ++row;
  }

  scaler_ = ml::StandardScaler();
  scaler_.fit(data.x);
  scaler_.transform_inplace(data.x);

  auto net = std::make_unique<ml::Mlp>(
      space.dimension_count(),
      std::vector<ml::LayerSpec>{
          {options_.hidden_units, ml::Activation::kSigmoid},
          {1, ml::Activation::kSigmoid}});  // sigmoid output: a score in [0,1]
  net->init_weights(rng);
  ml::RpropTrainer::Options topt;
  topt.common.max_epochs = options_.max_epochs;
  topt.common.patience = options_.max_epochs / 8;
  ml::RpropTrainer(topt).train(*net, data, rng);
  net_ = std::move(net);
}

double ValidityModel::score(const Configuration& config) const {
  if (!fitted()) return 1.0;
  auto features = codec_.encode(config);
  scaler_.transform_row(features);
  return net_->forward(features)[0];
}

ValidityModel::Confusion ValidityModel::confusion(
    const std::vector<Configuration>& valid,
    const std::vector<Configuration>& invalid) const {
  Confusion c;
  for (const auto& config : valid) {
    if (predict_valid(config))
      ++c.true_positive;
    else
      ++c.false_negative;
  }
  for (const auto& config : invalid) {
    if (predict_valid(config))
      ++c.false_positive;
    else
      ++c.true_negative;
  }
  return c;
}

double ValidityModel::accuracy(
    const ParamSpace& space, const std::vector<Configuration>& valid,
    const std::vector<Configuration>& invalid) const {
  (void)space;
  return confusion(valid, invalid).accuracy();
}

}  // namespace pt::tuner
