#pragma once

// Reference search strategies. Exhaustive search provides the ground truth
// for the convolution experiments (Figs 1, 11-13); random search is the
// paper's 50K-sample baseline for the large spaces (Fig 14); hill climbing
// and simulated annealing are classic auto-tuning baselines included for
// comparison benches.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "tuner/evaluator.hpp"

namespace pt::tuner {

/// Outcome of a search: best valid configuration, if any was found.
struct SearchResult {
  bool success = false;
  Configuration best_config;
  double best_time_ms = 0.0;
  std::size_t evaluations = 0;
  std::size_t invalid = 0;
  /// Why the invalid evaluations were rejected, by status.
  RejectionCounts rejections;
  double total_cost_ms = 0.0;
};

/// Measure every configuration in the space. Only feasible for spaces like
/// convolution's 131K points; throws std::invalid_argument if the space
/// exceeds `hard_limit` (safety rail, default 16M).
[[nodiscard]] SearchResult exhaustive_search(
    Evaluator& evaluator, std::uint64_t hard_limit = 16ull << 20);

/// Exhaustive search that also returns every valid (index, time) pair —
/// the ground-truth table behind the slowdown figures.
struct ExhaustiveTable {
  SearchResult result;
  /// Valid measurements: configuration flat index -> time.
  std::vector<std::pair<std::uint64_t, double>> times;
};
[[nodiscard]] ExhaustiveTable exhaustive_table(
    Evaluator& evaluator, std::uint64_t hard_limit = 16ull << 20);

/// Measure `n` distinct random configurations.
[[nodiscard]] SearchResult random_search(Evaluator& evaluator, std::size_t n,
                                         common::Rng& rng);

/// Steepest-descent hill climbing with random restarts. Each climb starts
/// from a random valid configuration and moves to the best valid neighbour
/// until no neighbour improves.
[[nodiscard]] SearchResult hill_climb(Evaluator& evaluator,
                                      std::size_t restarts, common::Rng& rng,
                                      std::size_t max_steps_per_climb = 256);

/// Simulated annealing over the neighbour graph with geometric cooling.
struct AnnealingOptions {
  std::size_t evaluations = 2000;
  double initial_temperature = 1.0;  // relative to log-time scale
  double cooling = 0.995;
};
[[nodiscard]] SearchResult simulated_annealing(Evaluator& evaluator,
                                               const AnnealingOptions& options,
                                               common::Rng& rng);

}  // namespace pt::tuner
