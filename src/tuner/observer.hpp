#pragma once

// TunerObserver + TunerRunContext — the unified hook surface of the tuning
// stack (DESIGN.md §7).
//
// Every tuner entry point (AutoTuner::tune, IterativeTuner::tune,
// InputAwarePerformanceModel::fit) takes its per-run wiring from one shared
// TunerRunContext embedded in its options struct: the observer receiving
// callbacks, the telemetry collector to install for the run, the RNG seed,
// the worker-thread count, and the clcheck mode. Callers that only want a
// result leave the context at its defaults — a default context is inert
// (null observer, no telemetry, ambient thread pool) and results are
// bit-identical to the pre-context API at any thread count (verified by
// tests/tuner/test_observer.cpp).
//
// Observer callbacks are delivered on the calling thread, in a
// deterministic order for a fixed seed (concurrent work such as ensemble
// training replays its per-member epochs sequentially after the fact).
// Observers must not mutate the evaluator or re-enter the tuner.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "clsim/check/check.hpp"
#include "common/rng.hpp"
#include "common/telemetry/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "tuner/evaluator.hpp"

namespace pt::tuner {

/// Hook interface for watching a tuning run. All hooks default to no-ops so
/// observers override only what they need.
class TunerObserver {
 public:
  virtual ~TunerObserver() = default;

  /// A named tuner stage begins/ends. `tuner` identifies the caller
  /// ("autotuner", "iterative", "input_aware"); `stage` is the span name
  /// from the taxonomy in DESIGN.md §7 ("stage1.measure", "model.fit",
  /// "stage2.scan", "stage2.measure", "round", ...). Properly nested per
  /// run: every begin is closed by a matching end before the outer stage
  /// ends.
  virtual void on_stage_begin(std::string_view /*tuner*/,
                              std::string_view /*stage*/) {}
  virtual void on_stage_end(std::string_view /*tuner*/,
                            std::string_view /*stage*/) {}

  /// A measurement was taken to build the model's training set (stage-1
  /// samples, iterative round-0 / exploration draws). Fires after the
  /// corresponding on_measurement.
  virtual void on_sample(std::string_view /*stage*/,
                         const Configuration& /*config*/,
                         const Measurement& /*m*/) {}

  /// One training epoch of one ensemble member finished. Delivered in
  /// (member, epoch) order after fit() returns, so the sequence is
  /// deterministic even when members train concurrently. monitored_loss is
  /// NaN when the member trained without a monitored split.
  virtual void on_epoch(std::size_t /*member*/, std::size_t /*epoch*/,
                        double /*train_loss*/, double /*monitored_loss*/) {}

  /// A model-selected candidate (flat index + its predicted time) is about
  /// to be measured.
  virtual void on_candidate(std::uint64_t /*index*/,
                            double /*predicted_ms*/) {}

  /// Every measurement the tuner makes, model-selected or random.
  virtual void on_measurement(std::string_view /*stage*/,
                              const Configuration& /*config*/,
                              const Measurement& /*m*/) {}
};

/// Shared per-run wiring. Embedded as `run` in AutoTunerOptions,
/// IterativeTunerOptions and InputAwarePerformanceModel::Options; the
/// defaults reproduce the pre-context behaviour exactly.
struct TunerRunContext {
  /// Callback sink (nullptr = no callbacks).
  TunerObserver* observer = nullptr;
  /// Telemetry collector installed process-globally for the duration of the
  /// run (see common/telemetry). nullptr leaves the ambient collector —
  /// including "none" — untouched, so a context never *disables* telemetry
  /// an outer scope enabled.
  common::telemetry::Collector* telemetry = nullptr;
  /// Seed for the run's RNG when using the context-driven tune()/fit()
  /// overloads. The rng-taking overloads ignore it.
  std::uint64_t seed = 1;
  /// Worker threads for the run (0 = leave the global pool as is).
  std::size_t threads = 0;
  /// Kernel-sanitizer mode, forwarded by evaluators that own a simulated
  /// queue. Plain decorators ignore it.
  clsim::check::CheckMode check = clsim::check::CheckMode::kOff;

  /// The run RNG implied by `seed`.
  [[nodiscard]] common::Rng make_rng() const { return common::Rng(seed); }

  /// Apply the thread option (no-op when 0 or already the pool size).
  void apply_threads() const {
    if (threads != 0 && threads != common::global_pool().size())
      common::set_global_pool_threads(threads);
  }
};

/// RAII for a run: installs the context's collector (when present) and
/// applies its thread option. Member order makes the collector active
/// before any spans open and restores the previous one afterwards.
class ScopedRunContext {
 public:
  explicit ScopedRunContext(const TunerRunContext& run)
      : install_(run.telemetry != nullptr ? run.telemetry
                                          : common::telemetry::collector()) {
    run.apply_threads();
  }

 private:
  common::telemetry::ScopedCollector install_;
};

// Notify helpers: one branch when no observer is set.
inline void notify_stage_begin(const TunerRunContext& run,
                               std::string_view tuner,
                               std::string_view stage) {
  if (run.observer != nullptr) run.observer->on_stage_begin(tuner, stage);
}
inline void notify_stage_end(const TunerRunContext& run,
                             std::string_view tuner, std::string_view stage) {
  if (run.observer != nullptr) run.observer->on_stage_end(tuner, stage);
}

/// Observer stage + telemetry span in one RAII object, so the two report
/// identical nesting.
class StageScope {
 public:
  StageScope(const TunerRunContext& run, std::string_view tuner,
             std::string_view stage)
      : run_(&run), tuner_(tuner), stage_(stage), span_(stage) {
    notify_stage_begin(run, tuner, stage);
  }
  ~StageScope() { finish(); }

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

  /// Close the stage now (idempotent).
  void finish() {
    if (run_ == nullptr) return;
    const TunerRunContext* run = run_;
    run_ = nullptr;
    span_.finish();
    notify_stage_end(*run, tuner_, stage_);
  }

 private:
  const TunerRunContext* run_;
  std::string_view tuner_;
  std::string_view stage_;
  common::telemetry::Span span_;
};

}  // namespace pt::tuner
