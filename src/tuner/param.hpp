#pragma once

// Tuning-parameter spaces (paper Table 2). A ParamSpace is an ordered list
// of named discrete parameters; a Configuration assigns one value to each.
// Configurations are indexable: the space is a mixed-radix number system
// over the parameter value lists, which gives O(1) encode/decode and makes
// sampling-without-replacement over multi-million-point spaces trivial.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace pt::tuner {

/// One discrete tuning parameter: a name and its possible values, in order.
struct TuningParameter {
  std::string name;
  std::vector<int> values;
};

/// An assignment of a value to every parameter of a space, stored as the
/// actual values (aligned with the space's parameter order).
struct Configuration {
  std::vector<int> values;

  [[nodiscard]] bool operator==(const Configuration&) const = default;
};

class ParamSpace {
 public:
  /// Add a parameter; values must be non-empty and unique.
  void add(const std::string& name, std::vector<int> values);

  [[nodiscard]] std::size_t dimension_count() const noexcept {
    return params_.size();
  }
  [[nodiscard]] const TuningParameter& parameter(std::size_t i) const {
    return params_.at(i);
  }
  [[nodiscard]] const std::vector<TuningParameter>& parameters()
      const noexcept {
    return params_;
  }

  /// Index of a parameter by name; throws std::out_of_range if absent.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  /// Total number of configurations (product of value-list sizes).
  [[nodiscard]] std::uint64_t size() const noexcept;

  /// Configuration at a flat index (mixed-radix decode; the first parameter
  /// is the fastest-varying digit).
  [[nodiscard]] Configuration decode(std::uint64_t index) const;

  /// Flat index of a configuration (inverse of decode). Throws
  /// std::invalid_argument if any value is not in the parameter's list.
  [[nodiscard]] std::uint64_t encode(const Configuration& config) const;

  /// True if every value of the configuration appears in its value list.
  [[nodiscard]] bool contains(const Configuration& config) const noexcept;

  /// Value of the named parameter within a configuration.
  [[nodiscard]] int value_of(const Configuration& config,
                             const std::string& name) const;

  /// Uniformly random configuration.
  [[nodiscard]] Configuration random(common::Rng& rng) const;

  /// All single-parameter neighbours of a configuration (each parameter
  /// stepped one position up/down its value list) — used by local search.
  [[nodiscard]] std::vector<Configuration> neighbours(
      const Configuration& config) const;

  /// Human-readable "(v0, v1, ...)" rendering.
  [[nodiscard]] std::string to_string(const Configuration& config) const;

 private:
  std::vector<TuningParameter> params_;
};

}  // namespace pt::tuner
