#pragma once

// Low-overhead tracing + metrics for the tuning stack (DESIGN.md §7).
//
// A `Collector` accumulates completed `Span`s (host wall-time intervals,
// thread-aware) and named metrics: monotonically accumulated `counters`,
// last-value `gauges`, and `histograms` (count/sum/min/max plus a bounded
// sample of raw values, so per-epoch loss curves survive into reports
// without unbounded memory).
//
// Enablement is a process-global collector pointer, null by default:
//  - disabled (the default), every probe is one relaxed atomic load and all
//    recording code is skipped — results are bit-identical to an
//    uninstrumented build (verified by test);
//  - enabled, recording takes the collector's mutex; probes are placed at
//    stage/chunk/measurement granularity, never per work-item, so the
//    overhead budget stays under ~1% of a tuning run.
//
// Spans are recorded at destruction with (start, duration) on a steady
// clock, tagged with a dense per-thread id — exactly what the Chrome
// trace_event exporter (telemetry/export.hpp) needs; RAII nesting on a
// thread guarantees the parent interval contains its children, which is how
// chrome://tracing / Perfetto reconstruct the hierarchy.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pt::common::telemetry {

/// Dense process-wide thread id (0 = first thread to ask, usually main).
[[nodiscard]] std::uint32_t this_thread_id() noexcept;

/// One completed span. Times are microseconds on the owning collector's
/// steady-clock timeline (0 = collector construction).
struct SpanEvent {
  std::string name;
  double start_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
  /// Completion order (total across threads) — a deterministic tie-break
  /// for sorting events with equal timestamps.
  std::uint64_t seq = 0;
};

/// Histogram state: exact count/sum/min/max plus the first `sample_cap` raw
/// values in recording order (per-epoch curves for short runs, summary
/// statistics for long ones).
struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::vector<double> values;
  std::uint64_t dropped_values = 0;

  [[nodiscard]] double mean() const noexcept {
    return count ? sum / static_cast<double>(count) : 0.0;
  }
};

class Collector {
 public:
  struct Options {
    /// Spans kept before further record_span calls are counted as dropped.
    std::size_t max_spans = 1u << 20;
    /// Raw values retained per histogram (see HistogramData::values).
    std::size_t histogram_sample_cap = 512;
  };

  Collector() : Collector(Options{}) {}
  explicit Collector(Options options);

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Microseconds since this collector was constructed (steady clock).
  [[nodiscard]] double now_us() const noexcept;

  // --- Recording (all thread-safe). ---
  void record_span(std::string name, double start_us, double end_us);
  void add(std::string_view name, double delta = 1.0);        // counter
  void set_gauge(std::string_view name, double value);        // gauge
  void record_value(std::string_view name, double value);     // histogram

  // --- Snapshots (name-sorted where keyed, so exports are deterministic
  // given deterministic recording). ---
  [[nodiscard]] std::vector<SpanEvent> spans() const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;
  [[nodiscard]] std::vector<std::pair<std::string, HistogramData>> histograms()
      const;
  [[nodiscard]] std::uint64_t dropped_spans() const;

  /// Current value of one counter (0 when never incremented).
  [[nodiscard]] double counter(std::string_view name) const;

  /// Drop all recorded data (metric names included); the timeline epoch is
  /// kept so spans from before and after a clear stay comparable.
  void clear();

 private:
  Options options_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanEvent> spans_;
  std::uint64_t dropped_spans_ = 0;
  std::uint64_t next_seq_ = 0;
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, HistogramData, std::less<>> histograms_;
};

/// The process-global collector (nullptr = telemetry disabled).
[[nodiscard]] Collector* collector() noexcept;
void set_collector(Collector* c) noexcept;
[[nodiscard]] inline bool enabled() noexcept { return collector() != nullptr; }

/// RAII install/restore of the global collector.
class ScopedCollector {
 public:
  explicit ScopedCollector(Collector* c) noexcept : previous_(collector()) {
    set_collector(c);
  }
  ~ScopedCollector() { set_collector(previous_); }
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;

 private:
  Collector* previous_;
};

/// RAII span. Captures the global collector at construction; when telemetry
/// is disabled the constructor does not even copy the name. For names built
/// dynamically, gate the construction: `Span s(enabled() ? "a" + b : "");`.
class Span {
 public:
  explicit Span(std::string_view name) : collector_(collector()) {
    if (collector_ != nullptr) {
      name_ = name;
      start_us_ = collector_->now_us();
    }
  }
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Record the span now (idempotent; the destructor then does nothing).
  void finish() noexcept;

 private:
  Collector* collector_;
  std::string name_;
  double start_us_ = 0.0;
};

// --- One-line probes: no-ops (single relaxed atomic load) when disabled. ---
inline void count(std::string_view name, double delta = 1.0) {
  if (Collector* c = collector()) c->add(name, delta);
}
inline void gauge(std::string_view name, double v) {
  if (Collector* c = collector()) c->set_gauge(name, v);
}
inline void value(std::string_view name, double v) {
  if (Collector* c = collector()) c->record_value(name, v);
}

}  // namespace pt::common::telemetry
