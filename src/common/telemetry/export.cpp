#include "common/telemetry/export.hpp"

#include <algorithm>
#include <map>

namespace pt::common::telemetry {

json::Value chrome_trace(const Collector& collector) {
  std::vector<SpanEvent> spans = collector.spans();
  std::sort(spans.begin(), spans.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.seq < b.seq;
            });
  json::Value events = json::Value::array();
  for (const SpanEvent& s : spans) {
    json::Value ev = json::Value::object();
    ev.set("name", s.name);
    ev.set("cat", "pt");
    ev.set("ph", "X");
    ev.set("ts", s.start_us);
    ev.set("dur", s.dur_us);
    ev.set("pid", 1);
    ev.set("tid", s.tid);
    events.push(std::move(ev));
  }
  json::Value root = json::Value::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  if (collector.dropped_spans() > 0)
    root.set("droppedSpans", collector.dropped_spans());
  return root;
}

json::Value metrics_json(const Collector& collector) {
  json::Value root = json::Value::object();
  root.set("enabled", true);

  json::Value counters = json::Value::object();
  for (const auto& [name, v] : collector.counters()) counters.set(name, v);
  root.set("counters", std::move(counters));

  json::Value gauges = json::Value::object();
  for (const auto& [name, v] : collector.gauges()) gauges.set(name, v);
  root.set("gauges", std::move(gauges));

  json::Value histograms = json::Value::object();
  for (const auto& [name, h] : collector.histograms()) {
    json::Value entry = json::Value::object();
    entry.set("count", h.count);
    entry.set("mean", h.mean());
    entry.set("min", h.count ? h.min : 0.0);
    entry.set("max", h.count ? h.max : 0.0);
    json::Value values = json::Value::array();
    for (const double v : h.values) values.push(v);
    entry.set("values", std::move(values));
    if (h.dropped_values > 0) entry.set("dropped_values", h.dropped_values);
    histograms.set(name, std::move(entry));
  }
  root.set("histograms", std::move(histograms));

  // Per-name span aggregates (host wall time).
  struct Agg {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, Agg> aggs;
  for (const SpanEvent& s : collector.spans()) {
    Agg& a = aggs[s.name];
    ++a.count;
    a.total_us += s.dur_us;
    a.max_us = std::max(a.max_us, s.dur_us);
  }
  json::Value spans = json::Value::object();
  for (const auto& [name, a] : aggs) {
    json::Value entry = json::Value::object();
    entry.set("count", a.count);
    entry.set("total_ms", a.total_us / 1000.0);
    entry.set("mean_ms",
              a.count ? a.total_us / 1000.0 / static_cast<double>(a.count)
                      : 0.0);
    entry.set("max_ms", a.max_us / 1000.0);
    spans.set(name, std::move(entry));
  }
  root.set("spans", std::move(spans));
  root.set("dropped_spans", collector.dropped_spans());
  return root;
}

json::Value metrics_json_or_disabled(const Collector* collector) {
  if (collector != nullptr) return metrics_json(*collector);
  json::Value root = json::Value::object();
  root.set("enabled", false);
  return root;
}

}  // namespace pt::common::telemetry
