#pragma once

// Exporters for a telemetry Collector (DESIGN.md §7):
//
//  - chrome_trace: the Chrome trace_event JSON array format — complete
//    ("ph":"X") events with microsecond timestamps, one trace thread per
//    recording host thread. Load the file in chrome://tracing or
//    https://ui.perfetto.dev to see the span hierarchy and parallelism.
//  - metrics_json: the flat metrics block merged into bench reports — all
//    counters/gauges, histogram summaries (with the retained raw values),
//    and per-name span aggregates (count, total/mean/max wall ms).

#include "common/json.hpp"
#include "common/telemetry/telemetry.hpp"

namespace pt::common::telemetry {

/// {"traceEvents": [...], "displayTimeUnit": "ms"} for chrome://tracing /
/// Perfetto. Events are sorted by (start, completion order) so the output
/// is stable for a deterministically recorded collector.
[[nodiscard]] json::Value chrome_trace(const Collector& collector);

/// Flat metrics object: {"enabled", "counters", "gauges", "histograms",
/// "spans", "dropped_spans"}.
[[nodiscard]] json::Value metrics_json(const Collector& collector);

/// The metrics block for a possibly-absent collector: metrics_json when
/// non-null, {"enabled": false} otherwise. What bench reports attach.
[[nodiscard]] json::Value metrics_json_or_disabled(const Collector* collector);

}  // namespace pt::common::telemetry
