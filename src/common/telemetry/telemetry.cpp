#include "common/telemetry/telemetry.hpp"

#include <algorithm>
#include <atomic>

namespace pt::common::telemetry {

std::uint32_t this_thread_id() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Collector::Collector(Options options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

double Collector::now_us() const noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Collector::record_span(std::string name, double start_us, double end_us) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= options_.max_spans) {
    ++dropped_spans_;
    return;
  }
  SpanEvent ev;
  ev.name = std::move(name);
  ev.start_us = start_us;
  ev.dur_us = std::max(0.0, end_us - start_us);
  ev.tid = this_thread_id();
  ev.seq = next_seq_++;
  spans_.push_back(std::move(ev));
}

void Collector::add(std::string_view name, double delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Collector::set_gauge(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Collector::record_value(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), HistogramData{}).first;
  HistogramData& h = it->second;
  ++h.count;
  h.sum += value;
  h.min = std::min(h.min, value);
  h.max = std::max(h.max, value);
  if (h.values.size() < options_.histogram_sample_cap) {
    h.values.push_back(value);
  } else {
    ++h.dropped_values;
  }
}

std::vector<SpanEvent> Collector::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<std::pair<std::string, double>> Collector::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {counters_.begin(), counters_.end()};
}

std::vector<std::pair<std::string, double>> Collector::gauges() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {gauges_.begin(), gauges_.end()};
}

std::vector<std::pair<std::string, HistogramData>> Collector::histograms()
    const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {histograms_.begin(), histograms_.end()};
}

std::uint64_t Collector::dropped_spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_spans_;
}

double Collector::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

void Collector::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  dropped_spans_ = 0;
  next_seq_ = 0;
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {
std::atomic<Collector*> g_collector{nullptr};
}  // namespace

Collector* collector() noexcept {
  return g_collector.load(std::memory_order_acquire);
}

void set_collector(Collector* c) noexcept {
  g_collector.store(c, std::memory_order_release);
}

void Span::finish() noexcept {
  if (collector_ == nullptr) return;
  Collector* c = collector_;
  collector_ = nullptr;
  try {
    c->record_span(std::move(name_), start_us_, c->now_us());
  } catch (...) {
    // Telemetry must never take down the instrumented code (allocation
    // failure while recording is the only throwing path).
  }
}

}  // namespace pt::common::telemetry
