#pragma once

// Portable fp32 SIMD layer for the batched inference engine (ml/batched.hpp).
//
// One backend is selected at configure time (CMake option PT_SIMD, default
// "auto"): AVX2+FMA on x86, NEON on arm64, or a portable scalar fallback.
// `VecF` is a fixed-width vector of kWidth floats with the handful of
// operations batched inference needs: arithmetic, fused multiply-add,
// horizontal reduction, and vectorized exp/sigmoid/tanh approximations.
//
// Accuracy contract (see DESIGN.md "Inference paths"):
//  - exp:     same Cephes-style polynomial on every backend; relative error
//             vs std::exp (double) at most 4 ULP of the fp32 result over the
//             clamped domain [-87.34, 88.38] (inputs outside are clamped,
//             matching the saturation behaviour batched activations need).
//  - sigmoid: 1/(1+exp(-x)); at most 8 ULP relative error.
//  - tanh:    2*sigmoid(2x)-1; at most 16 ULP relative error for |x| >= 2^-3
//             and at most 2^-21 absolute error everywhere (the subtraction
//             cancels for tiny x, where the absolute bound is what matters).
//
// Every backend is *runtime-verified* against the scalar reference
// implementations (exp_ref/sigmoid_ref/tanh_ref, which spell out the same
// algorithm with std::fma): self_test() requires bit-equality lane by lane,
// and ensure_verified() runs it once per process before the first batched
// scan, so a miscompiled or mismatched backend fails loudly instead of
// skewing predictions.

#include <cstddef>
#include <cstdint>
#include <cmath>
#include <bit>
#include <new>
#include <string>
#include <vector>

#if !defined(PT_SIMD_DISABLE) && defined(__AVX2__) && defined(__FMA__)
#define PT_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(PT_SIMD_DISABLE) && \
    (defined(__ARM_NEON) || defined(__ARM_NEON__) || defined(__aarch64__))
#define PT_SIMD_NEON 1
#include <arm_neon.h>
#else
#define PT_SIMD_SCALAR 1
#endif

namespace pt::common::simd {

#if defined(PT_SIMD_AVX2)
inline constexpr std::size_t kWidth = 8;
#elif defined(PT_SIMD_NEON)
inline constexpr std::size_t kWidth = 4;
#else
inline constexpr std::size_t kWidth = 4;
#endif

// ---------------------------------------------------------------------------
// VecF: kWidth packed floats.
// ---------------------------------------------------------------------------

#if defined(PT_SIMD_AVX2)

struct VecF {
  __m256 v;

  [[nodiscard]] static VecF load(const float* p) noexcept {
    return {_mm256_loadu_ps(p)};
  }
  [[nodiscard]] static VecF broadcast(float x) noexcept {
    return {_mm256_set1_ps(x)};
  }
  [[nodiscard]] static VecF zero() noexcept { return {_mm256_setzero_ps()}; }
  void store(float* p) const noexcept { _mm256_storeu_ps(p, v); }
};

[[nodiscard]] inline VecF add(VecF a, VecF b) noexcept {
  return {_mm256_add_ps(a.v, b.v)};
}
[[nodiscard]] inline VecF sub(VecF a, VecF b) noexcept {
  return {_mm256_sub_ps(a.v, b.v)};
}
[[nodiscard]] inline VecF mul(VecF a, VecF b) noexcept {
  return {_mm256_mul_ps(a.v, b.v)};
}
[[nodiscard]] inline VecF div(VecF a, VecF b) noexcept {
  return {_mm256_div_ps(a.v, b.v)};
}
[[nodiscard]] inline VecF min(VecF a, VecF b) noexcept {
  return {_mm256_min_ps(a.v, b.v)};
}
[[nodiscard]] inline VecF max(VecF a, VecF b) noexcept {
  return {_mm256_max_ps(a.v, b.v)};
}
/// a*b + c, single rounding.
[[nodiscard]] inline VecF fmadd(VecF a, VecF b, VecF c) noexcept {
  return {_mm256_fmadd_ps(a.v, b.v, c.v)};
}
/// c - a*b, single rounding.
[[nodiscard]] inline VecF fnmadd(VecF a, VecF b, VecF c) noexcept {
  return {_mm256_fnmadd_ps(a.v, b.v, c.v)};
}
[[nodiscard]] inline VecF floor(VecF a) noexcept {
  return {_mm256_floor_ps(a.v)};
}
/// 2^n for integral-valued lanes of n in [-126, 127].
[[nodiscard]] inline VecF pow2i(VecF n) noexcept {
  const __m256i i = _mm256_cvttps_epi32(n.v);
  const __m256i e =
      _mm256_slli_epi32(_mm256_add_epi32(i, _mm256_set1_epi32(127)), 23);
  return {_mm256_castsi256_ps(e)};
}
/// Pairwise horizontal sum of the lanes.
[[nodiscard]] inline float hsum(VecF a) noexcept {
  const __m128 lo = _mm256_castps256_ps128(a.v);
  const __m128 hi = _mm256_extractf128_ps(a.v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

#elif defined(PT_SIMD_NEON)

struct VecF {
  float32x4_t v;

  [[nodiscard]] static VecF load(const float* p) noexcept {
    return {vld1q_f32(p)};
  }
  [[nodiscard]] static VecF broadcast(float x) noexcept {
    return {vdupq_n_f32(x)};
  }
  [[nodiscard]] static VecF zero() noexcept { return {vdupq_n_f32(0.0f)}; }
  void store(float* p) const noexcept { vst1q_f32(p, v); }
};

[[nodiscard]] inline VecF add(VecF a, VecF b) noexcept {
  return {vaddq_f32(a.v, b.v)};
}
[[nodiscard]] inline VecF sub(VecF a, VecF b) noexcept {
  return {vsubq_f32(a.v, b.v)};
}
[[nodiscard]] inline VecF mul(VecF a, VecF b) noexcept {
  return {vmulq_f32(a.v, b.v)};
}
[[nodiscard]] inline VecF div(VecF a, VecF b) noexcept {
  return {vdivq_f32(a.v, b.v)};
}
[[nodiscard]] inline VecF min(VecF a, VecF b) noexcept {
  return {vminq_f32(a.v, b.v)};
}
[[nodiscard]] inline VecF max(VecF a, VecF b) noexcept {
  return {vmaxq_f32(a.v, b.v)};
}
/// a*b + c, single rounding.
[[nodiscard]] inline VecF fmadd(VecF a, VecF b, VecF c) noexcept {
  return {vfmaq_f32(c.v, a.v, b.v)};
}
/// c - a*b, single rounding.
[[nodiscard]] inline VecF fnmadd(VecF a, VecF b, VecF c) noexcept {
  return {vfmsq_f32(c.v, a.v, b.v)};
}
[[nodiscard]] inline VecF floor(VecF a) noexcept { return {vrndmq_f32(a.v)}; }
/// 2^n for integral-valued lanes of n in [-126, 127].
[[nodiscard]] inline VecF pow2i(VecF n) noexcept {
  const int32x4_t i = vcvtq_s32_f32(n.v);
  const int32x4_t e = vshlq_n_s32(vaddq_s32(i, vdupq_n_s32(127)), 23);
  return {vreinterpretq_f32_s32(e)};
}
/// Pairwise horizontal sum of the lanes.
[[nodiscard]] inline float hsum(VecF a) noexcept { return vaddvq_f32(a.v); }

#else  // PT_SIMD_SCALAR

struct VecF {
  float v[kWidth];

  [[nodiscard]] static VecF load(const float* p) noexcept {
    VecF r;
    for (std::size_t i = 0; i < kWidth; ++i) r.v[i] = p[i];
    return r;
  }
  [[nodiscard]] static VecF broadcast(float x) noexcept {
    VecF r;
    for (std::size_t i = 0; i < kWidth; ++i) r.v[i] = x;
    return r;
  }
  [[nodiscard]] static VecF zero() noexcept { return broadcast(0.0f); }
  void store(float* p) const noexcept {
    for (std::size_t i = 0; i < kWidth; ++i) p[i] = v[i];
  }
};

[[nodiscard]] inline VecF add(VecF a, VecF b) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i) a.v[i] += b.v[i];
  return a;
}
[[nodiscard]] inline VecF sub(VecF a, VecF b) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i) a.v[i] -= b.v[i];
  return a;
}
[[nodiscard]] inline VecF mul(VecF a, VecF b) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i) a.v[i] *= b.v[i];
  return a;
}
[[nodiscard]] inline VecF div(VecF a, VecF b) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i) a.v[i] /= b.v[i];
  return a;
}
[[nodiscard]] inline VecF min(VecF a, VecF b) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i)
    a.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  return a;
}
[[nodiscard]] inline VecF max(VecF a, VecF b) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i)
    a.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return a;
}
/// a*b + c, single rounding (std::fma matches hardware FMA semantics).
[[nodiscard]] inline VecF fmadd(VecF a, VecF b, VecF c) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i)
    c.v[i] = std::fma(a.v[i], b.v[i], c.v[i]);
  return c;
}
/// c - a*b, single rounding.
[[nodiscard]] inline VecF fnmadd(VecF a, VecF b, VecF c) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i)
    c.v[i] = std::fma(-a.v[i], b.v[i], c.v[i]);
  return c;
}
[[nodiscard]] inline VecF floor(VecF a) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i) a.v[i] = std::floor(a.v[i]);
  return a;
}
/// 2^n for integral-valued lanes of n in [-126, 127].
[[nodiscard]] inline VecF pow2i(VecF n) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i) {
    const auto e = static_cast<std::int32_t>(n.v[i]) + 127;
    n.v[i] = std::bit_cast<float>(e << 23);
  }
  return n;
}
/// Pairwise horizontal sum of the lanes.
[[nodiscard]] inline float hsum(VecF a) noexcept {
  return (a.v[0] + a.v[2]) + (a.v[1] + a.v[3]);
}

#endif

// ---------------------------------------------------------------------------
// Vectorized transcendental approximations (backend-independent algorithm;
// the scalar references in simd.cpp spell out the identical operation
// sequence with std::fma, which is what self_test compares against).
// ---------------------------------------------------------------------------

namespace detail {
// High clamp is log(2^127): keeps n = floor(x*log2e + 0.5) <= 127 so the
// 2^n bit-build never produces an exponent-255 (inf) pattern — exp saturates
// to ~1.7e38 instead of overflowing.
inline constexpr float kExpHi = 88.02969193111305f;
inline constexpr float kExpLo = -87.3365478515625f;
inline constexpr float kLog2e = 1.44269504088896341f;
inline constexpr float kExpC1 = 0.693359375f;
inline constexpr float kExpC2 = -2.12194440e-4f;
inline constexpr float kExpP0 = 1.9875691500e-4f;
inline constexpr float kExpP1 = 1.3981999507e-3f;
inline constexpr float kExpP2 = 8.3334519073e-3f;
inline constexpr float kExpP3 = 4.1665795894e-2f;
inline constexpr float kExpP4 = 1.6666665459e-1f;
inline constexpr float kExpP5 = 5.0000001201e-1f;
}  // namespace detail

/// Cephes-style exp approximation (clamped to the finite fp32 domain).
[[nodiscard]] inline VecF exp(VecF x) noexcept {
  using namespace detail;
  x = min(x, VecF::broadcast(kExpHi));
  x = max(x, VecF::broadcast(kExpLo));
  // n = floor(x * log2(e) + 0.5); r = x - n*ln(2) in two parts.
  VecF fx = fmadd(x, VecF::broadcast(kLog2e), VecF::broadcast(0.5f));
  fx = floor(fx);
  x = fnmadd(fx, VecF::broadcast(kExpC1), x);
  x = fnmadd(fx, VecF::broadcast(kExpC2), x);
  VecF y = VecF::broadcast(kExpP0);
  y = fmadd(y, x, VecF::broadcast(kExpP1));
  y = fmadd(y, x, VecF::broadcast(kExpP2));
  y = fmadd(y, x, VecF::broadcast(kExpP3));
  y = fmadd(y, x, VecF::broadcast(kExpP4));
  y = fmadd(y, x, VecF::broadcast(kExpP5));
  const VecF z = mul(x, x);
  y = fmadd(y, z, x);
  y = add(y, VecF::broadcast(1.0f));
  return mul(y, pow2i(fx));
}

/// 1 / (1 + exp(-x)).
[[nodiscard]] inline VecF sigmoid(VecF x) noexcept {
  const VecF one = VecF::broadcast(1.0f);
  const VecF e = exp(sub(VecF::zero(), x));
  return div(one, add(one, e));
}

/// 2*sigmoid(2x) - 1.
[[nodiscard]] inline VecF tanh(VecF x) noexcept {
  const VecF s = sigmoid(add(x, x));
  return sub(add(s, s), VecF::broadcast(1.0f));
}

// ---------------------------------------------------------------------------
// Scalar reference implementations (simd.cpp): operation-for-operation the
// same algorithm as the vector versions, so a correct backend matches them
// bit for bit lane by lane.
// ---------------------------------------------------------------------------

[[nodiscard]] float exp_ref(float x) noexcept;
[[nodiscard]] float sigmoid_ref(float x) noexcept;
[[nodiscard]] float tanh_ref(float x) noexcept;

/// The configure-time backend ("avx2", "neon" or "scalar").
[[nodiscard]] const char* backend_name() noexcept;

/// Verify the active backend against the scalar references on a
/// deterministic input sweep (bit-equality for exp/sigmoid/tanh/fmadd,
/// tolerance for the horizontal sum). False on mismatch, with a diagnostic
/// in *error when given.
[[nodiscard]] bool self_test(std::string* error = nullptr);

/// Run self_test() once per process; throws std::runtime_error on failure.
/// Called by ml::BatchedEnsemble before the first batched scan.
void ensure_verified();

// ---------------------------------------------------------------------------
// 64-byte-aligned float storage for packed weights and activation panels.
// ---------------------------------------------------------------------------

template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, kAlign); }

  template <typename U>
  [[nodiscard]] bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

using AlignedVectorF = std::vector<float, AlignedAllocator<float>>;

}  // namespace pt::common::simd
