#pragma once

// Portable fp32 SIMD layer for the batched inference engine (ml/batched.hpp).
//
// One backend is selected at configure time (CMake option PT_SIMD, default
// "auto"): AVX2+FMA on x86, NEON on arm64, or a portable scalar fallback.
// `VecF` is a fixed-width vector of kWidth floats with the handful of
// operations batched inference needs: arithmetic, fused multiply-add,
// horizontal reduction, and vectorized exp/sigmoid/tanh approximations.
//
// Accuracy contract (see DESIGN.md "Inference paths"):
//  - exp:     same Cephes-style polynomial on every backend; relative error
//             vs std::exp (double) at most 4 ULP of the fp32 result over the
//             clamped domain [-87.34, 88.38] (inputs outside are clamped,
//             matching the saturation behaviour batched activations need).
//  - sigmoid: 1/(1+exp(-x)); at most 8 ULP relative error.
//  - tanh:    2*sigmoid(2x)-1; at most 16 ULP relative error for |x| >= 2^-3
//             and at most 2^-21 absolute error everywhere (the subtraction
//             cancels for tiny x, where the absolute bound is what matters).
//
// Every backend is *runtime-verified* against the scalar reference
// implementations (exp_ref/sigmoid_ref/tanh_ref, which spell out the same
// algorithm with std::fma): self_test() requires bit-equality lane by lane,
// and ensure_verified() runs it once per process before the first batched
// scan, so a miscompiled or mismatched backend fails loudly instead of
// skewing predictions.

#include <cstddef>
#include <cstdint>
#include <cmath>
#include <bit>
#include <new>
#include <string>
#include <vector>

#if !defined(PT_SIMD_DISABLE) && defined(__AVX2__) && defined(__FMA__)
#define PT_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(PT_SIMD_DISABLE) && \
    (defined(__ARM_NEON) || defined(__ARM_NEON__) || defined(__aarch64__))
#define PT_SIMD_NEON 1
#include <arm_neon.h>
#else
#define PT_SIMD_SCALAR 1
#endif

namespace pt::common::simd {

#if defined(PT_SIMD_AVX2)
inline constexpr std::size_t kWidth = 8;
#elif defined(PT_SIMD_NEON)
inline constexpr std::size_t kWidth = 4;
#else
inline constexpr std::size_t kWidth = 4;
#endif

// ---------------------------------------------------------------------------
// VecF: kWidth packed floats.
// ---------------------------------------------------------------------------

#if defined(PT_SIMD_AVX2)

struct VecF {
  __m256 v;

  [[nodiscard]] static VecF load(const float* p) noexcept {
    return {_mm256_loadu_ps(p)};
  }
  [[nodiscard]] static VecF broadcast(float x) noexcept {
    return {_mm256_set1_ps(x)};
  }
  [[nodiscard]] static VecF zero() noexcept { return {_mm256_setzero_ps()}; }
  void store(float* p) const noexcept { _mm256_storeu_ps(p, v); }
};

[[nodiscard]] inline VecF add(VecF a, VecF b) noexcept {
  return {_mm256_add_ps(a.v, b.v)};
}
[[nodiscard]] inline VecF sub(VecF a, VecF b) noexcept {
  return {_mm256_sub_ps(a.v, b.v)};
}
[[nodiscard]] inline VecF mul(VecF a, VecF b) noexcept {
  return {_mm256_mul_ps(a.v, b.v)};
}
[[nodiscard]] inline VecF div(VecF a, VecF b) noexcept {
  return {_mm256_div_ps(a.v, b.v)};
}
[[nodiscard]] inline VecF min(VecF a, VecF b) noexcept {
  return {_mm256_min_ps(a.v, b.v)};
}
[[nodiscard]] inline VecF max(VecF a, VecF b) noexcept {
  return {_mm256_max_ps(a.v, b.v)};
}
/// a*b + c, single rounding.
[[nodiscard]] inline VecF fmadd(VecF a, VecF b, VecF c) noexcept {
  return {_mm256_fmadd_ps(a.v, b.v, c.v)};
}
/// c - a*b, single rounding.
[[nodiscard]] inline VecF fnmadd(VecF a, VecF b, VecF c) noexcept {
  return {_mm256_fnmadd_ps(a.v, b.v, c.v)};
}
[[nodiscard]] inline VecF floor(VecF a) noexcept {
  return {_mm256_floor_ps(a.v)};
}
/// 2^n for integral-valued lanes of n in [-126, 127].
[[nodiscard]] inline VecF pow2i(VecF n) noexcept {
  const __m256i i = _mm256_cvttps_epi32(n.v);
  const __m256i e =
      _mm256_slli_epi32(_mm256_add_epi32(i, _mm256_set1_epi32(127)), 23);
  return {_mm256_castsi256_ps(e)};
}
/// Pairwise horizontal sum of the lanes.
[[nodiscard]] inline float hsum(VecF a) noexcept {
  const __m128 lo = _mm256_castps256_ps128(a.v);
  const __m128 hi = _mm256_extractf128_ps(a.v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

#elif defined(PT_SIMD_NEON)

struct VecF {
  float32x4_t v;

  [[nodiscard]] static VecF load(const float* p) noexcept {
    return {vld1q_f32(p)};
  }
  [[nodiscard]] static VecF broadcast(float x) noexcept {
    return {vdupq_n_f32(x)};
  }
  [[nodiscard]] static VecF zero() noexcept { return {vdupq_n_f32(0.0f)}; }
  void store(float* p) const noexcept { vst1q_f32(p, v); }
};

[[nodiscard]] inline VecF add(VecF a, VecF b) noexcept {
  return {vaddq_f32(a.v, b.v)};
}
[[nodiscard]] inline VecF sub(VecF a, VecF b) noexcept {
  return {vsubq_f32(a.v, b.v)};
}
[[nodiscard]] inline VecF mul(VecF a, VecF b) noexcept {
  return {vmulq_f32(a.v, b.v)};
}
[[nodiscard]] inline VecF div(VecF a, VecF b) noexcept {
  return {vdivq_f32(a.v, b.v)};
}
[[nodiscard]] inline VecF min(VecF a, VecF b) noexcept {
  return {vminq_f32(a.v, b.v)};
}
[[nodiscard]] inline VecF max(VecF a, VecF b) noexcept {
  return {vmaxq_f32(a.v, b.v)};
}
/// a*b + c, single rounding.
[[nodiscard]] inline VecF fmadd(VecF a, VecF b, VecF c) noexcept {
  return {vfmaq_f32(c.v, a.v, b.v)};
}
/// c - a*b, single rounding.
[[nodiscard]] inline VecF fnmadd(VecF a, VecF b, VecF c) noexcept {
  return {vfmsq_f32(c.v, a.v, b.v)};
}
[[nodiscard]] inline VecF floor(VecF a) noexcept { return {vrndmq_f32(a.v)}; }
/// 2^n for integral-valued lanes of n in [-126, 127].
[[nodiscard]] inline VecF pow2i(VecF n) noexcept {
  const int32x4_t i = vcvtq_s32_f32(n.v);
  const int32x4_t e = vshlq_n_s32(vaddq_s32(i, vdupq_n_s32(127)), 23);
  return {vreinterpretq_f32_s32(e)};
}
/// Pairwise horizontal sum of the lanes.
[[nodiscard]] inline float hsum(VecF a) noexcept { return vaddvq_f32(a.v); }

#else  // PT_SIMD_SCALAR

struct VecF {
  float v[kWidth];

  [[nodiscard]] static VecF load(const float* p) noexcept {
    VecF r;
    for (std::size_t i = 0; i < kWidth; ++i) r.v[i] = p[i];
    return r;
  }
  [[nodiscard]] static VecF broadcast(float x) noexcept {
    VecF r;
    for (std::size_t i = 0; i < kWidth; ++i) r.v[i] = x;
    return r;
  }
  [[nodiscard]] static VecF zero() noexcept { return broadcast(0.0f); }
  void store(float* p) const noexcept {
    for (std::size_t i = 0; i < kWidth; ++i) p[i] = v[i];
  }
};

[[nodiscard]] inline VecF add(VecF a, VecF b) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i) a.v[i] += b.v[i];
  return a;
}
[[nodiscard]] inline VecF sub(VecF a, VecF b) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i) a.v[i] -= b.v[i];
  return a;
}
[[nodiscard]] inline VecF mul(VecF a, VecF b) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i) a.v[i] *= b.v[i];
  return a;
}
[[nodiscard]] inline VecF div(VecF a, VecF b) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i) a.v[i] /= b.v[i];
  return a;
}
[[nodiscard]] inline VecF min(VecF a, VecF b) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i)
    a.v[i] = a.v[i] < b.v[i] ? a.v[i] : b.v[i];
  return a;
}
[[nodiscard]] inline VecF max(VecF a, VecF b) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i)
    a.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return a;
}
/// a*b + c, single rounding (std::fma matches hardware FMA semantics).
[[nodiscard]] inline VecF fmadd(VecF a, VecF b, VecF c) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i)
    c.v[i] = std::fma(a.v[i], b.v[i], c.v[i]);
  return c;
}
/// c - a*b, single rounding.
[[nodiscard]] inline VecF fnmadd(VecF a, VecF b, VecF c) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i)
    c.v[i] = std::fma(-a.v[i], b.v[i], c.v[i]);
  return c;
}
[[nodiscard]] inline VecF floor(VecF a) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i) a.v[i] = std::floor(a.v[i]);
  return a;
}
/// 2^n for integral-valued lanes of n in [-126, 127].
[[nodiscard]] inline VecF pow2i(VecF n) noexcept {
  for (std::size_t i = 0; i < kWidth; ++i) {
    const auto e = static_cast<std::int32_t>(n.v[i]) + 127;
    n.v[i] = std::bit_cast<float>(e << 23);
  }
  return n;
}
/// Pairwise horizontal sum of the lanes.
[[nodiscard]] inline float hsum(VecF a) noexcept {
  return (a.v[0] + a.v[2]) + (a.v[1] + a.v[3]);
}

#endif

// ---------------------------------------------------------------------------
// VecD: 4 packed doubles. The logical width is fixed at 4 on *every*
// backend (AVX2 uses one 256-bit register, NEON a pair of 128-bit ones, the
// scalar fallback an array), so kernels written against VecD have identical
// semantics everywhere — which is what lets the fp64 training matmuls
// (ml/matrix.cpp) stay bit-identical to their blocked scalar forms.
// Deliberately minimal: load/store/broadcast, add, mul (two-rounding, like
// the scalar `+`/`*` they replace — no FMA), and the pairwise horizontal
// sum (l0 + l1) + (l2 + l3) that matches the matmul_bt accumulator combine.
// ---------------------------------------------------------------------------

inline constexpr std::size_t kWidthD = 4;

#if defined(PT_SIMD_AVX2)

struct VecD {
  __m256d v;

  [[nodiscard]] static VecD load(const double* p) noexcept {
    return {_mm256_loadu_pd(p)};
  }
  [[nodiscard]] static VecD broadcast(double x) noexcept {
    return {_mm256_set1_pd(x)};
  }
  [[nodiscard]] static VecD zero() noexcept { return {_mm256_setzero_pd()}; }
  void store(double* p) const noexcept { _mm256_storeu_pd(p, v); }
};

[[nodiscard]] inline VecD add(VecD a, VecD b) noexcept {
  return {_mm256_add_pd(a.v, b.v)};
}
[[nodiscard]] inline VecD mul(VecD a, VecD b) noexcept {
  return {_mm256_mul_pd(a.v, b.v)};
}
/// (l0 + l1) + (l2 + l3), the exact combine order of matmul_bt's four
/// scalar accumulators.
[[nodiscard]] inline double hsum_pairwise(VecD a) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(a.v);    // l0, l1
  const __m128d hi = _mm256_extractf128_pd(a.v, 1);  // l2, l3
  const double s01 = _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
  const double s23 = _mm_cvtsd_f64(_mm_add_sd(hi, _mm_unpackhi_pd(hi, hi)));
  return s01 + s23;
}

#elif defined(PT_SIMD_NEON) && defined(__aarch64__)

struct VecD {
  float64x2_t lo;  // l0, l1
  float64x2_t hi;  // l2, l3

  [[nodiscard]] static VecD load(const double* p) noexcept {
    return {vld1q_f64(p), vld1q_f64(p + 2)};
  }
  [[nodiscard]] static VecD broadcast(double x) noexcept {
    return {vdupq_n_f64(x), vdupq_n_f64(x)};
  }
  [[nodiscard]] static VecD zero() noexcept {
    return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
  }
  void store(double* p) const noexcept {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }
};

[[nodiscard]] inline VecD add(VecD a, VecD b) noexcept {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
[[nodiscard]] inline VecD mul(VecD a, VecD b) noexcept {
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}
/// (l0 + l1) + (l2 + l3), the exact combine order of matmul_bt's four
/// scalar accumulators.
[[nodiscard]] inline double hsum_pairwise(VecD a) noexcept {
  const double s01 = vgetq_lane_f64(a.lo, 0) + vgetq_lane_f64(a.lo, 1);
  const double s23 = vgetq_lane_f64(a.hi, 0) + vgetq_lane_f64(a.hi, 1);
  return s01 + s23;
}

#else  // scalar fallback (and 32-bit NEON, which has no float64x2 ops)

struct VecD {
  double v[kWidthD];

  [[nodiscard]] static VecD load(const double* p) noexcept {
    VecD r;
    for (std::size_t i = 0; i < kWidthD; ++i) r.v[i] = p[i];
    return r;
  }
  [[nodiscard]] static VecD broadcast(double x) noexcept {
    VecD r;
    for (std::size_t i = 0; i < kWidthD; ++i) r.v[i] = x;
    return r;
  }
  [[nodiscard]] static VecD zero() noexcept { return broadcast(0.0); }
  void store(double* p) const noexcept {
    for (std::size_t i = 0; i < kWidthD; ++i) p[i] = v[i];
  }
};

[[nodiscard]] inline VecD add(VecD a, VecD b) noexcept {
  for (std::size_t i = 0; i < kWidthD; ++i) a.v[i] += b.v[i];
  return a;
}
[[nodiscard]] inline VecD mul(VecD a, VecD b) noexcept {
  for (std::size_t i = 0; i < kWidthD; ++i) a.v[i] *= b.v[i];
  return a;
}
/// (l0 + l1) + (l2 + l3), the exact combine order of matmul_bt's four
/// scalar accumulators.
[[nodiscard]] inline double hsum_pairwise(VecD a) noexcept {
  return (a.v[0] + a.v[1]) + (a.v[2] + a.v[3]);
}

#endif

// ---------------------------------------------------------------------------
// IEEE fp16 storage conversions (ml/quant.hpp keeps fp16 weight panels and
// converts to fp32 in the inner loop). f32->f16 rounds to nearest-even and
// only runs at pack time; it is always the software conversion, so packed
// panels are identical on every backend. f16->f32 is exact (every half is
// representable as a float); load_f16 widens kWidth halves to a VecF and
// uses the F16C instruction when compiled in, which computes the same exact
// conversion.
// ---------------------------------------------------------------------------

/// Round a float to IEEE half (round-to-nearest-even, overflow to inf).
[[nodiscard]] inline std::uint16_t f32_to_f16(float x) noexcept {
  constexpr std::uint32_t kF32Inf = 255U << 23;
  constexpr std::uint32_t kF16Max = (127U + 16U) << 23;
  constexpr std::uint32_t kDenormMagic = ((127U - 15U) + (23U - 10U) + 1U)
                                         << 23;
  const std::uint32_t in = std::bit_cast<std::uint32_t>(x);
  const std::uint32_t sign = in & 0x80000000U;
  std::uint32_t f = in ^ sign;
  std::uint16_t out;
  if (f >= kF16Max) {  // overflow -> inf; nan -> quiet nan
    out = f > kF32Inf ? 0x7E00U : 0x7C00U;
  } else if (f < (113U << 23)) {  // half-subnormal range (incl. zero)
    // Adding the magic constant shifts the mantissa into the subnormal
    // position with correct round-to-nearest-even.
    const float shifted =
        std::bit_cast<float>(f) + std::bit_cast<float>(kDenormMagic);
    out = static_cast<std::uint16_t>(std::bit_cast<std::uint32_t>(shifted) -
                                     kDenormMagic);
  } else {
    const std::uint32_t mant_odd = (f >> 13) & 1U;  // ties-to-even bit
    f += 0xC8000FFFU;  // exponent rebias (15 - 127) << 23, plus 0xFFF
    f += mant_odd;
    out = static_cast<std::uint16_t>(f >> 13);
  }
  return static_cast<std::uint16_t>(out | (sign >> 16));
}

/// Exact widening of an IEEE half to float.
[[nodiscard]] inline float f16_to_f32(std::uint16_t h) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000U) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1FU;
  const std::uint32_t man = h & 0x3FFU;
  if (exp == 0) {
    // Subnormal (or zero): value is man * 2^-24, exact in fp32.
    const float v = static_cast<float>(man) * 0x1p-24f;
    return sign ? -v : v;
  }
  if (exp == 31) {  // inf / nan
    return std::bit_cast<float>(sign | 0x7F800000U | (man << 13));
  }
  return std::bit_cast<float>(sign | ((exp - 15U + 127U) << 23) | (man << 13));
}

/// Widen kWidth consecutive halves to a VecF (exact conversion).
[[nodiscard]] inline VecF load_f16(const std::uint16_t* p) noexcept {
#if defined(PT_SIMD_AVX2) && defined(__F16C__)
  return {_mm256_cvtph_ps(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)))};
#else
  float lanes[kWidth];
  for (std::size_t i = 0; i < kWidth; ++i) lanes[i] = f16_to_f32(p[i]);
  return VecF::load(lanes);
#endif
}

// ---------------------------------------------------------------------------
// Integer microkernels for the quantized int8 inference engine
// (ml/quant.hpp). All arithmetic is exact integer arithmetic, so every
// backend produces identical results by construction; self_test still
// verifies the vector implementations against the scalar loops.
//
// Value contract: activations are unsigned 7-bit (0..127) and weights
// signed 8-bit (-127..127), so a pair product sum fits s16 under
// AVX2 maddubs saturation (2 * 127 * 127 = 32258 < 32767) and an s32
// accumulator is exact for any practical fan-in (< 2^16 input pairs).
// ---------------------------------------------------------------------------

/// Channels per packed int8 weight block (one 32-byte vector of 8
/// channels x 4 inputs).
inline constexpr std::size_t kQuantChannelBlock = 8;
/// Inputs per packed group within a channel block.
inline constexpr std::size_t kQuantInputQuad = 4;
/// Activation buffers feeding dot_u7s8 are zero-padded to this multiple.
inline constexpr std::size_t kQuantDotAlign = 32;

/// Dense GEMV over a quad-interleaved int8 panel:
///   out[c] = sum_i a[i] * w_packed[i][c]   for c in [0, channels)
/// `a` holds `in` u7 activations, `in` a multiple of kQuantInputQuad;
/// `channels` is a multiple of kQuantChannelBlock. Panel layout: for each
/// channel block c0 (step 8), for each input quad q (step 4), a 32-byte
/// group holding bytes w[4q+k][c0+j] at offset 4j+k for j = 0..7,
/// k = 0..3 — the AVX2 kernel broadcasts one activation dword against it
/// (maddubs then madd-by-ones accumulates the four products per channel
/// straight into s32), and the inner loop streams the panel contiguously.
void gemv_u7s8(const std::uint8_t* a, const std::int8_t* w, std::size_t in,
               std::size_t channels, std::int32_t* out) noexcept;

/// Plain dot product of `n` u7 activations against s8 weights; n must be a
/// multiple of kQuantDotAlign (pad both with zeros).
[[nodiscard]] std::int32_t dot_u7s8(const std::uint8_t* a,
                                    const std::int8_t* w,
                                    std::size_t n) noexcept;

/// Quantize `n` fp32 features to u7 activations:
///   out[i] = clamp(rne((x[i] - lo[i]) * inv_step[i]), 0, 127)
/// where rne is round-to-nearest-even (lrintf under the default rounding
/// mode, which is also what the vector cvtps path implements) — one fp32
/// subtract and multiply, so every backend produces identical bytes.
void quantize_u7(const float* x, const float* lo, const float* inv_step,
                 std::size_t n, std::uint8_t* out) noexcept;

/// Requantize + table activation for `n` channels (n a multiple of 8):
///   out[c] = (u8) lut[ clamp((acc[c] + bias[c]) >> shift[c], 0, size-1) ]
/// The shift is an arithmetic right shift (floor division by 2^shift —
/// well-defined for negative values in C++20); shifts must be in [0, 31]
/// and lut values in [0, 127] so the result is a valid u7 activation.
void requant_lut_u8(const std::int32_t* acc, const std::int32_t* bias,
                    const std::int32_t* shift, std::size_t n,
                    const std::int32_t* lut, std::int32_t size,
                    std::uint8_t* out) noexcept;

/// Fused single-hidden-layer int8 forward: exactly
///   gemv_u7s8(a, w, in, channels, acc);
///   requant_lut_u8(acc, bias, shift, channels, lut, size, act);
///   return dot_u7s8(act, outw, channels);
/// but with the intermediate accumulators and activations kept in
/// registers (no acc/act memory round-trips, one kernel call per member
/// row instead of three). `channels` must be a multiple of kQuantDotAlign.
/// Bit-identical to the composition above on every backend — the AVX2
/// path performs the same integer operation sequence, and the fallback IS
/// the composition (over fixed 32-channel stack tiles).
[[nodiscard]] std::int32_t forward1_u7s8(
    const std::uint8_t* a, const std::int8_t* w, std::size_t in,
    std::size_t channels, const std::int32_t* bias, const std::int32_t* shift,
    const std::int32_t* lut, std::int32_t size,
    const std::int8_t* outw) noexcept;

// ---------------------------------------------------------------------------
// Vectorized transcendental approximations (backend-independent algorithm;
// the scalar references in simd.cpp spell out the identical operation
// sequence with std::fma, which is what self_test compares against).
// ---------------------------------------------------------------------------

namespace detail {
// High clamp is log(2^127): keeps n = floor(x*log2e + 0.5) <= 127 so the
// 2^n bit-build never produces an exponent-255 (inf) pattern — exp saturates
// to ~1.7e38 instead of overflowing.
inline constexpr float kExpHi = 88.02969193111305f;
inline constexpr float kExpLo = -87.3365478515625f;
inline constexpr float kLog2e = 1.44269504088896341f;
inline constexpr float kExpC1 = 0.693359375f;
inline constexpr float kExpC2 = -2.12194440e-4f;
inline constexpr float kExpP0 = 1.9875691500e-4f;
inline constexpr float kExpP1 = 1.3981999507e-3f;
inline constexpr float kExpP2 = 8.3334519073e-3f;
inline constexpr float kExpP3 = 4.1665795894e-2f;
inline constexpr float kExpP4 = 1.6666665459e-1f;
inline constexpr float kExpP5 = 5.0000001201e-1f;
}  // namespace detail

/// Cephes-style exp approximation (clamped to the finite fp32 domain).
[[nodiscard]] inline VecF exp(VecF x) noexcept {
  using namespace detail;
  x = min(x, VecF::broadcast(kExpHi));
  x = max(x, VecF::broadcast(kExpLo));
  // n = floor(x * log2(e) + 0.5); r = x - n*ln(2) in two parts.
  VecF fx = fmadd(x, VecF::broadcast(kLog2e), VecF::broadcast(0.5f));
  fx = floor(fx);
  x = fnmadd(fx, VecF::broadcast(kExpC1), x);
  x = fnmadd(fx, VecF::broadcast(kExpC2), x);
  VecF y = VecF::broadcast(kExpP0);
  y = fmadd(y, x, VecF::broadcast(kExpP1));
  y = fmadd(y, x, VecF::broadcast(kExpP2));
  y = fmadd(y, x, VecF::broadcast(kExpP3));
  y = fmadd(y, x, VecF::broadcast(kExpP4));
  y = fmadd(y, x, VecF::broadcast(kExpP5));
  const VecF z = mul(x, x);
  y = fmadd(y, z, x);
  y = add(y, VecF::broadcast(1.0f));
  return mul(y, pow2i(fx));
}

/// 1 / (1 + exp(-x)).
[[nodiscard]] inline VecF sigmoid(VecF x) noexcept {
  const VecF one = VecF::broadcast(1.0f);
  const VecF e = exp(sub(VecF::zero(), x));
  return div(one, add(one, e));
}

/// 2*sigmoid(2x) - 1.
[[nodiscard]] inline VecF tanh(VecF x) noexcept {
  const VecF s = sigmoid(add(x, x));
  return sub(add(s, s), VecF::broadcast(1.0f));
}

// ---------------------------------------------------------------------------
// Scalar reference implementations (simd.cpp): operation-for-operation the
// same algorithm as the vector versions, so a correct backend matches them
// bit for bit lane by lane.
// ---------------------------------------------------------------------------

[[nodiscard]] float exp_ref(float x) noexcept;
[[nodiscard]] float sigmoid_ref(float x) noexcept;
[[nodiscard]] float tanh_ref(float x) noexcept;

/// The configure-time backend ("avx2", "neon" or "scalar").
[[nodiscard]] const char* backend_name() noexcept;

/// Verify the active backend against the scalar references on a
/// deterministic input sweep (bit-equality for exp/sigmoid/tanh/fmadd,
/// tolerance for the horizontal sum). False on mismatch, with a diagnostic
/// in *error when given.
[[nodiscard]] bool self_test(std::string* error = nullptr);

/// Run self_test() once per process; throws std::runtime_error on failure.
/// Called by ml::BatchedEnsemble before the first batched scan.
void ensure_verified();

// ---------------------------------------------------------------------------
// 64-byte-aligned float storage for packed weights and activation panels.
// ---------------------------------------------------------------------------

template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, kAlign); }

  template <typename U>
  [[nodiscard]] bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

using AlignedVectorF = AlignedVector<float>;

}  // namespace pt::common::simd
