#include "common/cli.hpp"

#include <cstdlib>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace pt::common {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::optional<std::string> CliArgs::value(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  return value(name).value_or(fallback);
}

long CliArgs::get(const std::string& name, long fallback) const {
  const auto v = value(name);
  if (!v) return fallback;
  return std::strtol(v->c_str(), nullptr, 10);
}

double CliArgs::get(const std::string& name, double fallback) const {
  const auto v = value(name);
  if (!v) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool CliArgs::get(const std::string& name, bool fallback) const {
  if (!has(name)) return fallback;
  const auto v = value(name);
  if (!v) return true;  // bare --flag
  return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
}

std::size_t thread_count_from(const CliArgs& args) {
  const long n = args.get("threads", 0L);
  if (n > 0) return static_cast<std::size_t>(n);
  return default_thread_count();
}

void apply_thread_option(const CliArgs& args) {
  const long n = args.get("threads", 0L);
  set_global_pool_threads(n > 0 ? static_cast<std::size_t>(n) : 0);
}

}  // namespace pt::common
