#pragma once

// Minimal ordered JSON document builder for bench reports and telemetry
// exports. Insertion order of object keys is preserved (reports stay
// diffable), numbers round-trip through the shortest decimal form that
// parses back exactly, and non-finite doubles are emitted as null (JSON has
// no NaN/Inf). Build-only: there is deliberately no parser here.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pt::common::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() noexcept : type_(Type::kNull) {}
  Value(bool b) noexcept : type_(Type::kBool), bool_(b) {}
  Value(double v) noexcept : type_(Type::kNumber), number_(v) {}
  Value(int v) noexcept : Value(static_cast<double>(v)) {}
  Value(unsigned v) noexcept : Value(static_cast<double>(v)) {}
  Value(long v) noexcept : Value(static_cast<double>(v)) {}
  Value(unsigned long v) noexcept : Value(static_cast<double>(v)) {}
  Value(long long v) noexcept : Value(static_cast<double>(v)) {}
  Value(unsigned long long v) noexcept : Value(static_cast<double>(v)) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Value(std::string_view s) : Value(std::string(s)) {}
  Value(const char* s) : Value(std::string(s)) {}

  [[nodiscard]] static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }
  [[nodiscard]] static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }

  /// Object: set (or replace) a key, keeping first-insertion order.
  /// Throws std::logic_error when called on a non-object.
  Value& set(std::string key, Value value);

  /// Array: append an element. Throws std::logic_error on a non-array.
  Value& push(Value value);

  /// Object lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

  /// Elements of an array / entries of an object; 0 for scalars.
  [[nodiscard]] std::size_t size() const noexcept;

  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] const std::string& as_string() const noexcept {
    return string_;
  }
  [[nodiscard]] const std::vector<Value>& items() const noexcept {
    return array_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& entries()
      const noexcept {
    return object_;
  }

  /// Serialize. indent > 0 pretty-prints with that many spaces per level;
  /// indent == 0 emits the compact one-line form.
  void write(std::ostream& os, int indent = 2) const;
  [[nodiscard]] std::string dump(int indent = 2) const;

 private:
  void write_at(std::ostream& os, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string escape(std::string_view s);

/// Shortest decimal form of `v` that parses back to exactly `v`
/// ("1.5", "0.1", "3"); "null" for NaN/Inf.
[[nodiscard]] std::string number_to_string(double v);

/// Write `value` to `path` (pretty, trailing newline). False on I/O failure.
bool write_file(const Value& value, const std::string& path);

}  // namespace pt::common::json
