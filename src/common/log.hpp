#pragma once

// Leveled logging with a process-global threshold. Kept intentionally tiny:
// the runtime and tuner emit progress lines; tests silence them.

#include <sstream>
#include <string>

namespace pt::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the process-wide minimum level that is emitted.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit a single line at the given level (thread-safe).
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(const Args&... args) {
  std::ostringstream ss;
  (void)(ss << ... << args);  // void: the fold is just `ss` for empty packs
  return ss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(args...));
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(args...));
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(args...));
}

template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(args...));
}

/// RAII guard that lowers/raises the log level for a scope (used in tests).
class ScopedLogLevel {
 public:
  explicit ScopedLogLevel(LogLevel level) : previous_(log_level()) {
    set_log_level(level);
  }
  ~ScopedLogLevel() { set_log_level(previous_); }
  ScopedLogLevel(const ScopedLogLevel&) = delete;
  ScopedLogLevel& operator=(const ScopedLogLevel&) = delete;

 private:
  LogLevel previous_;
};

}  // namespace pt::common
