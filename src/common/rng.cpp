#include "common/rng.hpp"

#include <stdexcept>
#include <unordered_set>

namespace pt::common {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // For dense requests, do a partial Fisher-Yates over an index array; for
  // sparse requests over huge n (our configuration spaces reach millions),
  // use Floyd's algorithm with a hash set so memory stays O(k).
  if (n <= 4 * k || n < (1u << 20)) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(below(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k * 2);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(below(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  shuffle(out);
  return out;
}

}  // namespace pt::common
