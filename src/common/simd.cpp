#include "common/simd.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <stdexcept>

namespace pt::common::simd {

namespace {

// Scalar mirror of pow2i: build 2^n from the exponent bits directly.
float pow2i_ref(float n) noexcept {
  const auto e = static_cast<std::int32_t>(n) + 127;
  return std::bit_cast<float>(e << 23);
}

}  // namespace

float exp_ref(float x) noexcept {
  using namespace detail;
  x = x < kExpHi ? x : kExpHi;
  x = x > kExpLo ? x : kExpLo;
  float fx = std::floor(std::fma(x, kLog2e, 0.5f));
  x = std::fma(-fx, kExpC1, x);
  x = std::fma(-fx, kExpC2, x);
  float y = kExpP0;
  y = std::fma(y, x, kExpP1);
  y = std::fma(y, x, kExpP2);
  y = std::fma(y, x, kExpP3);
  y = std::fma(y, x, kExpP4);
  y = std::fma(y, x, kExpP5);
  y = std::fma(y, x * x, x);
  y += 1.0f;
  return y * pow2i_ref(fx);
}

float sigmoid_ref(float x) noexcept { return 1.0f / (1.0f + exp_ref(-x)); }

float tanh_ref(float x) noexcept {
  const float s = sigmoid_ref(x + x);
  return (s + s) - 1.0f;
}

const char* backend_name() noexcept {
#if defined(PT_SIMD_AVX2)
  return "avx2";
#elif defined(PT_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

namespace {

bool fail(std::string* error, const char* what, float input, float got,
          float want) {
  if (error) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "simd self_test: %s(%a) = %a on backend %s, scalar "
                  "reference gives %a",
                  what, static_cast<double>(input), static_cast<double>(got),
                  backend_name(), static_cast<double>(want));
    *error = buf;
  }
  return false;
}

}  // namespace

bool self_test(std::string* error) {
  // Deterministic sweep: dense near zero (where sigmoid/tanh cancellation
  // lives), log-spaced toward the exp clamp range, both signs, plus the
  // clamp boundaries themselves and values beyond them.
  std::vector<float> inputs;
  for (int i = -400; i <= 400; ++i)
    inputs.push_back(static_cast<float>(i) * 0.03125f);
  for (int i = 0; i < 64; ++i) {
    const float m = 12.5f + static_cast<float>(i) * 1.25f;
    inputs.push_back(m);
    inputs.push_back(-m);
  }
  inputs.insert(inputs.end(),
                {detail::kExpHi, detail::kExpLo, 100.0f, -100.0f, 1e4f, -1e4f,
                 0.0f, -0.0f});
  while (inputs.size() % kWidth != 0) inputs.push_back(0.0f);

  float lanes[kWidth];
  for (std::size_t base = 0; base < inputs.size(); base += kWidth) {
    const float* in = inputs.data() + base;
    const VecF x = VecF::load(in);

    exp(x).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float want = exp_ref(in[l]);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "exp", in[l], lanes[l], want);
    }
    sigmoid(x).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float want = sigmoid_ref(in[l]);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "sigmoid", in[l], lanes[l], want);
    }
    tanh(x).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float want = tanh_ref(in[l]);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "tanh", in[l], lanes[l], want);
    }

    // fmadd must be a true fused multiply-add (single rounding): pick
    // operands whose product is inexact in fp32 so an unfused mul+add
    // differs.
    const VecF a = VecF::broadcast(1.0f + 0x1p-12f);
    fmadd(x, a, VecF::broadcast(3.0f)).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float want = std::fma(in[l], 1.0f + 0x1p-12f, 3.0f);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "fmadd", in[l], lanes[l], want);
    }
    fnmadd(x, a, VecF::broadcast(3.0f)).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float want = std::fma(-in[l], 1.0f + 0x1p-12f, 3.0f);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "fnmadd", in[l], lanes[l], want);
    }

    floor(x).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float want = std::floor(in[l]);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "floor", in[l], lanes[l], want);
    }

    // hsum: compare against a double-precision lane sum. A pairwise fp32
    // reduction of kWidth lanes stays within a few ULP of it.
    const float got = hsum(x);
    double want_d = 0.0;
    float mag = 0.0f;
    for (std::size_t l = 0; l < kWidth; ++l) {
      want_d += static_cast<double>(in[l]);
      mag += std::fabs(in[l]);
    }
    const float tol = 8.0f * mag * 0x1p-24f + 1e-30f;
    if (std::fabs(got - static_cast<float>(want_d)) > tol)
      return fail(error, "hsum", in[0], got, static_cast<float>(want_d));
  }

  // pow2i over its full documented domain.
  for (int n = -126; n <= 127; n += static_cast<int>(kWidth)) {
    for (std::size_t l = 0; l < kWidth; ++l)
      lanes[l] = static_cast<float>(
          std::min(n + static_cast<int>(l), 127));
    const VecF x = VecF::load(lanes);
    pow2i(x).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float in_l =
          static_cast<float>(std::min(n + static_cast<int>(l), 127));
      const float want = pow2i_ref(in_l);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "pow2i", in_l, lanes[l], want);
    }
  }

  return true;
}

void ensure_verified() {
  static std::once_flag flag;
  static std::string failure;
  std::call_once(flag, [] {
    std::string err;
    if (!self_test(&err)) failure = err;
  });
  if (!failure.empty()) throw std::runtime_error(failure);
}

}  // namespace pt::common::simd
