#include "common/simd.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>

namespace pt::common::simd {

namespace {

// Scalar mirror of pow2i: build 2^n from the exponent bits directly.
float pow2i_ref(float n) noexcept {
  const auto e = static_cast<std::int32_t>(n) + 127;
  return std::bit_cast<float>(e << 23);
}

}  // namespace

float exp_ref(float x) noexcept {
  using namespace detail;
  x = x < kExpHi ? x : kExpHi;
  x = x > kExpLo ? x : kExpLo;
  float fx = std::floor(std::fma(x, kLog2e, 0.5f));
  x = std::fma(-fx, kExpC1, x);
  x = std::fma(-fx, kExpC2, x);
  float y = kExpP0;
  y = std::fma(y, x, kExpP1);
  y = std::fma(y, x, kExpP2);
  y = std::fma(y, x, kExpP3);
  y = std::fma(y, x, kExpP4);
  y = std::fma(y, x, kExpP5);
  y = std::fma(y, x * x, x);
  y += 1.0f;
  return y * pow2i_ref(fx);
}

float sigmoid_ref(float x) noexcept { return 1.0f / (1.0f + exp_ref(-x)); }

float tanh_ref(float x) noexcept {
  const float s = sigmoid_ref(x + x);
  return (s + s) - 1.0f;
}

namespace {

// Scalar references for the integer microkernels: plain loops over the same
// packed layouts. Integer arithmetic is exact, so a correct vector
// implementation matches these value for value.
void gemv_u7s8_ref(const std::uint8_t* a, const std::int8_t* w,
                   std::size_t in, std::size_t channels,
                   std::int32_t* out) noexcept {
  for (std::size_t c0 = 0; c0 < channels; c0 += kQuantChannelBlock) {
    const std::int8_t* block = w + c0 * in;
    for (std::size_t j = 0; j < kQuantChannelBlock; ++j) {
      std::int32_t acc = 0;
      for (std::size_t q = 0; q < in; q += kQuantInputQuad) {
        const std::int8_t* group = block + q * kQuantChannelBlock;
        for (std::size_t k = 0; k < kQuantInputQuad; ++k)
          acc += static_cast<std::int32_t>(a[q + k]) *
                 static_cast<std::int32_t>(group[kQuantInputQuad * j + k]);
      }
      out[c0 + j] = acc;
    }
  }
}

std::int32_t dot_u7s8_ref(const std::uint8_t* a, const std::int8_t* w,
                          std::size_t n) noexcept {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i)
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(w[i]);
  return acc;
}

void quantize_u7_ref(const float* x, const float* lo, const float* inv_step,
                     std::size_t n, std::uint8_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    const auto q =
        static_cast<std::int32_t>(std::lrintf((x[i] - lo[i]) * inv_step[i]));
    out[i] = static_cast<std::uint8_t>(std::clamp(q, 0, 127));
  }
}

void requant_lut_u8_ref(const std::int32_t* acc, const std::int32_t* bias,
                        const std::int32_t* shift, std::size_t n,
                        const std::int32_t* lut, std::int32_t size,
                        std::uint8_t* out) noexcept {
  for (std::size_t c = 0; c < n; ++c) {
    // C++20: >> on a negative value is an arithmetic shift (floor division).
    std::int32_t idx = (acc[c] + bias[c]) >> shift[c];
    idx = idx < 0 ? 0 : idx;
    idx = idx >= size ? size - 1 : idx;
    out[c] = static_cast<std::uint8_t>(lut[idx]);
  }
}

// The fused forward IS the three-kernel composition, tiled over fixed
// 32-channel stack buffers (channels is a multiple of kQuantDotAlign, and
// the gemv/requant/dot channel loops are all elementwise, so tiling does
// not change any intermediate value).
std::int32_t forward1_u7s8_ref(const std::uint8_t* a, const std::int8_t* w,
                               std::size_t in, std::size_t channels,
                               const std::int32_t* bias,
                               const std::int32_t* shift,
                               const std::int32_t* lut, std::int32_t size,
                               const std::int8_t* outw) noexcept {
  std::int32_t dot = 0;
  for (std::size_t c0 = 0; c0 < channels; c0 += kQuantDotAlign) {
    std::int32_t acc[kQuantDotAlign];
    std::uint8_t act[kQuantDotAlign];
    gemv_u7s8_ref(a, w + c0 * in, in, kQuantDotAlign, acc);
    requant_lut_u8_ref(acc, bias + c0, shift + c0, kQuantDotAlign, lut, size,
                       act);
    dot += dot_u7s8_ref(act, outw + c0, kQuantDotAlign);
  }
  return dot;
}

}  // namespace

#if defined(PT_SIMD_AVX2)

void gemv_u7s8(const std::uint8_t* a, const std::int8_t* w, std::size_t in,
               std::size_t channels, std::int32_t* out) noexcept {
  // dpbusd emulation: broadcast an activation dword (4 u7 bytes) against a
  // 32-byte group of 8 channels x 4 inputs. maddubs yields the 16 pair
  // sums in s16 (no saturation: u7 * s8 * 2 fits), and madd-by-ones folds
  // the two adjacent pair sums of each channel into an exact s32.
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::size_t c0 = 0; c0 < channels; c0 += kQuantChannelBlock) {
    const std::int8_t* block = w + c0 * in;
    __m256i acc = _mm256_setzero_si256();  // channels c0 .. c0+7
    for (std::size_t q = 0; q < in; q += kQuantInputQuad) {
      std::uint32_t quad;
      std::memcpy(&quad, a + q, sizeof quad);
      const __m256i av = _mm256_set1_epi32(static_cast<int>(quad));
      const __m256i wv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          block + q * kQuantChannelBlock));
      const __m256i prod = _mm256_maddubs_epi16(av, wv);
      acc = _mm256_add_epi32(acc, _mm256_madd_epi16(prod, ones));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c0), acc);
  }
}

std::int32_t dot_u7s8(const std::uint8_t* a, const std::int8_t* w,
                      std::size_t n) noexcept {
  const __m256i ones = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  for (std::size_t i = 0; i < n; i += 32) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i wv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    const __m256i prod = _mm256_maddubs_epi16(av, wv);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(prod, ones));
  }
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x55));
  return _mm_cvtsi128_si32(s);
}

void quantize_u7(const float* x, const float* lo, const float* inv_step,
                 std::size_t n, std::uint8_t* out) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i hi = _mm256_set1_epi32(127);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_mul_ps(
        _mm256_sub_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(lo + i)),
        _mm256_loadu_ps(inv_step + i));
    __m256i q = _mm256_cvtps_epi32(v);  // round-to-nearest-even
    q = _mm256_min_epi32(_mm256_max_epi32(q, zero), hi);
    const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                        _mm256_extracti128_si256(q, 1));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i),
                     _mm_packus_epi16(p16, p16));
  }
  if (i < n) quantize_u7_ref(x + i, lo + i, inv_step + i, n - i, out + i);
}

void requant_lut_u8(const std::int32_t* acc, const std::int32_t* bias,
                    const std::int32_t* shift, std::size_t n,
                    const std::int32_t* lut, std::int32_t size,
                    std::uint8_t* out) noexcept {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i hi_idx = _mm256_set1_epi32(size - 1);
  std::size_t c = 0;
  for (; c + 16 <= n; c += 16) {
    __m256i v0 = _mm256_add_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + c)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bias + c)));
    __m256i v1 = _mm256_add_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + c + 8)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bias + c + 8)));
    v0 = _mm256_srav_epi32(
        v0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(shift + c)));
    v1 = _mm256_srav_epi32(
        v1,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(shift + c + 8)));
    v0 = _mm256_min_epi32(_mm256_max_epi32(v0, zero), hi_idx);
    v1 = _mm256_min_epi32(_mm256_max_epi32(v1, zero), hi_idx);
    v0 = _mm256_i32gather_epi32(lut, v0, 4);
    v1 = _mm256_i32gather_epi32(lut, v1, 4);
    // Narrow the 16 gathered u7 values to bytes in channel order: the pack
    // instructions interleave 128-bit lanes, so a dword permute restores it.
    const __m256i p16 = _mm256_packs_epi32(v0, v1);
    const __m256i p8 = _mm256_packus_epi16(p16, p16);
    const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 0, 0, 0, 0);
    const __m256i packed = _mm256_permutevar8x32_epi32(p8, order);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + c),
                     _mm256_castsi256_si128(packed));
  }
  if (c < n)
    requant_lut_u8_ref(acc + c, bias + c, shift + c, n - c, lut, size,
                       out + c);
}

std::int32_t forward1_u7s8(const std::uint8_t* a, const std::int8_t* w,
                           std::size_t in, std::size_t channels,
                           const std::int32_t* bias, const std::int32_t* shift,
                           const std::int32_t* lut, std::int32_t size,
                           const std::int8_t* outw) noexcept {
  // Per 32-channel group: the gemv inner loop with four live accumulators
  // (one per 8-channel block), then the requant sequence on each
  // accumulator in registers, then pack-to-bytes and one maddubs against
  // the output column. Identical integer ops to the three-kernel
  // composition, so the result is bit-equal.
  const __m256i ones = _mm256_set1_epi16(1);
  const __m256i zero = _mm256_setzero_si256();
  const __m256i hi_idx = _mm256_set1_epi32(size - 1);
  __m256i dacc = _mm256_setzero_si256();
  for (std::size_t c0 = 0; c0 < channels; c0 += 4 * kQuantChannelBlock) {
    const std::int8_t* tile = w + c0 * in;
    const std::size_t stride = in * kQuantChannelBlock;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    for (std::size_t q = 0; q < in; q += kQuantInputQuad) {
      std::uint32_t quad;
      std::memcpy(&quad, a + q, sizeof quad);
      const __m256i av = _mm256_set1_epi32(static_cast<int>(quad));
      const std::int8_t* g = tile + q * kQuantChannelBlock;
      const __m256i w0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(g));
      const __m256i w1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(g + stride));
      const __m256i w2 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(g + 2 * stride));
      const __m256i w3 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(g + 3 * stride));
      acc0 = _mm256_add_epi32(
          acc0, _mm256_madd_epi16(_mm256_maddubs_epi16(av, w0), ones));
      acc1 = _mm256_add_epi32(
          acc1, _mm256_madd_epi16(_mm256_maddubs_epi16(av, w1), ones));
      acc2 = _mm256_add_epi32(
          acc2, _mm256_madd_epi16(_mm256_maddubs_epi16(av, w2), ones));
      acc3 = _mm256_add_epi32(
          acc3, _mm256_madd_epi16(_mm256_maddubs_epi16(av, w3), ones));
    }
    const auto requant8 = [&](__m256i acc, std::size_t c) noexcept {
      __m256i v = _mm256_add_epi32(
          acc,
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bias + c)));
      v = _mm256_srav_epi32(
          v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(shift + c)));
      v = _mm256_min_epi32(_mm256_max_epi32(v, zero), hi_idx);
      return _mm256_i32gather_epi32(lut, v, 4);
    };
    const __m256i a0 = requant8(acc0, c0);
    const __m256i a1 = requant8(acc1, c0 + 8);
    const __m256i a2 = requant8(acc2, c0 + 16);
    const __m256i a3 = requant8(acc3, c0 + 24);
    // Narrow the 32 u7 dwords to bytes in channel order (the pack
    // instructions interleave 128-bit lanes; the dword permute undoes it).
    const __m256i p16lo = _mm256_packs_epi32(a0, a1);
    const __m256i p16hi = _mm256_packs_epi32(a2, a3);
    const __m256i p8 = _mm256_packus_epi16(p16lo, p16hi);
    const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    const __m256i act = _mm256_permutevar8x32_epi32(p8, order);
    const __m256i wv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(outw + c0));
    dacc = _mm256_add_epi32(
        dacc, _mm256_madd_epi16(_mm256_maddubs_epi16(act, wv), ones));
  }
  const __m128i lo = _mm256_castsi256_si128(dacc);
  const __m128i hi = _mm256_extracti128_si256(dacc, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x55));
  return _mm_cvtsi128_si32(s);
}

#else  // NEON and scalar backends use the exact reference loops.

void gemv_u7s8(const std::uint8_t* a, const std::int8_t* w, std::size_t in,
               std::size_t channels, std::int32_t* out) noexcept {
  gemv_u7s8_ref(a, w, in, channels, out);
}

std::int32_t dot_u7s8(const std::uint8_t* a, const std::int8_t* w,
                      std::size_t n) noexcept {
  return dot_u7s8_ref(a, w, n);
}

void quantize_u7(const float* x, const float* lo, const float* inv_step,
                 std::size_t n, std::uint8_t* out) noexcept {
  quantize_u7_ref(x, lo, inv_step, n, out);
}

void requant_lut_u8(const std::int32_t* acc, const std::int32_t* bias,
                    const std::int32_t* shift, std::size_t n,
                    const std::int32_t* lut, std::int32_t size,
                    std::uint8_t* out) noexcept {
  requant_lut_u8_ref(acc, bias, shift, n, lut, size, out);
}

std::int32_t forward1_u7s8(const std::uint8_t* a, const std::int8_t* w,
                           std::size_t in, std::size_t channels,
                           const std::int32_t* bias, const std::int32_t* shift,
                           const std::int32_t* lut, std::int32_t size,
                           const std::int8_t* outw) noexcept {
  return forward1_u7s8_ref(a, w, in, channels, bias, shift, lut, size, outw);
}

#endif

const char* backend_name() noexcept {
#if defined(PT_SIMD_AVX2)
  return "avx2";
#elif defined(PT_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

namespace {

bool fail(std::string* error, const char* what, float input, float got,
          float want) {
  if (error) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "simd self_test: %s(%a) = %a on backend %s, scalar "
                  "reference gives %a",
                  what, static_cast<double>(input), static_cast<double>(got),
                  backend_name(), static_cast<double>(want));
    *error = buf;
  }
  return false;
}

}  // namespace

bool self_test(std::string* error) {
  // Deterministic sweep: dense near zero (where sigmoid/tanh cancellation
  // lives), log-spaced toward the exp clamp range, both signs, plus the
  // clamp boundaries themselves and values beyond them.
  std::vector<float> inputs;
  for (int i = -400; i <= 400; ++i)
    inputs.push_back(static_cast<float>(i) * 0.03125f);
  for (int i = 0; i < 64; ++i) {
    const float m = 12.5f + static_cast<float>(i) * 1.25f;
    inputs.push_back(m);
    inputs.push_back(-m);
  }
  inputs.insert(inputs.end(),
                {detail::kExpHi, detail::kExpLo, 100.0f, -100.0f, 1e4f, -1e4f,
                 0.0f, -0.0f});
  while (inputs.size() % kWidth != 0) inputs.push_back(0.0f);

  float lanes[kWidth];
  for (std::size_t base = 0; base < inputs.size(); base += kWidth) {
    const float* in = inputs.data() + base;
    const VecF x = VecF::load(in);

    exp(x).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float want = exp_ref(in[l]);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "exp", in[l], lanes[l], want);
    }
    sigmoid(x).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float want = sigmoid_ref(in[l]);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "sigmoid", in[l], lanes[l], want);
    }
    tanh(x).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float want = tanh_ref(in[l]);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "tanh", in[l], lanes[l], want);
    }

    // fmadd must be a true fused multiply-add (single rounding): pick
    // operands whose product is inexact in fp32 so an unfused mul+add
    // differs.
    const VecF a = VecF::broadcast(1.0f + 0x1p-12f);
    fmadd(x, a, VecF::broadcast(3.0f)).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float want = std::fma(in[l], 1.0f + 0x1p-12f, 3.0f);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "fmadd", in[l], lanes[l], want);
    }
    fnmadd(x, a, VecF::broadcast(3.0f)).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float want = std::fma(-in[l], 1.0f + 0x1p-12f, 3.0f);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "fnmadd", in[l], lanes[l], want);
    }

    floor(x).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float want = std::floor(in[l]);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "floor", in[l], lanes[l], want);
    }

    // hsum: compare against a double-precision lane sum. A pairwise fp32
    // reduction of kWidth lanes stays within a few ULP of it.
    const float got = hsum(x);
    double want_d = 0.0;
    float mag = 0.0f;
    for (std::size_t l = 0; l < kWidth; ++l) {
      want_d += static_cast<double>(in[l]);
      mag += std::fabs(in[l]);
    }
    const float tol = 8.0f * mag * 0x1p-24f + 1e-30f;
    if (std::fabs(got - static_cast<float>(want_d)) > tol)
      return fail(error, "hsum", in[0], got, static_cast<float>(want_d));
  }

  // VecD: element-wise add/mul must round exactly like the scalar operators
  // and hsum_pairwise must reproduce the (l0+l1)+(l2+l3) combine.
  {
    double da[kWidthD];
    double db[kWidthD];
    double lanes_d[kWidthD];
    std::uint64_t state = 0x9e3779b97f4a7c15ULL;
    const auto next = [&state] {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      return static_cast<double>(static_cast<std::int64_t>(state >> 11)) *
             0x1p-40;
    };
    for (int trial = 0; trial < 64; ++trial) {
      for (std::size_t l = 0; l < kWidthD; ++l) {
        da[l] = next();
        db[l] = next();
      }
      const VecD xa = VecD::load(da);
      const VecD xb = VecD::load(db);
      add(xa, xb).store(lanes_d);
      for (std::size_t l = 0; l < kWidthD; ++l) {
        const double want = da[l] + db[l];
        if (std::bit_cast<std::uint64_t>(lanes_d[l]) !=
            std::bit_cast<std::uint64_t>(want))
          return fail(error, "vecd_add", static_cast<float>(da[l]),
                      static_cast<float>(lanes_d[l]),
                      static_cast<float>(want));
      }
      mul(xa, xb).store(lanes_d);
      for (std::size_t l = 0; l < kWidthD; ++l) {
        const double want = da[l] * db[l];
        if (std::bit_cast<std::uint64_t>(lanes_d[l]) !=
            std::bit_cast<std::uint64_t>(want))
          return fail(error, "vecd_mul", static_cast<float>(da[l]),
                      static_cast<float>(lanes_d[l]),
                      static_cast<float>(want));
      }
      const double got_h = hsum_pairwise(xa);
      const double want_h = (da[0] + da[1]) + (da[2] + da[3]);
      if (std::bit_cast<std::uint64_t>(got_h) !=
          std::bit_cast<std::uint64_t>(want_h))
        return fail(error, "vecd_hsum", static_cast<float>(da[0]),
                    static_cast<float>(got_h), static_cast<float>(want_h));
    }
  }

  // load_f16 must widen exactly like the scalar f16_to_f32 (normals,
  // subnormals, zeros, both signs).
  {
    std::uint16_t halves[kWidth];
    float lanes_h[kWidth];
    std::uint32_t h = 1;
    for (int trial = 0; trial < 512; ++trial) {
      for (std::size_t l = 0; l < kWidth; ++l) {
        h = h * 1664525U + 1013904223U;
        // Exclude exponent 31 (inf/nan patterns never occur in packed
        // weights and compare unequal as floats anyway).
        std::uint16_t bits = static_cast<std::uint16_t>(h >> 16);
        if (((bits >> 10) & 0x1FU) == 0x1FU)
          bits = static_cast<std::uint16_t>(bits & 0x83FFU);
        halves[l] = bits;
      }
      load_f16(halves).store(lanes_h);
      for (std::size_t l = 0; l < kWidth; ++l) {
        const float want = f16_to_f32(halves[l]);
        if (std::bit_cast<std::uint32_t>(lanes_h[l]) !=
            std::bit_cast<std::uint32_t>(want))
          return fail(error, "load_f16", static_cast<float>(halves[l]),
                      lanes_h[l], want);
      }
    }
  }

  // Integer microkernels against the scalar reference loops (exact).
  {
    constexpr std::size_t kIn = 20;        // a multiple of kQuantInputQuad
    constexpr std::size_t kChannels = 32;  // four channel blocks
    std::uint8_t act[kIn];
    std::int8_t panel[kIn * kChannels];
    std::int32_t got32[kChannels];
    std::int32_t want32[kChannels];
    std::uint32_t h = 12345;
    const auto nextu = [&h] {
      h = h * 1664525U + 1013904223U;
      return h >> 16;
    };
    for (int trial = 0; trial < 16; ++trial) {
      for (auto& v : act) v = static_cast<std::uint8_t>(nextu() % 128);
      for (auto& v : panel)
        v = static_cast<std::int8_t>(static_cast<int>(nextu() % 255) - 127);
      gemv_u7s8(act, panel, kIn, kChannels, got32);
      gemv_u7s8_ref(act, panel, kIn, kChannels, want32);
      for (std::size_t c = 0; c < kChannels; ++c)
        if (got32[c] != want32[c])
          return fail(error, "gemv_u7s8", static_cast<float>(c),
                      static_cast<float>(got32[c]),
                      static_cast<float>(want32[c]));

      std::uint8_t dact[kQuantDotAlign * 2];
      std::int8_t dw[kQuantDotAlign * 2];
      for (auto& v : dact) v = static_cast<std::uint8_t>(nextu() % 128);
      for (auto& v : dw)
        v = static_cast<std::int8_t>(static_cast<int>(nextu() % 255) - 127);
      const std::int32_t got_dot = dot_u7s8(dact, dw, kQuantDotAlign * 2);
      const std::int32_t want_dot =
          dot_u7s8_ref(dact, dw, kQuantDotAlign * 2);
      if (got_dot != want_dot)
        return fail(error, "dot_u7s8", 0.0f, static_cast<float>(got_dot),
                    static_cast<float>(want_dot));

      constexpr std::int32_t kLutSize = 512;
      std::int32_t lut[kLutSize];
      for (std::int32_t i = 0; i < kLutSize; ++i) lut[i] = (i * 7) % 128;
      std::int32_t racc[kChannels];
      std::int32_t rbias[kChannels];
      std::int32_t rshift[kChannels];
      std::uint8_t got8[kChannels];
      std::uint8_t want8[kChannels];
      for (std::size_t c = 0; c < kChannels; ++c) {
        racc[c] = static_cast<std::int32_t>(nextu() % 2000000U) - 1000000;
        rbias[c] = static_cast<std::int32_t>(nextu() % 2000000U) - 1000000;
        rshift[c] = static_cast<std::int32_t>(nextu() % 16U);
      }
      requant_lut_u8(racc, rbias, rshift, kChannels, lut, kLutSize, got8);
      requant_lut_u8_ref(racc, rbias, rshift, kChannels, lut, kLutSize,
                         want8);
      for (std::size_t c = 0; c < kChannels; ++c)
        if (got8[c] != want8[c])
          return fail(error, "requant_lut_u8", static_cast<float>(c),
                      static_cast<float>(got8[c]),
                      static_cast<float>(want8[c]));

      // quantize_u7: odd length exercises the vector body and the tail;
      // values deliberately overshoot both clamp edges.
      constexpr std::size_t kQn = 19;
      float qx[kQn];
      float qlo[kQn];
      float qinv[kQn];
      std::uint8_t qgot[kQn];
      std::uint8_t qwant[kQn];
      for (std::size_t i = 0; i < kQn; ++i) {
        qx[i] = (static_cast<float>(nextu() % 4000U) - 1000.0f) / 100.0f;
        qlo[i] = (static_cast<float>(nextu() % 1000U) - 500.0f) / 100.0f;
        qinv[i] = i % 7 == 0 ? 0.0f  // degenerate calibration range
                             : static_cast<float>(nextu() % 1000U) / 100.0f;
      }
      quantize_u7(qx, qlo, qinv, kQn, qgot);
      quantize_u7_ref(qx, qlo, qinv, kQn, qwant);
      for (std::size_t i = 0; i < kQn; ++i)
        if (qgot[i] != qwant[i])
          return fail(error, "quantize_u7", qx[i],
                      static_cast<float>(qgot[i]),
                      static_cast<float>(qwant[i]));

      // forward1_u7s8: two 32-channel groups so the group loop iterates;
      // must equal the gemv -> requant -> dot composition exactly.
      constexpr std::size_t kFwdCh = kQuantDotAlign * 2;
      std::int8_t fpanel[kIn * kFwdCh];
      std::int32_t fbias[kFwdCh];
      std::int32_t fshift[kFwdCh];
      std::int8_t foutw[kFwdCh];
      for (auto& v : fpanel)
        v = static_cast<std::int8_t>(static_cast<int>(nextu() % 255) - 127);
      for (std::size_t c = 0; c < kFwdCh; ++c) {
        fbias[c] = static_cast<std::int32_t>(nextu() % 2000000U) - 1000000;
        fshift[c] = static_cast<std::int32_t>(nextu() % 16U);
        foutw[c] =
            static_cast<std::int8_t>(static_cast<int>(nextu() % 255) - 127);
      }
      std::int32_t facc[kFwdCh];
      std::uint8_t fact[kFwdCh];
      gemv_u7s8(act, fpanel, kIn, kFwdCh, facc);
      requant_lut_u8(facc, fbias, fshift, kFwdCh, lut, kLutSize, fact);
      const std::int32_t want_fwd = dot_u7s8(fact, foutw, kFwdCh);
      const std::int32_t want_fwd_ref = forward1_u7s8_ref(
          act, fpanel, kIn, kFwdCh, fbias, fshift, lut, kLutSize, foutw);
      const std::int32_t got_fwd = forward1_u7s8(
          act, fpanel, kIn, kFwdCh, fbias, fshift, lut, kLutSize, foutw);
      if (got_fwd != want_fwd || got_fwd != want_fwd_ref)
        return fail(error, "forward1_u7s8", static_cast<float>(want_fwd_ref),
                    static_cast<float>(got_fwd),
                    static_cast<float>(want_fwd));
    }
  }

  // pow2i over its full documented domain.
  for (int n = -126; n <= 127; n += static_cast<int>(kWidth)) {
    for (std::size_t l = 0; l < kWidth; ++l)
      lanes[l] = static_cast<float>(
          std::min(n + static_cast<int>(l), 127));
    const VecF x = VecF::load(lanes);
    pow2i(x).store(lanes);
    for (std::size_t l = 0; l < kWidth; ++l) {
      const float in_l =
          static_cast<float>(std::min(n + static_cast<int>(l), 127));
      const float want = pow2i_ref(in_l);
      if (std::bit_cast<std::uint32_t>(lanes[l]) !=
          std::bit_cast<std::uint32_t>(want))
        return fail(error, "pow2i", in_l, lanes[l], want);
    }
  }

  return true;
}

void ensure_verified() {
  static std::once_flag flag;
  static std::string failure;
  std::call_once(flag, [] {
    std::string err;
    if (!self_test(&err)) failure = err;
  });
  if (!failure.empty()) throw std::runtime_error(failure);
}

}  // namespace pt::common::simd
