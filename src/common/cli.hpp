#pragma once

// Minimal command-line option parser for the bench/example binaries.
// Supports --name=value, --name value, and boolean --flag forms.

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace pt::common {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Raw value of --name, if one was supplied.
  [[nodiscard]] std::optional<std::string> value(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  /// const char* fallbacks must not decay to the bool overload.
  [[nodiscard]] std::string get(const std::string& name,
                                const char* fallback) const {
    return get(name, std::string(fallback));
  }
  [[nodiscard]] long get(const std::string& name, long fallback) const;
  [[nodiscard]] double get(const std::string& name, double fallback) const;
  [[nodiscard]] bool get(const std::string& name, bool fallback) const;

  /// Positional (non --option) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::unordered_map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

/// Worker-thread count selected by --threads N; when the flag is absent or
/// non-positive, falls back to default_thread_count() (the PT_THREADS
/// environment variable, then hardware concurrency).
[[nodiscard]] std::size_t thread_count_from(const CliArgs& args);

/// Resize the global thread pool per --threads / PT_THREADS. Call once at
/// program start, right after parsing the arguments.
void apply_thread_option(const CliArgs& args);

}  // namespace pt::common
