#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pt::common::json {

Value& Value::set(std::string key, Value value) {
  if (type_ != Type::kObject)
    throw std::logic_error("json::Value::set on a non-object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Value& Value::push(Value value) {
  if (type_ != Type::kArray)
    throw std::logic_error("json::Value::push on a non-array");
  array_.push_back(std::move(value));
  return *this;
}

const Value* Value::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Value::size() const noexcept {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number_to_string(double v) {
  if (!std::isfinite(v)) return "null";
  // Integral values within the exactly-representable range print as
  // integers (counts and sizes dominate our reports).
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest precision that round-trips.
  for (int precision = 15; precision <= 17; ++precision) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    double back = 0.0;
    if (std::sscanf(buf, "%lf", &back) == 1 && back == v) return buf;
  }
  return "0";  // unreachable: precision 17 always round-trips
}

void Value::write_at(std::ostream& os, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) *
                            static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";
  switch (type_) {
    case Type::kNull: os << "null"; break;
    case Type::kBool: os << (bool_ ? "true" : "false"); break;
    case Type::kNumber: os << number_to_string(number_); break;
    case Type::kString: os << '"' << escape(string_) << '"'; break;
    case Type::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[' << nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (indent > 0) os << pad;
        array_[i].write_at(os, indent, depth + 1);
        if (i + 1 < array_.size()) os << ',';
        os << nl;
      }
      if (indent > 0) os << close_pad;
      os << ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{' << nl;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (indent > 0) os << pad;
        os << '"' << escape(object_[i].first) << '"' << colon;
        object_[i].second.write_at(os, indent, depth + 1);
        if (i + 1 < object_.size()) os << ',';
        os << nl;
      }
      if (indent > 0) os << close_pad;
      os << '}';
      break;
    }
  }
}

void Value::write(std::ostream& os, int indent) const {
  write_at(os, indent, 0);
}

std::string Value::dump(int indent) const {
  std::ostringstream ss;
  write(ss, indent);
  return ss.str();
}

bool write_file(const Value& value, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  value.write(out);
  out << "\n";
  return static_cast<bool>(out);
}

}  // namespace pt::common::json
