#pragma once

// Small statistics toolkit used by the ML metrics, the experiment harnesses
// and the timing model's noise calibration.

#include <cstddef>
#include <span>
#include <vector>

namespace pt::common {

/// Welford online accumulator for mean/variance; numerically stable and
/// mergeable (parallel reductions combine partial accumulators).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1); 0 for fewer than two values.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Geometric mean; all inputs must be positive.
[[nodiscard]] double geometric_mean(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Sorts a copy.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5). Throws std::invalid_argument on an empty sample.
[[nodiscard]] double median(std::span<const double> xs);

/// Symmetrically trimmed mean: sorts a copy, drops floor(trim_fraction * n)
/// values from each end and averages the rest — the robust aggregator used
/// when repeating noisy measurements. trim_fraction must be in [0, 0.5);
/// trim_fraction == 0 is the plain mean. Throws std::invalid_argument on an
/// empty sample or an out-of-range fraction.
[[nodiscard]] double trimmed_mean(std::span<const double> xs,
                                  double trim_fraction);

/// Full summary of a sample (sorts a copy once).
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Pearson correlation coefficient; 0 if either side is constant.
[[nodiscard]] double pearson(std::span<const double> xs,
                             std::span<const double> ys);

/// Spearman rank correlation (average ranks for ties).
[[nodiscard]] double spearman(std::span<const double> xs,
                              std::span<const double> ys);

/// Ranks with ties averaged, 1-based, as used by spearman().
[[nodiscard]] std::vector<double> average_ranks(std::span<const double> xs);

}  // namespace pt::common
