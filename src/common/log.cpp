#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pt::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?    ";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::clog << "[" << level_tag(level) << "] " << message << '\n';
}

}  // namespace pt::common
