#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace pt::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, size()) * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk_size);
    futures.push_back(submit([&, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) {
        if (failed.load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pt::common
