#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace pt::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, size()) * 4);
  const std::size_t chunk_size =
      std::max((n + chunks - 1) / chunks, std::max<std::size_t>(1, grain));

  auto state = std::make_shared<ForState>();

  auto run_range = [&fn, state](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (state->failed.load(std::memory_order_relaxed)) break;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->first_error) state->first_error = std::current_exception();
        state->failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
    // Decrement under the state mutex so the waiter cannot observe zero and
    // destroy the state before notify runs.
    std::size_t left;
    {
      const std::lock_guard<std::mutex> lock(state->mutex);
      left = state->remaining.fetch_sub(1, std::memory_order_acq_rel) - 1;
    }
    if (left == 0) state->done.notify_all();
  };

  std::size_t enqueued = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * chunk_size;
      if (lo >= end) break;
      const std::size_t hi = std::min(end, lo + chunk_size);
      queue_.emplace([run_range, lo, hi] { run_range(lo, hi); });
      ++enqueued;
    }
    state->remaining.store(enqueued, std::memory_order_release);
  }
  cv_.notify_all();

  // Help drain the queue while our chunks are outstanding. Running tasks
  // here (including tasks of other callers) is what keeps nested
  // parallel_for calls from deadlocking a fully-occupied pool.
  while (state->remaining.load(std::memory_order_acquire) != 0) {
    std::function<void()> task;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop();
      }
    }
    if (task) {
      task();
      continue;
    }
    // Nothing queued: our remaining chunks are running on other workers.
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] {
      return state->remaining.load(std::memory_order_acquire) == 0;
    });
  }

  if (state->first_error) std::rethrow_exception(state->first_error);
}

std::size_t default_thread_count() {
  if (const char* env = std::getenv("PT_THREADS")) {
    char* parse_end = nullptr;
    const long v = std::strtol(env, &parse_end, 10);
    if (parse_end != env && v > 0) return static_cast<std::size_t>(v);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

namespace {

std::mutex g_global_pool_mutex;

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& global_pool() {
  const std::lock_guard<std::mutex> lock(g_global_pool_mutex);
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>();
  return *slot;
}

void set_global_pool_threads(std::size_t threads) {
  const std::size_t want = threads != 0 ? threads : default_thread_count();
  const std::lock_guard<std::mutex> lock(g_global_pool_mutex);
  auto& slot = global_pool_slot();
  if (slot && slot->size() == want) return;
  slot.reset();  // drains queued tasks and joins the old workers
  slot = std::make_unique<ThreadPool>(want);
}

}  // namespace pt::common
