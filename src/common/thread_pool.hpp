#pragma once

// Fixed-size worker pool with a parallel_for helper. Used by the clsim
// executor to spread work-groups across host cores, by the bagging ensemble
// to train members concurrently, and by the tuner's prediction scan.
//
// parallel_for is nesting-safe: the calling thread participates in draining
// the task queue while it waits, so a task running on the pool may itself
// call parallel_for (e.g. parallel bagging inside an experiment that is
// already running on the pool) without deadlocking — even on a 1-thread pool.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pt::common {

class ThreadPool {
 public:
  /// threads == 0 picks default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Indices are chunked contiguously; exceptions are rethrown (first one).
  /// The caller helps execute queued tasks while waiting, so nested calls
  /// from pool workers make progress instead of blocking the pool.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn) {
    parallel_for(begin, end, 1, fn);
  }

  /// Grain-size overload: every task receives at least `grain` consecutive
  /// indices (0 behaves like 1), so callers with many tiny iterations —
  /// executor work-groups, scan chunks — batch enough work per task to
  /// amortize the queue round-trip. grain == 1 is bit-identical to the
  /// two-argument overload.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t)>& fn);

 private:
  /// Completion state shared between a parallel_for call and its chunk
  /// tasks; owned via shared_ptr so a late task cannot outlive it.
  struct ForState {
    std::atomic<std::size_t> remaining{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex mutex;
    std::condition_variable done;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Worker threads to use by default: the PT_THREADS environment variable if
/// set to a positive integer, otherwise std::thread::hardware_concurrency()
/// (min 1).
[[nodiscard]] std::size_t default_thread_count();

/// Shared process-wide pool (lazily constructed with default_thread_count()).
ThreadPool& global_pool();

/// Resize the global pool (0 = default_thread_count()). Joins the current
/// workers after draining queued tasks, so call this at program start —
/// typically from the --threads CLI flag — before other threads hold a
/// reference to the pool.
void set_global_pool_threads(std::size_t threads);

}  // namespace pt::common
