#pragma once

// Fixed-size worker pool with a parallel_for helper. Used by the clsim
// executor to spread work-groups across host cores and by the experiment
// harness to run independent model trainings concurrently.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pt::common {

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [begin, end) across the pool, blocking until done.
  /// Indices are chunked contiguously; exceptions are rethrown (first one).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Shared process-wide pool (lazily constructed, sized to the machine).
ThreadPool& global_pool();

}  // namespace pt::common
