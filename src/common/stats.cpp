#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pt::common {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::domain_error("geometric_mean: non-positive value");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double trimmed_mean(std::span<const double> xs, double trim_fraction) {
  if (xs.empty()) throw std::invalid_argument("trimmed_mean: empty sample");
  if (trim_fraction < 0.0 || trim_fraction >= 0.5)
    throw std::invalid_argument("trimmed_mean: fraction outside [0, 0.5)");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto cut = static_cast<std::size_t>(
      trim_fraction * static_cast<double>(sorted.size()));
  double acc = 0.0;
  for (std::size_t i = cut; i < sorted.size() - cut; ++i) acc += sorted[i];
  return acc / static_cast<double>(sorted.size() - 2 * cut);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  auto at = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = sorted.front();
  s.p25 = at(0.25);
  s.median = at(0.5);
  s.p75 = at(0.75);
  s.max = sorted.back();
  return s;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> average_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("spearman: size mismatch");
  const auto rx = average_ranks(xs);
  const auto ry = average_ranks(ys);
  return pearson(rx, ry);
}

}  // namespace pt::common
