#pragma once

// Deterministic, fast pseudo-random number generation for the whole project.
//
// Simulation results must be reproducible across runs and platforms, so we do
// not use std::mt19937 together with the distribution templates (whose output
// is implementation defined). Instead we ship xoshiro256** seeded through
// splitmix64, plus hand-written distribution helpers with a pinned algorithm.

#include <array>
#include <cstdint>
#include <cmath>
#include <limits>
#include <vector>

namespace pt::common {

/// splitmix64 step; used to stretch a single 64-bit seed into a full state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator so it can also feed std::shuffle.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed; state is expanded with splitmix64.
  explicit constexpr Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal deviate (Marsaglia polar method, cached spare).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Log-normal deviate: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Derive an independent child generator (for per-task streams).
  Rng fork() noexcept { return Rng((*this)() ^ 0xd6e8feb86659fd93ULL); }

  /// Fisher-Yates shuffle of a vector, pinned algorithm (not std::shuffle).
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace pt::common
