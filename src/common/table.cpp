#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pt::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size())
    throw std::invalid_argument("Table: row width does not match header");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t i = cells[c].size(); i < widths[c]; ++i) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int decimals) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(decimals);
  ss << value;
  return ss.str();
}

std::string fmt_pct(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

std::string fmt_time_ms(double ms) {
  if (!std::isfinite(ms)) return "n/a";
  if (ms < 1.0) return fmt(ms * 1000.0, 1) + " us";
  if (ms < 1000.0) return fmt(ms, 2) + " ms";
  return fmt(ms / 1000.0, 2) + " s";
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace pt::common
