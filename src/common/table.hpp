#pragma once

// ASCII table and CSV emitters used by the bench harnesses to print the
// rows/series of each paper table and figure.

#include <iosfwd>
#include <string>
#include <vector>

namespace pt::common {

/// Column-aligned ASCII table. Collect rows, then print. Numeric formatting
/// is the caller's job (pass pre-formatted strings or use the helpers below).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

  /// Render with box-drawing separators to the stream.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180 quoting).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given number of decimals (fixed notation).
[[nodiscard]] std::string fmt(double value, int decimals = 3);

/// Format as a percentage, e.g. fmt_pct(0.061) == "6.1%".
[[nodiscard]] std::string fmt_pct(double fraction, int decimals = 1);

/// Format a time in milliseconds with an adaptive unit (us/ms/s).
[[nodiscard]] std::string fmt_time_ms(double ms);

/// Escape a CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace pt::common
