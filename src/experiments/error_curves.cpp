#include "experiments/error_curves.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/log.hpp"
#include "common/stats.hpp"
#include "ml/metrics.hpp"

namespace pt::exp {

std::vector<tuner::TrainingSample> collect_valid_samples(
    tuner::Evaluator& evaluator, std::size_t n, common::Rng& rng,
    std::vector<std::uint64_t>& used) {
  const tuner::ParamSpace& space = evaluator.space();
  std::unordered_set<std::uint64_t> excluded(used.begin(), used.end());
  std::vector<tuner::TrainingSample> samples;
  samples.reserve(n);
  // Guard against spaces with very few valid points.
  const std::uint64_t max_attempts =
      std::max<std::uint64_t>(n * 64, 4096);
  std::uint64_t attempts = 0;
  while (samples.size() < n && attempts < max_attempts) {
    ++attempts;
    const std::uint64_t index = rng.below(space.size());
    if (!excluded.insert(index).second) continue;  // already used
    used.push_back(index);
    const tuner::Configuration config = space.decode(index);
    const tuner::Measurement m = evaluator.measure(config);
    if (m.valid) samples.push_back({config, m.time_ms});
  }
  return samples;
}

ErrorCurve compute_error_curve(tuner::Evaluator& evaluator,
                               const ErrorCurveOptions& options) {
  common::Rng rng(options.seed);
  ErrorCurve curve;
  curve.label = evaluator.name();

  // Held-out test set, shared by every model (as in the paper: valid
  // configurations not used during training).
  std::vector<std::uint64_t> used;
  const auto test_set =
      collect_valid_samples(evaluator, options.test_samples, rng, used);
  if (test_set.empty()) return curve;
  std::vector<double> actual;
  actual.reserve(test_set.size());
  std::vector<tuner::Configuration> test_configs;
  test_configs.reserve(test_set.size());
  for (const auto& s : test_set) {
    actual.push_back(s.time_ms);
    test_configs.push_back(s.config);
  }

  for (const std::size_t size : options.training_sizes) {
    common::RunningStats stats;
    for (std::size_t r = 0; r < options.repeats; ++r) {
      // Fresh training set per repeat (different configurations *and*
      // different initial weights), excluded from the test set.
      std::vector<std::uint64_t> train_used = used;
      auto train =
          collect_valid_samples(evaluator, size, rng, train_used);
      if (train.size() < 8) continue;
      tuner::AnnPerformanceModel model(options.model);
      model.fit(evaluator.space(), train, rng);
      const auto predicted = model.predict_many_ms(test_configs);
      stats.add(ml::mean_relative_error(predicted, actual));
    }
    if (stats.count() == 0) continue;
    curve.points.push_back(ErrorCurvePoint{size, stats.mean(), stats.stddev(),
                                           stats.count()});
    common::log_info("error-curve[", curve.label, "] n=", size,
                     " mre=", stats.mean());
  }
  return curve;
}

std::vector<ScatterPoint> compute_scatter(
    tuner::Evaluator& evaluator, std::size_t training_size,
    std::size_t points, const tuner::AnnPerformanceModel::Options& model_opts,
    std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<std::uint64_t> used;
  const auto test_set = collect_valid_samples(evaluator, points, rng, used);
  const auto train =
      collect_valid_samples(evaluator, training_size, rng, used);
  if (train.empty() || test_set.empty()) return {};

  tuner::AnnPerformanceModel model(model_opts);
  model.fit(evaluator.space(), train, rng);

  std::vector<tuner::Configuration> configs;
  configs.reserve(test_set.size());
  for (const auto& s : test_set) configs.push_back(s.config);
  const auto predicted = model.predict_many_ms(configs);

  std::vector<ScatterPoint> out;
  out.reserve(test_set.size());
  for (std::size_t i = 0; i < test_set.size(); ++i)
    out.push_back(ScatterPoint{test_set[i].time_ms, predicted[i]});
  return out;
}

}  // namespace pt::exp
