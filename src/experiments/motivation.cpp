#include "experiments/motivation.hpp"

#include "common/log.hpp"
#include "tuner/search.hpp"

namespace pt::exp {

MotivationResult cross_device_slowdowns(
    const benchkit::TunableBenchmark& benchmark,
    const std::vector<clsim::Device>& devices) {
  MotivationResult result;

  for (const auto& device : devices) {
    benchkit::BenchmarkEvaluator evaluator(benchmark, device);
    const tuner::SearchResult best = tuner::exhaustive_search(evaluator);
    if (!best.success) {
      common::log_warn("motivation: no valid configuration on ",
                       device.name(), " (", best.rejections.to_string(), ")");
      continue;
    }
    result.bests.push_back(
        {device.name(), best.best_config, best.best_time_ms});
    common::log_info("motivation: best on ", device.name(), " = ",
                     best.best_time_ms, " ms ",
                     benchmark.space().to_string(best.best_config));
  }

  for (const auto& from : result.bests) {
    for (const auto& on : result.bests) {
      CrossDeviceCell cell;
      cell.config_from = from.device;
      cell.run_on = on.device;
      // Re-measure from.config on on.device.
      for (const auto& device : devices) {
        if (device.name() != on.device) continue;
        benchkit::BenchmarkEvaluator evaluator(benchmark, device);
        const tuner::Measurement m = evaluator.measure(from.config);
        cell.valid = m.valid;
        if (m.valid) {
          cell.slowdown = m.time_ms / on.time_ms;
        } else {
          cell.status = m.status;
          common::log_info("motivation: best of ", from.device,
                           " rejected on ", on.device, " (",
                           clsim::to_string(m.status), ")");
        }
      }
      result.matrix.push_back(cell);
    }
  }
  return result;
}

}  // namespace pt::exp
