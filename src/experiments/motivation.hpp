#pragma once

// Harness for the motivational experiment (Fig 1): find each device's best
// configuration exhaustively, then measure every best configuration on every
// device and report the slowdown relative to that device's own optimum.

#include <string>
#include <vector>

#include "benchmarks/benchmark.hpp"
#include "clsim/device.hpp"
#include "clsim/error.hpp"

namespace pt::exp {

struct CrossDeviceCell {
  std::string config_from;  // device whose best configuration this is
  std::string run_on;       // device it was executed on
  double slowdown = 0.0;    // time / run_on's own optimum
  bool valid = false;       // the configuration may be invalid on run_on
  /// Why run_on rejected the configuration (meaningful when !valid).
  clsim::Status status = clsim::Status::kSuccess;
};

struct MotivationResult {
  /// Per device: its best configuration (as a string) and optimal time.
  struct DeviceBest {
    std::string device;
    tuner::Configuration config;
    double time_ms = 0.0;
  };
  std::vector<DeviceBest> bests;
  std::vector<CrossDeviceCell> matrix;
};

/// Run the full cross-device experiment for one benchmark over `devices`.
/// Exhaustively searches each device (only feasible for convolution-sized
/// spaces).
[[nodiscard]] MotivationResult cross_device_slowdowns(
    const benchkit::TunableBenchmark& benchmark,
    const std::vector<clsim::Device>& devices);

}  // namespace pt::exp
