#pragma once

// Harnesses for the auto-tuner evaluation:
//  - Figs 11-13: grid over (N training configurations) x (M second-stage
//    configurations) of the mean slowdown of the auto-tuned configuration
//    relative to the exhaustively known global optimum (convolution).
//  - Fig 14: for spaces too large to exhaust, slowdown relative to the best
//    of 50K random configurations (raycasting, stereo).

#include <cstdint>
#include <optional>
#include <vector>

#include "tuner/autotuner.hpp"
#include "tuner/evaluator.hpp"

namespace pt::exp {

struct SlowdownGridOptions {
  std::vector<std::size_t> training_sizes = {100, 200, 300, 400,
                                             500, 1000, 2000};
  std::vector<std::size_t> second_stage_sizes = {10, 50, 100, 150, 200};
  std::size_t repeats = 3;  // independent tuner runs per cell
  tuner::AnnPerformanceModel::Options model{};
  std::uint64_t seed = 7;
  /// Observer/telemetry context forwarded to every tuner run. The grid keeps
  /// one Rng across repeats, so `run.seed` is ignored here; `seed` above is
  /// authoritative.
  tuner::TunerRunContext run{};
};

struct SlowdownCell {
  std::size_t training_size = 0;
  std::size_t second_stage_size = 0;
  /// Mean over the repeats that produced a prediction; empty cell (paper:
  /// "results missing due to invalid configurations") when none did.
  std::optional<double> mean_slowdown;
  std::size_t successes = 0;
  std::size_t repeats = 0;
};

struct SlowdownGrid {
  std::string label;
  double optimum_ms = 0.0;  // ground-truth best
  std::vector<SlowdownCell> cells;
};

/// Figs 11-13: requires an exhaustible space; the optimum is found once by
/// exhaustive search and every tuner result is compared against it.
[[nodiscard]] SlowdownGrid autotuner_slowdown_grid(
    tuner::Evaluator& evaluator, const SlowdownGridOptions& options);

struct LargeSpaceOptions {
  std::size_t random_baseline = 50000;  // paper's 50K random configurations
  std::size_t training_size = 3000;     // N
  std::size_t second_stage_size = 300;  // M
  std::size_t repeats = 3;
  tuner::AnnPerformanceModel::Options model{};
  std::uint64_t seed = 9;
  /// Observer/telemetry context forwarded to every tuner run (seed ignored;
  /// see SlowdownGridOptions::run).
  tuner::TunerRunContext run{};
};

struct LargeSpaceResult {
  std::string label;
  double baseline_ms = 0.0;  // best of the random baseline
  /// Mean slowdown of the tuner vs the baseline (can be < 1: the tuner may
  /// beat the random baseline, as the paper observes). Empty when every
  /// repeat gave no prediction (paper: stereo on the GPUs).
  std::optional<double> mean_slowdown;
  std::size_t successes = 0;
  std::size_t repeats = 0;
};

/// Fig 14 protocol for one evaluator.
[[nodiscard]] LargeSpaceResult large_space_eval(
    tuner::Evaluator& evaluator, const LargeSpaceOptions& options);

}  // namespace pt::exp
