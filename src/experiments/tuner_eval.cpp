#include "experiments/tuner_eval.hpp"

#include "common/log.hpp"
#include "common/stats.hpp"
#include "tuner/search.hpp"

namespace pt::exp {

SlowdownGrid autotuner_slowdown_grid(tuner::Evaluator& evaluator,
                                     const SlowdownGridOptions& options) {
  SlowdownGrid grid;
  grid.label = evaluator.name();

  // Ground truth once; a caching wrapper is recommended upstream so the
  // tuner's own measurements reuse the sweep.
  const tuner::SearchResult truth = tuner::exhaustive_search(evaluator);
  if (!truth.success) {
    common::log_warn("slowdown grid: no valid configuration at all for ",
                     grid.label, " (", truth.rejections.to_string(), ")");
    return grid;
  }
  grid.optimum_ms = truth.best_time_ms;

  common::Rng rng(options.seed);
  for (const std::size_t n : options.training_sizes) {
    for (const std::size_t m : options.second_stage_sizes) {
      SlowdownCell cell;
      cell.training_size = n;
      cell.second_stage_size = m;
      cell.repeats = options.repeats;
      common::RunningStats stats;
      for (std::size_t r = 0; r < options.repeats; ++r) {
        tuner::AutoTunerOptions topt;
        topt.training_samples = n;
        topt.second_stage_size = m;
        topt.model = options.model;
        topt.run = options.run;
        const tuner::AutoTuner tuner(topt);
        const tuner::AutoTuneResult result =
            tuner.tune(evaluator, tuner::TuneRun::with_rng(rng));
        if (!result.success) continue;
        ++cell.successes;
        stats.add(result.best_time_ms / grid.optimum_ms);
      }
      if (stats.count() > 0) cell.mean_slowdown = stats.mean();
      common::log_info("slowdown grid[", grid.label, "] N=", n, " M=", m,
                       cell.mean_slowdown
                           ? " slowdown=" + std::to_string(*cell.mean_slowdown)
                           : " (missing)");
      grid.cells.push_back(cell);
    }
  }
  return grid;
}

LargeSpaceResult large_space_eval(tuner::Evaluator& evaluator,
                                  const LargeSpaceOptions& options) {
  LargeSpaceResult result;
  result.label = evaluator.name();
  result.repeats = options.repeats;

  common::Rng rng(options.seed);
  const tuner::SearchResult baseline =
      tuner::random_search(evaluator, options.random_baseline, rng);
  if (!baseline.success) {
    common::log_warn("large-space eval: random baseline found nothing for ",
                     result.label, " (", baseline.rejections.to_string(), ")");
    return result;
  }
  result.baseline_ms = baseline.best_time_ms;

  common::RunningStats stats;
  for (std::size_t r = 0; r < options.repeats; ++r) {
    tuner::AutoTunerOptions topt;
    topt.training_samples = options.training_size;
    topt.second_stage_size = options.second_stage_size;
    topt.model = options.model;
    topt.run = options.run;
    const tuner::AutoTuner tuner(topt);
    const tuner::AutoTuneResult run =
        tuner.tune(evaluator, tuner::TuneRun::with_rng(rng));
    if (!run.success) {
      // The paper's stereo-on-GPU failure: say which rejections caused it.
      common::log_info("large-space eval[", result.label,
                       "]: no prediction (",
                       run.stage2_rejections.to_string(), ")");
      continue;
    }
    ++result.successes;
    stats.add(run.best_time_ms / result.baseline_ms);
  }
  if (stats.count() > 0) result.mean_slowdown = stats.mean();
  return result;
}

}  // namespace pt::exp
