#pragma once

// Harness for Figs 4-7: mean relative prediction error as a function of the
// number of training configurations, per benchmark and device. Mirrors the
// paper's protocol (section 6): train on valid random configurations,
// evaluate on valid configurations not used during training, repeat with
// several independently trained models and report the mean.

#include <cstdint>
#include <vector>

#include "tuner/evaluator.hpp"
#include "tuner/model.hpp"

namespace pt::exp {

struct ErrorCurveOptions {
  /// Paper's x-axis: 100..1000 step 100, then 1500..4000 step 500.
  std::vector<std::size_t> training_sizes = {100,  200,  300,  400,  500,
                                             600,  700,  800,  900,  1000,
                                             1500, 2000, 2500, 3000, 3500,
                                             4000};
  std::size_t test_samples = 500;  // held-out valid configurations
  std::size_t repeats = 3;         // independently trained models per size
  tuner::AnnPerformanceModel::Options model{};
  std::uint64_t seed = 1;
};

struct ErrorCurvePoint {
  std::size_t training_size = 0;    // valid training configurations
  double mean_relative_error = 0.0; // mean over repeats
  double stddev = 0.0;              // across repeats
  std::size_t repeats = 0;
};

struct ErrorCurve {
  std::string label;
  std::vector<ErrorCurvePoint> points;
};

/// Collect `n` *valid* training samples by drawing fresh random
/// configurations (skipping invalid ones), excluding the given index set.
/// Appends the indices it used to `used`.
[[nodiscard]] std::vector<tuner::TrainingSample> collect_valid_samples(
    tuner::Evaluator& evaluator, std::size_t n, common::Rng& rng,
    std::vector<std::uint64_t>& used);

/// Run the full error-curve protocol for one evaluator.
[[nodiscard]] ErrorCurve compute_error_curve(tuner::Evaluator& evaluator,
                                             const ErrorCurveOptions& options);

/// One scatter pass (Figs 8-10): train a single (non-averaged) model with
/// `training_size` valid samples, then return (actual, predicted) pairs for
/// `points` held-out valid configurations.
struct ScatterPoint {
  double actual_ms = 0.0;
  double predicted_ms = 0.0;
};
[[nodiscard]] std::vector<ScatterPoint> compute_scatter(
    tuner::Evaluator& evaluator, std::size_t training_size,
    std::size_t points, const tuner::AnnPerformanceModel::Options& model,
    std::uint64_t seed);

}  // namespace pt::exp
