#pragma once

// Plain-text (de)serialization of trained models, so examples can persist an
// auto-tuner's performance model and reload it on a later run. The format is
// line-oriented, versioned, and locale-independent (max-precision doubles).

#include <iosfwd>

#include "ml/ensemble.hpp"
#include "ml/mlp.hpp"

namespace pt::ml {

/// Write a single network (topology + weights).
void save_mlp(const Mlp& net, std::ostream& os);

/// Read a network written by save_mlp. Throws std::runtime_error on a
/// malformed stream.
[[nodiscard]] Mlp load_mlp(std::istream& is);

/// Write a fitted ensemble (options, scaler, members).
void save_ensemble(const BaggingEnsemble& ensemble, std::ostream& os);

/// Read an ensemble written by save_ensemble.
[[nodiscard]] BaggingEnsemble load_ensemble(std::istream& is);

}  // namespace pt::ml
