#pragma once

// Batched fp32 inference over the common/simd layer — the prediction-scan
// fast path (ROADMAP item 3, paper §4: the stage-1 scan evaluates every
// configuration in spaces of 131k–2.4M points).
//
// A BatchedMlp is built once from a fitted Mlp: each layer's weights are
// repacked into a SIMD-friendly row-major panel of shape (fan_in, padded)
// where `padded` rounds the unit count up to the vector width (pad weights
// and biases are zero). The ensemble's StandardScaler is folded into layer 0
// at pack time —
//   W'[i][j] = W[i][j] / stddev[i]
//   b'[j]    = b[j] - sum_i mean[i] * W[i][j] / stddev[i]
// (computed in double, then cast) — so the forward pass consumes raw,
// unscaled fp32 features and the per-row standardization disappears from the
// hot loop entirely.
//
// The forward pass walks rows of the chunk; per row, each layer broadcasts
// one input at a time and accumulates FMA products into up to four vector
// registers spanning the padded unit panel, then applies the vectorized
// activation (simd::sigmoid / simd::tanh, with the documented ULP bounds).
// The final single-output layer reduces with a dot-product + horizontal sum.
//
// Accuracy: everything is fp32 with fused multiply-adds, so raw outputs can
// differ from the fp64 reference by ~1e-6..1e-5 in standardized-output
// units. Callers that need fp64-identical *ranking* (tuner/scan.hpp) re-rank
// near-tie candidates through the fp64 path; ScanOptions::fp32_error_bound
// is the contract between the two.

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "common/simd.hpp"
#include "ml/activation.hpp"
#include "ml/ensemble.hpp"
#include "ml/mlp.hpp"
#include "ml/quant.hpp"
#include "ml/scaler.hpp"

namespace pt::ml {

class BatchedMlp {
 public:
  /// Pack a fitted network, optionally folding a feature scaler into layer 0
  /// (scaler width must match the network input width). The Mlp may be
  /// destroyed afterwards; the panels are self-contained.
  explicit BatchedMlp(const Mlp& mlp, const StandardScaler* scaler = nullptr);

  [[nodiscard]] std::size_t input_size() const noexcept { return inputs_; }
  [[nodiscard]] std::size_t output_size() const noexcept {
    return layers_.back().units;
  }

  /// Reusable buffers: two activation panels (ping-pong between layers) and
  /// a per-member output column for ensemble averaging.
  struct Scratch {
    common::simd::AlignedVectorF a;
    common::simd::AlignedVectorF b;
    std::vector<float> member;
  };

  /// Evaluate `rows` samples stored row-major in x (row r starts at
  /// x + r * input_size()) and write the first output column to out[0..rows).
  /// Requires a single-output network. Safe to call concurrently with
  /// distinct scratch objects.
  void forward_column0(const float* x, std::size_t rows, float* out,
                       Scratch& scratch) const;

 private:
  struct Layer {
    std::size_t in;      // fan-in
    std::size_t units;   // real unit count
    std::size_t padded;  // units rounded up to simd::kWidth
    Activation act;
    common::simd::AlignedVectorF w;     // (in, padded) row-major, pads zero
    common::simd::AlignedVectorF bias;  // (padded), pads zero
    // Single-output layers fed by a padded panel additionally keep their one
    // weight column contiguously (length = previous layer's padded width,
    // pads zero) for the dot-product fast path.
    common::simd::AlignedVectorF wcol;
  };

  std::size_t inputs_;
  std::vector<Layer> layers_;
};

/// Batched fp32 counterpart of BaggingEnsemble::predict_batch_into: packs
/// every member once (with the shared scaler folded in) and averages their
/// batched outputs in fixed member order, so results are deterministic and
/// independent of how callers chunk the rows.
class BatchedEnsemble {
 public:
  /// Packs a fitted ensemble; throws std::invalid_argument if it is not
  /// fitted and std::runtime_error if the SIMD backend fails verification
  /// (simd::ensure_verified runs before the first pack in the process).
  explicit BatchedEnsemble(const BaggingEnsemble& ensemble);

  [[nodiscard]] std::size_t input_width() const noexcept { return inputs_; }
  [[nodiscard]] std::size_t member_count() const noexcept {
    return members_.size();
  }

  using Scratch = BatchedMlp::Scratch;

  /// Mean member prediction for `rows` row-major raw-feature samples; out is
  /// resized to `rows`. Safe to call concurrently with distinct scratch.
  void predict_batch_into(const float* x, std::size_t rows,
                          std::vector<float>& out, Scratch& scratch) const;

 private:
  std::size_t inputs_;
  float inv_k_;
  std::vector<BatchedMlp> members_;
};

/// Lazily-built, shared BatchedEnsemble for model classes that expose both
/// inference paths (tuner/model.hpp). Copying a cache resets it (the copy
/// re-packs on first use); moving transfers the packed engine. Thread-safe.
class BatchedEnsembleCache {
 public:
  BatchedEnsembleCache() = default;
  BatchedEnsembleCache(const BatchedEnsembleCache&) noexcept {}
  BatchedEnsembleCache& operator=(const BatchedEnsembleCache&) noexcept {
    reset();
    return *this;
  }
  BatchedEnsembleCache(BatchedEnsembleCache&& other) noexcept;
  BatchedEnsembleCache& operator=(BatchedEnsembleCache&& other) noexcept;
  ~BatchedEnsembleCache() = default;

  /// The packed engine for `ensemble`, building it on first call. The caller
  /// must reset() whenever the ensemble is refitted or restored.
  [[nodiscard]] std::shared_ptr<const BatchedEnsemble> get(
      const BaggingEnsemble& ensemble) const;

  /// The quantized engine for `ensemble` in `mode`, building it on first
  /// call. The int8 slot is keyed by the calibration as well: asking with a
  /// different calibration (e.g. input-aware instance tails changed) repacks
  /// and replaces the cached engine. fp16 ignores `calibration`.
  [[nodiscard]] std::shared_ptr<const QuantizedEnsemble> get_quantized(
      const BaggingEnsemble& ensemble, QuantMode mode,
      const QuantCalibration& calibration) const;

  /// Drop the packed engines (outstanding shared_ptrs stay valid).
  void reset() noexcept;

 private:
  mutable std::mutex mutex_;
  mutable std::shared_ptr<const BatchedEnsemble> engine_;
  mutable std::shared_ptr<const QuantizedEnsemble> int8_engine_;
  mutable std::shared_ptr<const QuantizedEnsemble> fp16_engine_;
};

}  // namespace pt::ml
