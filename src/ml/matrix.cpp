#include "ml/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/simd.hpp"

namespace pt::ml {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= rows_)
      throw std::out_of_range("Matrix::gather_rows: index out of range");
    const auto src = row(indices[i]);
    auto dst = out.row(i);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

void Matrix::fill(double value) noexcept {
  for (auto& x : data_) x = value;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("Matrix+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  if (!same_shape(other)) throw std::invalid_argument("Matrix-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (auto& x : data_) x *= scalar;
  return *this;
}

// Cache block over the shared dimension: the block of b rows (or a rows for
// matmul_at) stays resident while it is streamed against every output row.
//
// The inner j loops run on the width-4 VecD vector type (common/simd.hpp)
// with separate mul and add — the exact per-element operation sequence
// `orow[j] += aik * brow[j]` of the blocked scalar kernels, just four
// elements per instruction — so results are bit-identical to the scalar
// form on every backend (training stays deterministic across builds).
constexpr std::size_t kMatmulBlock = 128;

namespace {

namespace simd = common::simd;

/// orow[j] += s * brow[j] for j in [0, nn): vector body, scalar remainder.
/// Each element sees one multiply then one add, both rounding — identical
/// to the scalar loop.
inline void axpy_row(double s, const double* brow, double* orow,
                     std::size_t nn) {
  using simd::VecD;
  const VecD sv = VecD::broadcast(s);
  std::size_t j = 0;
  for (; j + simd::kWidthD <= nn; j += simd::kWidthD) {
    const VecD prod = simd::mul(sv, VecD::load(brow + j));
    simd::add(VecD::load(orow + j), prod).store(orow + j);
  }
  for (; j < nn; ++j) orow[j] += s * brow[j];
}

}  // namespace

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.rows()) throw std::invalid_argument("matmul: shape mismatch");
  out.reshape(a.rows(), b.cols());
  const std::size_t kk = a.cols();
  const std::size_t nn = b.cols();
  for (std::size_t k0 = 0; k0 < kk; k0 += kMatmulBlock) {
    const std::size_t k1 = std::min(kk, k0 + kMatmulBlock);
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const auto arow = a.row(i);
      double* const orow = out.row(i).data();
      for (std::size_t k = k0; k < k1; ++k)
        axpy_row(arow[k], b.row(k).data(), orow, nn);
    }
  }
}

void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.cols() != b.cols())
    throw std::invalid_argument("matmul_bt: shape mismatch");
  out.reshape(a.rows(), b.rows());
  const std::size_t kk = a.cols();
  using simd::VecD;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* const arow = a.row(i).data();
    auto orow = out.row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      const double* const brow = b.row(j).data();
      // Lane l of the vector accumulator is exactly the scalar kernel's
      // stride-4 partial sum acc_l; hsum_pairwise reproduces its final
      // (acc0 + acc1) + (acc2 + acc3) combine.
      VecD accv = VecD::zero();
      std::size_t k = 0;
      for (; k + simd::kWidthD <= kk; k += simd::kWidthD)
        accv = simd::add(accv,
                         simd::mul(VecD::load(arow + k), VecD::load(brow + k)));
      double acc = simd::hsum_pairwise(accv);
      for (; k < kk; ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
}

void matmul_at(const Matrix& a, const Matrix& b, Matrix& out) {
  if (a.rows() != b.rows())
    throw std::invalid_argument("matmul_at: shape mismatch");
  out.reshape(a.cols(), b.cols());
  const std::size_t nn = b.cols();
  for (std::size_t k0 = 0; k0 < a.rows(); k0 += kMatmulBlock) {
    const std::size_t k1 = std::min(a.rows(), k0 + kMatmulBlock);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      double* const orow = out.row(i).data();
      for (std::size_t k = k0; k < k1; ++k)
        axpy_row(a(k, i), b.row(k).data(), orow, nn);
    }
  }
}

void add_row_vector(Matrix& out, std::span<const double> bias) {
  if (bias.size() != out.cols())
    throw std::invalid_argument("add_row_vector: width mismatch");
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    for (std::size_t c = 0; c < out.cols(); ++c) row[c] += bias[c];
  }
}

void column_sums(const Matrix& a, std::span<double> out) {
  if (out.size() != a.cols())
    throw std::invalid_argument("column_sums: width mismatch");
  for (auto& x : out) x = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) out[c] += row[c];
  }
}

double dot(const Matrix& a, const Matrix& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("dot: shape mismatch");
  double acc = 0.0;
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) acc += fa[i] * fb[i];
  return acc;
}

}  // namespace pt::ml
