#include "ml/mlp.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace pt::ml {

void Gradients::scale(double factor) noexcept {
  for (auto& w : weights) w *= factor;
  for (auto& b : biases)
    for (auto& x : b) x *= factor;
}

void Gradients::accumulate(const Gradients& other) {
  if (weights.size() != other.weights.size())
    throw std::invalid_argument("Gradients::accumulate: layer mismatch");
  for (std::size_t l = 0; l < weights.size(); ++l) {
    weights[l] += other.weights[l];
    for (std::size_t i = 0; i < biases[l].size(); ++i)
      biases[l][i] += other.biases[l][i];
  }
}

Mlp::Mlp(std::size_t inputs, std::vector<LayerSpec> layers)
    : inputs_(inputs), layers_(std::move(layers)) {
  if (inputs_ == 0) throw std::invalid_argument("Mlp: zero inputs");
  if (layers_.empty()) throw std::invalid_argument("Mlp: no layers");
  std::size_t fan_in = inputs_;
  for (const auto& spec : layers_) {
    if (spec.units == 0) throw std::invalid_argument("Mlp: zero-unit layer");
    weights_.emplace_back(fan_in, spec.units);
    biases_.emplace_back(spec.units, 0.0);
    fan_in = spec.units;
  }
}

void Mlp::init_weights(common::Rng& rng) {
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    auto& w = weights_[l];
    const double limit =
        std::sqrt(6.0 / static_cast<double>(w.rows() + w.cols()));
    for (auto& x : w.flat()) x = rng.uniform(-limit, limit);
    for (auto& b : biases_[l]) b = 0.0;
  }
}

std::size_t Mlp::parameter_count() const noexcept {
  std::size_t n = 0;
  for (std::size_t l = 0; l < weights_.size(); ++l)
    n += weights_[l].size() + biases_[l].size();
  return n;
}

std::vector<double> Mlp::forward(std::span<const double> x) const {
  if (x.size() != inputs_) throw std::invalid_argument("Mlp::forward: width");
  std::vector<double> cur(x.begin(), x.end());
  std::vector<double> next;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& w = weights_[l];
    next.assign(w.cols(), 0.0);
    for (std::size_t i = 0; i < w.rows(); ++i) {
      const double xi = cur[i];
      const auto wrow = w.row(i);
      for (std::size_t j = 0; j < w.cols(); ++j) next[j] += xi * wrow[j];
    }
    for (std::size_t j = 0; j < next.size(); ++j) {
      next[j] = activate(layers_[l].activation, next[j] + biases_[l][j]);
    }
    cur.swap(next);
  }
  return cur;
}

Matrix Mlp::forward_batch(const Matrix& x) const {
  Matrix scratch_a;
  Matrix scratch_b;
  Matrix& result = forward_batch_into(x, scratch_a, scratch_b);
  return std::move(result);
}

Matrix& Mlp::forward_batch_into(const Matrix& x, Matrix& scratch_a,
                                Matrix& scratch_b) const {
  if (x.cols() != inputs_)
    throw std::invalid_argument("Mlp::forward_batch: width mismatch");
  const Matrix* cur = &x;
  Matrix* bufs[2] = {&scratch_a, &scratch_b};
  std::size_t which = 0;
  Matrix* last = bufs[0];  // layers_ is never empty (checked in constructor)
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Matrix* next = bufs[which];
    which ^= 1;
    matmul(*cur, weights_[l], *next);
    add_row_vector(*next, biases_[l]);
    activate_inplace(layers_[l].activation, *next);
    cur = next;
    last = next;
  }
  return *last;
}

double Mlp::backward_batch(const Matrix& x, const Matrix& target,
                           Gradients& grads) const {
  if (x.cols() != inputs_)
    throw std::invalid_argument("Mlp::backward_batch: input width");
  if (target.rows() != x.rows() || target.cols() != output_size())
    throw std::invalid_argument("Mlp::backward_batch: target shape");
  const std::size_t depth = layers_.size();
  const double n = static_cast<double>(x.rows());

  // Forward pass, caching every layer's activated output.
  std::vector<Matrix> outputs(depth);
  {
    const Matrix* cur = &x;
    for (std::size_t l = 0; l < depth; ++l) {
      matmul(*cur, weights_[l], outputs[l]);
      add_row_vector(outputs[l], biases_[l]);
      activate_inplace(layers_[l].activation, outputs[l]);
      cur = &outputs[l];
    }
  }

  // Loss and output delta: dL/dy = 2 (y - t) / N.
  double loss_acc = 0.0;
  Matrix delta = outputs[depth - 1];
  {
    const auto ft = target.flat();
    auto fd = delta.flat();
    for (std::size_t i = 0; i < fd.size(); ++i) {
      const double diff = fd[i] - ft[i];
      loss_acc += diff * diff;
      fd[i] = 2.0 * diff / n;
    }
    loss_acc /= n;
  }

  // Backward pass.
  if (grads.weights.size() != depth) grads = make_gradients();
  for (std::size_t li = depth; li-- > 0;) {
    scale_by_activation_grad(layers_[li].activation, outputs[li], delta);
    const Matrix& below = (li == 0) ? x : outputs[li - 1];
    matmul_at(below, delta, grads.weights[li]);
    column_sums(delta, grads.biases[li]);
    if (li > 0) {
      Matrix next_delta;
      matmul_bt(delta, weights_[li], next_delta);
      delta = std::move(next_delta);
    }
  }
  return loss_acc;
}

double Mlp::loss(const Matrix& x, const Matrix& target) const {
  const Matrix y = forward_batch(x);
  if (!y.same_shape(target))
    throw std::invalid_argument("Mlp::loss: target shape");
  const auto fy = y.flat();
  const auto ft = target.flat();
  double acc = 0.0;
  for (std::size_t i = 0; i < fy.size(); ++i) {
    const double d = fy[i] - ft[i];
    acc += d * d;
  }
  return acc / static_cast<double>(x.rows());
}

Gradients Mlp::make_gradients() const {
  Gradients g;
  g.weights.reserve(layers_.size());
  g.biases.reserve(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    g.weights.emplace_back(weights_[l].rows(), weights_[l].cols());
    g.biases.emplace_back(biases_[l].size(), 0.0);
  }
  return g;
}

}  // namespace pt::ml
