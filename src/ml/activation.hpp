#pragma once

// Activation functions for the MLP. The paper's network uses sigmoid hidden
// units and a linear output; the others are provided for the ablation study
// and for general use of the library.

#include <string>

#include "ml/matrix.hpp"

namespace pt::ml {

enum class Activation { kLinear, kSigmoid, kTanh, kRelu };

/// Value of the activation at x.
[[nodiscard]] double activate(Activation act, double x) noexcept;

/// Derivative expressed in terms of the *activated* value y = f(x). All four
/// supported activations admit this form, which lets the backward pass reuse
/// the forward buffers.
[[nodiscard]] double activate_grad_from_output(Activation act,
                                               double y) noexcept;

/// Apply the activation elementwise in place.
void activate_inplace(Activation act, Matrix& m) noexcept;

/// delta *= f'(y) elementwise, with y the activated forward output.
void scale_by_activation_grad(Activation act, const Matrix& y,
                              Matrix& delta) noexcept;

[[nodiscard]] std::string to_string(Activation act);
[[nodiscard]] Activation activation_from_string(const std::string& name);

}  // namespace pt::ml
