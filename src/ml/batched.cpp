#include "ml/batched.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace pt::ml {

namespace simd = common::simd;

namespace {

std::size_t round_up(std::size_t n) {
  return (n + simd::kWidth - 1) / simd::kWidth * simd::kWidth;
}

float activate_f32(Activation act, float y) {
  switch (act) {
    case Activation::kLinear:
      return y;
    case Activation::kSigmoid:
      return simd::sigmoid_ref(y);
    case Activation::kTanh:
      return simd::tanh_ref(y);
    case Activation::kRelu:
      return y > 0.0f ? y : 0.0f;
  }
  return y;
}

}  // namespace

BatchedMlp::BatchedMlp(const Mlp& mlp, const StandardScaler* scaler)
    : inputs_(mlp.input_size()) {
  if (scaler && scaler->width() != inputs_)
    throw std::invalid_argument(
        "BatchedMlp: scaler width does not match network input width");
  layers_.reserve(mlp.layer_count());
  for (std::size_t l = 0; l < mlp.layer_count(); ++l) {
    const Matrix& w = mlp.weights(l);
    const std::vector<double>& b = mlp.biases(l);
    Layer layer;
    layer.in = w.rows();
    layer.units = w.cols();
    layer.padded = round_up(layer.units);
    layer.act = mlp.layers()[l].activation;
    layer.w.assign(layer.in * layer.padded, 0.0f);
    layer.bias.assign(layer.padded, 0.0f);
    // Fold the standardization (x - mean) / stddev into layer 0:
    //   W'[i][j] = W[i][j] / s[i];  b'[j] = b[j] - sum_i m[i]*W[i][j]/s[i].
    // Kept in double until the final cast, so the fold adds no fp32 rounding
    // beyond the unavoidable weight quantization.
    const bool fold = l == 0 && scaler;
    const std::vector<double>* m = fold ? &scaler->means() : nullptr;
    const std::vector<double>* s = fold ? &scaler->stddevs() : nullptr;
    for (std::size_t j = 0; j < layer.units; ++j) {
      double bias = b[j];
      if (fold) {
        double shift = 0.0;
        for (std::size_t i = 0; i < layer.in; ++i)
          shift += (*m)[i] * w(i, j) / (*s)[i];
        bias -= shift;
      }
      layer.bias[j] = static_cast<float>(bias);
    }
    for (std::size_t i = 0; i < layer.in; ++i) {
      const double scale = fold ? 1.0 / (*s)[i] : 1.0;
      for (std::size_t j = 0; j < layer.units; ++j)
        layer.w[i * layer.padded + j] = static_cast<float>(w(i, j) * scale);
    }
    // Single-output layer fed by a padded activation panel: repack the one
    // weight column contiguously (pads zero) so the forward pass can run it
    // as a vector dot + horizontal sum. The previous layer's pad lanes hold
    // act(0) — harmless, their wcol entries are zero.
    if (layer.units == 1 && l > 0) {
      const std::size_t prev_padded = layers_[l - 1].padded;
      layer.wcol.assign(prev_padded, 0.0f);
      for (std::size_t i = 0; i < layer.in; ++i)
        layer.wcol[i] = layer.w[i * layer.padded];
    }
    layers_.push_back(std::move(layer));
  }
}

namespace {

// One row through one layer: out[0..padded) = act(x · W + b). The padded
// unit panel is covered by up to kTile vector accumulators at a time, each
// seeded from the bias; every input then broadcasts into them via FMA.
void forward_row(const float* x, std::size_t in, std::size_t padded,
                 Activation act, const float* w, const float* bias,
                 float* out) {
  using simd::VecF;
  constexpr std::size_t kTile = 4;
  for (std::size_t j0 = 0; j0 < padded; j0 += kTile * simd::kWidth) {
    const std::size_t lanes_left = (padded - j0) / simd::kWidth;
    const std::size_t tiles = lanes_left < kTile ? lanes_left : kTile;
    VecF acc[kTile];
    for (std::size_t t = 0; t < tiles; ++t)
      acc[t] = VecF::load(bias + j0 + t * simd::kWidth);
    for (std::size_t i = 0; i < in; ++i) {
      const VecF xi = VecF::broadcast(x[i]);
      const float* wrow = w + i * padded + j0;
      for (std::size_t t = 0; t < tiles; ++t)
        acc[t] = simd::fmadd(xi, VecF::load(wrow + t * simd::kWidth), acc[t]);
    }
    switch (act) {
      case Activation::kLinear:
        break;
      case Activation::kSigmoid:
        for (std::size_t t = 0; t < tiles; ++t) acc[t] = simd::sigmoid(acc[t]);
        break;
      case Activation::kTanh:
        for (std::size_t t = 0; t < tiles; ++t) acc[t] = simd::tanh(acc[t]);
        break;
      case Activation::kRelu:
        for (std::size_t t = 0; t < tiles; ++t)
          acc[t] = simd::max(acc[t], VecF::zero());
        break;
    }
    for (std::size_t t = 0; t < tiles; ++t)
      acc[t].store(out + j0 + t * simd::kWidth);
  }
}

}  // namespace

void BatchedMlp::forward_column0(const float* x, std::size_t rows, float* out,
                                 Scratch& scratch) const {
  assert(output_size() == 1 &&
         "forward_column0 requires a single-output network");
  std::size_t max_panel = 0;
  for (const Layer& layer : layers_)
    if (layer.padded > max_panel) max_panel = layer.padded;
  if (scratch.a.size() < max_panel) scratch.a.assign(max_panel, 0.0f);
  if (scratch.b.size() < max_panel) scratch.b.assign(max_panel, 0.0f);

  const std::size_t nl = layers_.size();
  const Layer& last = layers_.back();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* cur = x + r * inputs_;
    float* ping = scratch.a.data();
    float* pong = scratch.b.data();
    for (std::size_t l = 0; l + 1 < nl; ++l) {
      const Layer& layer = layers_[l];
      forward_row(cur, layer.in, layer.padded, layer.act, layer.w.data(),
                  layer.bias.data(), ping);
      cur = ping;
      std::swap(ping, pong);
    }
    if (!last.wcol.empty()) {
      // Hidden activations are a kWidth-multiple panel: vector dot + hsum.
      using simd::VecF;
      const std::size_t prev_padded = layers_[nl - 2].padded;
      VecF acc = VecF::zero();
      for (std::size_t i = 0; i < prev_padded; i += simd::kWidth)
        acc = simd::fmadd(VecF::load(cur + i), VecF::load(last.wcol.data() + i),
                          acc);
      out[r] = activate_f32(last.act, last.bias[0] + simd::hsum(acc));
    } else if (last.units == 1) {
      // Degenerate single-layer network: the raw input row has arbitrary
      // width and stride, so stay scalar (std::fma keeps lane semantics).
      float sum = last.bias[0];
      for (std::size_t i = 0; i < last.in; ++i)
        sum = std::fma(cur[i], last.w[i * last.padded], sum);
      out[r] = activate_f32(last.act, sum);
    } else {
      forward_row(cur, last.in, last.padded, last.act, last.w.data(),
                  last.bias.data(), ping);
      out[r] = ping[0];
    }
  }
}

BatchedEnsemble::BatchedEnsemble(const BaggingEnsemble& ensemble) {
  if (!ensemble.fitted())
    throw std::invalid_argument("BatchedEnsemble: ensemble is not fitted");
  simd::ensure_verified();
  inputs_ = ensemble.member(0).input_size();
  inv_k_ = 1.0f / static_cast<float>(ensemble.member_count());
  members_.reserve(ensemble.member_count());
  const StandardScaler* scaler =
      ensemble.scaler().fitted() ? &ensemble.scaler() : nullptr;
  for (std::size_t i = 0; i < ensemble.member_count(); ++i)
    members_.emplace_back(ensemble.member(i), scaler);
}

void BatchedEnsemble::predict_batch_into(const float* x, std::size_t rows,
                                         std::vector<float>& out,
                                         Scratch& scratch) const {
  // Accumulate member sums directly in `out`, in fixed member order, so the
  // result is deterministic and chunking-independent.
  out.assign(rows, 0.0f);
  if (scratch.member.size() < rows) scratch.member.resize(rows);
  for (const BatchedMlp& member : members_) {
    member.forward_column0(x, rows, scratch.member.data(), scratch);
    for (std::size_t r = 0; r < rows; ++r) out[r] += scratch.member[r];
  }
  for (std::size_t r = 0; r < rows; ++r) out[r] *= inv_k_;
}

BatchedEnsembleCache::BatchedEnsembleCache(
    BatchedEnsembleCache&& other) noexcept {
  const std::scoped_lock lock(other.mutex_);
  engine_ = std::move(other.engine_);
  int8_engine_ = std::move(other.int8_engine_);
  fp16_engine_ = std::move(other.fp16_engine_);
}

BatchedEnsembleCache& BatchedEnsembleCache::operator=(
    BatchedEnsembleCache&& other) noexcept {
  if (this != &other) {
    const std::scoped_lock lock(mutex_, other.mutex_);
    engine_ = std::move(other.engine_);
    int8_engine_ = std::move(other.int8_engine_);
    fp16_engine_ = std::move(other.fp16_engine_);
  }
  return *this;
}

std::shared_ptr<const BatchedEnsemble> BatchedEnsembleCache::get(
    const BaggingEnsemble& ensemble) const {
  const std::scoped_lock lock(mutex_);
  if (!engine_) engine_ = std::make_shared<const BatchedEnsemble>(ensemble);
  return engine_;
}

std::shared_ptr<const QuantizedEnsemble> BatchedEnsembleCache::get_quantized(
    const BaggingEnsemble& ensemble, QuantMode mode,
    const QuantCalibration& calibration) const {
  const std::scoped_lock lock(mutex_);
  if (mode == QuantMode::kInt8) {
    if (!int8_engine_ || !(int8_engine_->calibration() == calibration))
      int8_engine_ =
          std::make_shared<const QuantizedEnsemble>(ensemble, mode,
                                                    &calibration);
    return int8_engine_;
  }
  if (!fp16_engine_)
    fp16_engine_ = std::make_shared<const QuantizedEnsemble>(ensemble, mode);
  return fp16_engine_;
}

void BatchedEnsembleCache::reset() noexcept {
  const std::scoped_lock lock(mutex_);
  engine_ = nullptr;
  int8_engine_ = nullptr;
  fp16_engine_ = nullptr;
}

}  // namespace pt::ml
