#pragma once

// Feed-forward fully-connected network (multi-layer perceptron).
//
// The paper's performance model is an MLP with a single hidden layer of 30
// sigmoid units and a linear output trained on log execution times; this
// class supports arbitrary depth so the ablation benches can vary topology.

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/activation.hpp"
#include "ml/matrix.hpp"

namespace pt::ml {

/// One layer: `units` neurons with the given activation.
struct LayerSpec {
  std::size_t units;
  Activation activation;
};

/// Per-layer gradient buffers matching an Mlp's parameters.
struct Gradients {
  std::vector<Matrix> weights;             // same shapes as Mlp weights
  std::vector<std::vector<double>> biases; // same shapes as Mlp biases

  void scale(double factor) noexcept;
  void accumulate(const Gradients& other);
};

class Mlp {
 public:
  /// Construct with the given input width and layer stack (last layer is the
  /// output). Weights start at zero; call init_weights() before use.
  Mlp(std::size_t inputs, std::vector<LayerSpec> layers);

  /// Xavier/Glorot uniform initialization.
  void init_weights(common::Rng& rng);

  [[nodiscard]] std::size_t input_size() const noexcept { return inputs_; }
  [[nodiscard]] std::size_t output_size() const noexcept {
    return layers_.back().units;
  }
  [[nodiscard]] std::size_t layer_count() const noexcept {
    return layers_.size();
  }
  [[nodiscard]] const std::vector<LayerSpec>& layers() const noexcept {
    return layers_;
  }
  [[nodiscard]] std::size_t parameter_count() const noexcept;

  /// Weight matrix of layer l, shape (fan_in, units).
  [[nodiscard]] Matrix& weights(std::size_t l) noexcept { return weights_[l]; }
  [[nodiscard]] const Matrix& weights(std::size_t l) const noexcept {
    return weights_[l];
  }
  [[nodiscard]] std::vector<double>& biases(std::size_t l) noexcept {
    return biases_[l];
  }
  [[nodiscard]] const std::vector<double>& biases(std::size_t l) const noexcept {
    return biases_[l];
  }

  /// Predict a single sample.
  [[nodiscard]] std::vector<double> forward(std::span<const double> x) const;

  /// Predict a batch; rows of X are samples. Returns (X.rows, output_size).
  [[nodiscard]] Matrix forward_batch(const Matrix& x) const;

  /// Allocation-free batch prediction: layer outputs ping-pong between the
  /// two caller-owned scratch matrices (reshaped as needed, reusing their
  /// storage), and the returned reference points at whichever holds the
  /// final layer. Neither scratch matrix may alias x. This is the bulk
  /// prediction-scan hot path.
  Matrix& forward_batch_into(const Matrix& x, Matrix& scratch_a,
                             Matrix& scratch_b) const;

  /// Forward + backward over a batch with squared-error loss
  /// L = (1/N) * sum_i sum_k (y_ik - t_ik)^2.
  /// Fills `grads` (resized as needed) and returns the loss.
  double backward_batch(const Matrix& x, const Matrix& target,
                        Gradients& grads) const;

  /// Mean squared-error loss of the network on (x, target), no gradients.
  [[nodiscard]] double loss(const Matrix& x, const Matrix& target) const;

  /// Allocate a gradient structure with this network's shapes.
  [[nodiscard]] Gradients make_gradients() const;

 private:
  std::size_t inputs_;
  std::vector<LayerSpec> layers_;
  std::vector<Matrix> weights_;              // (fan_in, units) per layer
  std::vector<std::vector<double>> biases_;  // (units) per layer
};

}  // namespace pt::ml
