#pragma once

// Feature/target preprocessing.
//
// StandardScaler: per-column zero-mean/unit-variance normalization of the
// features (sigmoid nets train poorly on raw parameter magnitudes that span
// 1..128).
//
// LogTargetTransform: the paper's key trick (section 5.2) — train on
// log(time) so that minimizing squared error on the transformed target
// minimizes *relative* error on the raw execution time.

#include <span>
#include <vector>

#include "ml/matrix.hpp"

namespace pt::ml {

class StandardScaler {
 public:
  /// Learn per-column mean and standard deviation. Constant columns get
  /// stddev 1 so they map to zero instead of NaN.
  void fit(const Matrix& x);

  [[nodiscard]] bool fitted() const noexcept { return !means_.empty(); }
  [[nodiscard]] std::size_t width() const noexcept { return means_.size(); }

  void transform_inplace(Matrix& x) const;
  [[nodiscard]] Matrix transform(const Matrix& x) const;
  /// Transformed copy written into `out` (reshaped in place, reusing its
  /// allocation) — the allocation-free variant for bulk-prediction scratch.
  void transform_to(const Matrix& x, Matrix& out) const;
  void transform_row(std::span<double> row) const;

  void inverse_inplace(Matrix& x) const;

  [[nodiscard]] const std::vector<double>& means() const noexcept {
    return means_;
  }
  [[nodiscard]] const std::vector<double>& stddevs() const noexcept {
    return stddevs_;
  }

  /// Restore from saved parameters (used by model deserialization).
  void restore(std::vector<double> means, std::vector<double> stddevs);

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

/// log/exp transform for strictly positive targets (execution times).
class LogTargetTransform {
 public:
  /// log of every element; throws std::domain_error on non-positive input.
  [[nodiscard]] static Matrix forward(const Matrix& y);
  [[nodiscard]] static double forward(double y);

  /// exp of every element (inverse of forward).
  [[nodiscard]] static Matrix inverse(const Matrix& y);
  [[nodiscard]] static double inverse(double y) noexcept;
};

}  // namespace pt::ml
