#include "ml/serialize.hpp"

#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

namespace pt::ml {

namespace {

constexpr const char* kMlpMagic = "portatune-mlp-v1";
constexpr const char* kEnsembleMagic = "portatune-ensemble-v1";

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  if (!(is >> token) || token != expected)
    throw std::runtime_error("model load: expected '" + expected + "', got '" +
                             token + "'");
}

double read_double(std::istream& is) {
  double v = 0.0;
  if (!(is >> v)) throw std::runtime_error("model load: bad double");
  return v;
}

std::size_t read_size(std::istream& is) {
  long long v = 0;
  if (!(is >> v) || v < 0) throw std::runtime_error("model load: bad size");
  return static_cast<std::size_t>(v);
}

void write_doubles(std::ostream& os, std::span<const double> xs) {
  const auto old_precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  for (double x : xs) os << x << ' ';
  os << '\n';
  os.precision(old_precision);
}

}  // namespace

void save_mlp(const Mlp& net, std::ostream& os) {
  os << kMlpMagic << '\n';
  os << "inputs " << net.input_size() << '\n';
  os << "layers " << net.layer_count() << '\n';
  for (const auto& spec : net.layers())
    os << "layer " << spec.units << ' ' << to_string(spec.activation) << '\n';
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    os << "weights " << l << '\n';
    write_doubles(os, net.weights(l).flat());
    os << "biases " << l << '\n';
    write_doubles(os, net.biases(l));
  }
}

Mlp load_mlp(std::istream& is) {
  expect_token(is, kMlpMagic);
  expect_token(is, "inputs");
  const std::size_t inputs = read_size(is);
  expect_token(is, "layers");
  const std::size_t depth = read_size(is);
  std::vector<LayerSpec> layers;
  layers.reserve(depth);
  for (std::size_t l = 0; l < depth; ++l) {
    expect_token(is, "layer");
    const std::size_t units = read_size(is);
    std::string act;
    if (!(is >> act)) throw std::runtime_error("model load: bad activation");
    layers.push_back(LayerSpec{units, activation_from_string(act)});
  }
  Mlp net(inputs, layers);
  for (std::size_t l = 0; l < depth; ++l) {
    expect_token(is, "weights");
    if (read_size(is) != l) throw std::runtime_error("model load: layer order");
    for (auto& w : net.weights(l).flat()) w = read_double(is);
    expect_token(is, "biases");
    if (read_size(is) != l) throw std::runtime_error("model load: layer order");
    for (auto& b : net.biases(l)) b = read_double(is);
  }
  return net;
}

void save_ensemble(const BaggingEnsemble& ensemble, std::ostream& os) {
  if (!ensemble.fitted())
    throw std::logic_error("save_ensemble: ensemble not fitted");
  os << kEnsembleMagic << '\n';
  os << "k " << ensemble.options().k << '\n';
  os << "members " << ensemble.member_count() << '\n';
  os << "scaler " << ensemble.scaler().width() << '\n';
  write_doubles(os, ensemble.scaler().means());
  write_doubles(os, ensemble.scaler().stddevs());
  for (std::size_t i = 0; i < ensemble.member_count(); ++i)
    save_mlp(ensemble.member(i), os);
}

BaggingEnsemble load_ensemble(std::istream& is) {
  expect_token(is, kEnsembleMagic);
  expect_token(is, "k");
  BaggingEnsemble::Options options;
  options.k = read_size(is);
  expect_token(is, "members");
  const std::size_t members = read_size(is);
  expect_token(is, "scaler");
  const std::size_t width = read_size(is);
  std::vector<double> means(width);
  std::vector<double> stddevs(width);
  for (auto& m : means) m = read_double(is);
  for (auto& s : stddevs) s = read_double(is);
  StandardScaler scaler;
  scaler.restore(std::move(means), std::move(stddevs));

  std::vector<Mlp> nets;
  nets.reserve(members);
  for (std::size_t i = 0; i < members; ++i) nets.push_back(load_mlp(is));
  if (!nets.empty()) {
    // Recover the hidden topology from the first member for the options
    // record (informational; prediction only needs the weights).
    options.hidden_layers.assign(nets.front().layers().begin(),
                                 nets.front().layers().end() - 1);
  }
  BaggingEnsemble ensemble(options);
  ensemble.restore(options, std::move(scaler), std::move(nets));
  return ensemble;
}

}  // namespace pt::ml
