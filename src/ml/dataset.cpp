#include "ml/dataset.hpp"

#include <numeric>
#include <stdexcept>

namespace pt::ml {

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  return Dataset{x.gather_rows(indices), y.gather_rows(indices)};
}

void Dataset::append(const Dataset& other) {
  if (size() == 0) {
    *this = other;
    return;
  }
  if (other.features() != features() || other.targets() != targets())
    throw std::invalid_argument("Dataset::append: shape mismatch");
  Matrix nx(size() + other.size(), features());
  Matrix ny(size() + other.size(), targets());
  for (std::size_t r = 0; r < size(); ++r) {
    for (std::size_t c = 0; c < features(); ++c) nx(r, c) = x(r, c);
    for (std::size_t c = 0; c < targets(); ++c) ny(r, c) = y(r, c);
  }
  for (std::size_t r = 0; r < other.size(); ++r) {
    for (std::size_t c = 0; c < features(); ++c)
      nx(size() + r, c) = other.x(r, c);
    for (std::size_t c = 0; c < targets(); ++c)
      ny(size() + r, c) = other.y(r, c);
  }
  x = std::move(nx);
  y = std::move(ny);
}

void Dataset::validate() const {
  if (x.rows() != y.rows())
    throw std::invalid_argument("Dataset: x/y row count mismatch");
}

Split train_validation_split(const Dataset& data, double train_fraction,
                             common::Rng& rng) {
  if (train_fraction <= 0.0 || train_fraction > 1.0)
    throw std::invalid_argument("train_validation_split: bad fraction");
  data.validate();
  std::vector<std::size_t> perm(data.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.shuffle(perm);
  const auto n_train = static_cast<std::size_t>(
      static_cast<double>(data.size()) * train_fraction + 0.5);
  const std::span<const std::size_t> all(perm);
  Split s;
  s.train = data.subset(all.subspan(0, n_train));
  s.validation = data.subset(all.subspan(n_train));
  return s;
}

std::vector<std::vector<std::size_t>> kfold_indices(std::size_t n,
                                                    std::size_t k,
                                                    common::Rng& rng) {
  if (k == 0 || k > n)
    throw std::invalid_argument("kfold_indices: need 1 <= k <= n");
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.shuffle(perm);
  std::vector<std::vector<std::size_t>> folds(k);
  const std::size_t base = n / k;
  const std::size_t extra = n % k;
  std::size_t pos = 0;
  for (std::size_t f = 0; f < k; ++f) {
    const std::size_t len = base + (f < extra ? 1 : 0);
    folds[f].assign(perm.begin() + static_cast<std::ptrdiff_t>(pos),
                    perm.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
  return folds;
}

}  // namespace pt::ml
