#include "ml/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/telemetry/telemetry.hpp"

namespace pt::ml {

namespace {

/// Shared epoch-loop scaffolding: validation split, early stopping, best-
/// weight snapshot/restore. `epoch_fn` performs one training epoch and
/// returns the epoch's training loss.
template <typename EpochFn>
TrainResult run_epochs(Mlp& net, const Dataset& data,
                       const TrainOptions& options, common::Rng& rng,
                       EpochFn&& epoch_fn) {
  data.validate();
  if (data.size() == 0) throw std::invalid_argument("train: empty dataset");

  Dataset train_set;
  Dataset val_set;
  const bool use_validation =
      options.validation_fraction > 0.0 &&
      static_cast<std::size_t>(static_cast<double>(data.size()) *
                               options.validation_fraction) >= 1;
  if (use_validation) {
    Split split =
        train_validation_split(data, 1.0 - options.validation_fraction, rng);
    train_set = std::move(split.train);
    val_set = std::move(split.validation);
    if (train_set.size() == 0) {
      train_set = data;
      val_set = Dataset{};
    }
  } else {
    train_set = data;
  }
  const bool monitor_validation = val_set.size() > 0;

  TrainResult result;
  double best = std::numeric_limits<double>::infinity();
  std::size_t since_best = 0;

  // Snapshot of the best weights seen (restored before returning).
  std::vector<Matrix> best_weights;
  std::vector<std::vector<double>> best_biases;
  auto snapshot = [&] {
    best_weights.clear();
    best_biases.clear();
    for (std::size_t l = 0; l < net.layer_count(); ++l) {
      best_weights.push_back(net.weights(l));
      best_biases.push_back(net.biases(l));
    }
  };
  auto restore = [&] {
    if (best_weights.empty()) return;
    for (std::size_t l = 0; l < net.layer_count(); ++l) {
      net.weights(l) = best_weights[l];
      net.biases(l) = best_biases[l];
    }
  };

  for (std::size_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    const double train_loss = epoch_fn(train_set);
    const double monitored =
        monitor_validation ? net.loss(val_set.x, val_set.y) : train_loss;
    result.train_loss.push_back(train_loss);
    result.monitored_loss.push_back(monitored);
    ++result.epochs;
    if (common::telemetry::enabled()) {
      common::telemetry::gauge("ml.train.loss", train_loss);
      common::telemetry::value("ml.train.epoch_loss", train_loss);
    }

    if (monitored < best - options.min_improvement) {
      best = monitored;
      since_best = 0;
      snapshot();
    } else {
      ++since_best;
      if (options.patience > 0 && since_best >= options.patience) {
        result.early_stopped = true;
        break;
      }
    }
  }
  restore();
  result.best_loss = best;
  return result;
}

/// Iterate mini-batches of a shuffled permutation, calling step(x, y).
template <typename StepFn>
double minibatch_epoch(const Dataset& train_set, std::size_t batch_size,
                       common::Rng& rng, StepFn&& step) {
  std::vector<std::size_t> perm(train_set.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.shuffle(perm);
  double loss_sum = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < perm.size(); start += batch_size) {
    const std::size_t len = std::min(batch_size, perm.size() - start);
    const std::span<const std::size_t> idx(perm.data() + start, len);
    const Matrix bx = train_set.x.gather_rows(idx);
    const Matrix by = train_set.y.gather_rows(idx);
    loss_sum += step(bx, by);
    ++batches;
  }
  return batches ? loss_sum / static_cast<double>(batches) : 0.0;
}

}  // namespace

TrainResult RpropTrainer::train(Mlp& net, const Dataset& data,
                                common::Rng& rng) const {
  // Per-parameter state: step size and previous gradient sign, stored in
  // gradient-shaped structures.
  Gradients steps = net.make_gradients();
  Gradients prev_grad = net.make_gradients();
  for (auto& w : steps.weights) w.fill(options_.initial_step);
  for (auto& b : steps.biases)
    for (auto& x : b) x = options_.initial_step;

  Gradients grads = net.make_gradients();

  auto update_param = [&](double& param, double grad, double& step,
                          double& prev) {
    const double sign_product = grad * prev;
    if (sign_product > 0.0) {
      step = std::min(step * options_.eta_plus, options_.step_max);
    } else if (sign_product < 0.0) {
      step = std::max(step * options_.eta_minus, options_.step_min);
      grad = 0.0;  // iRprop-: suppress the update after a sign change
    }
    if (grad > 0.0) {
      param -= step;
    } else if (grad < 0.0) {
      param += step;
    }
    prev = grad;
  };

  auto epoch_fn = [&](const Dataset& train_set) {
    const double loss = net.backward_batch(train_set.x, train_set.y, grads);
    for (std::size_t l = 0; l < net.layer_count(); ++l) {
      auto wf = net.weights(l).flat();
      auto gf = grads.weights[l].flat();
      auto sf = steps.weights[l].flat();
      auto pf = prev_grad.weights[l].flat();
      for (std::size_t i = 0; i < wf.size(); ++i)
        update_param(wf[i], gf[i], sf[i], pf[i]);
      auto& bias = net.biases(l);
      auto& gb = grads.biases[l];
      auto& sb = steps.biases[l];
      auto& pb = prev_grad.biases[l];
      for (std::size_t i = 0; i < bias.size(); ++i)
        update_param(bias[i], gb[i], sb[i], pb[i]);
    }
    return loss;
  };
  return run_epochs(net, data, options_.common, rng, epoch_fn);
}

TrainResult SgdTrainer::train(Mlp& net, const Dataset& data,
                              common::Rng& rng) const {
  if (options_.batch_size == 0)
    throw std::invalid_argument("SgdTrainer: zero batch size");
  Gradients grads = net.make_gradients();
  Gradients velocity = net.make_gradients();

  auto epoch_fn = [&](const Dataset& train_set) {
    return minibatch_epoch(
        train_set, options_.batch_size, rng,
        [&](const Matrix& bx, const Matrix& by) {
          const double loss = net.backward_batch(bx, by, grads);
          for (std::size_t l = 0; l < net.layer_count(); ++l) {
            auto wf = net.weights(l).flat();
            auto gf = grads.weights[l].flat();
            auto vf = velocity.weights[l].flat();
            for (std::size_t i = 0; i < wf.size(); ++i) {
              vf[i] = options_.momentum * vf[i] -
                      options_.learning_rate * gf[i];
              wf[i] += vf[i];
            }
            auto& bias = net.biases(l);
            auto& gb = grads.biases[l];
            auto& vb = velocity.biases[l];
            for (std::size_t i = 0; i < bias.size(); ++i) {
              vb[i] = options_.momentum * vb[i] -
                      options_.learning_rate * gb[i];
              bias[i] += vb[i];
            }
          }
          return loss;
        });
  };
  return run_epochs(net, data, options_.common, rng, epoch_fn);
}

TrainResult AdamTrainer::train(Mlp& net, const Dataset& data,
                               common::Rng& rng) const {
  if (options_.batch_size == 0)
    throw std::invalid_argument("AdamTrainer: zero batch size");
  Gradients grads = net.make_gradients();
  Gradients m = net.make_gradients();
  Gradients v = net.make_gradients();
  std::size_t t = 0;

  auto epoch_fn = [&](const Dataset& train_set) {
    return minibatch_epoch(
        train_set, options_.batch_size, rng,
        [&](const Matrix& bx, const Matrix& by) {
          const double loss = net.backward_batch(bx, by, grads);
          ++t;
          const double bc1 =
              1.0 - std::pow(options_.beta1, static_cast<double>(t));
          const double bc2 =
              1.0 - std::pow(options_.beta2, static_cast<double>(t));
          auto step = [&](double& param, double grad, double& mi, double& vi) {
            mi = options_.beta1 * mi + (1.0 - options_.beta1) * grad;
            vi = options_.beta2 * vi + (1.0 - options_.beta2) * grad * grad;
            const double mhat = mi / bc1;
            const double vhat = vi / bc2;
            param -= options_.learning_rate * mhat /
                     (std::sqrt(vhat) + options_.epsilon);
          };
          for (std::size_t l = 0; l < net.layer_count(); ++l) {
            auto wf = net.weights(l).flat();
            auto gf = grads.weights[l].flat();
            auto mf = m.weights[l].flat();
            auto vf = v.weights[l].flat();
            for (std::size_t i = 0; i < wf.size(); ++i)
              step(wf[i], gf[i], mf[i], vf[i]);
            auto& bias = net.biases(l);
            auto& gb = grads.biases[l];
            auto& mb = m.biases[l];
            auto& vb = v.biases[l];
            for (std::size_t i = 0; i < bias.size(); ++i)
              step(bias[i], gb[i], mb[i], vb[i]);
          }
          return loss;
        });
  };
  return run_epochs(net, data, options_.common, rng, epoch_fn);
}

}  // namespace pt::ml
