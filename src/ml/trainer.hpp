#pragma once

// Training algorithms for the MLP.
//
// The default for the auto-tuner is iRprop- (resilient backpropagation
// without weight-backtracking): full-batch, step-size adaptive, and robust to
// the wide dynamic range of log-time targets — well suited to the paper's
// small networks (tens of hidden units, a few thousand samples). SGD with
// momentum and Adam are provided for the ablation benches and general use.
//
// All trainers support early stopping on a held-out validation slice and
// restore the best weights seen.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"
#include "ml/mlp.hpp"

namespace pt::ml {

struct TrainOptions {
  std::size_t max_epochs = 800;
  /// Fraction of the data held out for early stopping; 0 disables the
  /// validation split (training loss is monitored instead).
  double validation_fraction = 0.15;
  /// Early stop after this many epochs without (min_improvement) progress on
  /// the monitored loss; 0 disables early stopping.
  std::size_t patience = 100;
  double min_improvement = 1e-5;
};

struct TrainResult {
  std::vector<double> train_loss;       // per epoch
  std::vector<double> monitored_loss;   // validation (or train) per epoch
  std::size_t epochs = 0;
  double best_loss = 0.0;               // best monitored loss
  bool early_stopped = false;
};

/// Interface of all trainers: fit `net` on `data` in place.
class Trainer {
 public:
  virtual ~Trainer() = default;
  virtual TrainResult train(Mlp& net, const Dataset& data,
                            common::Rng& rng) const = 0;
};

/// iRprop- : per-parameter adaptive step sizes, full-batch gradients.
class RpropTrainer final : public Trainer {
 public:
  struct Options {
    TrainOptions common;
    double initial_step = 0.05;
    double eta_plus = 1.2;
    double eta_minus = 0.5;
    double step_min = 1e-8;
    double step_max = 5.0;
  };

  RpropTrainer() = default;
  explicit RpropTrainer(Options options) : options_(options) {}

  TrainResult train(Mlp& net, const Dataset& data,
                    common::Rng& rng) const override;

 private:
  Options options_{};
};

/// Mini-batch stochastic gradient descent with classical momentum.
class SgdTrainer final : public Trainer {
 public:
  struct Options {
    TrainOptions common;
    double learning_rate = 0.05;
    double momentum = 0.9;
    std::size_t batch_size = 32;
  };

  SgdTrainer() = default;
  explicit SgdTrainer(Options options) : options_(options) {}

  TrainResult train(Mlp& net, const Dataset& data,
                    common::Rng& rng) const override;

 private:
  Options options_{};
};

/// Adam (Kingma & Ba) with mini-batches.
class AdamTrainer final : public Trainer {
 public:
  struct Options {
    TrainOptions common;
    double learning_rate = 0.01;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    std::size_t batch_size = 32;
  };

  AdamTrainer() = default;
  explicit AdamTrainer(Options options) : options_(options) {}

  TrainResult train(Mlp& net, const Dataset& data,
                    common::Rng& rng) const override;

 private:
  Options options_{};
};

}  // namespace pt::ml
