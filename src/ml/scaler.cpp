#include "ml/scaler.hpp"

#include <cmath>
#include <stdexcept>

namespace pt::ml {

void StandardScaler::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("StandardScaler: empty fit");
  const std::size_t cols = x.cols();
  means_.assign(cols, 0.0);
  stddevs_.assign(cols, 0.0);
  const double n = static_cast<double>(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < cols; ++c) means_[c] += row[c];
  }
  for (auto& m : means_) m /= n;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < cols; ++c) {
      const double d = row[c] - means_[c];
      stddevs_[c] += d * d;
    }
  }
  for (auto& s : stddevs_) {
    s = std::sqrt(s / n);
    if (s < 1e-12) s = 1.0;  // constant column
  }
}

void StandardScaler::transform_inplace(Matrix& x) const {
  if (x.cols() != width())
    throw std::invalid_argument("StandardScaler: width mismatch");
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c)
      row[c] = (row[c] - means_[c]) / stddevs_[c];
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  Matrix out = x;
  transform_inplace(out);
  return out;
}

void StandardScaler::transform_to(const Matrix& x, Matrix& out) const {
  if (x.cols() != width())
    throw std::invalid_argument("StandardScaler: width mismatch");
  out.reshape(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c)
      dst[c] = (src[c] - means_[c]) / stddevs_[c];
  }
}

void StandardScaler::transform_row(std::span<double> row) const {
  if (row.size() != width())
    throw std::invalid_argument("StandardScaler: width mismatch");
  for (std::size_t c = 0; c < row.size(); ++c)
    row[c] = (row[c] - means_[c]) / stddevs_[c];
}

void StandardScaler::inverse_inplace(Matrix& x) const {
  if (x.cols() != width())
    throw std::invalid_argument("StandardScaler: width mismatch");
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c)
      row[c] = row[c] * stddevs_[c] + means_[c];
  }
}

void StandardScaler::restore(std::vector<double> means,
                             std::vector<double> stddevs) {
  if (means.size() != stddevs.size())
    throw std::invalid_argument("StandardScaler::restore: size mismatch");
  means_ = std::move(means);
  stddevs_ = std::move(stddevs);
}

Matrix LogTargetTransform::forward(const Matrix& y) {
  Matrix out = y;
  for (auto& v : out.flat()) v = forward(v);
  return out;
}

double LogTargetTransform::forward(double y) {
  if (y <= 0.0)
    throw std::domain_error("LogTargetTransform: non-positive target");
  return std::log(y);
}

Matrix LogTargetTransform::inverse(const Matrix& y) {
  Matrix out = y;
  for (auto& v : out.flat()) v = std::exp(v);
  return out;
}

double LogTargetTransform::inverse(double y) noexcept { return std::exp(y); }

}  // namespace pt::ml
