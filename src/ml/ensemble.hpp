#pragma once

// Bagging ensemble of MLPs — the paper's model-building step (section 5.2):
// the training data is split into k parts and k networks are trained, each on
// all the data except one part; the prediction is the mean of the k outputs.
// The paper uses k = 11.
//
// Feature standardization is owned by the ensemble (fitted on the full
// training set); target transforms (the paper's log trick) are applied by the
// caller so they can be ablated independently.

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "ml/dataset.hpp"
#include "ml/mlp.hpp"
#include "ml/scaler.hpp"
#include "ml/trainer.hpp"

namespace pt::ml {

class BaggingEnsemble {
 public:
  struct Options {
    std::size_t k = 11;                      // paper's value
    std::vector<LayerSpec> hidden_layers =  // paper: 1 x 30 sigmoid
        {LayerSpec{30, Activation::kSigmoid}};
    RpropTrainer::Options trainer{};
  };

  BaggingEnsemble() : BaggingEnsemble(Options()) {}
  explicit BaggingEnsemble(Options options);

  /// Reusable scratch buffers for predict_batch_into: the scaled copy of the
  /// query matrix plus the two layer-output ping-pong buffers. Keeping one
  /// per worker makes a chunked prediction scan allocation-free.
  struct PredictScratch {
    Matrix scaled;
    Matrix layer_a;
    Matrix layer_b;
  };

  /// Train k networks with leave-one-fold-out bagging, in parallel on the
  /// global thread pool. The fold split and one forked RNG per member are
  /// derived from `rng` before dispatch, so the result is bit-identical for
  /// every pool size (including 1). Replaces any previous state. If the
  /// dataset has fewer rows than k, k is clamped down.
  void fit(const Dataset& data, common::Rng& rng);

  [[nodiscard]] bool fitted() const noexcept { return !members_.empty(); }
  [[nodiscard]] std::size_t member_count() const noexcept {
    return members_.size();
  }
  [[nodiscard]] const Mlp& member(std::size_t i) const { return members_[i]; }
  /// Per-member training curves from the last fit() (member order; empty
  /// for a restored ensemble). Lets observers replay per-epoch losses
  /// deterministically after concurrent training finishes.
  [[nodiscard]] const std::vector<TrainResult>& train_results() const noexcept {
    return train_results_;
  }
  [[nodiscard]] const StandardScaler& scaler() const noexcept {
    return scaler_;
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

  /// Mean prediction over the members for one sample.
  [[nodiscard]] double predict(std::span<const double> x) const;

  /// Batch prediction; returns one value per row of x (single-output nets).
  [[nodiscard]] std::vector<double> predict_batch(const Matrix& x) const;

  /// Batch prediction into a caller-owned output vector and scratch —
  /// equivalent to predict_batch but allocation-free once the buffers are
  /// warm. Safe to call concurrently with distinct scratch objects.
  void predict_batch_into(const Matrix& x, std::vector<double>& out,
                          PredictScratch& scratch) const;

  /// Per-member predictions for one sample (exposed for uncertainty
  /// estimation: the spread is a cheap confidence signal).
  [[nodiscard]] std::vector<double> member_predictions(
      std::span<const double> x) const;

  /// Standard deviation of member predictions for one sample.
  [[nodiscard]] double predictive_spread(std::span<const double> x) const;

  /// Rebuild a fitted ensemble from persisted state (see ml/serialize.hpp).
  void restore(Options options, StandardScaler scaler,
               std::vector<Mlp> members);

 private:
  Options options_;
  StandardScaler scaler_;
  std::vector<Mlp> members_;
  std::vector<TrainResult> train_results_;
};

}  // namespace pt::ml
