#pragma once

// Quantized inference tier for the prediction scan (ROADMAP item 3, the
// step past the batched fp32 engine of ml/batched.hpp). Two reduced-
// precision engines packed from the same fitted ensembles:
//
//  * kInt8 — per-output-channel symmetric int8 weights with int32
//    accumulation. The feature calibration (per-input [lo, hi] ranges,
//    supplied by the caller from the encoder's value tables) is folded into
//    the packed weights and biases at pack time, in double:
//      a_q[i]   = round((x[i] - lo_i) / s_i),  s_i = (hi_i - lo_i) / 127
//      W''[i][j] = s_i * W'[i][j]              (W' = scaler-folded weights)
//      b''_j     = b'_j + sum_i lo_i * W'[i][j]
//    so quantized activations are plain unsigned 7-bit integers and no
//    zero-point correction appears in the inner loop. Weight columns are
//    quantized per output channel with power-of-two scales, which turns
//    requantization into a per-channel arithmetic shift; hidden activations
//    (sigmoid/tanh) are evaluated through a 512-entry lookup table over
//    pre-activation domain [-8, 8) that directly emits the next layer's u7
//    activation. Accumulation is exact integer arithmetic throughout, so
//    results are bit-identical across SIMD backends by construction.
//    Restricted to sigmoid/tanh hidden layers and a single linear output
//    (what the paper's networks use); anything else throws.
//
//  * kFp16 — IEEE-half weight storage with fp32 compute: the fp32 panels of
//    the batched engine stored at half width (round-to-nearest-even at pack
//    time, software conversion on every backend so panels are identical),
//    widened back to fp32 in the inner loop (F16C hardware converts when
//    compiled in — the same exact conversion). Halves the weight working
//    set; compute follows ml/batched.hpp exactly. Supports every topology
//    the batched engine does. Calibration is not used.
//
// Neither engine is exact relative to the fp64 reference; the scan layer
// (tuner/scan.hpp) treats their outputs as a coarse ranking and re-ranks
// every candidate within a widened slack band through fp64, so the returned
// top-M stays exactly the fp64 selection as long as the raw-output error
// stays within ScanOptions::quant_error_bound (declared per mode, verified
// with 2x margin by tests/ml/test_quant.cpp).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/simd.hpp"
#include "ml/activation.hpp"
#include "ml/ensemble.hpp"
#include "ml/mlp.hpp"
#include "ml/scaler.hpp"

namespace pt::ml {

enum class QuantMode {
  kInt8,  // s8 weights, u7 activations, s32 accumulation, LUT activations
  kFp16,  // f16 weight storage, fp32 compute
};

[[nodiscard]] constexpr const char* quant_mode_name(QuantMode mode) noexcept {
  return mode == QuantMode::kInt8 ? "int8" : "fp16";
}

/// Per-input-feature value ranges used to quantize raw feature rows. For
/// scan features these are the min/max of the encoder's per-dimension value
/// tables, so every scanned row is inside its range by construction; a
/// degenerate range (lo == hi — e.g. a fixed instance-feature tail) is
/// exact: the feature's contribution folds entirely into the bias.
struct QuantCalibration {
  std::vector<float> lo;
  std::vector<float> hi;

  [[nodiscard]] std::size_t width() const noexcept { return lo.size(); }
  [[nodiscard]] bool operator==(const QuantCalibration&) const = default;
};

/// One fitted Mlp packed for quantized inference. Pack-time folds (scaler,
/// calibration, activation affine) are computed in double, so the only
/// precision loss is the declared weight/activation quantization itself.
class QuantizedMlp {
 public:
  /// Pack `mlp` (optionally folding `scaler` into layer 0). For kInt8 a
  /// calibration of matching width is required and the topology must be
  /// sigmoid/tanh hidden layers plus a single linear output; violations
  /// throw std::invalid_argument.
  QuantizedMlp(const Mlp& mlp, const StandardScaler* scaler, QuantMode mode,
               const QuantCalibration* calibration);

  [[nodiscard]] QuantMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::size_t input_size() const noexcept { return inputs_; }

  struct Scratch {
    // int8 path: ping-pong u7 activation panels and the s32 accumulator.
    common::simd::AlignedVector<std::uint8_t> qa;
    common::simd::AlignedVector<std::uint8_t> qb;
    common::simd::AlignedVector<std::int32_t> acc;
    // fp16 path: fp32 activation panels (as in the batched engine).
    common::simd::AlignedVectorF a;
    common::simd::AlignedVectorF b;
    std::vector<float> member;
  };

  /// int8 forward for one pre-quantized u7 input row (layout/width
  /// quantized_input_width()); returns the single raw fp32 output.
  [[nodiscard]] float forward_int8(const std::uint8_t* qrow,
                                   Scratch& scratch) const;

  /// fp16 forward over `rows` row-major fp32 feature rows; writes the
  /// single output column. Mirrors BatchedMlp::forward_column0.
  void forward_column0_f16(const float* x, std::size_t rows, float* out,
                           Scratch& scratch) const;

  /// Width of a quantized input row consumed by forward_int8 (the input
  /// count rounded up to a whole input-quad count).
  [[nodiscard]] std::size_t quantized_input_width() const noexcept {
    return in_padded_;
  }

 private:
  struct Int8Layer {
    std::size_t in = 0;        // padded fan-in (even)
    std::size_t channels = 0;  // padded unit count (multiple of 32)
    common::simd::AlignedVector<std::int8_t> w;  // quad-interleaved panel
    common::simd::AlignedVector<std::int32_t> bias_idx;  // per-channel B_j
    common::simd::AlignedVector<std::int32_t> shift;     // per-channel t_j
    const std::int32_t* lut = nullptr;  // shared 512-entry activation table
  };
  struct F16Layer {
    std::size_t in = 0;
    std::size_t units = 0;
    std::size_t padded = 0;  // units rounded up to simd::kWidth
    Activation act = Activation::kLinear;
    common::simd::AlignedVector<std::uint16_t> w;  // (in, padded) row-major
    common::simd::AlignedVectorF bias;
    common::simd::AlignedVector<std::uint16_t> wcol;  // single-output column
  };

  void pack_int8(const Mlp& mlp, const StandardScaler* scaler,
                 const QuantCalibration& calibration);
  void pack_f16(const Mlp& mlp, const StandardScaler* scaler);

  QuantMode mode_;
  std::size_t inputs_ = 0;
  std::size_t in_padded_ = 0;
  // int8: hidden layers, then the output dot column.
  std::vector<Int8Layer> int8_layers_;
  std::size_t max_channels_ = 0;  // widest int8 layer, sizes Scratch buffers
  common::simd::AlignedVector<std::int8_t> out_w_;  // u7-dot weight column
  std::size_t out_n_ = 0;    // dot length (multiple of kQuantDotAlign)
  double out_scale_ = 0.0;   // sw of the output column
  double out_bias_ = 0.0;    // folded output bias
  // fp16 layers (batched-engine layout at half storage width).
  std::vector<F16Layer> f16_layers_;
};

/// Quantized counterpart of BatchedEnsemble: packs every member once (with
/// the shared scaler folded in) and averages member outputs in fixed order,
/// so results are deterministic and chunking-independent.
class QuantizedEnsemble {
 public:
  /// Packs a fitted ensemble; throws std::invalid_argument if it is not
  /// fitted, if kInt8 is requested without a matching-width calibration, or
  /// if the topology is outside the int8 restrictions. The SIMD backend is
  /// runtime-verified first (simd::ensure_verified).
  QuantizedEnsemble(const BaggingEnsemble& ensemble, QuantMode mode,
                    const QuantCalibration* calibration = nullptr);

  [[nodiscard]] QuantMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::size_t input_width() const noexcept { return inputs_; }
  [[nodiscard]] std::size_t member_count() const noexcept {
    return members_.size();
  }
  [[nodiscard]] const QuantCalibration& calibration() const noexcept {
    return calibration_;
  }

  struct Scratch {
    QuantizedMlp::Scratch ms;
    // One chunk of quantized u7 input rows (int8 mode), quantized once and
    // shared by every member.
    common::simd::AlignedVector<std::uint8_t> qrows;
  };

  /// Mean member prediction for `rows` row-major raw-feature samples; out
  /// is resized to `rows`. Safe concurrently with distinct scratch.
  void predict_batch_into(const float* x, std::size_t rows,
                          std::vector<float>& out, Scratch& scratch) const;

 private:
  QuantMode mode_;
  std::size_t inputs_ = 0;
  float inv_k_ = 0.0f;
  QuantCalibration calibration_;
  std::vector<float> inv_step_;  // per-feature 127 / (hi - lo), 0 if lo==hi
  std::vector<QuantizedMlp> members_;
};

}  // namespace pt::ml
