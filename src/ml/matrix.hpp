#pragma once

// Dense row-major matrix of doubles with the handful of BLAS-like kernels the
// neural network needs. Sized for this project's workloads: layers of tens of
// units, batches of a few thousand rows, and bulk prediction over millions of
// configurations (done in batches).

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace pt::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer lists (row major); rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }

  /// Copy a subset of rows (by index) into a new matrix.
  [[nodiscard]] Matrix gather_rows(std::span<const std::size_t> indices) const;

  /// Change shape to (rows, cols) and set every element to `value`, reusing
  /// the existing allocation whenever it is large enough. This is what keeps
  /// the bulk-prediction scratch buffers allocation-free after warm-up.
  void reshape(std::size_t rows, std::size_t cols, double value = 0.0) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, value);
  }

  void fill(double value) noexcept;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar) noexcept;

  [[nodiscard]] bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// out = a * b. Shapes must agree; out is reshaped in place (its allocation
/// is reused when possible). out must not alias a or b.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T (avoids materializing the transpose; the backward pass hot
/// path). out must not alias a or b.
void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a^T * b. out must not alias a or b.
void matmul_at(const Matrix& a, const Matrix& b, Matrix& out);

/// out(r, :) += bias for every row r.
void add_row_vector(Matrix& out, std::span<const double> bias);

/// Column-wise sums of a (length a.cols()).
void column_sums(const Matrix& a, std::span<double> out);

/// Frobenius-style dot product of two same-shaped matrices.
[[nodiscard]] double dot(const Matrix& a, const Matrix& b);

}  // namespace pt::ml
