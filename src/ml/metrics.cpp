#include "ml/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace pt::ml {

namespace {
void check(std::span<const double> predicted, std::span<const double> actual) {
  if (predicted.size() != actual.size())
    throw std::invalid_argument("metric: size mismatch");
  if (predicted.empty()) throw std::invalid_argument("metric: empty input");
}
}  // namespace

double mse(std::span<const double> predicted, std::span<const double> actual) {
  check(predicted, actual);
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    acc += d * d;
  }
  return acc / static_cast<double>(predicted.size());
}

double rmse(std::span<const double> predicted, std::span<const double> actual) {
  return std::sqrt(mse(predicted, actual));
}

double mae(std::span<const double> predicted, std::span<const double> actual) {
  check(predicted, actual);
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    acc += std::abs(predicted[i] - actual[i]);
  return acc / static_cast<double>(predicted.size());
}

double mean_relative_error(std::span<const double> predicted,
                           std::span<const double> actual) {
  check(predicted, actual);
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (actual[i] == 0.0)
      throw std::domain_error("mean_relative_error: zero actual value");
    acc += std::abs(predicted[i] - actual[i]) / std::abs(actual[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

double r_squared(std::span<const double> predicted,
                 std::span<const double> actual) {
  check(predicted, actual);
  double mean_actual = 0.0;
  for (double a : actual) mean_actual += a;
  mean_actual /= static_cast<double>(actual.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double r = actual[i] - predicted[i];
    const double t = actual[i] - mean_actual;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace pt::ml
