#pragma once

// Regression quality metrics. The paper's headline metric is the *mean
// relative error* |pred - actual| / actual of execution-time predictions.

#include <span>

namespace pt::ml {

/// Mean squared error.
[[nodiscard]] double mse(std::span<const double> predicted,
                         std::span<const double> actual);

/// Root mean squared error.
[[nodiscard]] double rmse(std::span<const double> predicted,
                          std::span<const double> actual);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> predicted,
                         std::span<const double> actual);

/// Mean of |pred - actual| / actual. Actual values must be non-zero.
[[nodiscard]] double mean_relative_error(std::span<const double> predicted,
                                         std::span<const double> actual);

/// Coefficient of determination R^2 (1 - SS_res / SS_tot); returns 0 when
/// the actual values are constant.
[[nodiscard]] double r_squared(std::span<const double> predicted,
                               std::span<const double> actual);

}  // namespace pt::ml
