#include "ml/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pt::ml {

BaggingEnsemble::BaggingEnsemble(Options options)
    : options_(std::move(options)) {
  if (options_.k == 0) throw std::invalid_argument("BaggingEnsemble: k == 0");
  if (options_.hidden_layers.empty())
    throw std::invalid_argument("BaggingEnsemble: no hidden layers");
}

void BaggingEnsemble::fit(const Dataset& data, common::Rng& rng) {
  data.validate();
  if (data.size() == 0)
    throw std::invalid_argument("BaggingEnsemble::fit: empty dataset");
  if (data.targets() != 1)
    throw std::invalid_argument("BaggingEnsemble::fit: expected one target");

  scaler_ = StandardScaler();
  scaler_.fit(data.x);
  Dataset scaled{scaler_.transform(data.x), data.y};

  const std::size_t k = std::min(options_.k, data.size());
  members_.clear();
  members_.reserve(k);

  std::vector<LayerSpec> layers = options_.hidden_layers;
  layers.push_back(LayerSpec{1, Activation::kLinear});

  if (k == 1) {
    Mlp net(data.features(), layers);
    net.init_weights(rng);
    RpropTrainer(options_.trainer).train(net, scaled, rng);
    members_.push_back(std::move(net));
    return;
  }

  const auto folds = kfold_indices(data.size(), k, rng);
  for (std::size_t f = 0; f < k; ++f) {
    // Member f trains on every fold except f.
    std::vector<std::size_t> idx;
    idx.reserve(data.size() - folds[f].size());
    for (std::size_t g = 0; g < k; ++g) {
      if (g == f) continue;
      idx.insert(idx.end(), folds[g].begin(), folds[g].end());
    }
    const Dataset member_data = scaled.subset(idx);
    Mlp net(data.features(), layers);
    net.init_weights(rng);
    RpropTrainer(options_.trainer).train(net, member_data, rng);
    members_.push_back(std::move(net));
  }
}

double BaggingEnsemble::predict(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("BaggingEnsemble: not fitted");
  std::vector<double> scaled(x.begin(), x.end());
  scaler_.transform_row(scaled);
  double acc = 0.0;
  for (const auto& net : members_) acc += net.forward(scaled)[0];
  return acc / static_cast<double>(members_.size());
}

std::vector<double> BaggingEnsemble::predict_batch(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("BaggingEnsemble: not fitted");
  const Matrix scaled = scaler_.transform(x);
  std::vector<double> out(x.rows(), 0.0);
  for (const auto& net : members_) {
    const Matrix y = net.forward_batch(scaled);
    for (std::size_t r = 0; r < y.rows(); ++r) out[r] += y(r, 0);
  }
  const double inv = 1.0 / static_cast<double>(members_.size());
  for (auto& v : out) v *= inv;
  return out;
}

std::vector<double> BaggingEnsemble::member_predictions(
    std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("BaggingEnsemble: not fitted");
  std::vector<double> scaled(x.begin(), x.end());
  scaler_.transform_row(scaled);
  std::vector<double> out;
  out.reserve(members_.size());
  for (const auto& net : members_) out.push_back(net.forward(scaled)[0]);
  return out;
}

void BaggingEnsemble::restore(Options options, StandardScaler scaler,
                              std::vector<Mlp> members) {
  if (members.empty())
    throw std::invalid_argument("BaggingEnsemble::restore: no members");
  for (const auto& net : members) {
    if (net.output_size() != 1)
      throw std::invalid_argument(
          "BaggingEnsemble::restore: member is not single-output");
    if (net.input_size() != scaler.width())
      throw std::invalid_argument(
          "BaggingEnsemble::restore: scaler/member width mismatch");
  }
  options_ = std::move(options);
  scaler_ = std::move(scaler);
  members_ = std::move(members);
}

double BaggingEnsemble::predictive_spread(std::span<const double> x) const {
  const auto preds = member_predictions(x);
  if (preds.size() < 2) return 0.0;
  double m = 0.0;
  for (double p : preds) m += p;
  m /= static_cast<double>(preds.size());
  double acc = 0.0;
  for (double p : preds) acc += (p - m) * (p - m);
  return std::sqrt(acc / static_cast<double>(preds.size() - 1));
}

}  // namespace pt::ml
