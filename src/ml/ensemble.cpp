#include "ml/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "common/telemetry/telemetry.hpp"
#include "common/thread_pool.hpp"

namespace pt::ml {

BaggingEnsemble::BaggingEnsemble(Options options)
    : options_(std::move(options)) {
  if (options_.k == 0) throw std::invalid_argument("BaggingEnsemble: k == 0");
  if (options_.hidden_layers.empty())
    throw std::invalid_argument("BaggingEnsemble: no hidden layers");
}

void BaggingEnsemble::fit(const Dataset& data, common::Rng& rng) {
  data.validate();
  if (data.size() == 0)
    throw std::invalid_argument("BaggingEnsemble::fit: empty dataset");
  if (data.targets() != 1)
    throw std::invalid_argument("BaggingEnsemble::fit: expected one target");

  scaler_ = StandardScaler();
  scaler_.fit(data.x);
  Dataset scaled{scaler_.transform(data.x), data.y};

  const std::size_t k = std::min(options_.k, data.size());
  members_.clear();
  members_.reserve(k);

  std::vector<LayerSpec> layers = options_.hidden_layers;
  layers.push_back(LayerSpec{1, Activation::kLinear});

  // The fold split and one forked RNG per member are drawn from the parent
  // RNG *before* dispatch, in member order, so training is deterministic and
  // bit-identical no matter how the pool schedules the members.
  std::vector<std::vector<std::size_t>> folds;
  if (k > 1) folds = kfold_indices(data.size(), k, rng);
  std::vector<common::Rng> member_rngs;
  member_rngs.reserve(k);
  for (std::size_t f = 0; f < k; ++f) member_rngs.push_back(rng.fork());

  std::vector<std::optional<Mlp>> trained(k);
  train_results_.assign(k, TrainResult{});
  common::global_pool().parallel_for(0, k, [&](std::size_t f) {
    const common::telemetry::Span span("ml.fit.member");
    Mlp net(data.features(), layers);
    net.init_weights(member_rngs[f]);
    const RpropTrainer trainer(options_.trainer);
    if (k == 1) {
      train_results_[f] = trainer.train(net, scaled, member_rngs[f]);
    } else {
      // Member f trains on every fold except f.
      std::vector<std::size_t> idx;
      idx.reserve(data.size() - folds[f].size());
      for (std::size_t g = 0; g < k; ++g) {
        if (g == f) continue;
        idx.insert(idx.end(), folds[g].begin(), folds[g].end());
      }
      const Dataset member_data = scaled.subset(idx);
      train_results_[f] = trainer.train(net, member_data, member_rngs[f]);
    }
    trained[f].emplace(std::move(net));
  });
  for (auto& net : trained) members_.push_back(std::move(*net));
}

double BaggingEnsemble::predict(std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("BaggingEnsemble: not fitted");
  std::vector<double> scaled(x.begin(), x.end());
  scaler_.transform_row(scaled);
  double acc = 0.0;
  for (const auto& net : members_) acc += net.forward(scaled)[0];
  // Multiply by the reciprocal, matching predict_batch_into bit-for-bit.
  return acc * (1.0 / static_cast<double>(members_.size()));
}

std::vector<double> BaggingEnsemble::predict_batch(const Matrix& x) const {
  std::vector<double> out;
  PredictScratch scratch;
  predict_batch_into(x, out, scratch);
  return out;
}

void BaggingEnsemble::predict_batch_into(const Matrix& x,
                                         std::vector<double>& out,
                                         PredictScratch& scratch) const {
  if (!fitted()) throw std::logic_error("BaggingEnsemble: not fitted");
  scaler_.transform_to(x, scratch.scaled);
  out.assign(x.rows(), 0.0);
  for (const auto& net : members_) {
    const Matrix& y =
        net.forward_batch_into(scratch.scaled, scratch.layer_a,
                               scratch.layer_b);
    for (std::size_t r = 0; r < y.rows(); ++r) out[r] += y(r, 0);
  }
  const double inv = 1.0 / static_cast<double>(members_.size());
  for (auto& v : out) v *= inv;
}

std::vector<double> BaggingEnsemble::member_predictions(
    std::span<const double> x) const {
  if (!fitted()) throw std::logic_error("BaggingEnsemble: not fitted");
  std::vector<double> scaled(x.begin(), x.end());
  scaler_.transform_row(scaled);
  std::vector<double> out;
  out.reserve(members_.size());
  for (const auto& net : members_) out.push_back(net.forward(scaled)[0]);
  return out;
}

void BaggingEnsemble::restore(Options options, StandardScaler scaler,
                              std::vector<Mlp> members) {
  if (members.empty())
    throw std::invalid_argument("BaggingEnsemble::restore: no members");
  for (const auto& net : members) {
    if (net.output_size() != 1)
      throw std::invalid_argument(
          "BaggingEnsemble::restore: member is not single-output");
    if (net.input_size() != scaler.width())
      throw std::invalid_argument(
          "BaggingEnsemble::restore: scaler/member width mismatch");
  }
  options_ = std::move(options);
  scaler_ = std::move(scaler);
  members_ = std::move(members);
  train_results_.clear();
}

double BaggingEnsemble::predictive_spread(std::span<const double> x) const {
  const auto preds = member_predictions(x);
  if (preds.size() < 2) return 0.0;
  double m = 0.0;
  for (double p : preds) m += p;
  m /= static_cast<double>(preds.size());
  double acc = 0.0;
  for (double p : preds) acc += (p - m) * (p - m);
  return std::sqrt(acc / static_cast<double>(preds.size() - 1));
}

}  // namespace pt::ml
