#pragma once

// Supervised-learning dataset: feature matrix X plus target matrix Y, with
// the split/fold helpers the bagging ensemble and experiment harness need.

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "ml/matrix.hpp"

namespace pt::ml {

struct Dataset {
  Matrix x;  // (n, features)
  Matrix y;  // (n, targets)

  [[nodiscard]] std::size_t size() const noexcept { return x.rows(); }
  [[nodiscard]] std::size_t features() const noexcept { return x.cols(); }
  [[nodiscard]] std::size_t targets() const noexcept { return y.cols(); }

  /// Subset by row indices.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Append another dataset's rows (shapes must match).
  void append(const Dataset& other);

  /// Throws std::invalid_argument if x/y row counts disagree.
  void validate() const;
};

/// Train/validation split: the first `round(n * train_fraction)` of a random
/// permutation go to train, the rest to validation.
struct Split {
  Dataset train;
  Dataset validation;
};
[[nodiscard]] Split train_validation_split(const Dataset& data,
                                           double train_fraction,
                                           common::Rng& rng);

/// K contiguous folds of a random permutation of [0, n); the folds partition
/// the index range and differ in size by at most one.
[[nodiscard]] std::vector<std::vector<std::size_t>> kfold_indices(
    std::size_t n, std::size_t k, common::Rng& rng);

}  // namespace pt::ml
