#include "ml/activation.hpp"

#include <cmath>
#include <stdexcept>

namespace pt::ml {

double activate(Activation act, double x) noexcept {
  switch (act) {
    case Activation::kLinear: return x;
    case Activation::kSigmoid: return 1.0 / (1.0 + std::exp(-x));
    case Activation::kTanh: return std::tanh(x);
    case Activation::kRelu: return x > 0.0 ? x : 0.0;
  }
  return x;
}

double activate_grad_from_output(Activation act, double y) noexcept {
  switch (act) {
    case Activation::kLinear: return 1.0;
    case Activation::kSigmoid: return y * (1.0 - y);
    case Activation::kTanh: return 1.0 - y * y;
    case Activation::kRelu: return y > 0.0 ? 1.0 : 0.0;
  }
  return 1.0;
}

void activate_inplace(Activation act, Matrix& m) noexcept {
  if (act == Activation::kLinear) return;
  for (auto& x : m.flat()) x = activate(act, x);
}

void scale_by_activation_grad(Activation act, const Matrix& y,
                              Matrix& delta) noexcept {
  if (act == Activation::kLinear) return;
  const auto fy = y.flat();
  auto fd = delta.flat();
  for (std::size_t i = 0; i < fd.size(); ++i)
    fd[i] *= activate_grad_from_output(act, fy[i]);
}

std::string to_string(Activation act) {
  switch (act) {
    case Activation::kLinear: return "linear";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kTanh: return "tanh";
    case Activation::kRelu: return "relu";
  }
  return "unknown";
}

Activation activation_from_string(const std::string& name) {
  if (name == "linear") return Activation::kLinear;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "tanh") return Activation::kTanh;
  if (name == "relu") return Activation::kRelu;
  throw std::invalid_argument("unknown activation: " + name);
}

}  // namespace pt::ml
