#include "ml/quant.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace pt::ml {

namespace simd = common::simd;

namespace {

// LUT geometry: 512 entries over pre-activation domain [-8, 8), so an index
// step is 1/32 in pre-activation units and the requantization shift must
// land the accumulator on idx = (y + 8) * 32.
constexpr std::int32_t kLutSize = 512;
constexpr double kLutPerUnit = 32.0;  // entries per pre-activation unit
// Hard cap on the per-channel requant shift: keeps the folded index bias
// B_j = (b''_j + 8) * 32 * 2^t comfortably inside int32 for any sane bias
// and bounds the quantization of near-zero weight columns.
constexpr std::int32_t kMaxShift = 18;
constexpr long long kMaxBiasIdx = 1LL << 29;

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

double sigmoid_d(double y) { return 1.0 / (1.0 + std::exp(-y)); }

/// Entry k covers y in [-8 + k/32, -8 + (k+1)/32); evaluated at the
/// interval center, output scaled to u7 (0..127).
const std::int32_t* sigmoid_lut_u7() {
  static const auto table = [] {
    std::array<std::int32_t, kLutSize> t{};
    for (std::int32_t k = 0; k < kLutSize; ++k) {
      const double y = -8.0 + (static_cast<double>(k) + 0.5) / kLutPerUnit;
      t[static_cast<std::size_t>(k)] =
          static_cast<std::int32_t>(std::lround(sigmoid_d(y) * 127.0));
    }
    return t;
  }();
  return table.data();
}

/// tanh is evaluated as 2*sigmoid(2y) - 1 with the affine part folded into
/// the next layer's weights, so its table stores sigmoid(2y) as u7.
const std::int32_t* tanh_lut_u7() {
  static const auto table = [] {
    std::array<std::int32_t, kLutSize> t{};
    for (std::int32_t k = 0; k < kLutSize; ++k) {
      const double y = -8.0 + (static_cast<double>(k) + 0.5) / kLutPerUnit;
      t[static_cast<std::size_t>(k)] =
          static_cast<std::int32_t>(std::lround(sigmoid_d(2.0 * y) * 127.0));
    }
    return t;
  }();
  return table.data();
}

/// The u7 activation stored for `act` is u = sigmoid(.) in [0, 1]; the real
/// activation value is c1 * u + c0. That affine is folded into the consumer
/// layer's weights and bias.
void activation_affine(Activation act, double& c1, double& c0) {
  if (act == Activation::kSigmoid) {
    c1 = 1.0;
    c0 = 0.0;
  } else {
    assert(act == Activation::kTanh);
    c1 = 2.0;
    c0 = -1.0;
  }
}

/// Effective double-precision weights/bias of one layer after all pack-time
/// folds (scaler, calibration, previous-activation affine).
struct EffectiveLayer {
  std::size_t in = 0;     // real fan-in
  std::size_t units = 0;  // real unit count
  std::vector<double> w;  // (in, units) row-major
  std::vector<double> bias;
};

}  // namespace

QuantizedMlp::QuantizedMlp(const Mlp& mlp, const StandardScaler* scaler,
                           QuantMode mode,
                           const QuantCalibration* calibration)
    : mode_(mode), inputs_(mlp.input_size()) {
  if (scaler && scaler->width() != inputs_)
    throw std::invalid_argument(
        "QuantizedMlp: scaler width does not match network input width");
  if (mode_ == QuantMode::kInt8) {
    if (!calibration || calibration->width() != inputs_ ||
        calibration->hi.size() != calibration->lo.size())
      throw std::invalid_argument(
          "QuantizedMlp: int8 packing requires a calibration of network "
          "input width");
    pack_int8(mlp, scaler, *calibration);
  } else {
    pack_f16(mlp, scaler);
  }
}

void QuantizedMlp::pack_int8(const Mlp& mlp, const StandardScaler* scaler,
                             const QuantCalibration& calibration) {
  const std::size_t nl = mlp.layer_count();
  if (nl < 2)
    throw std::invalid_argument(
        "QuantizedMlp: int8 requires at least one hidden layer");
  for (std::size_t l = 0; l + 1 < nl; ++l) {
    const Activation act = mlp.layers()[l].activation;
    if (act != Activation::kSigmoid && act != Activation::kTanh)
      throw std::invalid_argument(
          "QuantizedMlp: int8 supports sigmoid/tanh hidden layers only");
  }
  if (mlp.layers().back().activation != Activation::kLinear ||
      mlp.weights(nl - 1).cols() != 1)
    throw std::invalid_argument(
        "QuantizedMlp: int8 requires a single linear output");

  in_padded_ = round_up(inputs_, simd::kQuantInputQuad);

  // Stage 1: all pack-time folds in double. prev_channels tracks the padded
  // width the *packed* previous layer emits (its pad activations are zero
  // because pad weight rows below are zero).
  std::vector<EffectiveLayer> eff(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    const Matrix& w = mlp.weights(l);
    const std::vector<double>& b = mlp.biases(l);
    EffectiveLayer& e = eff[l];
    e.in = w.rows();
    e.units = w.cols();
    e.w.assign(e.in * e.units, 0.0);
    e.bias.assign(e.units, 0.0);
    if (l == 0) {
      // Scaler fold, then calibration fold:
      //   W''[i][j] = s_i * W[i][j] / sd_i
      //   b''_j     = b_j + sum_i (lo_i - mean_i) * W[i][j] / sd_i
      const std::vector<double>* m = scaler ? &scaler->means() : nullptr;
      const std::vector<double>* sd = scaler ? &scaler->stddevs() : nullptr;
      for (std::size_t j = 0; j < e.units; ++j) {
        double bias = b[j];
        for (std::size_t i = 0; i < e.in; ++i) {
          const double wij = scaler ? w(i, j) / (*sd)[i] : w(i, j);
          const double lo = static_cast<double>(calibration.lo[i]);
          const double hi = static_cast<double>(calibration.hi[i]);
          const double step = (hi - lo) / 127.0;
          e.w[i * e.units + j] = step * wij;
          bias += (lo - (scaler ? (*m)[i] : 0.0)) * wij;
        }
        e.bias[j] = bias;
      }
    } else {
      // The previous layer's stored activation is u in [0, 1] scaled to u7;
      // fold u8 scale and the activation affine c1*u + c0 into this layer.
      double c1 = 1.0;
      double c0 = 0.0;
      activation_affine(mlp.layers()[l - 1].activation, c1, c0);
      for (std::size_t j = 0; j < e.units; ++j) {
        double bias = b[j];
        for (std::size_t i = 0; i < e.in; ++i) {
          e.w[i * e.units + j] = (c1 / 127.0) * w(i, j);
          bias += c0 * w(i, j);
        }
        e.bias[j] = bias;
      }
    }
  }

  // Stage 2: quantize the hidden layers to quad-interleaved s8 panels with
  // power-of-two per-channel scales and folded LUT index biases.
  int8_layers_.reserve(nl - 1);
  std::size_t prev_channels = in_padded_;
  for (std::size_t l = 0; l + 1 < nl; ++l) {
    const EffectiveLayer& e = eff[l];
    Int8Layer layer;
    layer.in = prev_channels;
    layer.channels = round_up(e.units, simd::kQuantDotAlign);
    layer.w.assign(layer.in * layer.channels, 0);
    layer.bias_idx.assign(layer.channels, 0);
    layer.shift.assign(layer.channels, 0);
    layer.lut = mlp.layers()[l].activation == Activation::kSigmoid
                    ? sigmoid_lut_u7()
                    : tanh_lut_u7();
    for (std::size_t j = 0; j < e.units; ++j) {
      double wmax = 0.0;
      for (std::size_t i = 0; i < e.in; ++i)
        wmax = std::max(wmax, std::fabs(e.w[i * e.units + j]));
      // Choose sw_j = 2^-(t+5) (so 32 * sw_j = 2^-t) as the largest
      // power-of-two step that still reaches wmax at |w_q| <= 127:
      // requantization to LUT index space becomes a plain shift by t.
      std::int32_t t = kMaxShift;
      if (wmax > 0.0)
        t = std::clamp(
            static_cast<std::int32_t>(
                std::floor(std::log2(127.0 / (32.0 * wmax)))),
            0, kMaxShift);
      long long bias_idx = std::llround((e.bias[j] + 8.0) * kLutPerUnit *
                                        std::ldexp(1.0, t));
      while (t > 0 && std::llabs(bias_idx) > kMaxBiasIdx) {
        --t;
        bias_idx = std::llround((e.bias[j] + 8.0) * kLutPerUnit *
                                std::ldexp(1.0, t));
      }
      // A bias this size saturates the activation regardless of the
      // accumulator; clamping keeps the int32 arithmetic safe.
      bias_idx = std::clamp(bias_idx, -kMaxBiasIdx, kMaxBiasIdx);
      const double sw = std::ldexp(1.0, -(t + 5));
      layer.shift[j] = t;
      layer.bias_idx[j] = static_cast<std::int32_t>(bias_idx);
      // Quad-interleaved panel: channel block base + input quad group
      // (see the gemv_u7s8 layout contract in common/simd.hpp).
      const std::size_t c0 = j / simd::kQuantChannelBlock *
                             simd::kQuantChannelBlock;
      const std::size_t jj = j % simd::kQuantChannelBlock;
      std::int8_t* block = layer.w.data() + c0 * layer.in;
      for (std::size_t i = 0; i < e.in; ++i) {
        const auto q = static_cast<std::int8_t>(std::clamp<long>(
            std::lround(e.w[i * e.units + j] / sw), -127L, 127L));
        block[i / simd::kQuantInputQuad * simd::kQuantInputQuad *
                  simd::kQuantChannelBlock +
              simd::kQuantInputQuad * jj + i % simd::kQuantInputQuad] = q;
      }
    }
    int8_layers_.push_back(std::move(layer));
    prev_channels = int8_layers_.back().channels;
    max_channels_ = std::max(max_channels_, prev_channels);
  }

  // Stage 3: the single linear output as a u7 dot column (float requant
  // scale — no LUT, so no power-of-two restriction).
  const EffectiveLayer& out = eff[nl - 1];
  out_n_ = prev_channels;
  out_w_.assign(out_n_, 0);
  double wmax = 0.0;
  for (std::size_t i = 0; i < out.in; ++i)
    wmax = std::max(wmax, std::fabs(out.w[i]));
  out_scale_ = wmax > 0.0 ? wmax / 127.0 : 1.0;
  for (std::size_t i = 0; i < out.in; ++i)
    out_w_[i] = static_cast<std::int8_t>(
        std::clamp<long>(std::lround(out.w[i] / out_scale_), -127L, 127L));
  out_bias_ = out.bias[0];
}

void QuantizedMlp::pack_f16(const Mlp& mlp, const StandardScaler* scaler) {
  in_padded_ = inputs_;
  f16_layers_.reserve(mlp.layer_count());
  for (std::size_t l = 0; l < mlp.layer_count(); ++l) {
    const Matrix& w = mlp.weights(l);
    const std::vector<double>& b = mlp.biases(l);
    F16Layer layer;
    layer.in = w.rows();
    layer.units = w.cols();
    layer.padded = round_up(layer.units, simd::kWidth);
    layer.act = mlp.layers()[l].activation;
    layer.w.assign(layer.in * layer.padded, 0);
    layer.bias.assign(layer.padded, 0.0f);
    // Same double-precision scaler fold as the fp32 engine; the only extra
    // rounding is the final f32 -> f16 weight narrowing (biases stay fp32).
    const bool fold = l == 0 && scaler;
    const std::vector<double>* m = fold ? &scaler->means() : nullptr;
    const std::vector<double>* s = fold ? &scaler->stddevs() : nullptr;
    for (std::size_t j = 0; j < layer.units; ++j) {
      double bias = b[j];
      if (fold) {
        double shift = 0.0;
        for (std::size_t i = 0; i < layer.in; ++i)
          shift += (*m)[i] * w(i, j) / (*s)[i];
        bias -= shift;
      }
      layer.bias[j] = static_cast<float>(bias);
    }
    for (std::size_t i = 0; i < layer.in; ++i) {
      const double scale = fold ? 1.0 / (*s)[i] : 1.0;
      for (std::size_t j = 0; j < layer.units; ++j)
        layer.w[i * layer.padded + j] = simd::f32_to_f16(
            static_cast<float>(w(i, j) * scale));
    }
    if (layer.units == 1 && l > 0) {
      const std::size_t prev_padded = f16_layers_[l - 1].padded;
      layer.wcol.assign(prev_padded, 0);
      for (std::size_t i = 0; i < layer.in; ++i)
        layer.wcol[i] = layer.w[i * layer.padded];
    }
    f16_layers_.push_back(std::move(layer));
  }
}

float QuantizedMlp::forward_int8(const std::uint8_t* qrow,
                                 Scratch& scratch) const {
  assert(mode_ == QuantMode::kInt8);
  if (int8_layers_.size() == 1) {
    // Single hidden layer (the paper-default topology): fused kernel, no
    // intermediate buffers. Bit-identical to the generic path below.
    const Int8Layer& layer = int8_layers_.front();
    const std::int32_t dot = simd::forward1_u7s8(
        qrow, layer.w.data(), layer.in, layer.channels, layer.bias_idx.data(),
        layer.shift.data(), layer.lut, kLutSize, out_w_.data());
    return static_cast<float>(static_cast<double>(dot) * out_scale_ +
                              out_bias_);
  }
  if (scratch.qa.size() < max_channels_) scratch.qa.assign(max_channels_, 0);
  if (scratch.qb.size() < max_channels_) scratch.qb.assign(max_channels_, 0);
  if (scratch.acc.size() < max_channels_)
    scratch.acc.assign(max_channels_, 0);

  const std::uint8_t* cur = qrow;
  std::uint8_t* ping = scratch.qa.data();
  std::uint8_t* pong = scratch.qb.data();
  for (const Int8Layer& layer : int8_layers_) {
    simd::gemv_u7s8(cur, layer.w.data(), layer.in, layer.channels,
                    scratch.acc.data());
    simd::requant_lut_u8(scratch.acc.data(), layer.bias_idx.data(),
                         layer.shift.data(), layer.channels, layer.lut,
                         kLutSize, ping);
    cur = ping;
    std::swap(ping, pong);
  }
  const std::int32_t dot = simd::dot_u7s8(cur, out_w_.data(), out_n_);
  return static_cast<float>(static_cast<double>(dot) * out_scale_ +
                            out_bias_);
}

namespace {

float activate_f32(Activation act, float y) {
  switch (act) {
    case Activation::kLinear:
      return y;
    case Activation::kSigmoid:
      return simd::sigmoid_ref(y);
    case Activation::kTanh:
      return simd::tanh_ref(y);
    case Activation::kRelu:
      return y > 0.0f ? y : 0.0f;
  }
  return y;
}

// One row through one f16-storage layer: identical structure to the batched
// fp32 engine's forward_row, with weight loads widened from f16.
void forward_row_f16(const float* x, std::size_t in, std::size_t padded,
                     Activation act, const std::uint16_t* w,
                     const float* bias, float* out) {
  using simd::VecF;
  constexpr std::size_t kTile = 4;
  for (std::size_t j0 = 0; j0 < padded; j0 += kTile * simd::kWidth) {
    const std::size_t lanes_left = (padded - j0) / simd::kWidth;
    const std::size_t tiles = lanes_left < kTile ? lanes_left : kTile;
    VecF acc[kTile];
    for (std::size_t t = 0; t < tiles; ++t)
      acc[t] = VecF::load(bias + j0 + t * simd::kWidth);
    for (std::size_t i = 0; i < in; ++i) {
      const VecF xi = VecF::broadcast(x[i]);
      const std::uint16_t* wrow = w + i * padded + j0;
      for (std::size_t t = 0; t < tiles; ++t)
        acc[t] = simd::fmadd(xi, simd::load_f16(wrow + t * simd::kWidth),
                             acc[t]);
    }
    switch (act) {
      case Activation::kLinear:
        break;
      case Activation::kSigmoid:
        for (std::size_t t = 0; t < tiles; ++t) acc[t] = simd::sigmoid(acc[t]);
        break;
      case Activation::kTanh:
        for (std::size_t t = 0; t < tiles; ++t) acc[t] = simd::tanh(acc[t]);
        break;
      case Activation::kRelu:
        for (std::size_t t = 0; t < tiles; ++t)
          acc[t] = simd::max(acc[t], VecF::zero());
        break;
    }
    for (std::size_t t = 0; t < tiles; ++t)
      acc[t].store(out + j0 + t * simd::kWidth);
  }
}

}  // namespace

void QuantizedMlp::forward_column0_f16(const float* x, std::size_t rows,
                                       float* out, Scratch& scratch) const {
  assert(mode_ == QuantMode::kFp16);
  assert(f16_layers_.back().units == 1 &&
         "forward_column0_f16 requires a single-output network");
  std::size_t max_panel = 0;
  for (const F16Layer& layer : f16_layers_)
    max_panel = std::max(max_panel, layer.padded);
  if (scratch.a.size() < max_panel) scratch.a.assign(max_panel, 0.0f);
  if (scratch.b.size() < max_panel) scratch.b.assign(max_panel, 0.0f);

  const std::size_t nl = f16_layers_.size();
  const F16Layer& last = f16_layers_.back();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* cur = x + r * inputs_;
    float* ping = scratch.a.data();
    float* pong = scratch.b.data();
    for (std::size_t l = 0; l + 1 < nl; ++l) {
      const F16Layer& layer = f16_layers_[l];
      forward_row_f16(cur, layer.in, layer.padded, layer.act, layer.w.data(),
                      layer.bias.data(), ping);
      cur = ping;
      std::swap(ping, pong);
    }
    if (!last.wcol.empty()) {
      using simd::VecF;
      const std::size_t prev_padded = f16_layers_[nl - 2].padded;
      VecF acc = VecF::zero();
      for (std::size_t i = 0; i < prev_padded; i += simd::kWidth)
        acc = simd::fmadd(VecF::load(cur + i),
                          simd::load_f16(last.wcol.data() + i), acc);
      out[r] = activate_f32(last.act, last.bias[0] + simd::hsum(acc));
    } else if (last.units == 1) {
      float sum = last.bias[0];
      for (std::size_t i = 0; i < last.in; ++i)
        sum = std::fma(cur[i], simd::f16_to_f32(last.w[i * last.padded]),
                       sum);
      out[r] = activate_f32(last.act, sum);
    } else {
      forward_row_f16(cur, last.in, last.padded, last.act, last.w.data(),
                      last.bias.data(), ping);
      out[r] = ping[0];
    }
  }
}

QuantizedEnsemble::QuantizedEnsemble(const BaggingEnsemble& ensemble,
                                     QuantMode mode,
                                     const QuantCalibration* calibration)
    : mode_(mode) {
  if (!ensemble.fitted())
    throw std::invalid_argument("QuantizedEnsemble: ensemble is not fitted");
  simd::ensure_verified();
  inputs_ = ensemble.member(0).input_size();
  inv_k_ = 1.0f / static_cast<float>(ensemble.member_count());
  if (mode_ == QuantMode::kInt8) {
    if (!calibration || calibration->width() != inputs_)
      throw std::invalid_argument(
          "QuantizedEnsemble: int8 requires a calibration of input width");
    calibration_ = *calibration;
    inv_step_.resize(inputs_);
    for (std::size_t i = 0; i < inputs_; ++i) {
      const float lo = calibration_.lo[i];
      const float hi = calibration_.hi[i];
      if (!(hi >= lo))
        throw std::invalid_argument(
            "QuantizedEnsemble: calibration range with hi < lo");
      inv_step_[i] = hi > lo ? 127.0f / (hi - lo) : 0.0f;
    }
  }
  const StandardScaler* scaler =
      ensemble.scaler().fitted() ? &ensemble.scaler() : nullptr;
  members_.reserve(ensemble.member_count());
  for (std::size_t i = 0; i < ensemble.member_count(); ++i)
    members_.emplace_back(ensemble.member(i), scaler, mode_,
                          mode_ == QuantMode::kInt8 ? &calibration_ : nullptr);
}

void QuantizedEnsemble::predict_batch_into(const float* x, std::size_t rows,
                                           std::vector<float>& out,
                                           Scratch& scratch) const {
  out.assign(rows, 0.0f);
  if (scratch.ms.member.size() < rows) scratch.ms.member.resize(rows);
  if (mode_ == QuantMode::kInt8) {
    // Quantize the chunk once (shared by every member): u7 activations,
    // saturating at the calibration edges. quantize_u7 rounds to nearest
    // even, fixed across backends.
    const std::size_t qw = members_.front().quantized_input_width();
    if (scratch.qrows.size() < rows * qw) scratch.qrows.resize(rows * qw);
    for (std::size_t r = 0; r < rows; ++r) {
      const float* xr = x + r * inputs_;
      std::uint8_t* qr = scratch.qrows.data() + r * qw;
      simd::quantize_u7(xr, calibration_.lo.data(), inv_step_.data(), inputs_,
                        qr);
      for (std::size_t i = inputs_; i < qw; ++i) qr[i] = 0;
    }
    for (const QuantizedMlp& member : members_) {
      for (std::size_t r = 0; r < rows; ++r)
        scratch.ms.member[r] =
            member.forward_int8(scratch.qrows.data() + r * qw, scratch.ms);
      for (std::size_t r = 0; r < rows; ++r) out[r] += scratch.ms.member[r];
    }
  } else {
    for (const QuantizedMlp& member : members_) {
      member.forward_column0_f16(x, rows, scratch.ms.member.data(), scratch.ms);
      for (std::size_t r = 0; r < rows; ++r) out[r] += scratch.ms.member[r];
    }
  }
  for (std::size_t r = 0; r < rows; ++r) out[r] *= inv_k_;
}

}  // namespace pt::ml
