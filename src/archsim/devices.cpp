#include "archsim/devices.hpp"

namespace pt::archsim {

using clsim::DeviceInfo;
using clsim::DeviceType;

DeviceInfo intel_i7_3770_info() {
  DeviceInfo d;
  d.name = kIntelI7;
  d.vendor = "Intel";
  d.type = DeviceType::kCpu;

  d.max_work_group_size = 8192;
  d.max_work_item_sizes[0] = 8192;
  d.max_work_item_sizes[1] = 8192;
  d.max_work_item_sizes[2] = 8192;
  d.local_mem_bytes = 32 * 1024;
  d.constant_mem_bytes = 128 * 1024;
  d.global_mem_bytes = 16ull << 30;

  d.compute_units = 8;        // 4 cores, 2 threads each
  d.simd_width = 1;           // no lockstep warps
  d.vector_width = 8;         // AVX, 8 floats
  d.max_groups_per_cu = 1;
  d.max_items_per_cu = 8192;
  d.registers_per_cu = 1u << 30;  // effectively unbounded (spill to stack)
  d.clock_ghz = 3.4;
  d.flops_per_cycle_per_cu = 8.0;  // AVX mul+add mix per logical core
  d.global_bw_gbps = 25.6;         // dual-channel DDR3-1600
  d.l2_bw_gbps = 120.0;
  d.local_bw_gbps = 120.0;         // "local" is just cached main memory
  d.texture_bw_gbps = 25.6;
  d.constant_bw_gbps = 120.0;
  d.cache_line_bytes = 64;
  d.l2_bytes = 8 * 1024 * 1024;  // shared L3
  d.global_cached = true;
  d.latency_hiding_warps = 1.0;

  d.group_sched_overhead_us = 1.5;
  // Software image sampling: coordinate conversion, addressing, border
  // handling and channel unpacking per access. This is the mechanism behind
  // the paper's Intel clustering (Fig 8): image reads without local-memory
  // staging are an order of magnitude more expensive than plain loads.
  d.software_image_ops = 120.0;

  d.transfer_bw_gbps = 12.0;  // host memcpy
  d.transfer_latency_ms = 0.004;

  d.launch_overhead_ms = 0.02;
  d.base_compile_ms = 170.0;
  d.compile_ms_per_kstmt = 40.0;
  d.pragma_unroll_unreliability = 0.05;

  d.structural_noise_sigma = 0.05;
  d.measurement_noise_sigma = 0.008;
  return d;
}

DeviceInfo nvidia_k40_info() {
  DeviceInfo d;
  d.name = kNvidiaK40;
  d.vendor = "Nvidia";
  d.type = DeviceType::kGpu;

  d.max_work_group_size = 1024;
  d.max_work_item_sizes[0] = 1024;
  d.max_work_item_sizes[1] = 1024;
  d.max_work_item_sizes[2] = 64;
  d.local_mem_bytes = 48 * 1024;
  d.constant_mem_bytes = 64 * 1024;
  d.global_mem_bytes = 12ull << 30;

  d.compute_units = 15;  // SMX count, GK110B
  d.simd_width = 32;
  d.max_groups_per_cu = 16;
  d.max_items_per_cu = 2048;
  d.registers_per_cu = 65536;
  d.clock_ghz = 0.875;               // boost clock
  d.flops_per_cycle_per_cu = 384.0;  // 192 FMA cores
  d.global_bw_gbps = 288.0;
  d.l2_bw_gbps = 500.0;
  d.local_bw_gbps = 1500.0;
  d.texture_bw_gbps = 400.0;
  d.constant_bw_gbps = 600.0;
  d.cache_line_bytes = 128;
  d.l2_bytes = 1536 * 1024;
  d.global_cached = true;  // read-only data cache path
  d.latency_hiding_warps = 32.0;

  d.transfer_bw_gbps = 6.0;  // PCIe 3.0, effective
  d.transfer_latency_ms = 0.015;

  d.launch_overhead_ms = 0.008;
  d.base_compile_ms = 350.0;
  d.compile_ms_per_kstmt = 60.0;
  d.pragma_unroll_unreliability = 0.15;

  d.structural_noise_sigma = 0.105;
  d.measurement_noise_sigma = 0.02;
  return d;
}

DeviceInfo amd_hd7970_info() {
  DeviceInfo d;
  d.name = kAmdHd7970;
  d.vendor = "AMD";
  d.type = DeviceType::kGpu;

  d.max_work_group_size = 256;
  d.max_work_item_sizes[0] = 256;
  d.max_work_item_sizes[1] = 256;
  d.max_work_item_sizes[2] = 256;
  d.local_mem_bytes = 32 * 1024;
  d.constant_mem_bytes = 64 * 1024;
  d.global_mem_bytes = 3ull << 30;

  d.compute_units = 32;  // GCN Tahiti
  d.simd_width = 64;     // wavefront
  d.max_groups_per_cu = 40;
  d.max_items_per_cu = 2560;
  d.registers_per_cu = 65536;  // 256 KB VGPR file, 32-bit entries
  d.clock_ghz = 0.925;
  d.flops_per_cycle_per_cu = 128.0;  // 64 FMA lanes
  d.global_bw_gbps = 264.0;
  d.l2_bw_gbps = 700.0;
  d.local_bw_gbps = 2000.0;  // LDS
  d.texture_bw_gbps = 350.0;
  d.constant_bw_gbps = 500.0;
  d.cache_line_bytes = 64;
  d.l2_bytes = 768 * 1024;
  d.global_cached = true;
  d.latency_hiding_warps = 24.0;

  d.transfer_bw_gbps = 5.5;
  d.transfer_latency_ms = 0.02;

  d.launch_overhead_ms = 0.012;
  d.base_compile_ms = 520.0;
  d.compile_ms_per_kstmt = 85.0;
  // The paper (section 7) attributes AMD's poorer model accuracy on the
  // driver-pragma benchmarks to unreliable pragma unrolling.
  d.pragma_unroll_unreliability = 0.45;

  d.structural_noise_sigma = 0.10;
  d.measurement_noise_sigma = 0.025;
  return d;
}

DeviceInfo nvidia_c2070_info() {
  DeviceInfo d;
  d.name = kNvidiaC2070;
  d.vendor = "Nvidia";
  d.type = DeviceType::kGpu;

  d.max_work_group_size = 1024;
  d.max_work_item_sizes[0] = 1024;
  d.max_work_item_sizes[1] = 1024;
  d.max_work_item_sizes[2] = 64;
  d.local_mem_bytes = 48 * 1024;
  d.constant_mem_bytes = 64 * 1024;
  d.global_mem_bytes = 6ull << 30;

  d.compute_units = 14;  // Fermi GF100 SMs
  d.simd_width = 32;
  d.max_groups_per_cu = 8;
  d.max_items_per_cu = 1536;
  d.registers_per_cu = 32768;
  d.clock_ghz = 1.15;
  d.flops_per_cycle_per_cu = 64.0;  // 32 FMA cores
  d.global_bw_gbps = 144.0;
  d.l2_bw_gbps = 350.0;
  d.local_bw_gbps = 1000.0;
  d.texture_bw_gbps = 250.0;
  d.constant_bw_gbps = 400.0;
  d.cache_line_bytes = 128;
  d.l2_bytes = 768 * 1024;
  d.global_cached = true;  // Fermi L1/L2 for global
  d.latency_hiding_warps = 24.0;

  d.transfer_bw_gbps = 5.0;
  d.transfer_latency_ms = 0.02;

  d.launch_overhead_ms = 0.01;
  d.base_compile_ms = 330.0;
  d.compile_ms_per_kstmt = 60.0;
  d.pragma_unroll_unreliability = 0.15;

  d.structural_noise_sigma = 0.105;
  d.measurement_noise_sigma = 0.02;
  return d;
}

DeviceInfo nvidia_gtx980_info() {
  DeviceInfo d;
  d.name = kNvidiaGtx980;
  d.vendor = "Nvidia";
  d.type = DeviceType::kGpu;

  d.max_work_group_size = 1024;
  d.max_work_item_sizes[0] = 1024;
  d.max_work_item_sizes[1] = 1024;
  d.max_work_item_sizes[2] = 64;
  d.local_mem_bytes = 48 * 1024;
  d.constant_mem_bytes = 64 * 1024;
  d.global_mem_bytes = 4ull << 30;

  d.compute_units = 16;  // Maxwell GM204 SMMs
  d.simd_width = 32;
  d.max_groups_per_cu = 32;
  d.max_items_per_cu = 2048;
  d.registers_per_cu = 65536;
  d.clock_ghz = 1.216;
  d.flops_per_cycle_per_cu = 256.0;  // 128 FMA cores
  d.global_bw_gbps = 224.0;
  d.l2_bw_gbps = 700.0;
  d.local_bw_gbps = 2000.0;
  d.texture_bw_gbps = 450.0;
  d.constant_bw_gbps = 600.0;
  d.cache_line_bytes = 128;
  d.l2_bytes = 2048 * 1024;
  d.global_cached = true;
  d.latency_hiding_warps = 28.0;

  d.transfer_bw_gbps = 6.0;
  d.transfer_latency_ms = 0.015;

  d.launch_overhead_ms = 0.007;
  d.base_compile_ms = 340.0;
  d.compile_ms_per_kstmt = 60.0;
  d.pragma_unroll_unreliability = 0.12;

  // Fig 7: the newest architecture models slightly worse — more unmodeled
  // micro-architectural behaviour for the simple feature set.
  d.structural_noise_sigma = 0.13;
  d.measurement_noise_sigma = 0.02;
  return d;
}

clsim::Device make_device(clsim::DeviceInfo info,
                          std::shared_ptr<const TimingModel> model) {
  return clsim::Device(std::move(info), std::move(model));
}

clsim::Platform default_platform(TimingModel::Options options) {
  auto model = std::make_shared<const TimingModel>(options);
  std::vector<clsim::Device> devices;
  devices.push_back(make_device(intel_i7_3770_info(), model));
  devices.push_back(make_device(nvidia_k40_info(), model));
  devices.push_back(make_device(amd_hd7970_info(), model));
  devices.push_back(make_device(nvidia_c2070_info(), model));
  devices.push_back(make_device(nvidia_gtx980_info(), model));
  return clsim::Platform("portatune-sim", std::move(devices));
}

}  // namespace pt::archsim
