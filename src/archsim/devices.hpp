#pragma once

// Catalog of modeled devices — the five pieces of hardware the paper
// evaluates on (section 6):
//
//   Intel Core i7 3770   (Ivy Bridge CPU, 4C/8T, AVX)
//   Nvidia Tesla K40     (Kepler GK110B GPU)
//   AMD Radeon HD 7970   (GCN Tahiti GPU)
//   Nvidia Tesla C2070   (Fermi GF100 GPU, Fig 7)
//   Nvidia GTX 980       (Maxwell GM204 GPU, Fig 7)
//
// Microarchitectural parameters follow the public datasheets; the noise
// magnitudes are calibrated so the prediction-error floors match the paper's
// per-device accuracy ordering (CPU < Nvidia < AMD, GTX980 slightly worse
// than the older Nvidia parts).

#include <memory>
#include <string>

#include "archsim/timing_model.hpp"
#include "clsim/device.hpp"
#include "clsim/platform.hpp"

namespace pt::archsim {

[[nodiscard]] clsim::DeviceInfo intel_i7_3770_info();
[[nodiscard]] clsim::DeviceInfo nvidia_k40_info();
[[nodiscard]] clsim::DeviceInfo amd_hd7970_info();
[[nodiscard]] clsim::DeviceInfo nvidia_c2070_info();
[[nodiscard]] clsim::DeviceInfo nvidia_gtx980_info();

/// Build a Device from an info record, sharing the given timing model.
[[nodiscard]] clsim::Device make_device(
    clsim::DeviceInfo info, std::shared_ptr<const TimingModel> model);

/// The paper's full device roster as one platform. Every device shares one
/// TimingModel instance configured by `options`.
[[nodiscard]] clsim::Platform default_platform(
    TimingModel::Options options = TimingModel::Options());

/// Canonical device names used throughout benches and docs.
inline constexpr const char* kIntelI7 = "Intel i7 3770";
inline constexpr const char* kNvidiaK40 = "Nvidia K40";
inline constexpr const char* kAmdHd7970 = "AMD Radeon HD 7970";
inline constexpr const char* kNvidiaC2070 = "Nvidia C2070";
inline constexpr const char* kNvidiaGtx980 = "Nvidia GTX980";

}  // namespace pt::archsim
