#pragma once

// Architectural timing model — the simulated clock behind every device.
//
// Implements clsim::TimingOracle. Given a kernel's static profile and the
// launch geometry, it models, per device class:
//
//  GPU: warp/wavefront execution efficiency, divergence, ILP from loop
//  unrolling, occupancy (groups / items / registers / local memory limits),
//  memory-latency hiding as a function of resident warps, per-space memory
//  paths (global with coalescing and caching, texture, constant broadcast,
//  local with bank conflicts), work-group barriers, wave (tail)
//  quantization, and kernel-launch overhead.
//
//  CPU: work-group scheduling across cores, implicit vectorization along the
//  local x dimension, unified memory for all logical spaces, software image
//  sampling cost (the mechanism behind the paper's Intel clustering effect,
//  Figs 8/§6), loop-unrolling ILP, and per-group scheduling overhead.
//
// Driver quirks: devices can apply `#pragma unroll` unreliably
// (DeviceInfo::pragma_unroll_unreliability). The *effective* unroll factor
// then depends on a hash of the configuration — a deterministic but
// irregular landscape feature. The paper attributes AMD's poorer model
// accuracy on the pragma-unrolled benchmarks to exactly this (section 7).
//
// Noise: two lognormal components.
//  - structural: deterministic per (device, configuration) via hashing —
//    unmodeled architectural effects. The same configuration always runs in
//    the same time, but the ANN cannot fully learn this component, which
//    sets a device-specific floor on model accuracy (Figs 4-6).
//  - measurement: fresh per call — timer jitter. Optional.

#include <atomic>
#include <cstdint>

#include "clsim/device.hpp"
#include "clsim/kernel_profile.hpp"

namespace pt::archsim {

class TimingModel final : public clsim::TimingOracle {
 public:
  struct Options {
    bool structural_noise = true;
    bool measurement_noise = true;
    std::uint64_t seed = 0x5eed5eed5eed5eedULL;
  };

  TimingModel() : TimingModel(Options{}) {}
  explicit TimingModel(Options options) : options_(options) {}

  [[nodiscard]] double kernel_time_ms(
      const clsim::DeviceInfo& device,
      const clsim::LaunchDescriptor& launch) const override;

  [[nodiscard]] double transfer_time_ms(
      const clsim::DeviceInfo& device, std::size_t bytes,
      clsim::TransferDirection direction) const override;

  [[nodiscard]] double compile_time_ms(
      const clsim::DeviceInfo& device,
      const clsim::KernelProfile& profile) const override;

  /// Noise-free model output (used by tests and the model-ablation bench).
  [[nodiscard]] double deterministic_kernel_time_ms(
      const clsim::DeviceInfo& device,
      const clsim::LaunchDescriptor& launch) const;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  [[nodiscard]] double gpu_time_ms(const clsim::DeviceInfo& dev,
                                   const clsim::LaunchDescriptor& launch) const;
  [[nodiscard]] double cpu_time_ms(const clsim::DeviceInfo& dev,
                                   const clsim::LaunchDescriptor& launch) const;

  /// Effective unroll factor of a loop after driver-pragma (un)reliability.
  [[nodiscard]] std::size_t effective_unroll(
      const clsim::DeviceInfo& dev, const clsim::KernelProfile& profile,
      const clsim::LoopInfo& loop, std::size_t loop_index) const;

  Options options_;
  mutable std::atomic<std::uint64_t> call_counter_{0};
};

}  // namespace pt::archsim
