#include "archsim/timing_model.hpp"

#include <algorithm>
#include <cmath>

#include "clsim/error.hpp"

namespace pt::archsim {

namespace {

using clsim::AccessPattern;
using clsim::DeviceInfo;
using clsim::KernelProfile;
using clsim::LaunchDescriptor;
using clsim::MemorySpace;
using clsim::MemoryStream;

constexpr double kGb = 1e9;

/// Hash-mix for the deterministic noise streams.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_string(const std::string& s) noexcept {
  return clsim::fnv1a(s.data(), s.size());
}

double hash_uniform(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Standard normal from two hash-derived uniforms (Box-Muller).
double hash_normal(std::uint64_t h) noexcept {
  const double u1 = std::max(1e-12, hash_uniform(h));
  const double u2 = hash_uniform(mix(h, 0xabcdef1234567890ULL));
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

/// Occupancy: resident work-groups per compute unit.
std::size_t active_groups_per_cu(const DeviceInfo& dev,
                                 const LaunchDescriptor& launch,
                                 std::size_t group_items) {
  std::size_t limit = dev.max_groups_per_cu;
  if (group_items > 0)
    limit = std::min(limit, std::max<std::size_t>(
                                1, dev.max_items_per_cu / group_items));
  const KernelProfile& prof = *launch.profile;
  if (launch.local_mem_bytes > 0)
    limit = std::min(limit, std::max<std::size_t>(
                                1, dev.local_mem_bytes / launch.local_mem_bytes));
  const std::size_t regs_per_group = prof.registers_per_item * group_items;
  if (regs_per_group > 0)
    limit = std::min(limit, std::max<std::size_t>(
                                1, dev.registers_per_cu / regs_per_group));
  return std::max<std::size_t>(1, limit);
}

/// ILP speedup credited to an effective unroll factor.
double ilp_factor(std::size_t unroll) noexcept {
  const double u = static_cast<double>(std::min<std::size_t>(unroll, 16));
  return 1.0 + 0.09 * std::log2(std::max(1.0, u));
}

/// Loop-control ops per item across the loop nest, given effective unrolls.
double loop_overhead_ops(const KernelProfile& prof,
                         const std::vector<std::size_t>& eff_unrolls) {
  double ops = 0.0;
  for (std::size_t i = 0; i < prof.loops.size(); ++i) {
    const auto& loop = prof.loops[i];
    const double eff = static_cast<double>(std::max<std::size_t>(
        1, i < eff_unrolls.size() ? eff_unrolls[i] : loop.unroll_factor));
    ops += 3.0 * loop.trip_count / eff;  // cmp + inc + branch per trip
  }
  return ops;
}

/// Mean ILP over the loop nest (weighted by trip count).
double nest_ilp(const KernelProfile& prof,
                const std::vector<std::size_t>& eff_unrolls) {
  if (prof.loops.empty()) return 1.0;
  double weight_sum = 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < prof.loops.size(); ++i) {
    const double w = std::max(1.0, prof.loops[i].trip_count);
    const std::size_t eff =
        i < eff_unrolls.size() ? eff_unrolls[i] : prof.loops[i].unroll_factor;
    acc += w * ilp_factor(eff);
    weight_sum += w;
  }
  return acc / weight_sum;
}

}  // namespace

std::size_t TimingModel::effective_unroll(const DeviceInfo& dev,
                                          const KernelProfile& profile,
                                          const clsim::LoopInfo& loop,
                                          std::size_t loop_index) const {
  if (loop.unroll_factor <= 1) return 1;
  if (!loop.via_driver_pragma || dev.pragma_unroll_unreliability <= 0.0)
    return loop.unroll_factor;
  // The driver applies the pragma erratically: whether (and how far) the
  // loop actually unrolls depends on irrelevant details of the fully
  // specialized kernel — modeled as a hash of the configuration. This is
  // deterministic per configuration, but jagged across the space.
  const std::uint64_t h =
      mix(mix(hash_string(dev.name), profile.config_fingerprint),
          0x10c0de + loop_index);
  const double u = hash_uniform(h);
  if (u < dev.pragma_unroll_unreliability * 0.6) return 1;  // ignored
  if (u < dev.pragma_unroll_unreliability)
    return std::max<std::size_t>(1, loop.unroll_factor / 2);  // partial
  return loop.unroll_factor;
}

double TimingModel::gpu_time_ms(const DeviceInfo& dev,
                                const LaunchDescriptor& launch) const {
  const KernelProfile& prof = *launch.profile;
  const double items = static_cast<double>(launch.global.total());
  const std::size_t group_items = launch.local.total();
  const double groups = items / static_cast<double>(group_items);

  const double warps_per_group = std::ceil(
      static_cast<double>(group_items) / static_cast<double>(dev.simd_width));
  const double warp_exec_eff =
      static_cast<double>(group_items) /
      (warps_per_group * static_cast<double>(dev.simd_width));

  const std::size_t active_groups = active_groups_per_cu(dev, launch, group_items);
  const double active_warps =
      static_cast<double>(active_groups) * warps_per_group;
  // Memory-latency hiding improves with resident warps, saturating at the
  // device's latency_hiding_warps; ALU-latency hiding saturates earlier.
  const double mem_hiding = std::min(
      1.0, std::pow(active_warps / dev.latency_hiding_warps, 0.8));
  const double alu_hiding = std::min(1.0, active_warps / 8.0);

  // Effective unroll factors (driver pragma reliability applied).
  std::vector<std::size_t> eff_unrolls(prof.loops.size(), 1);
  for (std::size_t i = 0; i < prof.loops.size(); ++i)
    eff_unrolls[i] = effective_unroll(dev, prof, prof.loops[i], i);

  // --- Compute time ---
  // Integer ops run at half rate on these GPUs; loop control adds ops that
  // unrolling removes; divergence serializes lanes.
  double ops_per_item = prof.flops_per_item + 2.0 * prof.int_ops_per_item +
                        loop_overhead_ops(prof, eff_unrolls);
  const double divergence_penalty = 1.0 + prof.divergence * 1.0;
  const double ilp = nest_ilp(prof, eff_unrolls);
  const double peak_ops_per_ms = static_cast<double>(dev.compute_units) *
                                 dev.flops_per_cycle_per_cu * dev.clock_ghz *
                                 1e6;
  const double compute_ms = items * ops_per_item * divergence_penalty /
                            (peak_ops_per_ms * warp_exec_eff * ilp *
                             std::max(0.05, alu_hiding));

  // --- Memory time ---
  double mem_ms = 0.0;
  for (const MemoryStream& s : prof.streams) {
    double traffic =
        items * s.accesses_per_item * static_cast<double>(s.bytes_per_access);
    if (traffic <= 0.0) continue;
    double bw = dev.global_bw_gbps;
    const double line = static_cast<double>(dev.cache_line_bytes);
    const double bpa = static_cast<double>(s.bytes_per_access);
    switch (s.space) {
      case MemorySpace::kGlobal: {
        bw = dev.global_bw_gbps;
        switch (s.pattern) {
          case AccessPattern::kCoalesced:
            break;
          case AccessPattern::kStrided: {
            // Each warp touches stride-separated addresses: extra
            // transactions proportional to the stride, capped at one line
            // per access.
            const double stride = std::max(
                bpa, static_cast<double>(s.stride_bytes));
            traffic *= std::min(line / bpa, std::max(1.0, stride / bpa));
            break;
          }
          case AccessPattern::kTiled2D: {
            const double hit = dev.global_cached ? 0.85 : 0.25;
            traffic /= 1.0 + (std::max(1.0, s.reuse_factor) - 1.0) * hit;
            break;
          }
          case AccessPattern::kBroadcast:
            traffic /= static_cast<double>(dev.simd_width);
            bw = dev.l2_bw_gbps;
            break;
          case AccessPattern::kRandom:
            traffic *= std::min(line / bpa, 8.0);
            break;
        }
        break;
      }
      case MemorySpace::kImage: {
        bw = dev.texture_bw_gbps;
        // The texture cache exploits 2D locality; credit reuse.
        if (s.pattern == AccessPattern::kTiled2D ||
            s.pattern == AccessPattern::kCoalesced) {
          traffic /= 1.0 + (std::max(1.0, s.reuse_factor) - 1.0) * 0.9;
        }
        break;
      }
      case MemorySpace::kConstant: {
        bw = dev.constant_bw_gbps;
        if (s.pattern == AccessPattern::kBroadcast) {
          traffic /= static_cast<double>(dev.simd_width);
        } else if (s.pattern == AccessPattern::kRandom) {
          bw = dev.constant_bw_gbps / 4.0;  // divergent constant reads serialize
        }
        break;
      }
      case MemorySpace::kLocal: {
        bw = dev.local_bw_gbps;
        if (s.pattern == AccessPattern::kStrided && s.stride_bytes > 4) {
          const double conflict =
              std::min(8.0, static_cast<double>(s.stride_bytes) / 4.0);
          traffic *= conflict;  // bank conflicts serialize the accesses
        }
        break;
      }
    }
    const double effective_bw =
        bw * kGb * (s.space == MemorySpace::kLocal ? 1.0 : mem_hiding);
    mem_ms += traffic / effective_bw * 1e3;
  }

  // --- Barriers ---
  const double total_warps = groups * warps_per_group;
  const double barrier_ms = prof.barriers_per_item * total_warps * 2e-5;

  // --- Wave (tail) quantization ---
  const double groups_per_wave =
      static_cast<double>(dev.compute_units) *
      static_cast<double>(active_groups);
  const double waves = std::ceil(groups / groups_per_wave);
  const double utilization =
      std::max(0.05, groups / (waves * groups_per_wave));

  const double busy =
      (std::max(compute_ms, mem_ms) + 0.3 * std::min(compute_ms, mem_ms)) /
      utilization;
  return dev.launch_overhead_ms + busy + barrier_ms;
}

double TimingModel::cpu_time_ms(const DeviceInfo& dev,
                                const LaunchDescriptor& launch) const {
  const KernelProfile& prof = *launch.profile;
  const double items = static_cast<double>(launch.global.total());
  const std::size_t group_items = launch.local.total();
  const double groups = items / static_cast<double>(group_items);
  const double cores = static_cast<double>(dev.compute_units);

  // Groups are the scheduling unit; fewer groups than cores idles cores.
  const double used_cores = std::min(cores, groups);
  const double core_scale = cores / std::max(1.0, used_cores);

  // Implicit vectorization along the local x dimension.
  const double lx = static_cast<double>(launch.local.extent(0));
  const double vec_lanes = static_cast<double>(std::max<std::size_t>(1, dev.vector_width));
  const double vec_eff =
      std::max(1.0 / vec_lanes, std::min(1.0, lx / vec_lanes));

  std::vector<std::size_t> eff_unrolls(prof.loops.size(), 1);
  for (std::size_t i = 0; i < prof.loops.size(); ++i)
    eff_unrolls[i] = effective_unroll(dev, prof, prof.loops[i], i);

  // --- Compute ---
  double ops_per_item = prof.flops_per_item + prof.int_ops_per_item +
                        loop_overhead_ops(prof, eff_unrolls);
  // Software image sampling: address arithmetic + clamping per access.
  for (const MemoryStream& s : prof.streams) {
    if (s.space == MemorySpace::kImage)
      ops_per_item += dev.software_image_ops * s.accesses_per_item;
  }
  const double ilp = nest_ilp(prof, eff_unrolls);
  const double divergence_penalty = 1.0 + prof.divergence * 0.15;  // masking
  const double peak_ops_per_ms =
      cores * dev.flops_per_cycle_per_cu * dev.clock_ghz * 1e6;
  const double compute_ms = items * ops_per_item * divergence_penalty *
                            core_scale /
                            (peak_ops_per_ms * vec_eff * ilp);

  // --- Memory: every logical space is main memory behind the cache
  // hierarchy. Reuse hits in cache; local copies run at cache speed.
  double mem_ms = 0.0;
  for (const MemoryStream& s : prof.streams) {
    double traffic =
        items * s.accesses_per_item * static_cast<double>(s.bytes_per_access);
    if (traffic <= 0.0) continue;
    double bw = dev.global_bw_gbps;
    const double line = static_cast<double>(dev.cache_line_bytes);
    const double bpa = static_cast<double>(s.bytes_per_access);
    const double reuse = std::max(1.0, s.reuse_factor);
    switch (s.space) {
      case MemorySpace::kLocal:
        bw = dev.l2_bw_gbps;  // tile fits L1/L2
        break;
      case MemorySpace::kConstant:
        traffic /= reuse;  // hot in L1
        bw = dev.l2_bw_gbps;
        break;
      case MemorySpace::kImage:
      case MemorySpace::kGlobal: {
        switch (s.pattern) {
          case AccessPattern::kCoalesced:
            break;  // streaming, prefetcher-friendly
          case AccessPattern::kStrided:
            traffic /= 0.7;  // prefetcher copes, partially
            break;
          case AccessPattern::kTiled2D:
            traffic /= 1.0 + (reuse - 1.0) * 0.9;  // tile resides in cache
            break;
          case AccessPattern::kBroadcast:
            traffic /= reuse * 8.0;  // stays in L1
            break;
          case AccessPattern::kRandom:
            traffic *= std::min(line / bpa, 8.0);
            break;
        }
        break;
      }
    }
    mem_ms += traffic * core_scale / (bw * kGb) * 1e3;
  }

  // --- Overheads ---
  const double sched_ms =
      groups * dev.group_sched_overhead_us * 1e-3 / used_cores;
  // Barriers force the compiler to split the work-item loop (region
  // buffering); cost scales with items.
  const double barrier_ms = prof.barriers_per_item * items * 5e-6;

  const double busy =
      std::max(compute_ms, mem_ms) + 0.3 * std::min(compute_ms, mem_ms);
  return dev.launch_overhead_ms + busy + sched_ms + barrier_ms;
}

double TimingModel::deterministic_kernel_time_ms(
    const DeviceInfo& device, const LaunchDescriptor& launch) const {
  if (launch.profile == nullptr)
    throw clsim::ClException(clsim::Status::kInvalidValue,
                             "launch without kernel profile");
  return device.type == clsim::DeviceType::kCpu ? cpu_time_ms(device, launch)
                                                : gpu_time_ms(device, launch);
}

double TimingModel::kernel_time_ms(const DeviceInfo& device,
                                   const LaunchDescriptor& launch) const {
  double t = deterministic_kernel_time_ms(device, launch);
  const std::uint64_t config_h =
      mix(mix(hash_string(device.name), launch.profile->config_fingerprint),
          options_.seed);
  if (options_.structural_noise && device.structural_noise_sigma > 0.0) {
    t *= std::exp(device.structural_noise_sigma * hash_normal(config_h));
  }
  if (options_.measurement_noise && device.measurement_noise_sigma > 0.0) {
    const std::uint64_t call =
        call_counter_.fetch_add(1, std::memory_order_relaxed);
    t *= std::exp(device.measurement_noise_sigma *
                  hash_normal(mix(config_h, call + 1)));
  }
  return t;
}

double TimingModel::transfer_time_ms(const DeviceInfo& device,
                                     std::size_t bytes,
                                     clsim::TransferDirection) const {
  return device.transfer_latency_ms +
         static_cast<double>(bytes) / (device.transfer_bw_gbps * kGb) * 1e3;
}

double TimingModel::compile_time_ms(const DeviceInfo& device,
                                    const clsim::KernelProfile& profile) const {
  return device.base_compile_ms +
         device.compile_ms_per_kstmt * profile.compile_complexity / 1000.0;
}

}  // namespace pt::archsim
