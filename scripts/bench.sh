#!/usr/bin/env bash
# Regenerate BENCH_exec.json — the launch-throughput record of the clsim
# execution engine (bench/micro_exec) — reproducibly: fixed seed, pinned
# --threads=0 (sequential executor, so the frame-pool-bypass baseline is
# faithful and numbers don't depend on host core count).
#
# Usage: scripts/bench.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

if [[ ! -x "$build_dir/bench/micro_exec" ]]; then
  echo "building micro_exec in $build_dir ..."
  cmake --build "$build_dir" --target micro_exec -j
fi

"$build_dir/bench/micro_exec" \
  --repeats=400 \
  --threads=0 \
  --seed=1 \
  --out="$repo_root/BENCH_exec.json"

# BENCH_scan.json — the prediction-scan configs/sec trajectory
# (bench/micro_scan): fp64 reference vs batched SIMD fp32 vs quantized
# int8/fp16 paths. The binary enforces top-M equality with fp64 for every
# approximate path plus the configs/sec gates (fp32 >= 2x fp64, int8 >=
# 2x fp32, both at threads=1).
if [[ ! -x "$build_dir/bench/micro_scan" ]]; then
  echo "building micro_scan in $build_dir ..."
  cmake --build "$build_dir" --target micro_scan -j
fi

"$build_dir/bench/micro_scan" \
  --seed=1 \
  --out="$repo_root/BENCH_scan.json"

# Three-way validity audit (static analyzer vs driver vs clcheck) in smoke
# mode: exits non-zero on any static-analysis unsoundness or clcheck fault,
# which aborts this script (set -e).
if [[ ! -x "$build_dir/bench/ext_check" ]]; then
  echo "building ext_check in $build_dir ..."
  cmake --build "$build_dir" --target ext_check -j
fi

"$build_dir/bench/ext_check" \
  --smoke \
  --seed=1 \
  --out="$repo_root/BENCH_check_smoke.json"

# BENCH_serve.json — the multi-tenant tuning service under a full mixed
# load (bench/ext_serve): 4 tenants x 2 clients x 160 requests, all in
# flight at once. The binary's gates (>=95% storm cache hit rate, zero
# rejections, served-vs-direct bit-identity) abort this script on failure.
if [[ ! -x "$build_dir/bench/ext_serve" ]]; then
  echo "building ext_serve in $build_dir ..."
  cmake --build "$build_dir" --target ext_serve -j
fi

"$build_dir/bench/ext_serve" \
  --seed=1 \
  --out="$repo_root/BENCH_serve.json"
