#!/usr/bin/env bash
# Run clang-tidy (the checks in .clang-tidy) over the project sources using
# the compilation database of an existing build directory.
#
#   scripts/lint.sh [--fix] [build-dir]
#
# The build dir defaults to ./build and must have been configured (the root
# CMakeLists exports compile_commands.json unconditionally). All findings
# are errors (WarningsAsErrors: '*' in .clang-tidy), so clang-tidy — and
# hence this script — exits non-zero on any finding and can serve as a CI
# gate. With --fix, clang-tidy additionally applies its suggested fixes
# in-place; rerun without --fix to verify the tree came out clean.
set -euo pipefail

fix=""
if [[ "${1:-}" == "--fix" ]]; then
  fix="--fix"
  shift
fi

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "lint.sh: clang-tidy not found on PATH; skipping (install clang-tidy to lint)" >&2
  exit 0
fi
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint.sh: ${build_dir}/compile_commands.json missing; configure first:" >&2
  echo "  cmake -B ${build_dir} -S ${repo_root}" >&2
  exit 1
fi

cd "${repo_root}"
mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'bench/*.cpp' 'examples/*.cpp')

echo "lint.sh: clang-tidy over ${#sources[@]} files (this can take a while)"
clang-tidy -p "${build_dir}" --quiet ${fix} "${sources[@]}"
