// Search-strategy comparison at an equal measurement budget: the paper's
// two-stage ML tuner vs pure random search, hill climbing with restarts and
// simulated annealing, on convolution for all three main devices. Reported
// as slowdown vs the exhaustive global optimum.

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "tuner/autotuner.hpp"
#include "tuner/search.hpp"

int main(int argc, char** argv) {
  using namespace pt;
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  bench::print_banner(
      "Ablation: search strategies at equal budget (convolution)", false);
  const auto budget = static_cast<std::size_t>(args.get("budget", 1100L));
  const auto repeats = static_cast<std::size_t>(args.get("repeats", 2L));

  const clsim::Platform platform = archsim::default_platform();
  const auto bench_obj = benchkit::make_benchmark("convolution");

  common::Table table({"Device", "Strategy", "Slowdown vs optimum",
                       "Evaluations"});
  for (const auto& device_name : bench::main_devices()) {
    benchkit::BenchmarkEvaluator inner(
        *bench_obj, platform.device_by_name(device_name));
    tuner::CachingEvaluator eval(inner);
    const double optimum = tuner::exhaustive_search(eval).best_time_ms;

    common::RunningStats tuner_sd;
    common::RunningStats random_sd;
    common::RunningStats hill_sd;
    common::RunningStats anneal_sd;
    for (std::size_t r = 0; r < repeats; ++r) {
      common::Rng rng(1000 + r);

      tuner::AutoTunerOptions topt;
      topt.training_samples = budget - 100;
      topt.second_stage_size = 100;
      const auto ml_result = tuner::AutoTuner(topt).tune(
          eval, tuner::TuneRun::with_rng(rng));
      if (ml_result.success) tuner_sd.add(ml_result.best_time_ms / optimum);

      const auto rnd = tuner::random_search(eval, budget, rng);
      if (rnd.success) random_sd.add(rnd.best_time_ms / optimum);

      const auto hill = tuner::hill_climb(eval, budget / 40, rng);
      if (hill.success) hill_sd.add(hill.best_time_ms / optimum);

      tuner::AnnealingOptions aopt;
      aopt.evaluations = budget;
      const auto sa = tuner::simulated_annealing(eval, aopt, rng);
      if (sa.success) anneal_sd.add(sa.best_time_ms / optimum);
    }
    auto row = [&](const char* label, const common::RunningStats& s,
                   std::size_t evals) {
      table.add_row({device_name, label,
                     s.count() ? common::fmt(s.mean(), 3)
                               : std::string("no result"),
                     std::to_string(evals)});
    };
    row("ML two-stage (paper)", tuner_sd, budget);
    row("random search", random_sd, budget);
    row("hill climbing", hill_sd, budget);
    row("simulated annealing", anneal_sd, budget);
    std::cout << "  [" << device_name << " done]\n" << std::flush;
  }
  std::cout << "\n";
  table.print(std::cout);
  if (args.get("csv", false)) table.print_csv(std::cout);
  return 0;
}
