// google-benchmark micro-benchmarks for the simulated runtime: measurement
// throughput (build + validate + timing-model evaluation per configuration)
// and the functional coroutine executor. Measurement throughput is what
// makes exhaustive ground-truth sweeps over 131K-point spaces practical.

#include <benchmark/benchmark.h>

#include "archsim/devices.hpp"
#include "benchmarks/registry.hpp"
#include "clsim/executor.hpp"

namespace {

using namespace pt;

void BM_MeasureConfiguration(benchmark::State& state) {
  const clsim::Platform platform = archsim::default_platform();
  const auto bench = benchkit::make_benchmark("convolution");
  benchkit::BenchmarkEvaluator eval(
      *bench, platform.device_by_name(archsim::kNvidiaK40));
  common::Rng rng(1);
  std::vector<tuner::Configuration> configs;
  for (int i = 0; i < 512; ++i) configs.push_back(eval.space().random(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto m = eval.measure(configs[i++ % configs.size()]);
    benchmark::DoNotOptimize(m.time_ms);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeasureConfiguration);

void BM_TimingModelOnly(benchmark::State& state) {
  const archsim::TimingModel model;
  const auto info = archsim::nvidia_k40_info();
  clsim::KernelProfile profile;
  profile.flops_per_item = 200.0;
  clsim::MemoryStream s;
  s.accesses_per_item = 25.0;
  profile.streams.push_back(s);
  clsim::LaunchDescriptor launch;
  launch.profile = &profile;
  launch.global = clsim::NDRange(1024, 1024);
  launch.local = clsim::NDRange(16, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.kernel_time_ms(info, launch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimingModelOnly);

void BM_ExecutorNoBarrier(benchmark::State& state) {
  const auto items = static_cast<std::size_t>(state.range(0));
  clsim::Buffer out(items * sizeof(int));
  const clsim::KernelBody body =
      [out](clsim::WorkItemCtx& ctx) -> clsim::WorkItemTask {
    out.as<int>()[ctx.global_id(0)] = static_cast<int>(ctx.global_id(0));
    co_return;
  };
  const clsim::NDRangeExecutor exec;
  for (auto _ : state) {
    exec.run(clsim::NDRange(items), clsim::NDRange(64), 0, body);
    benchmark::DoNotOptimize(out.as<int>().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * items);
}
BENCHMARK(BM_ExecutorNoBarrier)->Arg(1024)->Arg(16384);

void BM_ExecutorWithBarrier(benchmark::State& state) {
  const auto items = static_cast<std::size_t>(state.range(0));
  clsim::Buffer out(items * sizeof(int));
  const clsim::KernelBody body =
      [out](clsim::WorkItemCtx& ctx) -> clsim::WorkItemTask {
    auto scratch = ctx.local_alloc<int>(64);
    scratch[ctx.local_id(0)] = static_cast<int>(ctx.global_id(0));
    co_await ctx.barrier();
    out.as<int>()[ctx.global_id(0)] = scratch[63 - ctx.local_id(0)];
  };
  const clsim::NDRangeExecutor exec;
  for (auto _ : state) {
    exec.run(clsim::NDRange(items), clsim::NDRange(64), 64 * sizeof(int),
             body);
    benchmark::DoNotOptimize(out.as<int>().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * items);
}
BENCHMARK(BM_ExecutorWithBarrier)->Arg(1024)->Arg(16384);

void BM_ExhaustiveSweepThroughput(benchmark::State& state) {
  // Cost of one full-space prediction target: decode + encode round trip.
  const auto bench = benchkit::make_benchmark_small("convolution");
  const auto& space = bench->space();
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto config = space.decode(i++ % space.size());
    benchmark::DoNotOptimize(space.encode(config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExhaustiveSweepThroughput);

}  // namespace

BENCHMARK_MAIN();
