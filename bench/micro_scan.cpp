// Microbenchmark for the parallel prediction-scan engine: a configs/sec
// trajectory over the Table-2 spaces. For every space and thread count it
// times the dense range scan (predict_range_ms) and the streaming top-M scan
// (predict_scan_top_m) on ALL inference paths — the scalar fp64 reference,
// the batched SIMD fp32 engine, and the quantized int8 and fp16 tiers —
// checks that every approximate path's top-M selection is identical to the
// fp64 one (indices and values), checks determinism across thread counts,
// and writes BENCH_scan.json. Speedups are always against the same-run fp64
// baseline, so columns within one report are directly comparable.
//
// The model is trained on synthetic (strictly positive) times so the bench
// exercises exactly the prediction path — no device simulation involved.
//
// Gates (skipped under --smoke), all at threads=1, on every space:
//   * batched fp32 must sustain >= 2x the configs/sec of the fp64 baseline
//     on both entry points (range scan and top-M scan);
//   * quantized int8 must sustain >= 2x the range-scan configs/sec of the
//     batched fp32 path (the tier exists to beat fp32, not just fp64).
// The top-M selection must match fp64 exactly on every path (also under
// --smoke — the quantized exactness cell ctest runs). Exit code 1 on any
// violation.
//
// Flags:
//   --out=FILE      JSON report path (default micro_scan.json)
//   --limit=N       scan at most N configurations per space (0 = full space)
//   --m=M           top-M size (default 300)
//   --training=N    synthetic training samples (default 300)
//   --seed=S        RNG seed (default 1)
//   --trace         record telemetry; metrics go into the report and a
//                   Chrome trace next to it (<out>.trace.json)
//   --smoke         small limits + assertions only; used by ctest

#include <chrono>
#include <cmath>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "benchmarks/registry.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/telemetry/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "report.hpp"
#include "tuner/model.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(const Clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double configs_per_sec(std::uint64_t n, double ms) {
  return ms > 0.0 ? static_cast<double>(n) / (ms / 1000.0) : 0.0;
}

/// Deterministic, strictly positive pseudo-time for a configuration.
double synthetic_time_ms(const pt::tuner::Configuration& config) {
  double t = 5.0;
  for (std::size_t d = 0; d < config.values.size(); ++d) {
    const double v = static_cast<double>(config.values[d]);
    t += 0.37 * static_cast<double>(d + 1) * std::log2(std::abs(v) + 2.0);
    t += 0.05 * std::fmod(std::abs(v), 7.0);
  }
  return t;
}

/// One inference path at one thread count.
struct PathRun {
  std::string inference;  // "fp64" | "fp32" | "int8" | "fp16"
  double range_ms = 0.0;
  double range_configs_per_sec = 0.0;
  double top_m_ms = 0.0;
  double top_m_configs_per_sec = 0.0;
  std::uint64_t fp64_reranked = 0;
  std::uint64_t quant_reranked = 0;
  std::uint64_t near_ties = 0;
  // Against the same-run fp64 baseline (1.0 for the baseline itself).
  double range_speedup = 1.0;
  double top_m_speedup = 1.0;
  bool top_m_match = true;
  std::vector<std::uint64_t> top_indices;
  std::vector<double> top_values;
};

struct Run {
  std::size_t threads = 0;
  std::vector<PathRun> paths;  // index-aligned with kInferences
};

struct SpaceReport {
  std::string name;
  std::uint64_t space_size = 0;
  std::uint64_t scanned = 0;
  double fit_ms = 0.0;
  std::vector<Run> runs;
  bool deterministic = true;
  bool top_m_match = true;
  bool gate_pass = true;
};

constexpr pt::tuner::ScanInference kInferences[] = {
    pt::tuner::ScanInference::kScalarFp64,
    pt::tuner::ScanInference::kBatchedFp32,
    pt::tuner::ScanInference::kQuantInt8,
    pt::tuner::ScanInference::kFp16,
};

PathRun run_path(pt::tuner::AnnPerformanceModel& model,
                 pt::tuner::ScanInference inference, std::uint64_t scanned,
                 std::size_t m) {
  pt::tuner::ScanOptions options;
  options.inference = inference;
  model.set_scan_options(options);

  PathRun run;
  run.inference = pt::tuner::scan_inference_name(inference);
  {
    const auto start = Clock::now();
    const auto preds = model.predict_range_ms(0, scanned);
    run.range_ms = ms_since(start);
    run.range_configs_per_sec = configs_per_sec(scanned, run.range_ms);
    if (preds.size() != scanned) std::exit(1);  // defensive
  }
  {
    const auto start = Clock::now();
    const auto scan = model.predict_scan_top_m(0, scanned, m);
    run.top_m_ms = ms_since(start);
    run.top_m_configs_per_sec = configs_per_sec(scanned, run.top_m_ms);
    run.fp64_reranked = scan.fp64_reranked;
    run.quant_reranked = scan.quant_reranked;
    run.near_ties = scan.near_ties;
    run.top_indices.reserve(scan.top.size());
    for (const auto& c : scan.top) {
      run.top_indices.push_back(c.index);
      run.top_values.push_back(c.predicted_ms);
    }
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pt;
  const common::CliArgs args(argc, argv);
  const bool smoke = args.get("smoke", false);
  const auto out_path = args.get("out", "micro_scan.json");
  const auto limit =
      static_cast<std::uint64_t>(args.get("limit", smoke ? 20000L : 0L));
  const auto m = static_cast<std::size_t>(args.get("m", smoke ? 50L : 300L));
  const auto training =
      static_cast<std::size_t>(args.get("training", smoke ? 120L : 300L));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", 1L));
  const bool trace = args.get("trace", false);

  std::optional<common::telemetry::Collector> collector;
  std::optional<common::telemetry::ScopedCollector> scope;
  if (trace) {
    collector.emplace();
    scope.emplace(&*collector);
  }

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  const std::size_t hw = common::default_thread_count();
  if (hw > 4) thread_counts.push_back(hw);
  if (smoke) thread_counts = {1, 4};

  bool all_match = true;
  bool all_gates = true;
  std::vector<SpaceReport> reports;
  for (const auto& name : benchkit::benchmark_names()) {
    const auto bench = benchkit::make_benchmark(name);
    const tuner::ParamSpace& space = bench->space();

    SpaceReport report;
    report.name = name;
    report.space_size = space.size();
    report.scanned =
        limit == 0 ? space.size() : std::min<std::uint64_t>(limit, space.size());

    // Train once (at the default thread count) on synthetic times.
    common::Rng rng(seed);
    std::vector<tuner::TrainingSample> samples;
    samples.reserve(training);
    for (std::size_t i = 0; i < training; ++i) {
      const tuner::Configuration config = space.random(rng);
      samples.push_back({config, synthetic_time_ms(config)});
    }
    tuner::AnnPerformanceModel::Options model_opts;
    model_opts.ensemble.trainer.common.max_epochs = smoke ? 60 : 150;
    tuner::AnnPerformanceModel model(model_opts);
    {
      const auto start = Clock::now();
      model.fit(space, samples, rng);
      report.fit_ms = ms_since(start);
    }

    for (const std::size_t threads : thread_counts) {
      common::set_global_pool_threads(threads);
      Run run;
      run.threads = threads;
      for (const auto inference : kInferences)
        run.paths.push_back(run_path(model, inference, report.scanned, m));

      // Per-mode speedups against this run's fp64 baseline, and the
      // accuracy gate: every approximate path must select exactly the
      // fp64 top-M — same indices, same predicted values.
      const PathRun& fp64 = run.paths.front();
      for (PathRun& path : run.paths) {
        if (path.range_ms > 0.0)
          path.range_speedup = fp64.range_ms / path.range_ms;
        if (path.top_m_ms > 0.0)
          path.top_m_speedup = fp64.top_m_ms / path.top_m_ms;
        path.top_m_match = path.top_indices == fp64.top_indices &&
                           path.top_values == fp64.top_values;
        if (!path.top_m_match) report.top_m_match = false;
      }

      // Determinism: every path and thread count selects the same top-M.
      if (!report.runs.empty()) {
        for (std::size_t p = 0; p < run.paths.size(); ++p) {
          if (run.paths[p].top_indices !=
              report.runs.front().paths[p].top_indices)
            report.deterministic = false;
        }
      }

      std::cout << name << " threads=" << threads;
      for (const PathRun& path : run.paths)
        std::cout << " " << path.inference << "="
                  << static_cast<std::uint64_t>(path.range_configs_per_sec)
                  << " cfg/s (x" << path.range_speedup
                  << ", match=" << path.top_m_match << ")";
      std::cout << "\n" << std::flush;
      report.runs.push_back(std::move(run));
    }

    // The threads=1 throughput gates: fp32 >= 2x fp64 on both entry
    // points, int8 >= 2x fp32 on the range scan.
    if (!smoke && !report.runs.empty()) {
      const Run& single = report.runs.front();
      const PathRun& fp32 = single.paths[1];
      const PathRun& int8 = single.paths[2];
      if (fp32.range_speedup < 2.0 || fp32.top_m_speedup < 2.0)
        report.gate_pass = false;
      if (int8.range_configs_per_sec < 2.0 * fp32.range_configs_per_sec)
        report.gate_pass = false;
    }
    if (!report.top_m_match) {
      std::cout << "FAIL: " << name
                << ": an approximate top-M differs from fp64\n";
      all_match = false;
    }
    if (!report.deterministic) {
      std::cout << "FAIL: " << name
                << ": top-M selection differs across thread counts\n";
      all_match = false;
    }
    if (!report.gate_pass) {
      std::cout << "FAIL: " << name
                << ": below a configs/sec gate (fp32 >= 2x fp64, "
                   "int8 >= 2x fp32)\n";
      all_gates = false;
    }
    reports.push_back(std::move(report));
  }
  common::set_global_pool_threads(0);  // restore the default

  bench::ReportWriter report;
  report.set("m", m)
      .set("training_samples", training)
      .set("smoke", smoke)
      .set("simd_backend", std::string(common::simd::backend_name()))
      .set("gate_fp32_required_speedup_vs_fp64", 2.0)
      .set("gate_int8_required_speedup_vs_fp32", 2.0)
      .set("gate_pass", all_gates)
      .set("top_m_match", all_match);
  common::json::Value benchmarks = common::json::Value::array();
  for (const auto& r : reports) {
    common::json::Value entry = common::json::Value::object();
    entry.set("name", r.name);
    entry.set("space_size", r.space_size);
    entry.set("scanned", r.scanned);
    entry.set("fit_ms", r.fit_ms);
    entry.set("deterministic_across_threads", r.deterministic);
    entry.set("top_m_match", r.top_m_match);
    entry.set("gate_pass", r.gate_pass);
    common::json::Value runs = common::json::Value::array();
    for (const auto& run : r.runs) {
      common::json::Value run_json = common::json::Value::object();
      run_json.set("threads", run.threads);
      common::json::Value paths = common::json::Value::array();
      for (const PathRun& p : run.paths) {
        common::json::Value path_json = common::json::Value::object();
        path_json.set("inference", p.inference);
        path_json.set("range_ms", p.range_ms);
        path_json.set("range_configs_per_sec", p.range_configs_per_sec);
        path_json.set("range_speedup_vs_fp64", p.range_speedup);
        path_json.set("top_m_ms", p.top_m_ms);
        path_json.set("top_m_configs_per_sec", p.top_m_configs_per_sec);
        path_json.set("top_m_speedup_vs_fp64", p.top_m_speedup);
        path_json.set("fp64_reranked", p.fp64_reranked);
        path_json.set("quant_reranked", p.quant_reranked);
        path_json.set("near_ties", p.near_ties);
        path_json.set("top_m_match", p.top_m_match);
        paths.push(std::move(path_json));
      }
      run_json.set("paths", std::move(paths));
      runs.push(std::move(run_json));
    }
    entry.set("runs", std::move(runs));
    benchmarks.push(std::move(entry));
  }
  report.root().set("benchmarks", std::move(benchmarks));
  report.attach_telemetry(collector ? &*collector : nullptr);
  if (collector) bench::write_chrome_trace(*collector, out_path);
  report.write(out_path);
  if (!all_match) return 1;
  if (!smoke && !all_gates) return 1;
  return 0;
}
