// Microbenchmark for the parallel prediction-scan engine: times the dense
// range scan (predict_range_ms) and the streaming top-M scan
// (predict_scan_top_m) over the full Table-2 spaces at several thread
// counts, checks that the selected configurations are identical at every
// thread count, and writes a small JSON report.
//
// The model is trained on synthetic (strictly positive) times so the bench
// exercises exactly the prediction path — no device simulation involved.
//
// Flags:
//   --out=FILE      JSON report path (default micro_scan.json)
//   --limit=N       scan at most N configurations per space (0 = full space)
//   --m=M           top-M size (default 300)
//   --training=N    synthetic training samples (default 300)
//   --seed=S        RNG seed (default 1)
//   --trace         record telemetry; metrics go into the report and a
//                   Chrome trace next to it (<out>.trace.json)

#include <chrono>
#include <cmath>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "benchmarks/registry.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/telemetry/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "report.hpp"
#include "tuner/model.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(const Clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Deterministic, strictly positive pseudo-time for a configuration.
double synthetic_time_ms(const pt::tuner::Configuration& config) {
  double t = 5.0;
  for (std::size_t d = 0; d < config.values.size(); ++d) {
    const double v = static_cast<double>(config.values[d]);
    t += 0.37 * static_cast<double>(d + 1) * std::log2(std::abs(v) + 2.0);
    t += 0.05 * std::fmod(std::abs(v), 7.0);
  }
  return t;
}

struct Run {
  std::size_t threads = 0;
  double range_ms = 0.0;
  double top_m_ms = 0.0;
};

struct SpaceReport {
  std::string name;
  std::uint64_t space_size = 0;
  std::uint64_t scanned = 0;
  double fit_ms = 0.0;
  std::vector<Run> runs;
  bool deterministic = true;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pt;
  const common::CliArgs args(argc, argv);
  const auto out_path = args.get("out", "micro_scan.json");
  const auto limit = static_cast<std::uint64_t>(args.get("limit", 0L));
  const auto m = static_cast<std::size_t>(args.get("m", 300L));
  const auto training = static_cast<std::size_t>(args.get("training", 300L));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", 1L));
  const bool trace = args.get("trace", false);

  std::optional<common::telemetry::Collector> collector;
  std::optional<common::telemetry::ScopedCollector> scope;
  if (trace) {
    collector.emplace();
    scope.emplace(&*collector);
  }

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  const std::size_t hw = common::default_thread_count();
  if (hw > 4) thread_counts.push_back(hw);

  std::vector<SpaceReport> reports;
  for (const auto& name : benchkit::benchmark_names()) {
    const auto bench = benchkit::make_benchmark(name);
    const tuner::ParamSpace& space = bench->space();

    SpaceReport report;
    report.name = name;
    report.space_size = space.size();
    report.scanned =
        limit == 0 ? space.size() : std::min<std::uint64_t>(limit, space.size());

    // Train once (at the default thread count) on synthetic times.
    common::Rng rng(seed);
    std::vector<tuner::TrainingSample> samples;
    samples.reserve(training);
    for (std::size_t i = 0; i < training; ++i) {
      const tuner::Configuration config = space.random(rng);
      samples.push_back({config, synthetic_time_ms(config)});
    }
    tuner::AnnPerformanceModel::Options model_opts;
    model_opts.ensemble.trainer.common.max_epochs = 150;
    tuner::AnnPerformanceModel model(model_opts);
    {
      const auto start = Clock::now();
      model.fit(space, samples, rng);
      report.fit_ms = ms_since(start);
    }

    std::vector<std::uint64_t> reference_top;
    for (const std::size_t threads : thread_counts) {
      common::set_global_pool_threads(threads);
      Run run;
      run.threads = threads;
      {
        const auto start = Clock::now();
        const auto preds = model.predict_range_ms(0, report.scanned);
        run.range_ms = ms_since(start);
        if (preds.size() != report.scanned) return 1;  // defensive
      }
      {
        const auto start = Clock::now();
        const auto scan = model.predict_scan_top_m(0, report.scanned, m);
        run.top_m_ms = ms_since(start);
        std::vector<std::uint64_t> top;
        top.reserve(scan.top.size());
        for (const auto& c : scan.top) top.push_back(c.index);
        if (reference_top.empty()) {
          reference_top = std::move(top);
        } else if (top != reference_top) {
          report.deterministic = false;
        }
      }
      report.runs.push_back(run);
      std::cout << name << " threads=" << threads
                << " range=" << run.range_ms << "ms"
                << " top_m=" << run.top_m_ms << "ms\n"
                << std::flush;
    }
    if (!report.deterministic)
      std::cout << "WARNING: " << name
                << ": top-M selection differs across thread counts\n";
    reports.push_back(std::move(report));
  }
  common::set_global_pool_threads(0);  // restore the default

  bench::ReportWriter report;
  report.set("m", m).set("training_samples", training);
  common::json::Value benchmarks = common::json::Value::array();
  for (const auto& r : reports) {
    common::json::Value entry = common::json::Value::object();
    entry.set("name", r.name);
    entry.set("space_size", r.space_size);
    entry.set("scanned", r.scanned);
    entry.set("fit_ms", r.fit_ms);
    entry.set("deterministic_across_threads", r.deterministic);
    common::json::Value runs = common::json::Value::array();
    for (const auto& run : r.runs) {
      common::json::Value run_json = common::json::Value::object();
      run_json.set("threads", run.threads);
      run_json.set("range_ms", run.range_ms);
      run_json.set("top_m_ms", run.top_m_ms);
      run_json.set("range_speedup",
                   run.range_ms > 0.0 ? r.runs.front().range_ms / run.range_ms
                                      : 0.0);
      runs.push(std::move(run_json));
    }
    entry.set("runs", std::move(runs));
    benchmarks.push(std::move(entry));
  }
  report.root().set("benchmarks", std::move(benchmarks));
  report.attach_telemetry(collector ? &*collector : nullptr);
  if (collector) bench::write_chrome_trace(*collector, out_path);
  report.write(out_path);
  return 0;
}
