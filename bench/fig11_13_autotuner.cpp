// Figures 11, 12, 13: mean slowdown of the auto-tuned configuration vs the
// (exhaustively known) global optimum for convolution, over a grid of
// N training configurations x M second-stage configurations, on the Nvidia
// K40, Intel i7 and AMD HD 7970.
//
// Paper's shape: slowdown shrinks as N and M grow; at N=2000, M=200 the
// tuner lands 3.5% / 5.8% / 8.7% above optimal (Intel / AMD / Nvidia) after
// measuring only ~1.7% of the space; at N=500, M=100 it is 13-30% above.
// Some low-budget cells are *missing* because every second-stage candidate
// was invalid — the failure mode discussed in section 7.
//
// Flags:
//   --trace=PREFIX  record telemetry for the whole sweep and write
//                   PREFIX.trace.json (Chrome trace; load in chrome://tracing
//                   or https://ui.perfetto.dev) plus PREFIX.metrics.json
//                   (per-stage wall/simulated time, cache hit rate,
//                   rejections by status, per-epoch training loss).

#include <iostream>
#include <optional>
#include <string>

#include "bench_util.hpp"
#include "common/telemetry/telemetry.hpp"
#include "report.hpp"
#include "tuner/search.hpp"

int main(int argc, char** argv) {
  using namespace pt;
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  const bool full = args.get("full", false);
  bench::print_banner(
      "Figures 11-13: auto-tuner slowdown vs global optimum (convolution)",
      full);

  exp::SlowdownGridOptions opts;
  if (full) {
    opts.training_sizes = {100, 200, 300, 400, 500, 1000, 2000};
    opts.second_stage_sizes = {10, 50, 100, 150, 200};
    opts.repeats = static_cast<std::size_t>(args.get("repeats", 3L));
  } else {
    opts.training_sizes = {200, 500, 1000, 2000};
    opts.second_stage_sizes = {50, 100, 200};
    opts.repeats = static_cast<std::size_t>(args.get("repeats", 2L));
  }
  opts.seed = static_cast<std::uint64_t>(args.get("seed", 7L));

  const auto trace_prefix = args.get("trace", std::string());
  std::optional<common::telemetry::Collector> collector;
  if (!trace_prefix.empty()) {
    collector.emplace();
    opts.run.telemetry = &*collector;
  }

  const clsim::Platform platform = archsim::default_platform();
  const auto bench_obj = benchkit::make_benchmark("convolution");

  for (const auto& device_name : bench::main_devices()) {
    benchkit::BenchmarkEvaluator inner(
        *bench_obj, platform.device_by_name(device_name));
    tuner::CachingEvaluator eval(inner);
    const exp::SlowdownGrid grid = exp::autotuner_slowdown_grid(eval, opts);
    std::cout << "\n";
    bench::print_slowdown_grid(grid, args.get("csv", false));
  }

  std::cout << "\nfraction of the space measured at N=2000, M=200: "
            << common::fmt_pct(2200.0 / 131072.0) << " (paper: ~1.7%)\n";

  if (collector) {
    bench::write_chrome_trace(*collector, trace_prefix);
    bench::ReportWriter metrics;
    metrics.set("bench", "fig11_13_autotuner")
        .set("seed", opts.seed)
        .set("repeats", opts.repeats);
    metrics.attach_telemetry(&*collector);
    metrics.write(trace_prefix + ".metrics.json");
  }
  return 0;
}
