// Launch-throughput microbenchmark for the clsim execution engine: times
// repeated functional launches of the paper's three benchmarks in
// barrier-free and barrier-heavy configurations, once with the barrier-free
// direct-dispatch fast path enabled and once with the round scheduler
// forced, and reports launches/sec plus work-items/sec for each cell.
//
// Correctness checks ride along: a synthetic output-writing kernel is run
// byte-for-byte across both engines (and a pooled variant), and every
// benchmark configuration is verified against its scalar reference, so a
// throughput win can never hide a wrong result.
//
// Flags:
//   --out=FILE     JSON report path (default BENCH_exec.json)
//   --repeats=N    timed launches per cell (default 400)
//   --threads=T    executor thread-pool size; 0 = sequential (default 0,
//                  keeping the measurement a pure per-launch overhead probe)
//   --seed=S       RNG seed for the synthetic identity kernel (default 1)
//   --smoke        tiny repeat count + assertions only; used by ctest
//   --trace        record telemetry into the report and a Chrome trace

#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "archsim/devices.hpp"
#include "benchmarks/registry.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/telemetry/telemetry.hpp"
#include "common/thread_pool.hpp"
#include "report.hpp"
#include "tuner/param.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(const Clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// A benchmark configuration with every toggle off and a fixed work-group
/// shape, optionally with one named local-memory toggle switched on (the
/// barrier-heavy variant: local staging implies barriers).
pt::tuner::Configuration
make_config(const pt::tuner::ParamSpace& space,
            const std::string& local_toggle = std::string()) {
  pt::tuner::Configuration config = space.decode(0);
  auto set = [&](const std::string& name, int value) {
    config.values[space.index_of(name)] = value;
  };
  set("WG_X", 16);
  set("WG_Y", 8);
  if (!local_toggle.empty()) set(local_toggle, 1);
  return config;
}

struct Cell {
  std::string engine;  // "direct", "round" or "baseline"
  double wall_ms = 0.0;
  double launches_per_sec = 0.0;
  double items_per_sec = 0.0;
};

/// Restores the frame-pool routing of the calling thread on scope exit.
class BypassGuard {
 public:
  explicit BypassGuard(bool bypass) {
    pt::clsim::FramePool::set_thread_bypass(bypass);
  }
  ~BypassGuard() { pt::clsim::FramePool::set_thread_bypass(false); }
  BypassGuard(const BypassGuard&) = delete;
  BypassGuard& operator=(const BypassGuard&) = delete;
};

struct ConfigReport {
  std::string variant;  // "barrier_free" or "barrier_heavy"
  std::string config;
  std::uint64_t items_per_launch = 0;
  double verify_max_abs_error = 0.0;
  std::vector<Cell> cells;
  double direct_speedup = 0.0;  // round wall / direct wall
};

/// One engine measurement: `repeats` launches driven straight through
/// NDRangeExecutor (no queue, no timing oracle — this times the execution
/// engine itself). Engines:
///   direct    fast path on, pooled frames        (this PR's engine)
///   round     fast path off, pooled frames       (round scheduler + pool)
///   baseline  fast path off, heap frames         (the pre-PR executor)
/// The baseline's frame-pool bypass is thread-local, so it is only faithful
/// when the executor runs sequentially (pool == nullptr).
Cell run_cell(const std::string& engine, bool fast_path, bool bypass_pool,
              pt::common::ThreadPool* pool,
              const pt::benchkit::LaunchPlan& plan, std::size_t repeats) {
  namespace clsim = pt::clsim;
  const BypassGuard guard(bypass_pool);
  const clsim::NDRangeExecutor executor(pool, {.enable_fast_path = fast_path});
  const clsim::KernelProfile& profile = plan.kernel.profile();
  auto launch = [&] {
    executor.run(plan.global, plan.local, profile.local_mem_bytes_per_group,
                 plan.kernel.body(), nullptr, &profile);
  };
  launch();  // warm-up: first touch of buffers and frame freelists

  Cell cell;
  cell.engine = engine;
  const auto start = Clock::now();
  for (std::size_t r = 0; r < repeats; ++r) launch();
  cell.wall_ms = ms_since(start);
  const double secs = cell.wall_ms / 1e3;
  if (secs > 0.0) {
    cell.launches_per_sec = static_cast<double>(repeats) / secs;
    cell.items_per_sec =
        static_cast<double>(repeats * plan.global.total()) / secs;
  }
  return cell;
}

/// Launch-overhead probe kernel: an empty barrier-free body, so a launch
/// costs exactly what the execution engine charges per work-item (frame
/// allocation, context setup, scheduling) and nothing else. This is the
/// purest launches/sec comparison between the engines.
pt::benchkit::LaunchPlan make_overhead_plan(const pt::clsim::Device& device,
                                            const pt::clsim::NDRange& global,
                                            const pt::clsim::NDRange& local) {
  namespace clsim = pt::clsim;
  clsim::CompiledKernel ck;
  ck.name = "empty";
  ck.profile.kernel_name = "empty";
  ck.profile.barriers_per_item = 0.0;
  ck.body = [](clsim::WorkItemCtx&) -> clsim::WorkItemTask { co_return; };
  return {clsim::Kernel(device, std::move(ck)), global, local, 0.0};
}

/// Byte-identity probe: a synthetic kernel with data-dependent arithmetic
/// and local scratch writes its result into a buffer; all engines must
/// produce the same bytes. Returns false on any mismatch.
bool identity_probe(const pt::clsim::Device& device, std::uint64_t seed) {
  namespace clsim = pt::clsim;
  using pt::clsim::WorkItemCtx;
  using pt::clsim::WorkItemTask;

  constexpr std::size_t kGlobal = 256;
  constexpr std::size_t kLocal = 16;
  const auto salt = static_cast<std::uint32_t>(seed * 2654435761u + 1u);

  auto make_kernel = [&](clsim::Buffer& out) {
    clsim::CompiledKernel ck;
    ck.name = "identity_probe";
    ck.profile.kernel_name = "identity_probe";
    ck.profile.barriers_per_item = 0.0;
    ck.profile.local_mem_bytes_per_group = 64;
    ck.body = [&out, salt](WorkItemCtx& ctx) -> WorkItemTask {
      auto scratch = ctx.local_alloc<std::uint32_t>(2);
      const auto gid = static_cast<std::uint32_t>(ctx.global_id(0));
      scratch[0] = gid * 2246822519u + salt;
      scratch[1] = scratch[0] ^ (scratch[0] >> 15);
      out.as<std::uint32_t>()[gid] =
          scratch[1] * 31u + static_cast<std::uint32_t>(ctx.local_id(0));
      co_return;
    };
    return clsim::Kernel(device, std::move(ck));
  };

  auto run_engine = [&](bool fast_path,
                        pt::common::ThreadPool* pool) -> std::vector<std::uint32_t> {
    clsim::Buffer out(kGlobal * sizeof(std::uint32_t));
    const clsim::Kernel kernel = make_kernel(out);
    clsim::CommandQueue queue(
        device, clsim::CommandQueue::Options{
                    .mode = clsim::ExecMode::kFunctional,
                    .pool = pool,
                    .executor = {.enable_fast_path = fast_path}});
    queue.enqueue_nd_range(kernel, clsim::NDRange(kGlobal),
                           clsim::NDRange(kLocal));
    const auto view = out.as<const std::uint32_t>();
    return {view.begin(), view.end()};
  };

  pt::common::ThreadPool pool(4);
  const auto direct = run_engine(true, nullptr);
  const auto round = run_engine(false, nullptr);
  const auto pooled = run_engine(true, &pool);
  return direct == round && direct == pooled;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pt;
  const common::CliArgs args(argc, argv);
  const bool smoke = args.get("smoke", false);
  const auto out_path = args.get("out", "BENCH_exec.json");
  const auto repeats =
      static_cast<std::size_t>(args.get("repeats", smoke ? 20L : 400L));
  const auto threads = static_cast<std::size_t>(args.get("threads", 0L));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", 1L));
  const bool trace = args.get("trace", false);

  std::optional<common::telemetry::Collector> collector;
  std::optional<common::telemetry::ScopedCollector> scope;
  if (trace) {
    collector.emplace();
    scope.emplace(&*collector);
  }

  std::optional<common::ThreadPool> pool;
  if (threads > 0) pool.emplace(threads);

  const clsim::Platform platform = archsim::default_platform();
  const clsim::Device device = platform.device_by_name(archsim::kNvidiaK40);

  if (!identity_probe(device, seed)) {
    std::cerr << "FAIL: engines disagree on the identity probe\n";
    return 1;
  }

  // (benchmark, local-memory toggle that makes its kernel barrier heavy)
  const std::vector<std::pair<std::string, std::string>> variants = {
      {"convolution", "USE_LOCAL"},
      {"raycasting", "LOCAL_TF"},
      {"stereo", "LOCAL_LEFT"},
  };

  bool speedup_ok = true;
  bench::ReportWriter report;
  report.set("repeats", repeats)
      .set("threads", threads)
      .set("device", device.info().name)
      .set("smoke", smoke);
  common::json::Value benchmarks = common::json::Value::array();

  for (const auto& [name, heavy_toggle] : variants) {
    const auto bench_obj = benchkit::make_benchmark_small(name);
    const tuner::ParamSpace& space = bench_obj->space();

    common::json::Value entry = common::json::Value::object();
    entry.set("name", name);
    common::json::Value configs = common::json::Value::array();

    for (const bool heavy : {false, true}) {
      ConfigReport cr;
      cr.variant = heavy ? "barrier_heavy" : "barrier_free";
      const tuner::Configuration config =
          make_config(space, heavy ? heavy_toggle : std::string());
      cr.config = space.to_string(config);
      cr.verify_max_abs_error = bench_obj->verify(device, config);

      const benchkit::LaunchPlan plan = bench_obj->prepare(device, config);
      cr.items_per_launch = plan.global.total();
      common::ThreadPool* p = pool ? &*pool : nullptr;
      cr.cells.push_back(run_cell("direct", true, false, p, plan, repeats));
      cr.cells.push_back(run_cell("round", false, false, p, plan, repeats));
      cr.cells.push_back(run_cell("baseline", false, true, p, plan, repeats));
      if (cr.cells[0].wall_ms > 0.0)
        cr.direct_speedup = cr.cells[2].wall_ms / cr.cells[0].wall_ms;

      std::cout << name << " " << cr.variant
                << " direct=" << cr.cells[0].launches_per_sec
                << "/s round=" << cr.cells[1].launches_per_sec
                << "/s baseline=" << cr.cells[2].launches_per_sec
                << "/s speedup=" << cr.direct_speedup
                << " max_err=" << cr.verify_max_abs_error << "\n"
                << std::flush;

      common::json::Value cj = common::json::Value::object();
      cj.set("variant", cr.variant);
      cj.set("config", cr.config);
      cj.set("items_per_launch", cr.items_per_launch);
      cj.set("verify_max_abs_error", cr.verify_max_abs_error);
      cj.set("direct_speedup", cr.direct_speedup);
      common::json::Value cells = common::json::Value::array();
      for (const Cell& cell : cr.cells) {
        common::json::Value cell_json = common::json::Value::object();
        cell_json.set("engine", cell.engine);
        cell_json.set("wall_ms", cell.wall_ms);
        cell_json.set("launches_per_sec", cell.launches_per_sec);
        cell_json.set("items_per_sec", cell.items_per_sec);
        cells.push(std::move(cell_json));
      }
      cj.set("engines", std::move(cells));
      configs.push(std::move(cj));
    }
    entry.set("configs", std::move(configs));
    benchmarks.push(std::move(entry));
  }

  report.root().set("benchmarks", std::move(benchmarks));

  // Pure launch-overhead cells: the acceptance metric for the engine. Each
  // shape is a barrier-free launch with an empty body, so launches/sec is
  // the per-launch engine overhead and nothing else.
  struct Shape {
    const char* label;
    clsim::NDRange global;
    clsim::NDRange local;
  };
  const std::vector<Shape> shapes = {
      {"1d_256x32", clsim::NDRange(256), clsim::NDRange(32)},
      {"2d_64x64_wg16x8", clsim::NDRange(64, 64), clsim::NDRange(16, 8)},
      {"2d_tiny_groups_wg4x4", clsim::NDRange(64, 64), clsim::NDRange(4, 4)},
  };
  const std::size_t overhead_repeats = repeats * 4;
  common::json::Value overhead = common::json::Value::array();
  for (const Shape& shape : shapes) {
    const benchkit::LaunchPlan plan =
        make_overhead_plan(device, shape.global, shape.local);
    common::ThreadPool* p = pool ? &*pool : nullptr;
    std::vector<Cell> cells;
    cells.push_back(run_cell("direct", true, false, p, plan, overhead_repeats));
    cells.push_back(run_cell("round", false, false, p, plan, overhead_repeats));
    cells.push_back(
        run_cell("baseline", false, true, p, plan, overhead_repeats));
    const double speedup =
        cells[0].wall_ms > 0.0 ? cells[2].wall_ms / cells[0].wall_ms : 0.0;
    std::cout << "overhead " << shape.label
              << " direct=" << cells[0].launches_per_sec
              << "/s round=" << cells[1].launches_per_sec
              << "/s baseline=" << cells[2].launches_per_sec
              << "/s speedup=" << speedup << "\n"
              << std::flush;
    // The acceptance bar: on barrier-free launches the engine must be at
    // least 2x faster than the pre-PR executor. Smoke runs skip the gate —
    // their repeat counts are too small for stable timing.
    if (!smoke && speedup < 2.0) speedup_ok = false;

    common::json::Value sj = common::json::Value::object();
    sj.set("shape", shape.label);
    sj.set("items_per_launch", plan.global.total());
    sj.set("direct_speedup", speedup);
    common::json::Value cell_array = common::json::Value::array();
    for (const Cell& cell : cells) {
      common::json::Value cell_json = common::json::Value::object();
      cell_json.set("engine", cell.engine);
      cell_json.set("wall_ms", cell.wall_ms);
      cell_json.set("launches_per_sec", cell.launches_per_sec);
      cell_json.set("items_per_sec", cell.items_per_sec);
      cell_array.push(std::move(cell_json));
    }
    sj.set("engines", std::move(cell_array));
    overhead.push(std::move(sj));
  }
  report.root().set("launch_overhead", std::move(overhead));
  report.set("identity_probe", "pass");
  report.attach_telemetry(collector ? &*collector : nullptr);
  if (collector) bench::write_chrome_trace(*collector, out_path);
  if (!report.write(out_path)) return 1;
  if (!speedup_ok) {
    std::cerr << "FAIL: direct dispatch below 2x on a barrier-free config\n";
    return 1;
  }
  return 0;
}
