#pragma once

// Shared helpers for the figure/table reproduction binaries: common CLI
// flags, device selection, and table printing for the experiment results.
//
// Every binary accepts:
//   --repeats=N      models/tuner runs per point (default varies)
//   --seed=S         RNG seed (default 1)
//   --full           run the paper's full protocol instead of the default
//                    reduced one (slower, same shape)
//   --csv            additionally print results as CSV

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "archsim/devices.hpp"
#include "benchmarks/registry.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "experiments/error_curves.hpp"
#include "experiments/tuner_eval.hpp"

namespace pt::bench {

/// The three devices of the paper's main evaluation.
inline std::vector<std::string> main_devices() {
  return {archsim::kIntelI7, archsim::kNvidiaK40, archsim::kAmdHd7970};
}

/// Training-size ladders.
inline std::vector<std::size_t> paper_training_sizes() {
  return {100, 200,  300,  400,  500,  600,  700,  800,
          900, 1000, 1500, 2000, 2500, 3000, 3500, 4000};
}
inline std::vector<std::size_t> reduced_training_sizes() {
  return {100, 250, 500, 1000, 2000, 4000};
}

/// Print a header naming the figure and the protocol in use.
inline void print_banner(const std::string& title, bool full_protocol) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << (full_protocol
                    ? "protocol: full (paper)"
                    : "protocol: reduced (use --full for the paper grid)")
            << "\n"
            << "==============================================================\n";
}

/// Render an error curve as a table (one row per training size).
inline void print_error_curves(const std::vector<exp::ErrorCurve>& curves,
                               bool csv) {
  if (curves.empty()) return;
  std::vector<std::string> header = {"training configs"};
  for (const auto& c : curves) header.push_back(c.label);
  common::Table table(header);
  for (std::size_t i = 0; i < curves.front().points.size(); ++i) {
    std::vector<std::string> row = {
        std::to_string(curves.front().points[i].training_size)};
    for (const auto& c : curves) {
      row.push_back(i < c.points.size()
                        ? common::fmt_pct(c.points[i].mean_relative_error)
                        : "n/a");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);
}

/// Render a slowdown grid (rows = N, columns = M).
inline void print_slowdown_grid(const exp::SlowdownGrid& grid, bool csv) {
  std::cout << grid.label << "  (global optimum: "
            << common::fmt_time_ms(grid.optimum_ms) << ")\n";
  // Collect the axes.
  std::vector<std::size_t> ns;
  std::vector<std::size_t> ms;
  for (const auto& cell : grid.cells) {
    if (ns.empty() || ns.back() != cell.training_size) {
      if (std::find(ns.begin(), ns.end(), cell.training_size) == ns.end())
        ns.push_back(cell.training_size);
    }
    if (std::find(ms.begin(), ms.end(), cell.second_stage_size) == ms.end())
      ms.push_back(cell.second_stage_size);
  }
  std::vector<std::string> header = {"N \\ M"};
  for (const auto m : ms) header.push_back(std::to_string(m));
  common::Table table(header);
  for (const auto n : ns) {
    std::vector<std::string> row = {std::to_string(n)};
    for (const auto m : ms) {
      std::string cell_text = "missing";
      for (const auto& cell : grid.cells) {
        if (cell.training_size == n && cell.second_stage_size == m &&
            cell.mean_slowdown) {
          cell_text = common::fmt(*cell.mean_slowdown, 3);
        }
      }
      row.push_back(cell_text);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);
}

}  // namespace pt::bench
