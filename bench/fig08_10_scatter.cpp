// Figures 8, 9, 10: predicted vs actual execution time scatter for the
// convolution benchmark on the Intel i7, Nvidia K40 and AMD HD 7970 — 100
// held-out configurations, a single (non-averaged) model, log-log axes.
//
// Paper's shape: a tight diagonal band on every device; on the Intel CPU
// the points split into clusters because configurations that use image
// memory *without* local-memory staging pay the software-sampling tax and
// are far slower than everything else.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"

int main(int argc, char** argv) {
  using namespace pt;
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  bench::print_banner(
      "Figures 8-10: predicted vs actual execution times (convolution)",
      false);
  const auto training =
      static_cast<std::size_t>(args.get("training", 2000L));
  const auto points = static_cast<std::size_t>(args.get("points", 100L));

  const clsim::Platform platform = archsim::default_platform();
  const auto bench_obj = benchkit::make_benchmark("convolution");

  for (const auto& device_name : bench::main_devices()) {
    benchkit::BenchmarkEvaluator eval(
        *bench_obj, platform.device_by_name(device_name));
    tuner::AnnPerformanceModel::Options model;
    model.ensemble.k = 1;  // single model, as in the paper's scatter plots
    const auto scatter = exp::compute_scatter(
        eval, training, points, model,
        static_cast<std::uint64_t>(args.get("seed", 5L)));

    std::cout << "\n--- " << device_name << " (" << scatter.size()
              << " held-out configs, " << training
              << " training configs) ---\n";
    std::vector<double> log_actual;
    std::vector<double> log_predicted;
    std::vector<double> rel_err;
    for (const auto& p : scatter) {
      log_actual.push_back(std::log10(p.actual_ms));
      log_predicted.push_back(std::log10(p.predicted_ms));
      rel_err.push_back(std::abs(p.predicted_ms - p.actual_ms) /
                        p.actual_ms);
    }
    std::cout << "log-log Pearson r = "
              << common::fmt(common::pearson(log_actual, log_predicted), 3)
              << ", mean relative error = "
              << common::fmt_pct(common::mean(rel_err)) << "\n";

    // ASCII scatter on log-log axes (the paper's Figs 8-10).
    const auto [min_it, max_it] =
        std::minmax_element(log_actual.begin(), log_actual.end());
    const double lo = std::min(
        *min_it, *std::min_element(log_predicted.begin(), log_predicted.end()));
    const double hi = std::max(
        *max_it, *std::max_element(log_predicted.begin(), log_predicted.end()));
    const int kw = 61;
    const int kh = 21;
    std::vector<std::string> canvas(kh, std::string(kw, ' '));
    for (int d = 0; d < std::min(kw, kh); ++d)
      canvas[kh - 1 - d * kh / std::min(kw, kh)]
            [d * kw / std::min(kw, kh)] = '.';
    auto to_cell = [&](double v, int extent) {
      const double t = (v - lo) / std::max(1e-12, hi - lo);
      return std::clamp(static_cast<int>(t * (extent - 1)), 0, extent - 1);
    };
    for (std::size_t i = 0; i < scatter.size(); ++i) {
      const int x = to_cell(log_actual[i], kw);
      const int y = kh - 1 - to_cell(log_predicted[i], kh);
      canvas[y][x] = 'o';
    }
    std::cout << "predicted (log10 ms) vertical vs actual (log10 ms) "
                 "horizontal, range ["
              << common::fmt(lo, 2) << ", " << common::fmt(hi, 2) << "]:\n";
    for (const auto& line : canvas) std::cout << "  |" << line << "|\n";

    if (args.get("csv", false)) {
      std::cout << "actual_ms,predicted_ms\n";
      for (const auto& p : scatter)
        std::cout << p.actual_ms << "," << p.predicted_ms << "\n";
    }
  }
  return 0;
}
