// Extension bench: telemetry + observer demo. Runs the one-shot two-stage
// auto-tuner and the iterative tuner on one benchmark with the full
// TunerRunContext wired up — a console observer printing the live stage tree
// and a telemetry collector recording spans/counters for both runs — then
// writes the uniform metrics report plus a Chrome trace.
//
// This is the smallest end-to-end example of the observability surface:
//   - TunerObserver callbacks (stage tree, sample/epoch/candidate tallies),
//   - telemetry spans from the tuners, the scan, ML training and clsim,
//   - bench::ReportWriter with the "telemetry" section,
//   - the Chrome trace (load PREFIX.trace.json in chrome://tracing or
//     https://ui.perfetto.dev).
//
// Flags:
//   --out=PREFIX     output prefix (default ext_trace): writes PREFIX.json
//                    and PREFIX.trace.json
//   --device=D       device name (default the Nvidia K40)
//   --benchmark=B    benchmark name (default convolution)
//   --training=N     stage-1 training samples (default 500)
//   --second-stage=M second-stage size (default 50)
//   --budget=N       iterative measurement budget (default 600)
//   --seed=S         RNG seed (default 1)

#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>

#include "bench_util.hpp"
#include "common/telemetry/telemetry.hpp"
#include "report.hpp"
#include "tuner/autotuner.hpp"
#include "tuner/iterative.hpp"
#include "tuner/observer.hpp"
#include "tuner/stack.hpp"

namespace {

using namespace pt;

/// Prints the stage tree as it happens and tallies every callback kind.
class ConsoleObserver final : public tuner::TunerObserver {
 public:
  void on_stage_begin(std::string_view tuner,
                      std::string_view stage) override {
    std::cout << indent() << tuner << "/" << stage << "\n" << std::flush;
    ++depth_;
    ++stages;
  }
  void on_stage_end(std::string_view /*tuner*/,
                    std::string_view /*stage*/) override {
    if (depth_ > 0) --depth_;
  }
  void on_sample(std::string_view /*stage*/,
                 const tuner::Configuration& /*config*/,
                 const tuner::Measurement& /*m*/) override {
    ++samples;
  }
  void on_epoch(std::size_t member, std::size_t /*epoch*/, double train_loss,
                double /*monitored_loss*/) override {
    ++epochs;
    last_member = member;
    last_train_loss = train_loss;
  }
  void on_candidate(std::uint64_t /*index*/,
                    double /*predicted_ms*/) override {
    ++candidates;
  }
  void on_measurement(std::string_view /*stage*/,
                      const tuner::Configuration& /*config*/,
                      const tuner::Measurement& m) override {
    ++measurements;
    if (!m.valid) ++invalid_measurements;
  }

  std::size_t stages = 0;
  std::size_t samples = 0;
  std::size_t epochs = 0;
  std::size_t candidates = 0;
  std::size_t measurements = 0;
  std::size_t invalid_measurements = 0;
  std::size_t last_member = 0;
  double last_train_loss = 0.0;

 private:
  [[nodiscard]] std::string indent() const {
    return std::string(2 * depth_ + 2, ' ');
  }
  std::size_t depth_ = 0;
};

common::json::Value observer_json(const ConsoleObserver& obs) {
  common::json::Value out = common::json::Value::object();
  out.set("stages", obs.stages);
  out.set("samples", obs.samples);
  out.set("epochs", obs.epochs);
  out.set("candidates", obs.candidates);
  out.set("measurements", obs.measurements);
  out.set("invalid_measurements", obs.invalid_measurements);
  out.set("last_train_loss", obs.last_train_loss);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  bench::print_banner(
      "Extension: telemetry/observer demo (traced tuning runs)", false);
  const auto prefix = args.get("out", std::string("ext_trace"));
  const auto device_name =
      args.get("device", std::string(archsim::kNvidiaK40));
  const auto bench_name = args.get("benchmark", std::string("convolution"));
  const auto training = static_cast<std::size_t>(args.get("training", 500L));
  const auto second_stage =
      static_cast<std::size_t>(args.get("second-stage", 50L));
  const auto budget = static_cast<std::size_t>(args.get("budget", 600L));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", 1L));

  const clsim::Platform platform = archsim::default_platform();
  const auto bench_obj = benchkit::make_benchmark(bench_name);
  benchkit::BenchmarkEvaluator inner(*bench_obj,
                                     platform.device_by_name(device_name));
  auto stack = tuner::EvaluatorStack::wrap(inner).cached().counting();
  std::cout << "evaluator stack: " << stack.description() << "\n";

  common::telemetry::Collector collector;

  // One-shot two-stage tuner, fully observed.
  ConsoleObserver one_shot_obs;
  tuner::AutoTuneResult one_shot;
  {
    tuner::AutoTunerOptions opts;
    opts.training_samples = training;
    opts.second_stage_size = second_stage;
    opts.run.observer = &one_shot_obs;
    opts.run.telemetry = &collector;
    opts.run.seed = seed;
    std::cout << "one-shot auto-tuner stages:\n";
    one_shot = tuner::AutoTuner(opts).tune(stack);
  }
  std::cout << "one-shot: "
            << (one_shot.success
                    ? common::fmt_time_ms(one_shot.best_time_ms)
                    : std::string("no prediction"))
            << ", " << one_shot_obs.samples << " samples, "
            << one_shot_obs.epochs << " epochs, " << one_shot_obs.candidates
            << " candidates, cache " << one_shot.cache_hits << " hits / "
            << one_shot.cache_misses << " misses\n\n";

  // Iterative tuner into the same collector (spans accumulate).
  ConsoleObserver iterative_obs;
  tuner::IterativeTuneResult iterative;
  {
    tuner::IterativeTunerOptions opts;
    opts.measurement_budget = budget;
    opts.initial_samples = budget / 3;
    opts.batch_size = budget / 6;
    opts.run.observer = &iterative_obs;
    opts.run.telemetry = &collector;
    opts.run.seed = seed;
    std::cout << "iterative tuner stages:\n";
    iterative = tuner::IterativeTuner(opts).tune(stack);
  }
  std::cout << "iterative: "
            << (iterative.success
                    ? common::fmt_time_ms(iterative.best_time_ms)
                    : std::string("no prediction"))
            << ", " << iterative_obs.measurements << " measurements ("
            << iterative_obs.invalid_measurements << " invalid), "
            << iterative_obs.epochs << " epochs\n\n";

  bench::ReportWriter report;
  report.set("device", device_name)
      .set("benchmark", bench_name)
      .set("training_samples", training)
      .set("second_stage_size", second_stage)
      .set("budget", budget)
      .set("seed", seed)
      .set("evaluator_stack", stack.description())
      .set("one_shot_best_ms", one_shot.success ? one_shot.best_time_ms : 0.0)
      .set("iterative_best_ms",
           iterative.success ? iterative.best_time_ms : 0.0);
  report.root().set("one_shot_observer", observer_json(one_shot_obs));
  report.root().set("iterative_observer", observer_json(iterative_obs));
  report.attach_telemetry(&collector);
  bench::write_chrome_trace(collector, prefix);
  report.write(prefix + ".json");
  return (one_shot.success && iterative.success) ? 0 : 1;
}
