// Figure 4: mean prediction error vs training set size on the Intel i7 3770.
// Paper: 6.1-8.3% at 4000 training configurations — the most predictable
// device (uniform memory, few invalid configurations, long kernel times).

#include "error_curve_main.hpp"

int main(int argc, char** argv) {
  return pt::bench::run_error_curve_figure(
      "Figure 4: mean prediction error vs training size, Intel i7 3770",
      pt::archsim::kIntelI7, argc, argv);
}
