// Extension bench: input-aware performance modeling (the paper's future
// work, section 8). One model is trained on convolution measurements taken
// at several image sizes, with the size as an extra network input, then
// evaluated (a) at the sizes it saw and (b) at a held-out size it never saw
// — against per-size specialist models given the same per-size budget.

#include <iostream>

#include "bench_util.hpp"
#include "benchmarks/convolution.hpp"
#include "common/stats.hpp"
#include "ml/metrics.hpp"
#include "tuner/input_aware.hpp"

namespace {

using namespace pt;

struct SizedEvaluator {
  std::unique_ptr<benchkit::ConvolutionBenchmark> bench;
  std::unique_ptr<benchkit::BenchmarkEvaluator> eval;
  double size = 0.0;
};

SizedEvaluator make_sized(std::size_t size, const clsim::Device& device) {
  benchkit::ConvolutionBenchmark::Geometry g;
  g.width = size;
  g.height = size;
  SizedEvaluator out;
  out.bench = std::make_unique<benchkit::ConvolutionBenchmark>(g);
  out.eval =
      std::make_unique<benchkit::BenchmarkEvaluator>(*out.bench, device);
  out.size = static_cast<double>(size);
  return out;
}

std::vector<tuner::InputAwareSample> sample_sized(
    SizedEvaluator& se, std::size_t n, common::Rng& rng) {
  std::vector<tuner::InputAwareSample> samples;
  std::size_t attempts = 0;
  while (samples.size() < n && attempts < n * 32) {
    ++attempts;
    const auto config = se.eval->space().random(rng);
    const auto m = se.eval->measure(config);
    if (m.valid)
      samples.push_back(
          {config, tuner::ProblemInstance{{se.size}}, m.time_ms});
  }
  return samples;
}

double score(const tuner::InputAwarePerformanceModel& model,
             SizedEvaluator& se, std::size_t n, common::Rng& rng) {
  std::vector<double> actual;
  std::vector<double> predicted;
  std::size_t attempts = 0;
  while (actual.size() < n && attempts < n * 32) {
    ++attempts;
    const auto config = se.eval->space().random(rng);
    const auto m = se.eval->measure(config);
    if (!m.valid) continue;
    actual.push_back(m.time_ms);
    predicted.push_back(model.predict_ms(
        config, tuner::ProblemInstance{{se.size}}));
  }
  return ml::mean_relative_error(predicted, actual);
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  bench::print_banner(
      "Extension: input-aware model across convolution image sizes "
      "(@ Nvidia K40)",
      false);
  const auto per_size =
      static_cast<std::size_t>(args.get("per-size", 700L));
  const auto test_n = static_cast<std::size_t>(args.get("test-samples", 200L));
  common::Rng rng(static_cast<std::uint64_t>(args.get("seed", 13L)));

  const clsim::Platform platform = archsim::default_platform();
  const clsim::Device device =
      platform.device_by_name(archsim::kNvidiaK40);

  // Five size levels spanning the range densely enough that the network is
  // constrained between them; two interior sizes are held out entirely.
  const std::vector<std::size_t> train_sizes = {256, 384, 512, 1024, 2048};
  const std::vector<std::size_t> holdout_sizes = {768, 1536};

  // Gather the multi-size training set.
  std::vector<tuner::InputAwareSample> training;
  std::vector<SizedEvaluator> train_evals;
  for (const auto size : train_sizes) {
    train_evals.push_back(make_sized(size, device));
    const auto samples = sample_sized(train_evals.back(), per_size, rng);
    training.insert(training.end(), samples.begin(), samples.end());
    std::cout << "  [sampled " << samples.size() << " @ " << size << "^2]\n"
              << std::flush;
  }

  tuner::InputAwarePerformanceModel model;
  model.fit(train_evals.front().eval->space(), {"image_size"}, training,
            rng);
  std::cout << "  [input-aware model trained on " << training.size()
            << " samples across " << train_sizes.size() << " sizes]\n";

  common::Table table({"Image size", "Input-aware model MRE", "Note"});
  for (auto& se : train_evals) {
    table.add_row({std::to_string(static_cast<std::size_t>(se.size)) + "^2",
                   common::fmt_pct(score(model, se, test_n, rng)),
                   "seen during training"});
  }
  for (const auto holdout_size : holdout_sizes) {
    SizedEvaluator holdout = make_sized(holdout_size, device);
    table.add_row({std::to_string(holdout_size) + "^2",
                   common::fmt_pct(score(model, holdout, test_n, rng)),
                   "NEVER seen (interpolated)"});
  }
  table.print(std::cout);
  if (args.get("csv", false)) table.print_csv(std::cout);
  return 0;
}
