// Extension bench: the validity classifier (the paper's future work,
// sections 7-8) on the paper's hardest case — stereo on the GPUs, where the
// baseline tuner's second stage is frequently all-invalid ("the auto-tuner
// gives no prediction at all"). Compares, per device:
//   baseline tuner     (invalid configurations ignored, as in the paper)
//   + validity filter  (stage-2 candidates screened by the classifier)
// reporting success rate, result quality vs a random baseline, and the
// classifier's held-out accuracy.

#include <iostream>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "tuner/autotuner.hpp"
#include "tuner/search.hpp"

int main(int argc, char** argv) {
  using namespace pt;
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  bench::print_banner(
      "Extension: validity-classifier filter for the second stage (stereo)",
      false);
  const auto training = static_cast<std::size_t>(args.get("training", 1500L));
  const auto m = static_cast<std::size_t>(args.get("m", 150L));
  const auto repeats = static_cast<std::size_t>(args.get("repeats", 2L));
  const auto baseline_n =
      static_cast<std::size_t>(args.get("baseline", 10000L));

  const clsim::Platform platform = archsim::default_platform();
  const auto bench_obj = benchkit::make_benchmark("stereo");

  common::Table table({"Device", "Variant", "Successes",
                       "Slowdown vs random baseline", "Stage-2 invalid"});
  for (const auto& device_name : bench::main_devices()) {
    benchkit::BenchmarkEvaluator inner(
        *bench_obj, platform.device_by_name(device_name));
    tuner::CachingEvaluator eval(inner);
    common::Rng baseline_rng(42);
    const auto random_best =
        tuner::random_search(eval, baseline_n, baseline_rng);
    if (!random_best.success) continue;

    for (const bool use_filter : {false, true}) {
      common::RunningStats slowdown;
      common::RunningStats stage2_invalid;
      std::size_t successes = 0;
      for (std::size_t r = 0; r < repeats; ++r) {
        tuner::AutoTunerOptions opts;
        opts.training_samples = training;
        opts.second_stage_size = m;
        opts.validity_filter = use_filter;
        common::Rng rng(7000 + r);
        const auto result = tuner::AutoTuner(opts).tune(
            eval, tuner::TuneRun::with_rng(rng));
        stage2_invalid.add(static_cast<double>(result.stage2_invalid));
        if (!result.success) continue;
        ++successes;
        slowdown.add(result.best_time_ms / random_best.best_time_ms);
      }
      table.add_row(
          {device_name,
           use_filter ? "with validity filter" : "baseline (paper)",
           std::to_string(successes) + "/" + std::to_string(repeats),
           slowdown.count() ? common::fmt(slowdown.mean(), 3)
                            : std::string("no prediction"),
           common::fmt(stage2_invalid.mean(), 1)});
      std::cout << "  [" << device_name << " "
                << (use_filter ? "filtered" : "baseline") << " done]\n"
                << std::flush;
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  if (args.get("csv", false)) table.print_csv(std::cout);
  return 0;
}
