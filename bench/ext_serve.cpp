// Extension bench: tuning-as-a-service load generator (DESIGN.md §9).
//
// Drives a TuneService the way a fleet of clients would: T tenants × C
// client threads, each firing a mixed storm of tune and predict requests
// over a catalog of (kernel, device, input) keys, all submitted
// asynchronously so the whole storm is in flight at once. Three phases:
//
//   warmup — every (key, seed) pair is tuned once, populating the store
//            (this is the expensive, measured-tuning part);
//   storm  — the full request volume, answered from the store, coalesced
//            onto in-flight work, and scheduled round-robin across the
//            tenants; per-request latencies and throughput are recorded;
//   probe  — identity check: for a sample of keys the served best_config
//            is compared bit-for-bit against a direct AutoTuner run with
//            the same options and seed (exit 3 on any mismatch).
//
// Gates (non-zero exit, so the smoke run doubles as a regression test):
//   * identity probe mismatch                               -> exit 3
//   * storm cache hit rate below --min-hit-rate (def. 0.95) -> exit 4
//   * any admission rejection or non-kOk storm response     -> exit 5
//
// Flags:
//   --out=FILE        JSON report (default BENCH_serve.json)
//   --tenants=N       tenants (default 4)
//   --clients=N       client threads per tenant (default 2)
//   --requests=N      requests per client thread (default 160)
//   --workers=N       service worker threads (default 4)
//   --kernels=N       catalog kernels to use (default 2, max 3)
//   --devices=N       catalog devices to use (default 2, max 3)
//   --seed=S          base seed (default 1)
//   --min-hit-rate=X  storm cache hit-rate gate (default 0.95)
//   --smoke           fast mode for ctest (1 client, 32 requests each)

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "benchmarks/registry.hpp"
#include "common/telemetry/telemetry.hpp"
#include "report.hpp"
#include "serve/catalog.hpp"
#include "serve/service.hpp"
#include "tuner/autotuner.hpp"
#include "tuner/options.hpp"

namespace {

using namespace pt;

/// Small but real tuner configuration: every served tune actually trains
/// an ensemble and scans the space, just with reduced budgets.
tuner::AutoTunerOptions bench_tuner_options() {
  tuner::AutoTunerOptions o;
  o.training_samples = 80;
  o.second_stage_size = 16;
  o.model.ensemble.k = 3;
  o.model.ensemble.hidden_layers = {
      ml::LayerSpec{12, ml::Activation::kSigmoid}};
  o.model.ensemble.trainer.common.max_epochs = 150;
  return o;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  const bool smoke = args.get("smoke", false);
  bench::print_banner(
      "Extension: multi-tenant tuning service under mixed load", !smoke);

  const auto out_path = args.get("out", "BENCH_serve.json");
  const auto tenants = static_cast<std::size_t>(args.get("tenants", 4L));
  const auto clients =
      static_cast<std::size_t>(args.get("clients", smoke ? 1L : 2L));
  const auto requests_per_client =
      static_cast<std::size_t>(args.get("requests", smoke ? 32L : 160L));
  const auto workers = static_cast<std::size_t>(args.get("workers", 4L));
  const auto kernels = std::min<std::size_t>(
      3, static_cast<std::size_t>(args.get("kernels", 2L)));
  const auto devices = std::min<std::size_t>(
      3, static_cast<std::size_t>(args.get("devices", 2L)));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", 1L));
  const double min_hit_rate = args.get("min-hit-rate", 0.95);

  common::telemetry::Collector collector;
  common::telemetry::ScopedCollector scoped(&collector);

  // The key catalog: kernels × devices at the small geometry, two seeds
  // per key. Every (key, seed) pair is one unique tuning problem.
  serve::BenchmarkCatalog catalog;
  const auto kernel_names = benchkit::benchmark_names();
  std::vector<serve::TuneKey> keys;
  for (std::size_t k = 0; k < kernels; ++k)
    for (std::size_t d = 0; d < devices; ++d)
      keys.push_back(serve::TuneKey{
          kernel_names[k], catalog.platform().devices()[d].info().name,
          "small"});
  const std::uint64_t seeds[] = {seed, seed + 1};

  serve::TuneServiceOptions options;
  options.workers = workers;
  options.queue_capacity = clients * requests_per_client + 8;
  options.tuner = bench_tuner_options();
  options.store.catalog_version = catalog.version();
  serve::TuneService service(options, catalog.factory());

  // -------------------------------------------------------------- warmup
  const auto warm_start = std::chrono::steady_clock::now();
  {
    std::vector<std::future<serve::TuneResponse>> warm;
    for (const auto& key : keys)
      for (const std::uint64_t s : seeds) {
        serve::TuneRequest request;
        request.key = key;
        request.seed = s;
        warm.push_back(service.submit("warmup", std::move(request)));
      }
    for (auto& f : warm) {
      const serve::TuneResponse r = f.get();
      if (r.status != serve::ResponseStatus::kOk) {
        std::cerr << "warmup tune failed for " << r.key.to_string() << ": "
                  << r.error << "\n";
        return 2;
      }
    }
  }
  const double warmup_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - warm_start)
          .count();
  const serve::TuneServiceStats warm_stats = service.stats();
  std::cout << "warmup: " << warm_stats.tunes_executed
            << " tunes executed in " << warmup_ms << " ms\n";

  // --------------------------------------------------------------- storm
  // All tenants × clients submit everything before anyone waits, so the
  // whole volume is genuinely concurrent inside the service.
  const std::size_t total_requests = tenants * clients * requests_per_client;
  std::mutex result_mutex;
  std::vector<double> latencies;
  std::map<std::string, std::size_t> status_counts;
  std::size_t tune_requests = 0;
  std::size_t predict_requests = 0;
  std::size_t non_ok = 0;
  latencies.reserve(total_requests);

  const auto storm_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(tenants * clients);
  for (std::size_t t = 0; t < tenants; ++t) {
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, t, c] {
        serve::Session session(service,
                               "tenant-" + std::to_string(t));
        std::vector<std::future<serve::TuneResponse>> futures;
        futures.reserve(requests_per_client);
        std::size_t tunes = 0;
        std::size_t predicts = 0;
        for (std::size_t r = 0; r < requests_per_client; ++r) {
          // Deterministic per-thread mix: 3 tunes to 1 predict, walking
          // the key/seed catalog with a thread-dependent stride.
          const std::size_t pick = r + 7 * c + 13 * t;
          const serve::TuneKey& key = keys[pick % keys.size()];
          const std::uint64_t s = seeds[(pick / keys.size()) % 2];
          serve::TuneRequest request;
          request.key = key;
          request.seed = s;
          if (r % 4 == 3) {
            request.kind = serve::RequestKind::kPredict;
            request.config =
                service.store().lookup(key, s)->best_config;
            ++predicts;
          } else {
            ++tunes;
          }
          futures.push_back(session.submit(std::move(request)));
        }
        std::vector<double> local_latencies;
        local_latencies.reserve(futures.size());
        std::map<std::string, std::size_t> local_status;
        std::size_t local_non_ok = 0;
        for (auto& f : futures) {
          const serve::TuneResponse response = f.get();
          local_latencies.push_back(response.latency_ms);
          ++local_status[std::string(serve::to_string(response.status))];
          if (response.status != serve::ResponseStatus::kOk) ++local_non_ok;
        }
        const std::lock_guard<std::mutex> lock(result_mutex);
        latencies.insert(latencies.end(), local_latencies.begin(),
                         local_latencies.end());
        for (const auto& [status, n] : local_status)
          status_counts[status] += n;
        tune_requests += tunes;
        predict_requests += predicts;
        non_ok += local_non_ok;
      });
    }
  }
  for (auto& thread : threads) thread.join();
  const double storm_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - storm_start)
          .count();

  const serve::TuneServiceStats stats = service.stats();
  const std::uint64_t storm_hits = stats.cache_hits - warm_stats.cache_hits;
  const std::uint64_t storm_misses =
      stats.cache_misses - warm_stats.cache_misses;
  const std::uint64_t storm_coalesced =
      stats.coalesced - warm_stats.coalesced;
  const std::uint64_t storm_lookups = storm_hits + storm_misses;
  const double hit_rate =
      storm_lookups != 0
          ? static_cast<double>(storm_hits) /
                static_cast<double>(storm_lookups)
          : 1.0;
  const double throughput =
      storm_ms > 0.0 ? 1000.0 * static_cast<double>(total_requests) / storm_ms
                     : 0.0;

  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p90 = percentile(latencies, 0.90);
  const double p99 = percentile(latencies, 0.99);
  const double worst = latencies.empty() ? 0.0 : latencies.back();

  std::cout << "storm: " << total_requests << " requests ("
            << tune_requests << " tune / " << predict_requests
            << " predict) across " << tenants << " tenants x " << clients
            << " clients in " << storm_ms << " ms\n"
            << "  throughput " << throughput << " req/s, latency p50 "
            << p50 << " ms, p99 " << p99 << " ms\n"
            << "  cache hit rate " << 100.0 * hit_rate << "% ("
            << storm_hits << " hits / " << storm_misses << " misses, "
            << storm_coalesced << " coalesced), rejected "
            << stats.rejected << "\n";

  // --------------------------------------------------------------- probe
  // Bit-identity: served answers equal a direct AutoTuner run at the same
  // options and seed, on an evaluator built from the same catalog.
  std::size_t probe_checked = 0;
  bool identical = true;
  for (const auto& key : keys) {
    serve::Session prober(service, "probe");
    const serve::TuneResponse served = prober.tune(key, seeds[0]);
    if (served.status != serve::ResponseStatus::kOk) {
      identical = false;
      break;
    }
    auto evaluator = catalog.make_evaluator(key);
    const tuner::AutoTuneResult direct =
        tuner::AutoTuner(bench_tuner_options())
            .tune(*evaluator, tuner::TuneRun::with_seed(seeds[0]));
    ++probe_checked;
    if (!direct.success ||
        served.best_config.values != direct.best_config.values ||
        served.best_time_ms != direct.best_time_ms) {
      identical = false;
      std::cerr << "identity probe MISMATCH for " << key.to_string()
                << "\n";
      break;
    }
  }
  std::cout << "identity probe: " << probe_checked << " keys, "
            << (identical ? "all bit-identical to direct tuner runs"
                          : "MISMATCH")
            << "\n";

  // -------------------------------------------------------------- report
  bench::ReportWriter report;
  report.set("bench", "ext_serve")
      .set("smoke", smoke)
      .set("seed", static_cast<double>(seed))
      .set("workers", static_cast<double>(workers))
      .set("tenants", static_cast<double>(tenants))
      .set("clients_per_tenant", static_cast<double>(clients))
      .set("requests_per_client", static_cast<double>(requests_per_client))
      .set("unique_keys", static_cast<double>(keys.size()))
      .set("seeds_per_key", 2.0);
  {
    auto warmup = common::json::Value::object();
    warmup.set("tunes_executed",
               static_cast<double>(warm_stats.tunes_executed));
    warmup.set("wall_ms", warmup_ms);
    report.root().set("warmup", std::move(warmup));

    auto storm = common::json::Value::object();
    storm.set("requests", static_cast<double>(total_requests));
    storm.set("tune_requests", static_cast<double>(tune_requests));
    storm.set("predict_requests", static_cast<double>(predict_requests));
    storm.set("wall_ms", storm_ms);
    storm.set("throughput_rps", throughput);
    auto latency = common::json::Value::object();
    latency.set("p50", p50);
    latency.set("p90", p90);
    latency.set("p99", p99);
    latency.set("max", worst);
    storm.set("latency_ms", std::move(latency));
    storm.set("cache_hit_rate", hit_rate);
    storm.set("cache_hits", static_cast<double>(storm_hits));
    storm.set("cache_misses", static_cast<double>(storm_misses));
    storm.set("coalesced", static_cast<double>(storm_coalesced));
    storm.set("rejected", static_cast<double>(stats.rejected));
    auto statuses = common::json::Value::object();
    for (const auto& [status, n] : status_counts)
      statuses.set(status, static_cast<double>(n));
    storm.set("statuses", std::move(statuses));
    report.root().set("storm", std::move(storm));

    auto probe = common::json::Value::object();
    probe.set("keys_checked", static_cast<double>(probe_checked));
    probe.set("bit_identical", identical);
    report.root().set("identity_probe", std::move(probe));

    auto totals = common::json::Value::object();
    totals.set("submitted", static_cast<double>(stats.submitted));
    totals.set("completed", static_cast<double>(stats.completed));
    totals.set("tunes_executed", static_cast<double>(stats.tunes_executed));
    totals.set("predicts", static_cast<double>(stats.predicts));
    totals.set("cache_hits", static_cast<double>(stats.cache_hits));
    totals.set("cache_misses", static_cast<double>(stats.cache_misses));
    totals.set("coalesced", static_cast<double>(stats.coalesced));
    totals.set("rejected", static_cast<double>(stats.rejected));
    report.root().set("service_totals", std::move(totals));
  }
  report.attach_telemetry(&collector);
  report.write(out_path);

  if (!identical) return 3;
  if (hit_rate < min_hit_rate) {
    std::cerr << "cache hit rate " << hit_rate << " below gate "
              << min_hit_rate << "\n";
    return 4;
  }
  if (stats.rejected != 0 || non_ok != 0) {
    std::cerr << "storm saw " << stats.rejected << " rejections and "
              << non_ok << " non-ok responses\n";
    return 5;
  }
  return 0;
}
