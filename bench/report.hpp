#pragma once

// bench::ReportWriter — the one way benches emit their JSON reports.
//
// Before this existed every bench hand-rolled an ofstream with manual
// escaping and comma bookkeeping; now a bench builds an ordered json::Value
// and the writer guarantees the shared shape: every report carries a
// "telemetry" section ({"enabled": false} when the run was untraced, the
// full metrics block when it was) and ends with the familiar
// "report written to PATH" line.
//
//   bench::ReportWriter report;
//   report.set("device", device_name).set("repeats", repeats);
//   report.root().set("cells", std::move(cells_array));
//   report.attach_telemetry(collector_or_null);
//   report.write(out_path);

#include <iostream>
#include <string>
#include <utility>

#include "common/json.hpp"
#include "common/telemetry/export.hpp"

namespace pt::bench {

class ReportWriter {
 public:
  ReportWriter() : root_(common::json::Value::object()) {}

  /// The underlying document, for structured sections (arrays, objects).
  [[nodiscard]] common::json::Value& root() noexcept { return root_; }

  /// Top-level scalar field (chainable).
  ReportWriter& set(std::string key, common::json::Value value) {
    root_.set(std::move(key), std::move(value));
    return *this;
  }

  /// Attach the uniform "telemetry" section: the metrics block of
  /// `collector`, or {"enabled": false} when the run was untraced.
  ReportWriter& attach_telemetry(
      const common::telemetry::Collector* collector) {
    root_.set("telemetry",
              common::telemetry::metrics_json_or_disabled(collector));
    return *this;
  }

  /// Write the report (pretty JSON + newline) and log the standard
  /// confirmation line. False on I/O failure.
  bool write(const std::string& path, std::ostream& log = std::cout) const {
    if (!common::json::write_file(root_, path)) {
      log << "FAILED to write report to " << path << "\n";
      return false;
    }
    log << "report written to " << path << "\n";
    return true;
  }

 private:
  common::json::Value root_;
};

/// Write a Chrome trace for `collector` next to the metrics report:
/// "<prefix>.trace.json", loadable in chrome://tracing / Perfetto. Returns
/// the path written ("" on failure).
inline std::string write_chrome_trace(
    const common::telemetry::Collector& collector, const std::string& prefix,
    std::ostream& log = std::cout) {
  const std::string path = prefix + ".trace.json";
  if (!common::json::write_file(common::telemetry::chrome_trace(collector),
                                path)) {
    log << "FAILED to write trace to " << path << "\n";
    return "";
  }
  log << "trace written to " << path
      << " (load in chrome://tracing or https://ui.perfetto.dev)\n";
  return path;
}

}  // namespace pt::bench
