// google-benchmark micro-benchmarks for the ML substrate: matrix kernels,
// network forward/backward, ensemble training and bulk prediction — the
// operations whose throughput bounds the tuner's "orders of magnitude faster
// than running the benchmarks" prediction scan (paper section 5.3).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "ml/batched.hpp"
#include "ml/ensemble.hpp"
#include "ml/mlp.hpp"
#include "ml/quant.hpp"
#include "ml/trainer.hpp"

namespace {

using namespace pt;

ml::Matrix random_matrix(std::size_t rows, std::size_t cols,
                         common::Rng& rng) {
  ml::Matrix m(rows, cols);
  for (auto& v : m.flat()) v = rng.uniform(-1.0, 1.0);
  return m;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  const ml::Matrix a = random_matrix(n, n, rng);
  const ml::Matrix b = random_matrix(n, n, rng);
  ml::Matrix c;
  for (auto _ : state) {
    ml::matmul(a, b, c);
    benchmark::DoNotOptimize(c.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n * 2);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_MlpForwardBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  common::Rng rng(2);
  ml::Mlp net(9, {ml::LayerSpec{30, ml::Activation::kSigmoid},
                  ml::LayerSpec{1, ml::Activation::kLinear}});
  net.init_weights(rng);
  const ml::Matrix x = random_matrix(batch, 9, rng);
  for (auto _ : state) {
    const ml::Matrix y = net.forward_batch(x);
    benchmark::DoNotOptimize(y.flat().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_MlpForwardBatch)->Arg(256)->Arg(4096)->Arg(65536);

void BM_MlpBackwardBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  common::Rng rng(3);
  ml::Mlp net(9, {ml::LayerSpec{30, ml::Activation::kSigmoid},
                  ml::LayerSpec{1, ml::Activation::kLinear}});
  net.init_weights(rng);
  const ml::Matrix x = random_matrix(batch, 9, rng);
  const ml::Matrix t = random_matrix(batch, 1, rng);
  ml::Gradients grads = net.make_gradients();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.backward_batch(x, t, grads));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_MlpBackwardBatch)->Arg(256)->Arg(2048);

void BM_EnsembleTrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(4);
  ml::Dataset data;
  data.x = random_matrix(n, 9, rng);
  data.y = ml::Matrix(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t c = 0; c < 9; ++c) acc += data.x(i, c);
    data.y(i, 0) = acc;
  }
  ml::BaggingEnsemble::Options opts;
  opts.k = 3;
  opts.trainer.common.max_epochs = 100;
  for (auto _ : state) {
    ml::BaggingEnsemble ensemble(opts);
    ensemble.fit(data, rng);
    benchmark::DoNotOptimize(ensemble.member_count());
  }
}
BENCHMARK(BM_EnsembleTrain)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_EnsemblePredictBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(5);
  ml::Dataset data;
  data.x = random_matrix(400, 9, rng);
  data.y = random_matrix(400, 1, rng);
  ml::BaggingEnsemble::Options opts;
  opts.k = 11;  // paper's ensemble size
  opts.trainer.common.max_epochs = 30;
  ml::BaggingEnsemble ensemble(opts);
  ensemble.fit(data, rng);
  const ml::Matrix query = random_matrix(n, 9, rng);
  for (auto _ : state) {
    const auto out = ensemble.predict_batch(query);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_EnsemblePredictBatch)->Arg(65536);

// --- fp32 SIMD substrate ---------------------------------------------------

std::vector<float> random_floats(std::size_t n, common::Rng& rng) {
  std::vector<float> x(n);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-8.0, 8.0));
  return x;
}

void BM_SimdExp(benchmark::State& state) {
  common::Rng rng(6);
  const auto x = random_floats(65536, rng);
  std::vector<float> y(x.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < x.size(); i += common::simd::kWidth) {
      common::simd::exp(common::simd::VecF::load(x.data() + i))
          .store(y.data() + i);
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_SimdExp);

void BM_StdExpBaseline(benchmark::State& state) {
  common::Rng rng(6);
  const auto x = random_floats(65536, rng);
  std::vector<float> y(x.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = std::exp(x[i]);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(x.size()));
}
BENCHMARK(BM_StdExpBaseline);

void BM_BatchedMlpForward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  common::Rng rng(7);
  ml::Mlp net(9, {ml::LayerSpec{30, ml::Activation::kSigmoid},
                  ml::LayerSpec{1, ml::Activation::kLinear}});
  net.init_weights(rng);
  const ml::BatchedMlp batched(net);
  const auto x = random_floats(batch * 9, rng);
  std::vector<float> out(batch);
  ml::BatchedMlp::Scratch scratch;
  for (auto _ : state) {
    batched.forward_column0(x.data(), batch, out.data(), scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BatchedMlpForward)->Arg(256)->Arg(4096)->Arg(65536);

void BM_BatchedEnsemblePredict(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(8);
  ml::Dataset data;
  data.x = random_matrix(400, 9, rng);
  data.y = random_matrix(400, 1, rng);
  ml::BaggingEnsemble::Options opts;
  opts.k = 11;  // paper's ensemble size
  opts.trainer.common.max_epochs = 30;
  ml::BaggingEnsemble ensemble(opts);
  ensemble.fit(data, rng);
  const ml::BatchedEnsemble batched(ensemble);
  const auto x = random_floats(n * 9, rng);
  std::vector<float> out;
  ml::BatchedEnsemble::Scratch scratch;
  for (auto _ : state) {
    batched.predict_batch_into(x.data(), n, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BatchedEnsemblePredict)->Arg(65536);

// --- quantized inference tier ----------------------------------------------

/// The trained ensemble the quantized benches pack (same shape as the
/// fp32 batched bench so throughputs compare directly).
ml::BaggingEnsemble bench_ensemble(common::Rng& rng) {
  ml::Dataset data;
  data.x = random_matrix(400, 9, rng);
  data.y = random_matrix(400, 1, rng);
  ml::BaggingEnsemble::Options opts;
  opts.k = 11;  // paper's ensemble size
  opts.trainer.common.max_epochs = 30;
  ml::BaggingEnsemble ensemble(opts);
  ensemble.fit(data, rng);
  return ensemble;
}

void BM_QuantEnsemblePredict(benchmark::State& state, ml::QuantMode mode) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(8);  // same seed/shape as BM_BatchedEnsemblePredict
  const ml::BaggingEnsemble ensemble = bench_ensemble(rng);
  ml::QuantCalibration calib;
  calib.lo.assign(9, -8.0F);
  calib.hi.assign(9, 8.0F);
  const ml::QuantizedEnsemble quant(
      ensemble, mode, mode == ml::QuantMode::kInt8 ? &calib : nullptr);
  const auto x = random_floats(n * 9, rng);
  std::vector<float> out;
  ml::QuantizedEnsemble::Scratch scratch;
  for (auto _ : state) {
    quant.predict_batch_into(x.data(), n, out, scratch);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_QuantInt8EnsemblePredict(benchmark::State& state) {
  BM_QuantEnsemblePredict(state, ml::QuantMode::kInt8);
}
BENCHMARK(BM_QuantInt8EnsemblePredict)->Arg(65536);

void BM_QuantFp16EnsemblePredict(benchmark::State& state) {
  BM_QuantEnsemblePredict(state, ml::QuantMode::kFp16);
}
BENCHMARK(BM_QuantFp16EnsemblePredict)->Arg(65536);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects unknown
// flags, so translate our ctest-facing `--smoke` into a tiny min-time run.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string min_time = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time.data());
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
