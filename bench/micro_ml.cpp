// google-benchmark micro-benchmarks for the ML substrate: matrix kernels,
// network forward/backward, ensemble training and bulk prediction — the
// operations whose throughput bounds the tuner's "orders of magnitude faster
// than running the benchmarks" prediction scan (paper section 5.3).

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "ml/ensemble.hpp"
#include "ml/mlp.hpp"
#include "ml/trainer.hpp"

namespace {

using namespace pt;

ml::Matrix random_matrix(std::size_t rows, std::size_t cols,
                         common::Rng& rng) {
  ml::Matrix m(rows, cols);
  for (auto& v : m.flat()) v = rng.uniform(-1.0, 1.0);
  return m;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(1);
  const ml::Matrix a = random_matrix(n, n, rng);
  const ml::Matrix b = random_matrix(n, n, rng);
  ml::Matrix c;
  for (auto _ : state) {
    ml::matmul(a, b, c);
    benchmark::DoNotOptimize(c.flat().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n * 2);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_MlpForwardBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  common::Rng rng(2);
  ml::Mlp net(9, {ml::LayerSpec{30, ml::Activation::kSigmoid},
                  ml::LayerSpec{1, ml::Activation::kLinear}});
  net.init_weights(rng);
  const ml::Matrix x = random_matrix(batch, 9, rng);
  for (auto _ : state) {
    const ml::Matrix y = net.forward_batch(x);
    benchmark::DoNotOptimize(y.flat().data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_MlpForwardBatch)->Arg(256)->Arg(4096)->Arg(65536);

void BM_MlpBackwardBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  common::Rng rng(3);
  ml::Mlp net(9, {ml::LayerSpec{30, ml::Activation::kSigmoid},
                  ml::LayerSpec{1, ml::Activation::kLinear}});
  net.init_weights(rng);
  const ml::Matrix x = random_matrix(batch, 9, rng);
  const ml::Matrix t = random_matrix(batch, 1, rng);
  ml::Gradients grads = net.make_gradients();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.backward_batch(x, t, grads));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_MlpBackwardBatch)->Arg(256)->Arg(2048);

void BM_EnsembleTrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(4);
  ml::Dataset data;
  data.x = random_matrix(n, 9, rng);
  data.y = ml::Matrix(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t c = 0; c < 9; ++c) acc += data.x(i, c);
    data.y(i, 0) = acc;
  }
  ml::BaggingEnsemble::Options opts;
  opts.k = 3;
  opts.trainer.common.max_epochs = 100;
  for (auto _ : state) {
    ml::BaggingEnsemble ensemble(opts);
    ensemble.fit(data, rng);
    benchmark::DoNotOptimize(ensemble.member_count());
  }
}
BENCHMARK(BM_EnsembleTrain)->Arg(500)->Unit(benchmark::kMillisecond);

void BM_EnsemblePredictBatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Rng rng(5);
  ml::Dataset data;
  data.x = random_matrix(400, 9, rng);
  data.y = random_matrix(400, 1, rng);
  ml::BaggingEnsemble::Options opts;
  opts.k = 11;  // paper's ensemble size
  opts.trainer.common.max_epochs = 30;
  ml::BaggingEnsemble ensemble(opts);
  ensemble.fit(data, rng);
  const ml::Matrix query = random_matrix(n, 9, rng);
  for (auto _ : state) {
    const auto out = ensemble.predict_batch(query);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_EnsemblePredictBatch)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
