// Table 2 of the paper: tuning parameters per benchmark and their values,
// printed from the live parameter spaces, plus the space sizes quoted in the
// text (131K / 655K / 2359K).

#include <iostream>
#include <sstream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pt;
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  bench::print_banner("Table 2: Parameters used for the benchmarks", false);

  for (const auto& name : benchkit::benchmark_names()) {
    const auto bench = benchkit::make_benchmark_small(name);
    std::cout << "\n--- " << name << " ---\n";
    common::Table table({"Parameter", "Possible values"});
    for (std::size_t d = 0; d < bench->space().dimension_count(); ++d) {
      const auto& p = bench->space().parameter(d);
      std::ostringstream values;
      for (std::size_t i = 0; i < p.values.size(); ++i) {
        if (i) values << ",";
        values << p.values[i];
      }
      table.add_row({p.name, values.str()});
    }
    table.print(std::cout);
    if (args.get("csv", false)) table.print_csv(std::cout);
    std::cout << "configuration space size: " << bench->space().size()
              << " (" << bench->space().size() / 1024 << "K)\n";
  }
  return 0;
}
