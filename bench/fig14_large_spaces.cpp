// Figure 14: auto-tuner quality on the two benchmarks whose spaces are too
// large to exhaust (raycasting: 655K, stereo: 2.36M configurations). The
// reference is the best of 50K random configurations; the tuner uses
// N=3000 training and M=300 second-stage configurations (0.5% and 0.1% of
// the spaces).
//
// Paper's shape: slowdowns near (sometimes below) 1.0 — the tuner can beat
// the 50K random baseline; stereo on the GPUs produced *no* result because
// the model predicted mostly invalid configurations.

#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pt;
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  const bool full = args.get("full", false);
  bench::print_banner(
      "Figure 14: auto-tuner vs 50K-random baseline (raycasting, stereo)",
      full);

  exp::LargeSpaceOptions opts;
  opts.random_baseline =
      static_cast<std::size_t>(args.get("baseline", full ? 50000L : 20000L));
  opts.training_size =
      static_cast<std::size_t>(args.get("training", full ? 3000L : 1500L));
  opts.second_stage_size =
      static_cast<std::size_t>(args.get("m", 300L));
  opts.repeats = static_cast<std::size_t>(args.get("repeats", full ? 3L : 1L));
  opts.seed = static_cast<std::uint64_t>(args.get("seed", 9L));

  const clsim::Platform platform = archsim::default_platform();

  common::Table table({"Benchmark", "Device", "Baseline best",
                       "Tuner slowdown vs baseline", "Successful runs"});
  for (const char* bench_name : {"raycasting", "stereo"}) {
    const auto bench_obj = benchkit::make_benchmark(bench_name);
    for (const auto& device_name : bench::main_devices()) {
      benchkit::BenchmarkEvaluator inner(
          *bench_obj, platform.device_by_name(device_name));
      tuner::CachingEvaluator eval(inner);
      const exp::LargeSpaceResult result = exp::large_space_eval(eval, opts);
      table.add_row(
          {bench_name, device_name, common::fmt_time_ms(result.baseline_ms),
           result.mean_slowdown ? common::fmt(*result.mean_slowdown, 3)
                                : "no prediction (all stage-2 invalid)",
           std::to_string(result.successes) + "/" +
               std::to_string(result.repeats)});
      std::cout << "  [" << bench_name << " @ " << device_name << " done]\n"
                << std::flush;
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  if (args.get("csv", false)) table.print_csv(std::cout);
  return 0;
}
