// Figure 5: mean prediction error vs training set size on the Nvidia K40.
// Paper: 12.5-14.7% at 4000 training configurations.

#include "error_curve_main.hpp"

int main(int argc, char** argv) {
  return pt::bench::run_error_curve_figure(
      "Figure 5: mean prediction error vs training size, Nvidia K40",
      pt::archsim::kNvidiaK40, argc, argv);
}
