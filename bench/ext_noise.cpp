// Extension bench: tuner robustness under measurement noise and injected
// faults. Sweeps log-normal timing noise (sigma) crossed with fault-injection
// profiles (transient launch failures, spurious-invalid verdicts, timing
// outliers) on convolution, and reports how well the two-stage tuner holds
// up when its measurements lie to it.
//
// Stack per cell (outermost first):
//
//   RobustEvaluator -> FaultInjectingEvaluator -> NoisyEvaluator -> cache
//
// built with the fluent EvaluatorStack (tuner/stack.hpp). The
// CachingEvaluator sits *innermost* here (unlike the production stack in
// DESIGN.md) so the expensive simulated measurements are paid once and the
// injectors re-corrupt cached clean values per attempt; the exhaustive
// ground-truth sweep shares the same cache. Tuning quality is judged on the
// *clean* time of the chosen configuration vs the clean global optimum, so
// noise can only hurt via worse choices, not via luckier draws.
//
// Flags:
//   --out=FILE    JSON report path (default ext_noise.json)
//   --device=D    device name (default the Nvidia K40)
//   --repeats=N   tuner runs per cell (default 2)
//   --seed=S      base RNG seed (default 1)
//   --full        larger sweep and budgets (slower, same shape)
//   --csv         additionally print the summary table as CSV

#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "report.hpp"
#include "tuner/autotuner.hpp"
#include "tuner/robust.hpp"
#include "tuner/search.hpp"
#include "tuner/stack.hpp"

namespace {

struct FaultProfile {
  std::string label;
  double transient_rate = 0.0;
  double spurious_rate = 0.0;
  double outlier_rate = 0.0;
};

struct CellReport {
  double sigma = 0.0;
  FaultProfile profile;
  std::size_t successes = 0;
  std::size_t repeats = 0;
  pt::common::RunningStats slowdown;  // clean chosen time / clean optimum
  pt::common::RunningStats attempts_per_measurement;
  std::size_t transient_faults = 0;
  std::size_t stage2_streamed = 0;
  std::size_t retry_exhausted = 0;
  double tuning_cost_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pt;
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  const bool full = args.get("full", false);
  bench::print_banner(
      "Extension: tuning under measurement noise and injected faults "
      "(convolution)",
      full);
  const auto out_path = args.get("out", "ext_noise.json");
  const auto device_name =
      args.get("device", std::string(archsim::kNvidiaK40));
  const auto repeats = static_cast<std::size_t>(args.get("repeats", 2L));
  const auto seed = static_cast<std::uint64_t>(args.get("seed", 1L));

  const clsim::Platform platform = archsim::default_platform();
  const auto bench_obj = benchkit::make_benchmark("convolution");
  benchkit::BenchmarkEvaluator inner(*bench_obj,
                                     platform.device_by_name(device_name));
  tuner::CachingEvaluator clean(inner);

  // Clean exhaustive ground truth (shared cache with the tuner runs below).
  const tuner::SearchResult truth = tuner::exhaustive_search(clean);
  if (!truth.success) {
    std::cerr << "no valid configuration on " << device_name << "\n";
    return 1;
  }
  std::cout << device_name << ": clean optimum "
            << common::fmt_time_ms(truth.best_time_ms) << " over "
            << clean.space().size() << " configurations\n";

  std::vector<double> sigmas = {0.0, 0.1, 0.3};
  std::vector<FaultProfile> profiles = {
      {"none", 0.0, 0.0, 0.0},
      {"faulty", 0.10, 0.10, 0.05},
  };
  if (full) {
    sigmas.push_back(0.5);
    profiles.push_back({"hostile", 0.25, 0.30, 0.10});
  }

  const std::size_t training = full ? 2000 : 800;
  const std::size_t second_stage = full ? 100 : 50;

  std::vector<CellReport> cells;
  for (const double sigma : sigmas) {
    for (const auto& profile : profiles) {
      CellReport cell;
      cell.sigma = sigma;
      cell.profile = profile;
      cell.repeats = repeats;
      for (std::size_t r = 0; r < repeats; ++r) {
        const std::uint64_t run_seed = seed + 1000 * r;
        auto stack =
            tuner::EvaluatorStack::wrap(clean)
                .noisy({.sigma = sigma, .seed = run_seed + 1})
                .fault_injecting({.transient_rate = profile.transient_rate,
                                  .spurious_rate = profile.spurious_rate,
                                  .outlier_rate = profile.outlier_rate,
                                  .seed = run_seed + 2})
                .robust({.repeats = sigma > 0.0 || profile.outlier_rate > 0.0
                                        ? std::size_t{3}
                                        : std::size_t{1},
                         .max_retries = 3});

        tuner::AutoTunerOptions opts;
        opts.training_samples = training;
        opts.second_stage_size = second_stage;
        opts.stage2_stream_limit = 10 * second_stage;  // graceful degradation
        opts.run.seed = run_seed;
        const tuner::AutoTuneResult result =
            tuner::AutoTuner(opts).tune(stack);

        cell.transient_faults += result.transient_faults;
        cell.stage2_streamed += result.stage2_streamed;
        cell.retry_exhausted += stack.layer<tuner::RobustEvaluator>()->exhausted();
        cell.tuning_cost_ms += result.data_gathering_cost_ms;
        const std::size_t measured =
            result.stage1_measured + result.stage2_measured;
        if (measured > 0)
          cell.attempts_per_measurement.add(
              static_cast<double>(result.measure_attempts) /
              static_cast<double>(measured));
        if (result.success) {
          ++cell.successes;
          // Judge on the clean time of the chosen configuration.
          const tuner::Measurement verdict = clean.measure(result.best_config);
          if (verdict.valid)
            cell.slowdown.add(verdict.time_ms / truth.best_time_ms);
        }
      }
      std::cout << "  sigma=" << cell.sigma << " faults=" << profile.label
                << ": " << cell.successes << "/" << repeats << " ok"
                << (cell.slowdown.count()
                        ? ", mean clean slowdown " +
                              common::fmt(cell.slowdown.mean(), 3)
                        : "")
                << "\n"
                << std::flush;
      cells.push_back(cell);
    }
  }

  common::Table table({"Sigma", "Faults", "Successes", "Clean slowdown",
                       "Attempts/meas", "Transients", "Streamed"});
  for (const auto& cell : cells) {
    table.add_row(
        {common::fmt(cell.sigma, 1), cell.profile.label,
         std::to_string(cell.successes) + "/" + std::to_string(cell.repeats),
         cell.slowdown.count() ? common::fmt(cell.slowdown.mean(), 3)
                               : std::string("no prediction"),
         common::fmt(cell.attempts_per_measurement.mean(), 2),
         std::to_string(cell.transient_faults),
         std::to_string(cell.stage2_streamed)});
  }
  std::cout << "\n";
  table.print(std::cout);
  if (args.get("csv", false)) table.print_csv(std::cout);

  bench::ReportWriter report;
  report.set("device", device_name)
      .set("benchmark", "convolution")
      .set("clean_optimum_ms", truth.best_time_ms)
      .set("training_samples", training)
      .set("second_stage_size", second_stage)
      .set("repeats", repeats);
  common::json::Value cells_json = common::json::Value::array();
  for (const auto& cell : cells) {
    common::json::Value entry = common::json::Value::object();
    entry.set("sigma", cell.sigma);
    entry.set("faults", cell.profile.label);
    entry.set("transient_rate", cell.profile.transient_rate);
    entry.set("spurious_rate", cell.profile.spurious_rate);
    entry.set("outlier_rate", cell.profile.outlier_rate);
    entry.set("successes", cell.successes);
    entry.set("repeats", cell.repeats);
    entry.set("mean_clean_slowdown",
              cell.slowdown.count() ? cell.slowdown.mean() : 0.0);
    entry.set("mean_attempts_per_measurement",
              cell.attempts_per_measurement.mean());
    entry.set("transient_faults", cell.transient_faults);
    entry.set("stage2_streamed", cell.stage2_streamed);
    entry.set("retry_exhausted", cell.retry_exhausted);
    entry.set("tuning_cost_ms", cell.tuning_cost_ms);
    cells_json.push(std::move(entry));
  }
  report.root().set("cells", std::move(cells_json));
  report.attach_telemetry(nullptr);
  report.write(out_path);
  return 0;
}
