// Figure 7: convolution prediction error across three Nvidia generations —
// C2070 (Fermi), K40 (Kepler), GTX980 (Maxwell).
//
// Paper's shape: K40 and C2070 track each other closely; the GTX980 is
// slightly worse (the newest architecture has the most behaviour the simple
// feature set cannot capture).

#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pt;
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  const bool full = args.get("full", false);
  bench::print_banner(
      "Figure 7: convolution prediction error across Nvidia generations",
      full);

  const clsim::Platform platform = archsim::default_platform();
  exp::ErrorCurveOptions opts;
  opts.training_sizes = full ? bench::paper_training_sizes()
                             : bench::reduced_training_sizes();
  opts.repeats =
      static_cast<std::size_t>(args.get("repeats", full ? 3L : 2L));
  opts.test_samples =
      static_cast<std::size_t>(args.get("test-samples", 400L));
  opts.seed = static_cast<std::uint64_t>(args.get("seed", 1L));

  const auto bench_obj = benchkit::make_benchmark("convolution");
  std::vector<exp::ErrorCurve> curves;
  for (const char* name :
       {archsim::kNvidiaK40, archsim::kNvidiaGtx980, archsim::kNvidiaC2070}) {
    benchkit::BenchmarkEvaluator eval(*bench_obj,
                                      platform.device_by_name(name));
    exp::ErrorCurve curve = exp::compute_error_curve(eval, opts);
    curve.label = name;
    curves.push_back(std::move(curve));
    std::cout << "  [" << name << " done]\n" << std::flush;
  }

  std::cout << "\nMean relative prediction error (convolution):\n";
  bench::print_error_curves(curves, args.get("csv", false));
  return 0;
}
