// Figure 1: the motivational experiment. Exhaustively find each device's
// best convolution configuration, then measure each best configuration on
// every device and report the slowdown against that device's own optimum.
//
// Paper's shape: the three per-device optima all differ; the best Nvidia
// configuration is ~17x slower than optimal on the Intel CPU; the two GPUs'
// best configurations cost each other ~3x. A configuration can also be
// outright *invalid* on another device (e.g. a 512-item work-group exceeds
// the HD 7970's 256-item limit) — reported as such.

#include <iostream>

#include "bench_util.hpp"
#include "experiments/motivation.hpp"

int main(int argc, char** argv) {
  using namespace pt;
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  bench::print_banner("Figure 1: cross-device slowdown of per-device best "
                      "configurations (convolution)",
                      false);

  const clsim::Platform platform = archsim::default_platform();
  std::vector<clsim::Device> devices;
  for (const auto& name : bench::main_devices())
    devices.push_back(platform.device_by_name(name));

  const auto bench_obj = benchkit::make_benchmark("convolution");
  const exp::MotivationResult result =
      exp::cross_device_slowdowns(*bench_obj, devices);

  std::cout << "\nPer-device optima (exhaustive search over "
            << bench_obj->space().size() << " configurations):\n";
  common::Table bests({"Device", "Best time", "Best configuration"});
  for (const auto& b : result.bests) {
    bests.add_row({b.device, common::fmt_time_ms(b.time_ms),
                   bench_obj->space().to_string(b.config)});
  }
  bests.print(std::cout);

  std::cout << "\nSlowdown of config (row) when run on device (column):\n";
  std::vector<std::string> header = {"config \\ device"};
  for (const auto& b : result.bests) header.push_back(b.device);
  common::Table matrix(header);
  for (const auto& from : result.bests) {
    std::vector<std::string> row = {"best " + from.device};
    for (const auto& on : result.bests) {
      for (const auto& cell : result.matrix) {
        if (cell.config_from == from.device && cell.run_on == on.device) {
          row.push_back(cell.valid
                            ? common::fmt(cell.slowdown, 2)
                            : std::string("invalid (") +
                                  clsim::to_string(cell.status) + ")");
        }
      }
    }
    matrix.add_row(std::move(row));
  }
  matrix.print(std::cout);
  if (args.get("csv", false)) matrix.print_csv(std::cout);
  return 0;
}
