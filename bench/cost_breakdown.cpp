// Section 6's cost accounting: "for the convolution benchmark on the Nvidia
// GPU, training the model with 2000 samples takes about 1 minute, gathering
// the data takes about 30 minutes", dominated by kernel compilation and by
// failed attempts on invalid configurations.
//
// This bench reproduces that breakdown: simulated data-gathering wall time
// (compiles + runs + failed attempts) vs real host time spent training the
// ensemble and scanning predictions.

#include <iostream>

#include "bench_util.hpp"
#include "tuner/autotuner.hpp"

int main(int argc, char** argv) {
  using namespace pt;
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  bench::print_banner("Section 6: data-gathering vs model-training cost "
                      "(convolution @ Nvidia K40)",
                      false);

  const clsim::Platform platform = archsim::default_platform();
  const auto bench_obj = benchkit::make_benchmark("convolution");
  benchkit::BenchmarkEvaluator eval(
      *bench_obj, platform.device_by_name(archsim::kNvidiaK40));

  tuner::AutoTunerOptions opts;
  opts.training_samples =
      static_cast<std::size_t>(args.get("training", 2000L));
  opts.second_stage_size = static_cast<std::size_t>(args.get("m", 100L));
  common::Rng rng(static_cast<std::uint64_t>(args.get("seed", 11L)));

  const tuner::AutoTuner tuner_engine(opts);
  const tuner::AutoTuneResult result =
      tuner_engine.tune(eval, tuner::TuneRun::with_rng(rng));

  common::Table table({"Cost component", "Time"});
  table.add_row({"data gathering (simulated device wall clock)",
                 common::fmt_time_ms(result.data_gathering_cost_ms)});
  table.add_row({"  of which kernel compilation",
                 common::fmt_time_ms(eval.queue().total_build_ms())});
  table.add_row({"  of which kernel execution",
                 common::fmt_time_ms(eval.queue().total_kernel_ms())});
  table.add_row({"model training (host wall clock)",
                 common::fmt_time_ms(result.model_training_host_ms)});
  table.add_row({"prediction scan over the full space (host)",
                 common::fmt_time_ms(result.prediction_scan_host_ms)});
  table.print(std::cout);

  std::cout << "\nstage 1: " << result.stage1_measured << " measured, "
            << result.stage1_valid << " valid;  stage 2: "
            << result.stage2_measured << " measured, "
            << result.stage2_invalid << " invalid\n";
  if (result.success) {
    std::cout << "best configuration found: "
              << eval.space().to_string(result.best_config) << " = "
              << common::fmt_time_ms(result.best_time_ms) << "\n";
  }
  const double ratio =
      result.data_gathering_cost_ms /
      std::max(1.0, result.model_training_host_ms);
  std::cout << "gathering/training ratio: " << common::fmt(ratio, 1)
            << "x (paper: ~30x)\n";
  return 0;
}
