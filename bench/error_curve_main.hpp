#pragma once

// Shared driver for Figures 4, 5 and 6: mean relative prediction error vs
// number of training configurations, for all three benchmarks on one device.
//
// Paper's shape: error falls steeply up to ~1000-2000 training samples, then
// flattens. At 4000 samples: Intel 6.1-8.3%, Nvidia K40 12.5-14.7%,
// AMD HD 7970 12.6-21.2% with raycasting clearly the most predictable
// benchmark on AMD (manual rather than driver-pragma unrolling).

#include "bench_util.hpp"

namespace pt::bench {

inline int run_error_curve_figure(const std::string& figure_title,
                                  const std::string& device_name, int argc,
                                  char** argv) {
  const common::CliArgs args(argc, argv);
  common::apply_thread_option(args);
  const bool full = args.get("full", false);
  print_banner(figure_title, full);

  const clsim::Platform platform = archsim::default_platform();
  const clsim::Device device = platform.device_by_name(device_name);

  exp::ErrorCurveOptions opts;
  opts.training_sizes =
      full ? paper_training_sizes() : reduced_training_sizes();
  opts.repeats = static_cast<std::size_t>(
      args.get("repeats", full ? 3L : 2L));
  opts.test_samples =
      static_cast<std::size_t>(args.get("test-samples", 400L));
  opts.seed = static_cast<std::uint64_t>(args.get("seed", 1L));

  std::vector<exp::ErrorCurve> curves;
  for (const auto& name : benchkit::benchmark_names()) {
    const auto bench = benchkit::make_benchmark(name);
    benchkit::BenchmarkEvaluator eval(*bench, device);
    exp::ErrorCurve curve = exp::compute_error_curve(eval, opts);
    curve.label = name;
    curves.push_back(std::move(curve));
    std::cout << "  [" << name << " done]\n" << std::flush;
  }

  std::cout << "\nMean relative prediction error on " << device_name
            << " (held-out configurations, mean of " << opts.repeats
            << " models):\n";
  print_error_curves(curves, args.get("csv", false));

  // Paper-vs-measured summary at the largest training size.
  std::cout << "\nAt " << curves.front().points.back().training_size
            << " training configurations:";
  for (const auto& c : curves) {
    std::cout << "  " << c.label << "="
              << common::fmt_pct(c.points.back().mean_relative_error);
  }
  std::cout << "\n";
  return 0;
}

}  // namespace pt::bench
